//! Integration: `compute_at` must be semantics-preserving — attached
//! schedules produce bit-identical results to root schedules, across
//! elementwise and reduction producers, divisible and ragged tiles.

use proptest::prelude::*;
use tvm_autotune::prelude::*;
use tvm_autotune::te::Tensor;

fn elementwise_chain(n: usize) -> (Tensor, Tensor, Tensor) {
    let a = placeholder([n, n], DType::F32, "A");
    let t = compute([n, n], "T", |i| {
        a.at(&[i[0].clone(), i[1].clone()]) * a.at(&[i[0].clone(), i[1].clone()]) + 1i64
    });
    let o = compute([n, n], "O", |i| t.at(&[i[0].clone(), i[1].clone()]) * 3i64);
    (a, t, o)
}

fn run(module: &Module, n: usize) -> NDArray {
    let mut args = module.alloc_args();
    args[0] = NDArray::random(&[n, n], DType::F32, 21, -1.0, 1.0);
    // Last argument is the output for these graphs.
    module.run(&mut args).expect("execute");
    args.last().expect("args").clone()
}

#[test]
fn elementwise_attach_matches_root() {
    let n = 16;
    // Root schedule.
    let (a0, _t0, o0) = elementwise_chain(n);
    let s0 = Schedule::create(std::slice::from_ref(&o0));
    let root = Module::new(lower(&s0, &[a0, o0], "root"));

    // Attached schedule (tile 4x4, attach under yo).
    let (a1, t1, o1) = elementwise_chain(n);
    let mut s1 = Schedule::create(std::slice::from_ref(&o1));
    let (y, x) = (o1.axis(0), o1.axis(1));
    let (yo, _yi) = s1.split(&o1, &y, 4);
    let (_xo, _xi) = s1.split(&o1, &x, 4);
    s1.compute_at(&t1, &o1, &yo);
    let fused = Module::new(lower(&s1, &[a1, o1], "fused"));

    let r = run(&root, n);
    let f = run(&fused, n);
    assert!(r.allclose(&f, 1e-6, 1e-7), "diff {}", r.max_abs_diff(&f));
}

#[test]
fn reduce_producer_attach_matches_root() {
    // 2mm-like: E = A·B, O = E·C, attach E inside O's row tiles.
    let n = 12usize;
    let build = |attach: bool| {
        let a = placeholder([n, n], DType::F64, "A");
        let b = placeholder([n, n], DType::F64, "B");
        let c = placeholder([n, n], DType::F64, "C");
        let k = reduce_axis(0, n as i64, "k");
        let e = compute([n, n], "E", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                std::slice::from_ref(&k),
            )
        });
        let l = reduce_axis(0, n as i64, "l");
        let o = compute([n, n], "O", |i| {
            sum(
                e.at(&[i[0].clone(), l.var_expr()]) * c.at(&[l.var_expr(), i[1].clone()]),
                std::slice::from_ref(&l),
            )
        });
        let mut s = Schedule::create(std::slice::from_ref(&o));
        let y = o.axis(0);
        let (yo, _yi) = s.split(&o, &y, 3);
        if attach {
            s.compute_at(&e, &o, &yo);
        }
        Module::new(lower(&s, &[a, b, c, o], "mm2"))
    };
    let root = build(false);
    let fused = build(true);

    let mk_args = |m: &Module| {
        let mut args = m.alloc_args();
        args[0] = NDArray::random(&[n, n], DType::F64, 1, -1.0, 1.0);
        args[1] = NDArray::random(&[n, n], DType::F64, 2, -1.0, 1.0);
        args[2] = NDArray::random(&[n, n], DType::F64, 3, -1.0, 1.0);
        args
    };
    let mut ra = mk_args(&root);
    root.run(&mut ra).expect("root");
    let mut fa = mk_args(&fused);
    fused.run(&mut fa).expect("fused");
    assert!(
        ra[3].allclose(&fa[3], 1e-10, 1e-12),
        "diff {}",
        ra[3].max_abs_diff(&fa[3])
    );
}

#[test]
fn stencil_window_attach_matches_root() {
    // Consumer reads a 3-wide window of the producer: the region must
    // cover the halo.
    let n = 18usize;
    let build = |attach: bool| {
        let a = placeholder([n], DType::F64, "A");
        let t = compute([n], "T", |i| a.at(&[i[0].clone()]) * 2i64);
        let o = compute([n - 2], "O", |i| {
            t.at(&[i[0].clone()]) + t.at(&[i[0].clone() + 1]) + t.at(&[i[0].clone() + 2])
        });
        let mut s = Schedule::create(std::slice::from_ref(&o));
        let x = o.axis(0);
        let (xo, _xi) = s.split(&o, &x, 4);
        if attach {
            s.compute_at(&t, &o, &xo);
        }
        Module::new(lower(&s, &[a, o], "stencil"))
    };
    let root = build(false);
    let fused = build(true);
    let mut ra = root.alloc_args();
    ra[0] = NDArray::random(&[n], DType::F64, 5, -1.0, 1.0);
    let mut fa = fused.alloc_args();
    fa[0] = ra[0].clone();
    root.run(&mut ra).expect("root");
    fused.run(&mut fa).expect("fused");
    assert!(
        ra[1].allclose(&fa[1], 1e-12, 1e-12),
        "diff {}",
        ra[1].max_abs_diff(&fa[1])
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Attaching at the outer tile loop is semantics-preserving for any
    /// tile sizes, including ragged ones.
    #[test]
    fn prop_attach_any_tiles(ty in 1i64..10, tx in 1i64..10) {
        let n = 14;
        let (a0, _t0, o0) = elementwise_chain(n);
        let s0 = Schedule::create(std::slice::from_ref(&o0));
        let root = Module::new(lower(&s0, &[a0, o0], "root"));

        let (a1, t1, o1) = elementwise_chain(n);
        let mut s1 = Schedule::create(std::slice::from_ref(&o1));
        let (y, x) = (o1.axis(0), o1.axis(1));
        let (yo, _yi) = s1.split(&o1, &y, ty);
        let (_xo, _xi) = s1.split(&o1, &x, tx);
        s1.compute_at(&t1, &o1, &yo);
        let fused = Module::new(lower(&s1, &[a1, o1], "fused"));

        let r = run(&root, n);
        let f = run(&fused, n);
        prop_assert!(r.allclose(&f, 1e-6, 1e-7));
    }
}
