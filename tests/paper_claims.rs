//! Integration: reduced-budget versions of the paper's §5 claims.
//!
//! The full-budget (100-evaluation) numbers live in EXPERIMENTS.md and are
//! produced by `cargo run -p tvm-bench --bin run_all --release`; these
//! tests assert the claims' *shape* at a budget small enough for CI.

use tvm_autotune::autotvm::{GridSearchTuner, XgbTuner};
use tvm_autotune::prelude::*;

const BUDGET: usize = 30;
const SEED: u64 = 2023;

fn evaluator(kernel: KernelName, size: ProblemSize, repeats: usize) -> MoldEvaluator {
    let mold = mold_for(kernel, size);
    let dev = SimDevice::new(GpuSpec::swing_cpu_core()).with_seed(SEED);
    MoldEvaluator::simulated(mold, dev).with_repeats(repeats)
}

fn opts(batch: usize) -> TuneOptions {
    TuneOptions {
        max_evals: BUDGET,
        batch,
        max_process_s: None,
    }
}

/// Claim (paper §5, figures 4/6/10/12): ytopt finishes its evaluation
/// budget in the smallest autotuning process time. Two structural
/// reasons, both reproduced: no repeat measurements per candidate, and a
/// cheap surrogate.
#[test]
fn ytopt_has_smallest_process_time() {
    for (kernel, size) in [
        (KernelName::Lu, ProblemSize::Large),
        (KernelName::Cholesky, ProblemSize::ExtraLarge),
    ] {
        let space = tvm_autotune::polybench::spaces::space_for(kernel, size);
        let ev3 = evaluator(kernel, size, 3);
        let grid = tune(&mut GridSearchTuner::new(space.clone()), &ev3, opts(8));
        let ev1 = evaluator(kernel, size, 1);
        let ytopt = tune(&mut YtoptTuner::new(space, SEED), &ev1, opts(1));
        assert!(
            ytopt.total_process_s < grid.total_process_s,
            "{kernel}/{size}: ytopt {:.1}s should beat grid {:.1}s",
            ytopt.total_process_s,
            grid.total_process_s
        );
    }
}

/// Claim (paper §5): grid search performs the worst — on 3mm its
/// 30-evaluation window never leaves the all-smallest-tiles corner of a
/// 228M-point space.
#[test]
fn gridsearch_worst_on_3mm() {
    let space =
        tvm_autotune::polybench::spaces::space_for(KernelName::Mm3, ProblemSize::ExtraLarge);
    let ev = evaluator(KernelName::Mm3, ProblemSize::ExtraLarge, 1);
    let grid = tune(&mut GridSearchTuner::new(space.clone()), &ev, opts(8));
    let ytopt = tune(&mut YtoptTuner::new(space, SEED), &ev, opts(1));
    let g = grid.best().expect("ran").runtime_s.expect("ok");
    let y = ytopt.best().expect("ran").runtime_s.expect("ok");
    assert!(
        g > 2.0 * y,
        "grid search should be far worse on 3mm-xl: grid {g:.2}s vs ytopt {y:.2}s"
    );
}

/// Claim (paper §5): the XGB tuner stops early on the small LU/Cholesky
/// spaces ("at most 56 evaluations no matter how many are set").
#[test]
fn xgb_caps_evaluations_on_small_spaces() {
    let ev = evaluator(KernelName::Cholesky, ProblemSize::ExtraLarge, 1);
    let mut xgb = XgbTuner::new(ev.space().clone(), SEED);
    let res = tune(
        &mut xgb,
        &ev,
        TuneOptions {
            max_evals: 576, // the whole space as budget
            batch: 8,
            max_process_s: None,
        },
    );
    assert!(
        res.len() < 120,
        "XGB should stop well before the budget, did {}",
        res.len()
    );
}

/// Claim (Table 1): space sizes — asserted exactly (also covered by unit
/// tests; repeated here because it is a paper artifact).
#[test]
fn table1_exact() {
    use tvm_autotune::polybench::spaces::table1;
    let rows = table1();
    let get = |k: KernelName, s: ProblemSize| {
        rows.iter()
            .find(|(rk, rs, _)| *rk == k && *rs == s)
            .map(|(_, _, c)| *c)
            .expect("row")
    };
    assert_eq!(get(KernelName::Mm3, ProblemSize::Large), 74_649_600);
    assert_eq!(get(KernelName::Mm3, ProblemSize::ExtraLarge), 228_614_400);
    assert_eq!(get(KernelName::Lu, ProblemSize::Large), 400);
    assert_eq!(get(KernelName::Lu, ProblemSize::ExtraLarge), 576);
    assert_eq!(get(KernelName::Cholesky, ProblemSize::Large), 400);
    assert_eq!(get(KernelName::Cholesky, ProblemSize::ExtraLarge), 576);
}

/// Claim (figures 5/9): best runtimes across tuners are close — the
/// landscape has a broad plateau, and both the paper's best (e.g.
/// Cholesky-large GA 1.65s vs ytopt 1.66s) and ours land on it.
#[test]
fn best_runtimes_are_near_ties_on_small_spaces() {
    let space =
        tvm_autotune::polybench::spaces::space_for(KernelName::Cholesky, ProblemSize::Large);
    let ev = evaluator(KernelName::Cholesky, ProblemSize::Large, 1);
    let ytopt = tune(&mut YtoptTuner::new(space.clone(), SEED), &ev, opts(1));
    let grid = tune(&mut GridSearchTuner::new(space), &ev, opts(8));
    let y = ytopt.best().expect("ran").runtime_s.expect("ok");
    let g = grid.best().expect("ran").runtime_s.expect("ok");
    assert!(
        (y - g).abs() / y.min(g) < 0.5,
        "small-space minima should be within 50%: ytopt {y:.3} vs grid {g:.3}"
    );
}
