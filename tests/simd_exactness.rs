//! Packed-SIMD differential suite: the vectorizing JIT backend against
//! the scalar JIT tier and the interpreter oracle.
//!
//! The packed tier claims bit-exactness *by construction* — lanes only
//! ever carry disjoint elements, reductions stay scalar, and FMA
//! contraction is gated off — so the same function compiled by
//! [`default_backend`] (packed, AVX when available) and
//! [`scalar_backend`] (scalar tier forced) must produce bit-identical
//! outputs on every input. This suite drives that claim over random
//! strides, unaligned base offsets, and remainder extents around the
//! vector width (`lanes ± 1`, `n − 1`, `2·n`), plus the unroll-and-jam
//! tile shapes on gemm, and pins down non-vacuity: on x86-64 the
//! default backend must actually take the packed path for the shapes
//! this suite claims to cover.
//!
//! Off x86-64 both backends decline and every engine degenerates to
//! the optimized VM, which keeps the exactness half of the suite green
//! everywhere.

use configspace::{ConfigSpace, Configuration, Hyperparameter, ParamValue};
use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tvm_runtime::{compile_optimized, default_backend, interp, scalar_backend, vm, NDArray};
use tvm_te::{compute, placeholder, DType, Schedule};
use tvm_tir::lower::lower;
use tvm_tir::PrimFunc;

/// Run `func` through the interpreter, the scalar-tier JIT, and the
/// packed-tier JIT from identical argument snapshots; results and every
/// array must match bit for bit. Backends that decline fall back to
/// the optimized VM, mirroring the device ladder's contract.
fn assert_packed_matches_scalar(func: &PrimFunc, args: &[NDArray], context: &str) {
    let mut via_interp = args.to_vec();
    let mut via_scalar = args.to_vec();
    let mut via_packed = args.to_vec();
    let r_interp = interp::execute(func, &mut via_interp);
    let cf_opt = compile_optimized(func)
        .unwrap_or_else(|e| panic!("{context}: optimized pipeline must compile, got {e}"));
    let cf_scalar = scalar_backend()
        .jit_compile(&cf_opt)
        .unwrap_or_else(|_| cf_opt.clone());
    let cf_packed = default_backend().jit_compile(&cf_opt).unwrap_or(cf_opt);
    let r_scalar = vm::execute(&cf_scalar, &mut via_scalar);
    let r_packed = vm::execute(&cf_packed, &mut via_packed);
    assert_eq!(
        r_interp, r_scalar,
        "{context}: scalar JIT result/error class diverged"
    );
    assert_eq!(
        r_interp, r_packed,
        "{context}: packed JIT result/error class diverged"
    );
    for (i, (a, b)) in via_interp.iter().zip(&via_scalar).enumerate() {
        assert_eq!(a, b, "{context}: arg {i} diverged on the scalar JIT");
    }
    for (i, (a, b)) in via_interp.iter().zip(&via_packed).enumerate() {
        assert_eq!(a, b, "{context}: arg {i} diverged on the packed JIT");
    }
}

/// `B[i] = A[i·stride + offset] · A[i·stride + offset] + A[offset]`
/// with the `i` axis marked vectorized — the shape the optimizer
/// promotes to a proven vectorized strided loop. `stride` and `offset`
/// steer the packed tier's pointer math off the aligned happy path.
fn strided_map(extent: usize, stride: i64, offset: i64, dtype: DType) -> (PrimFunc, Vec<NDArray>) {
    let src = offset as usize + stride as usize * extent + 1;
    let a = placeholder([src], dtype, "A");
    let b = compute([extent], "B", |i| {
        let at = a.at(&[i[0].clone() * stride + offset]);
        at.clone() * at + a.at(&[tvm_te::ops::int(offset)])
    });
    let mut s = Schedule::create(std::slice::from_ref(&b));
    let x = b.axis(0);
    s.vectorize(&b, &x);
    let func = lower(&s, &[a, b], "strided_map");
    let args = vec![
        NDArray::random(&[src], dtype, 0x51_3d ^ (extent as u64) << 8, -2.0, 2.0),
        NDArray::zeros(&[extent], dtype),
    ];
    (func, args)
}

/// Copy of `base` with named values replaced.
fn config_with(base: &Configuration, names: &[String], overrides: &[(&str, i64)]) -> Configuration {
    let values = names
        .iter()
        .map(|name| {
            overrides
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| ParamValue::Int(v))
                .or_else(|| base.get(name).cloned())
                .expect("base configuration covers every parameter")
        })
        .collect();
    Configuration::new(names.to_vec(), values)
}

/// The space's parameter names, in declaration order.
fn param_names(space: &ConfigSpace) -> Vec<String> {
    space
        .params()
        .iter()
        .map(|p| p.name().to_string())
        .collect()
}

/// The ordinal values a parameter offers (empty for non-ordinals).
fn ordinal_values(space: &ConfigSpace, name: &str) -> Vec<i64> {
    space
        .params()
        .iter()
        .filter(|p| p.name() == name)
        .flat_map(|p| match p {
            Hyperparameter::Ordinal { sequence, .. } => {
                sequence.iter().filter_map(|v| v.as_int()).collect()
            }
            _ => Vec::new(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packed_matches_scalar_on_random_strided_maps(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let extent = rng.gen_range(1usize..48);
        let stride = rng.gen_range(1i64..4);
        let offset = rng.gen_range(0i64..5);
        let dtype = if rng.gen() { DType::F64 } else { DType::F32 };
        let (func, args) = strided_map(extent, stride, offset, dtype);
        assert_packed_matches_scalar(
            &func,
            &args,
            &format!("map n={extent} stride={stride} offset={offset} {dtype:?}"),
        );
    }
}

#[test]
fn packed_matches_scalar_at_remainder_extents() {
    // Extents straddling every vector width the backend emits — SSE
    // f64x2/f32x4 and AVX f64x4/f32x8 — so the packed main loop, the
    // leftover-vector loop, and the scalar epilogue all get exercised:
    // lanes − 1 (pure epilogue), lanes (no epilogue), lanes + 1 (one
    // scalar tail step), 2·lanes ± 1, and a multi-tile 33. The base
    // offset of 1 keeps the address math non-trivial (a zero-offset
    // unit-stride map collapses to direct indexing, which stays a
    // plain scalar loop) and lands every packed access off alignment.
    for extent in [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
        for dtype in [DType::F64, DType::F32] {
            let (func, args) = strided_map(extent, 1, 1, dtype);
            assert_packed_matches_scalar(&func, &args, &format!("remainder n={extent} {dtype:?}"));
        }
    }
}

#[test]
fn packed_matches_scalar_on_jam_tile_shapes() {
    // Gemm with a y-tile of 1 leaves the reduction loop directly
    // wrapping the mul-add microkernel — the shape the JIT's
    // unroll-and-jam tier fuses. Mini gemm's k = 30 (30 % 4 = 2)
    // exercises the jam's group tail at every x-tile the space offers,
    // and the x-tile sweep varies the packed j-loop's remainder.
    let mold = mold_for(KernelName::Gemm, ProblemSize::Mini);
    let base = mold.baseline_configuration();
    let names = param_names(mold.space());
    for tx in ordinal_values(mold.space(), "P1") {
        let config = config_with(&base, &names, &[("P0", 1), ("P1", tx)]);
        if !mold.space().validate(&config) {
            continue;
        }
        let func = mold.instantiate(&config);
        let args = mold.init_args();
        assert_packed_matches_scalar(&func, &args, &format!("gemm jam tx={tx}"));
    }
}

/// True when `TVM_JIT_SIMD=0` forces the scalar tier — the
/// non-vacuity assertions below are about the *packed* tier and
/// self-skip under that setting (the exactness tests still run; the
/// CI matrix leg covers both values).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn simd_forced_off() -> bool {
    std::env::var("TVM_JIT_SIMD").is_ok_and(|v| v == "0")
}

#[test]
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn packed_path_is_not_vacuous() {
    // The exactness tests above are only meaningful if the default
    // backend actually takes the packed path on the shapes they cover.
    // Gemm at the bench baseline configuration must report packed
    // sites, a unit-stride map at a multi-tile extent must pack, and
    // the accounting invariant `packed + scalar-by-reason = total`
    // must hold on every report.
    if simd_forced_off() {
        return;
    }
    let mold = mold_for(KernelName::Gemm, ProblemSize::Mini);
    let func = mold.instantiate(&mold.baseline_configuration());
    let cf = compile_optimized(&func).expect("optimized compile");
    let jf = default_backend().jit_compile(&cf).expect("gemm must jit");
    let report = jf.jit_simd_report().expect("jitted function keeps a report");
    assert!(
        report.packed_loops > 0,
        "gemm at default config must reach the packed tier: {report:?}"
    );
    let reason_sum: u64 = report.scalar_reasons.values().sum();
    assert_eq!(
        report.scalar_loops, reason_sum,
        "every scalar site must carry a reason: {report:?}"
    );
    assert_eq!(report.sites(), report.packed_loops + report.scalar_loops);

    let (map, _) = strided_map(33, 1, 1, DType::F64);
    let cf = compile_optimized(&map).expect("optimized compile");
    let jf = default_backend().jit_compile(&cf).expect("map must jit");
    let report = jf.jit_simd_report().expect("report");
    assert!(
        report.packed_loops > 0,
        "unit-stride vectorized map must pack: {report:?}"
    );
}

#[test]
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn jam_tier_is_not_vacuous() {
    // At least one y-tile-of-1 gemm shape must report a register-tiled
    // (unroll-and-jam) packed site, and the scalar backend must report
    // none anywhere — the tiers really are distinct code paths.
    if simd_forced_off() {
        return;
    }
    let mold = mold_for(KernelName::Gemm, ProblemSize::Mini);
    let config = config_with(
        &mold.baseline_configuration(),
        &param_names(mold.space()),
        &[("P0", 1)],
    );
    assert!(
        mold.space().validate(&config),
        "y-tile 1 must be in the gemm space"
    );
    let func = mold.instantiate(&config);
    let cf = compile_optimized(&func).expect("optimized compile");
    let jf = default_backend().jit_compile(&cf).expect("gemm must jit");
    let report = jf.jit_simd_report().expect("report");
    assert!(
        report.tiled_loops > 0,
        "y-tile-1 gemm must hit the unroll-and-jam tier: {report:?}"
    );
    let sf = scalar_backend().jit_compile(&cf).expect("scalar jit");
    let sreport = sf.jit_simd_report().expect("report");
    assert_eq!(
        sreport.packed_loops, 0,
        "scalar tier must never pack: {sreport:?}"
    );
}
