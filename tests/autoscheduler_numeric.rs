//! Integration: AutoScheduler-generated schedules execute correctly and
//! are searchable end to end.

use tvm_autotune::autotvm::AutoScheduler;
use tvm_autotune::prelude::*;
use tvm_autotune::te::Tensor;

fn mm_graph(n: usize, m: usize, k: usize) -> (Vec<Tensor>, Tensor) {
    let a = placeholder([n, k], DType::F64, "A");
    let b = placeholder([k, m], DType::F64, "B");
    let kk = reduce_axis(0, k as i64, "k");
    let c = compute([n, m], "C", |i| {
        sum(
            a.at(&[i[0].clone(), kk.var_expr()]) * b.at(&[kk.var_expr(), i[1].clone()]),
            std::slice::from_ref(&kk),
        )
    });
    (vec![a, b, c.clone()], c)
}

#[test]
fn every_generated_config_is_semantics_preserving() {
    let (args, c) = mm_graph(12, 16, 10);
    let auto = AutoScheduler::new(&[c], &args, "mm");

    let av = NDArray::random(&[12, 10], DType::F64, 1, -1.0, 1.0);
    let bv = NDArray::random(&[10, 16], DType::F64, 2, -1.0, 1.0);
    let reference = tvm_autotune::polybench::reference::matmul(&av, &bv);

    // The space is small (6 x 6): check the whole grid.
    for cfg in auto.space().grid() {
        let f = auto.apply(&cfg);
        let m = Module::new(f);
        let mut run_args = vec![
            av.clone(),
            bv.clone(),
            NDArray::zeros(&[12, 16], DType::F64),
        ];
        m.run(&mut run_args).expect("execute");
        assert!(
            run_args[2].allclose(&reference, 1e-10, 1e-12),
            "config {cfg} changed results"
        );
    }
}

#[test]
fn bo_tunes_the_generated_space_on_the_sim_device() {
    let (args, c) = mm_graph(256, 256, 256);
    let auto = AutoScheduler::new(&[c], &args, "mm");
    let dev = SimDevice::new(GpuSpec::swing_cpu_core());

    let space = auto.space().clone();
    let ev = tvm_autotune::autotvm::measure::FnEvaluator::new(space.clone(), move |cfg| {
        let f = auto.apply(cfg);
        match dev.run(&f, &mut []) {
            Ok(t) => tvm_autotune::autotvm::MeasureResult::ok(t, t + 0.8),
            Err(e) => tvm_autotune::autotvm::MeasureResult::fail(e.to_string(), 0.8),
        }
    });

    let mut tuner = YtoptTuner::new(space, 11);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: 25,
            batch: 1,
            max_process_s: None,
        },
    );
    assert_eq!(res.len(), 25);
    let best = res.best().expect("ran");
    // Tuning must beat the untiled corner by a wide margin.
    let untiled = {
        let (args, c) = mm_graph(256, 256, 256);
        let auto = AutoScheduler::new(&[c], &args, "mm");
        let cfg = auto.space().default_configuration(); // all-1 tiles
        SimDevice::new(GpuSpec::swing_cpu_core())
            .run(&auto.apply(&cfg), &mut [])
            .expect("run")
    };
    assert!(
        best.runtime_s.expect("ok") < untiled,
        "tuned {} should beat untiled {}",
        best.runtime_s.expect("ok"),
        untiled
    );
}
