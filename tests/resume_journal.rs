//! Crash-consistent checkpoint/resume: a run killed after `k` trials and
//! resumed from its journal must follow the identical remaining
//! trajectory — and reach the identical final best configuration — as an
//! uninterrupted run.

use proptest::prelude::*;
use tvm_autotune::autotvm::measure::FnEvaluator;
use tvm_autotune::autotvm::XgbTuner;
use tvm_autotune::bo::problem::FnProblem;
use tvm_autotune::bo::{self, BoOptions};
use tvm_autotune::prelude::*;

fn space() -> ConfigSpace {
    let mut cs = ConfigSpace::new();
    cs.add(Hyperparameter::ordinal_ints(
        "P0",
        &(1..=30).collect::<Vec<i64>>(),
    ));
    cs.add(Hyperparameter::ordinal_ints(
        "P1",
        &(1..=30).collect::<Vec<i64>>(),
    ));
    cs
}

fn objective(c: &Configuration) -> f64 {
    let (a, b) = (c.int("P0") as f64, c.int("P1") as f64);
    1.0 + 0.02 * ((a - 24.0).powi(2) + (b - 7.0).powi(2))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tvm-autotune-resume-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// BO: kill after any `k` trials, resume — identical trajectory.
    #[test]
    fn bo_resume_matches_uninterrupted_run(k in 1usize..25) {
        let path = tmp(&format!("bo-resume-{k}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let problem = FnProblem::new(space(), |c| {
            bo::Evaluation::ok(objective(c), 0.5)
        });
        let opts = BoOptions { max_evals: 30, ..Default::default() };

        let full = bo::run(&problem, opts);

        let partial = bo::run_journaled(
            &problem,
            BoOptions { max_evals: k, ..opts },
            &path,
        ).expect("journaled run");
        prop_assert_eq!(partial.len(), k);

        let resumed = bo::resume_from_journal(&problem, opts, &path).expect("resume");
        prop_assert_eq!(resumed.len(), 30);
        prop_assert_eq!(resumed.replayed, k);

        let keys = |r: &bo::BoResult| -> Vec<String> {
            r.trials.iter().map(|t| t.config.key()).collect()
        };
        prop_assert_eq!(keys(&full), keys(&resumed));
        prop_assert_eq!(
            full.best().expect("best").config.key(),
            resumed.best().expect("best").config.key()
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// The five strategies, fresh and identically seeded, XGB early stop off.
fn tuners(seed: u64) -> Vec<(Box<dyn Tuner>, usize)> {
    let mut xgb = XgbTuner::new(space(), seed);
    xgb.improvement_margin = f64::INFINITY;
    // (tuner, driver batch); ytopt evaluates one point at a time.
    vec![
        (
            Box::new(RandomTuner::new(space(), seed)) as Box<dyn Tuner>,
            8,
        ),
        (Box::new(GridSearchTuner::new(space())), 8),
        (Box::new(GaTuner::new(space(), seed)), 8),
        (Box::new(xgb), 8),
        (Box::new(YtoptTuner::new(space(), seed)), 1),
    ]
}

fn chaotic_evaluator(
    rate: f64,
    seed: u64,
) -> HarnessedEvaluator<FaultInjector<FnEvaluator<impl Fn(&Configuration) -> MeasureResult>>> {
    let inner = FnEvaluator::new(space(), |c| {
        let r = objective(c);
        MeasureResult::ok(r, r + 0.3)
    });
    HarnessedEvaluator::new(FaultInjector::new(inner, FaultPlan::uniform(rate, seed)))
}

/// The issue's acceptance scenario: under 20% injected failures, kill
/// each tuner mid-budget and resume — the final best configuration (and
/// the whole trajectory) must match the uninterrupted run's, for all
/// five strategies.
#[test]
fn acceptance_kill_and_resume_matches_for_all_tuners_under_chaos() {
    const SEED: u64 = 2023;
    const BUDGET: usize = 80;
    const KILL_AT: usize = 37; // mid-batch on purpose

    for tuner_index in 0..tuners(SEED).len() {
        let batch = tuners(SEED)[tuner_index].1;
        let opts = TuneOptions {
            max_evals: BUDGET,
            batch,
            max_process_s: None,
        };

        // Uninterrupted reference run.
        let mut full_tuner = tuners(SEED).swap_remove(tuner_index).0;
        let full = tune(full_tuner.as_mut(), &chaotic_evaluator(0.2, SEED), opts);
        assert_eq!(full.len(), BUDGET, "{}", full.tuner);

        // Simulated crash: journal KILL_AT trials, then the process dies.
        let name = format!("driver-chaos-resume-{tuner_index}.jsonl");
        let path = tmp(&name);
        let _ = std::fs::remove_file(&path);
        let mut part_tuner = tuners(SEED).swap_remove(tuner_index).0;
        let partial = tune_journaled(
            part_tuner.as_mut(),
            &chaotic_evaluator(0.2, SEED),
            TuneOptions {
                max_evals: KILL_AT,
                ..opts
            },
            &path,
        )
        .expect("journaled run");
        assert_eq!(partial.len(), KILL_AT, "{}", partial.tuner);

        // A restarted process: fresh tuner, fresh evaluator, same seeds.
        let mut res_tuner = tuners(SEED).swap_remove(tuner_index).0;
        let resumed = resume_from_journal(
            res_tuner.as_mut(),
            &chaotic_evaluator(0.2, SEED),
            opts,
            &path,
        )
        .expect("resume");
        assert_eq!(resumed.len(), BUDGET, "{}", resumed.tuner);
        assert_eq!(resumed.replayed, KILL_AT, "{}", resumed.tuner);

        let keys =
            |r: &TuningResult| -> Vec<String> { r.trials.iter().map(|t| t.config.key()).collect() };
        assert_eq!(
            keys(&full),
            keys(&resumed),
            "{}: resumed trajectory must be identical",
            full.tuner
        );
        assert_eq!(
            full.best().expect("best").config.key(),
            resumed.best().expect("best").config.key(),
            "{}: resumed run must reach the same final best",
            full.tuner
        );
        // Failure pattern is part of the trajectory too.
        let errs = |r: &TuningResult| -> Vec<Option<&'static str>> {
            r.trials
                .iter()
                .map(|t| t.error.as_ref().map(|e| e.kind()))
                .collect()
        };
        assert_eq!(errs(&full), errs(&resumed), "{}", full.tuner);
        let _ = std::fs::remove_file(&path);
    }
}

/// Resuming an already-complete journal replays everything and evaluates
/// nothing new.
#[test]
fn resume_of_complete_run_is_pure_replay() {
    let path = tmp("complete-replay.jsonl");
    let _ = std::fs::remove_file(&path);
    let ev = chaotic_evaluator(0.1, 5);
    let opts = TuneOptions {
        max_evals: 30,
        batch: 8,
        max_process_s: None,
    };
    let mut t1 = RandomTuner::new(space(), 5);
    let first = tune_journaled(&mut t1, &ev, opts, &path).expect("run");
    assert_eq!(first.len(), 30);

    let mut t2 = RandomTuner::new(space(), 5);
    let replay =
        resume_from_journal(&mut t2, &chaotic_evaluator(0.1, 5), opts, &path).expect("resume");
    assert_eq!(replay.len(), 30);
    assert_eq!(replay.replayed, 30, "nothing should be re-measured");
    let _ = std::fs::remove_file(&path);
}

/// A torn final journal line (crash mid-append) is dropped on resume and
/// the trial is simply re-measured.
#[test]
fn torn_tail_is_remeasured_on_resume() {
    use std::io::Write;
    let path = tmp("torn-tail.jsonl");
    let _ = std::fs::remove_file(&path);
    let opts = TuneOptions {
        max_evals: 20,
        batch: 4,
        max_process_s: None,
    };
    let mut t1 = RandomTuner::new(space(), 11);
    let partial = tune_journaled(
        &mut t1,
        &chaotic_evaluator(0.0, 11),
        TuneOptions {
            max_evals: 8,
            ..opts
        },
        &path,
    )
    .expect("journaled run");
    assert_eq!(partial.len(), 8);

    // Crash mid-append: half a JSON object with no trailing newline.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open");
    write!(f, "{{\"index\":8,\"conf").expect("write");
    drop(f);

    let mut t2 = RandomTuner::new(space(), 11);
    let resumed = resume_from_journal(&mut t2, &chaotic_evaluator(0.0, 11), opts, &path)
        .expect("resume drops the torn line");
    assert_eq!(resumed.len(), 20);
    assert_eq!(resumed.replayed, 8, "the torn 9th record is re-measured");

    // Reference: the same run uninterrupted.
    let mut t3 = RandomTuner::new(space(), 11);
    let full = tune(&mut t3, &chaotic_evaluator(0.0, 11), opts);
    let keys =
        |r: &TuningResult| -> Vec<String> { r.trials.iter().map(|t| t.config.key()).collect() };
    assert_eq!(keys(&full), keys(&resumed));
    let _ = std::fs::remove_file(&path);
}
