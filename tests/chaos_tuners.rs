//! Chaos tests: every tuner must survive injected measurement failures.
//!
//! The evaluator is wrapped in a deterministic `FaultInjector` (seeded,
//! per-class failure rates) plus the `HarnessedEvaluator` (panic
//! isolation + transient retry). At any failure rate the tuners must
//! neither panic nor stop short of their budget, failed trials must be
//! recorded (penalized, not fatal), and the best configuration must
//! always come from a successful trial.

use tvm_autotune::autotvm::measure::FnEvaluator;
use tvm_autotune::autotvm::record::{pick_best, TuningRecord};
use tvm_autotune::autotvm::XgbTuner;
use tvm_autotune::prelude::*;

/// 40×40 synthetic space (1600 configurations — room for 100-eval runs).
fn space() -> ConfigSpace {
    let mut cs = ConfigSpace::new();
    cs.add(Hyperparameter::ordinal_ints(
        "P0",
        &(1..=40).collect::<Vec<i64>>(),
    ));
    cs.add(Hyperparameter::ordinal_ints(
        "P1",
        &(1..=40).collect::<Vec<i64>>(),
    ));
    cs
}

/// Smooth objective, minimum 1.0 at (32, 9).
fn runtime(c: &Configuration) -> f64 {
    let (a, b) = (c.int("P0") as f64, c.int("P1") as f64);
    1.0 + 0.01 * ((a - 32.0).powi(2) + (b - 9.0).powi(2))
}

fn chaotic_evaluator(
    rate: f64,
    seed: u64,
) -> HarnessedEvaluator<FaultInjector<FnEvaluator<impl Fn(&Configuration) -> MeasureResult>>> {
    let inner = FnEvaluator::new(space(), |c| {
        let r = runtime(c);
        MeasureResult::ok(r, r + 0.5)
    });
    HarnessedEvaluator::new(FaultInjector::new(inner, FaultPlan::uniform(rate, seed)))
}

/// The five strategies, fresh and identically seeded. XGB's
/// model-confidence early stop is disabled (`improvement_margin = ∞`) so
/// a full budget is a meaningful requirement for all five.
fn tuners(seed: u64) -> Vec<Box<dyn Tuner>> {
    let mut xgb = XgbTuner::new(space(), seed);
    xgb.improvement_margin = f64::INFINITY;
    vec![
        Box::new(RandomTuner::new(space(), seed)) as Box<dyn Tuner>,
        Box::new(GridSearchTuner::new(space())),
        Box::new(GaTuner::new(space(), seed)),
        Box::new(xgb),
        Box::new(YtoptTuner::new(space(), seed)),
    ]
}

fn run_all(rate: f64, seed: u64, max_evals: usize) -> Vec<TuningResult> {
    tuners(seed)
        .into_iter()
        .map(|mut t| {
            let ev = chaotic_evaluator(rate, seed);
            tune(
                t.as_mut(),
                &ev,
                TuneOptions {
                    max_evals,
                    batch: 8,
                    max_process_s: None,
                },
            )
        })
        .collect()
}

#[test]
fn zero_rate_is_failure_free() {
    for r in run_all(0.0, 1, 40) {
        assert_eq!(r.len(), 40, "{}", r.tuner);
        assert_eq!(r.failed(), 0, "{}", r.tuner);
        assert!(r.best().is_some(), "{}", r.tuner);
    }
}

#[test]
fn moderate_chaos_penalizes_failures_without_stopping() {
    let results = run_all(0.1, 2, 100);
    let mut total_failed = 0;
    for r in &results {
        assert_eq!(r.len(), 100, "{} must complete its budget", r.tuner);
        total_failed += r.failed();
        // Failed trials carry their class; successful ones carry none.
        for t in &r.trials {
            assert_eq!(t.runtime_s.is_none(), t.error.is_some(), "{}", r.tuner);
        }
        let best = r.best().expect("chaos still leaves successes");
        assert!(best.error.is_none(), "{}: best must be a success", r.tuner);
    }
    assert!(
        total_failed > 0,
        "10% injection across 500 evals must fail somewhere"
    );
}

#[test]
fn heavy_chaos_still_completes_and_best_is_successful() {
    for r in run_all(0.5, 3, 100) {
        assert_eq!(r.len(), 100, "{} must complete its budget", r.tuner);
        assert!(
            r.failed() > 0,
            "{}: 50% injection must fail trials",
            r.tuner
        );
        assert!(r.failed() < 100, "{}: some trials must survive", r.tuner);
        let best = r.best().expect("best");
        assert!(
            best.runtime_s.is_some() && best.error.is_none(),
            "{}",
            r.tuner
        );
        // The incumbent curve must ignore failures entirely.
        let curve = r.incumbent_curve();
        assert!(curve.last().expect("curve").is_finite(), "{}", r.tuner);
    }
}

#[test]
fn pick_best_never_returns_a_failed_trial() {
    for r in run_all(0.5, 4, 60) {
        let records = TuningRecord::from_result("chaos", &r);
        assert_eq!(records.len(), r.len());
        let best = pick_best(&records, "chaos").expect("some trial succeeded");
        assert!(best.runtime_s.is_some());
        assert!(best.error.is_none());
    }
}

/// The issue's acceptance run: seeded end-to-end tuning with 20% injected
/// failures completes the full 100-evaluation budget for all five tuners.
#[test]
fn acceptance_twenty_percent_chaos_full_budget_all_tuners() {
    let results = run_all(0.2, 2023, 100);
    assert_eq!(results.len(), 5);
    for r in &results {
        assert_eq!(
            r.len(),
            100,
            "{} stopped at {} evals under 20% chaos",
            r.tuner,
            r.len()
        );
        let best = r.best().expect("best exists");
        assert!(best.error.is_none());
        // Deterministic injection: the run is reproducible.
    }
    let rerun = run_all(0.2, 2023, 100);
    for (a, b) in results.iter().zip(&rerun) {
        let ka: Vec<String> = a.trials.iter().map(|t| t.config.key()).collect();
        let kb: Vec<String> = b.trials.iter().map(|t| t.config.key()).collect();
        assert_eq!(ka, kb, "{}: chaos runs must be reproducible", a.tuner);
        assert_eq!(a.failed(), b.failed(), "{}", a.tuner);
    }
}

/// Injected static rejections behave like the real analyzer's verdicts:
/// deterministic per configuration (retries replay the same rejection),
/// charged near-zero process time, and never fatal to the run.
#[test]
fn injected_static_rejections_are_deterministic_and_cheap() {
    let mut plan = FaultPlan::none(5);
    plan.static_reject = 0.3;
    let make = || {
        let inner = FnEvaluator::new(space(), |c| {
            let r = runtime(c);
            MeasureResult::ok(r, r + 0.5)
        });
        HarnessedEvaluator::new(FaultInjector::new(inner, plan))
    };
    let ev = make();
    let mut tuner = RandomTuner::new(space(), 5);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: 80,
            batch: 8,
            max_process_s: None,
        },
    );
    assert_eq!(res.len(), 80);
    let mut rejected = 0;
    for t in &res.trials {
        if let Some(e) = &t.error {
            assert_eq!(e.kind(), "static_reject", "only static faults planned");
            assert!(
                t.eval_process_s < 0.01,
                "rejection must cost analysis time only, got {}",
                t.eval_process_s
            );
            rejected += 1;
        }
    }
    assert!(rejected > 0, "30% rejection over 80 evals must show up");
    assert!(res.best().expect("best").error.is_none());

    // Same configuration, fresh injector: the verdict replays — it is a
    // property of the config, not of evaluation order or attempt count.
    let ev2 = make();
    for t in res.trials.iter().take(20) {
        let replay = ev2.evaluate(&t.config);
        assert_eq!(
            replay.error.as_ref().map(|e| e.kind()),
            t.error.as_ref().map(|e| e.kind()),
            "verdict for {} must be deterministic",
            t.config.key()
        );
    }
}

/// Injected panics (not just error returns) are contained by the harness.
#[test]
fn injected_panics_are_contained() {
    let mut plan = FaultPlan::none(9);
    plan.runtime_crash = 0.3;
    plan.panic_on_crash = true;
    let inner = FnEvaluator::new(space(), |c| {
        let r = runtime(c);
        MeasureResult::ok(r, r + 0.5)
    });
    let ev = HarnessedEvaluator::new(FaultInjector::new(inner, plan));
    let mut tuner = RandomTuner::new(space(), 9);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: 60,
            batch: 8,
            max_process_s: None,
        },
    );
    assert_eq!(res.len(), 60);
    assert!(res.failed() > 0, "30% panics must show up as failures");
    for t in &res.trials {
        if let Some(e) = &t.error {
            assert_eq!(e.kind(), "runtime_crash");
        }
    }
    assert!(res.best().expect("best").error.is_none());
}
