//! Differential testing: the compiled VMs against the interpreter oracle.
//!
//! Every PolyBench kernel, under randomly sampled configurations, must
//! produce bit-identical outputs on four engines — the reference
//! interpreter, the scalar bytecode VM, the pass-pipeline-optimized VM
//! (strided/vectorized loops, fused multiply-add, microkernels), and the
//! native JIT (x86-64 machine code emitted from the optimized bytecode) —
//! and must fail identically (same `ExecError`) on malformed argument
//! lists (arity, shape, dtype). On targets without native codegen the
//! JIT backend declines every function and the fourth engine degenerates
//! to the optimized VM, which keeps this suite green off x86-64.

use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tvm_runtime::interp::ExecError;
use tvm_runtime::{compile, compile_optimized, default_backend, interp, vm, Device, NDArray};
use tvm_te::DType;

const KERNELS: [KernelName; 7] = [
    KernelName::Mm3,
    KernelName::Lu,
    KernelName::Cholesky,
    KernelName::Gemm,
    KernelName::Mm2,
    KernelName::Syrk,
    KernelName::Trmm,
];

/// Run `func` on all four engines from identical argument snapshots;
/// the results (including any error) and every output array must match
/// bit for bit.
fn assert_engines_agree(func: &tvm_tir::PrimFunc, args: &[NDArray], context: &str) {
    let mut via_interp = args.to_vec();
    let mut via_vm = args.to_vec();
    let mut via_opt = args.to_vec();
    let mut via_jit = args.to_vec();
    let r_interp = interp::execute(func, &mut via_interp);
    let cf = compile(func)
        .unwrap_or_else(|e| panic!("{context}: PolyBench kernels must compile, got {e}"));
    let r_vm = vm::execute(&cf, &mut via_vm);
    let cf_opt = compile_optimized(func)
        .unwrap_or_else(|e| panic!("{context}: optimized pipeline must compile, got {e}"));
    let r_opt = vm::execute(&cf_opt, &mut via_opt);
    // The JIT rung mirrors the device's fallback contract: when the
    // backend declines, the optimized bytecode runs unchanged.
    let cf_jit = default_backend().jit_compile(&cf_opt).unwrap_or(cf_opt);
    let r_jit = vm::execute(&cf_jit, &mut via_jit);
    assert_eq!(
        r_interp, r_vm,
        "{context}: scalar VM result/error class diverged"
    );
    assert_eq!(
        r_interp, r_opt,
        "{context}: optimized VM result/error class diverged"
    );
    assert_eq!(
        r_interp, r_jit,
        "{context}: JIT result/error class diverged"
    );
    for (i, (a, b)) in via_interp.iter().zip(&via_vm).enumerate() {
        assert_eq!(a, b, "{context}: arg {i} diverged on the scalar VM");
    }
    for (i, (a, b)) in via_interp.iter().zip(&via_opt).enumerate() {
        assert_eq!(a, b, "{context}: arg {i} diverged on the optimized VM");
    }
    for (i, (a, b)) in via_interp.iter().zip(&via_jit).enumerate() {
        assert_eq!(a, b, "{context}: arg {i} diverged on the JIT");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_kernel_matches_under_random_configs(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for kernel in KERNELS {
            let mold = mold_for(kernel, ProblemSize::Mini);
            let config = mold.space().sample(&mut rng);
            let func = mold.instantiate(&config);
            let args = mold.init_args();
            assert_engines_agree(&func, &args, &format!("{} / {config}", mold.name()));
        }
    }
}

#[test]
fn error_classification_matches_on_malformed_args() {
    for kernel in KERNELS {
        let mold = mold_for(kernel, ProblemSize::Mini);
        let config = mold.space().default_configuration();
        let func = mold.instantiate(&config);
        let good = mold.init_args();
        let name = mold.name();

        // Arity: one argument short.
        let short = &good[..good.len() - 1];
        assert_engines_agree(&func, short, &format!("{name} arity"));

        // Shape: first argument replaced by a 1×1 array of the right dtype.
        let mut bad_shape = good.clone();
        bad_shape[0] = NDArray::zeros(&[1, 1], good[0].dtype());
        assert_engines_agree(&func, &bad_shape, &format!("{name} shape"));

        // Dtype: first argument flipped F32 <-> F64 at the same shape.
        let mut bad_dtype = good.clone();
        let flipped = if good[0].dtype() == DType::F32 {
            DType::F64
        } else {
            DType::F32
        };
        bad_dtype[0] = NDArray::zeros(good[0].shape(), flipped);
        assert_engines_agree(&func, &bad_dtype, &format!("{name} dtype"));
    }
}

#[test]
fn optimizer_transforms_polybench_hot_loops() {
    // The four-engine differential above is only meaningful if the
    // optimized pipeline actually rewrites these kernels: the matrix
    // kernels' contiguous mul-add inner loops must be promoted to
    // strided loops or recognized as microkernels.
    let mut any_microkernel = false;
    for kernel in [KernelName::Gemm, KernelName::Mm3, KernelName::Mm2] {
        let mold = mold_for(kernel, ProblemSize::Mini);
        let func = mold.instantiate(&mold.space().default_configuration());
        let cf = compile_optimized(&func).expect("optimized compile");
        assert!(
            cf.microkernel_count() + cf.strided_loop_count() > 0,
            "{}: optimizer left every inner loop scalar",
            mold.name()
        );
        any_microkernel |= cf.microkernel_count() > 0;
    }
    assert!(
        any_microkernel,
        "no matrix kernel dispatched to the mul-add microkernel"
    );
}

#[test]
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn jit_actually_compiles_polybench_hot_loops() {
    // Non-vacuity for the fourth engine: on x86-64 the matrix kernels
    // must reach real machine code (compiled-nest counter > 0), not
    // silently fall back to the optimized VM.
    let backend = default_backend();
    for kernel in [KernelName::Gemm, KernelName::Mm3, KernelName::Mm2] {
        let mold = mold_for(kernel, ProblemSize::Mini);
        let func = mold.instantiate(&mold.space().default_configuration());
        let cf = compile_optimized(&func).expect("optimized compile");
        let jitted = backend
            .jit_compile(&cf)
            .unwrap_or_else(|e| panic!("{}: must jit on x86-64, got {e}", mold.name()));
        assert!(
            jitted.jit_nest_count() > 0,
            "{}: JIT emitted no native loop nest",
            mold.name()
        );
        assert!(jitted.jit_code_bytes() > 0);
    }
}

/// Tests that mutate the process-global worker-pool thread budget
/// serialize on this lock so they cannot race each other's counter
/// assertions (bit-identity itself holds at any thread count).
fn thread_budget_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn engines_agree_at_every_thread_count() {
    // The pool's static chunking must be invisible at every thread
    // budget: 1 (pure sequential), 2 and 4 (even splits), and 7 (ragged
    // chunk boundaries on typical tile counts). Outputs and error
    // classification both ride through `assert_engines_agree`.
    let _guard = thread_budget_lock();
    let mut rng = SmallRng::seed_from_u64(0x7a11e1);
    for threads in [1usize, 2, 4, 7] {
        tvm_runtime::pool::set_num_threads(threads);
        for kernel in KERNELS {
            let mold = mold_for(kernel, ProblemSize::Mini);
            let config = mold.space().sample(&mut rng);
            let func = mold.instantiate(&config);
            let args = mold.init_args();
            assert_engines_agree(
                &func,
                &args,
                &format!("{} / {config} @ {threads} threads", mold.name()),
            );
        }
        // Malformed arguments must classify identically when the engine
        // is willing to dispatch, too.
        let mold = mold_for(KernelName::Gemm, ProblemSize::Mini);
        let func = mold.instantiate(&mold.space().default_configuration());
        let good = mold.init_args();
        assert_engines_agree(
            &func,
            &good[..good.len() - 1],
            &format!("gemm arity @ {threads} threads"),
        );
    }
    tvm_runtime::pool::set_num_threads(1);
}

#[test]
fn thread_sweep_is_not_vacuous() {
    // The sweep above is only meaningful if the pool actually dispatches
    // on this suite's kernels: run gemm on the optimized device at 4
    // threads and demand a proven loop, a real dispatch, and zero thread
    // spawns on a repeat run (pool reuse).
    let _guard = thread_budget_lock();
    tvm_runtime::pool::set_num_threads(4);
    let device = tvm_runtime::CpuDevice::new();
    let mold = mold_for(KernelName::Gemm, ProblemSize::Mini);
    let func = mold.instantiate(&mold.space().default_configuration());
    let mut args = mold.init_args();
    device.run(&func, &mut args).expect("gemm runs");
    let stats = device.par_stats().expect("optimized device keeps counters");
    assert!(
        stats.loops_proven >= 1,
        "gemm's outer tile loop must prove race-free: {stats:?}"
    );
    assert!(
        stats.dispatches >= 1,
        "gemm must dispatch on the pool at 4 threads: {stats:?}"
    );
    let spawned = tvm_runtime::pool::threads_spawned();
    let mut args2 = mold.init_args();
    device.run(&func, &mut args2).expect("gemm runs again");
    assert_eq!(
        tvm_runtime::pool::threads_spawned(),
        spawned,
        "steady-state trials must not spawn threads"
    );
    tvm_runtime::pool::set_num_threads(1);
}

#[test]
fn malformed_args_yield_structured_errors() {
    // Sanity that the differential above exercises real error paths:
    // the interpreter (and therefore the VM) rejects a short arg list.
    let mold = mold_for(KernelName::Gemm, ProblemSize::Mini);
    let func = mold.instantiate(&mold.space().default_configuration());
    let mut args = mold.init_args();
    args.pop();
    let err = interp::execute(&func, &mut args).expect_err("arity must fail");
    assert!(matches!(err, ExecError::ArityMismatch { .. }));
}
