//! Integration: tuners driving real code molds on the simulated device.

use polybench::molds::mold_for_mode;
use polybench::spaces::embed_config;
use polybench::SpaceMode;
use std::collections::VecDeque;
use tvm_autotune::autotvm::{GaTuner, GridSearchTuner, RandomTuner, XgbTuner};
use tvm_autotune::prelude::*;

fn evaluator(kernel: KernelName, size: ProblemSize, seed: u64) -> MoldEvaluator {
    let mold = mold_for(kernel, size);
    let dev = SimDevice::new(GpuSpec::swing_cpu_core()).with_seed(seed);
    MoldEvaluator::simulated(mold, dev)
}

#[test]
fn ytopt_beats_random_start_on_lu_large() {
    let ev = evaluator(KernelName::Lu, ProblemSize::Large, 1);
    let mut tuner = YtoptTuner::new(ev.space().clone(), 1);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: 40,
            batch: 1,
            max_process_s: None,
        },
    );
    assert_eq!(res.len(), 40);
    let curve = res.incumbent_curve();
    // The model-based phase (after 10 random points) must improve on the
    // random warmup.
    assert!(
        curve[39] <= curve[9],
        "BO phase should not regress: {} vs {}",
        curve[39],
        curve[9]
    );
    // And land on the plateau of the landscape (probed global best ~1.9 s).
    assert!(curve[39] < 2.6, "best after 40 evals: {}", curve[39]);
}

#[test]
fn all_five_tuners_complete_on_cholesky() {
    let space =
        tvm_autotune::polybench::spaces::space_for(KernelName::Cholesky, ProblemSize::Large);
    let opts = TuneOptions {
        max_evals: 15,
        batch: 4,
        max_process_s: None,
    };
    let ev = evaluator(KernelName::Cholesky, ProblemSize::Large, 2);
    let results = vec![
        tune(&mut GaTuner::new(space.clone(), 2), &ev, opts),
        tune(&mut RandomTuner::new(space.clone(), 2), &ev, opts),
        tune(&mut GridSearchTuner::new(space.clone()), &ev, opts),
        tune(&mut XgbTuner::new(space.clone(), 2), &ev, opts),
        tune(&mut YtoptTuner::new(space, 2), &ev, opts),
    ];
    for r in &results {
        assert!(
            !r.is_empty() && r.len() <= 15,
            "{}: {} evals",
            r.tuner,
            r.len()
        );
        assert!(r.best().is_some(), "{} found nothing", r.tuner);
        assert!(r.total_process_s > 0.0);
        // All proposed configurations must be unique.
        let mut keys: Vec<String> = r.trials.iter().map(|t| t.config.key()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "{} repeated configurations", r.tuner);
    }
}

#[test]
fn xgb_stops_early_on_small_spaces() {
    // The paper: "XGBoost search tuner could only do at most 56
    // evaluations no matter how many evaluations are set".
    let ev = evaluator(KernelName::Lu, ProblemSize::Large, 3);
    let mut xgb = XgbTuner::new(ev.space().clone(), 3);
    let res = tune(
        &mut xgb,
        &ev,
        TuneOptions {
            max_evals: 400, // entire space as budget
            batch: 8,
            max_process_s: None,
        },
    );
    assert!(
        res.len() < 150,
        "XGB should exhaust its competitive pool early, did {} evals",
        res.len()
    );
    assert!(res.best().is_some());
}

#[test]
fn experiments_are_reproducible() {
    let run = |seed: u64| {
        let ev = evaluator(KernelName::Lu, ProblemSize::Large, seed);
        let mut t = YtoptTuner::new(ev.space().clone(), seed);
        let res = tune(
            &mut t,
            &ev,
            TuneOptions {
                max_evals: 20,
                batch: 1,
                max_process_s: None,
            },
        );
        res.trials
            .iter()
            .map(|t| (t.config.key(), t.runtime_s))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7), "same seed must reproduce exactly");
    assert_ne!(run(7), run(8), "different seeds must differ");
}

#[test]
fn bo_finds_global_optimum_of_enumerable_space() {
    // Exhaustively grade a small space, then check BO's answer against
    // the true optimum at a fraction of the budget.
    let ev = evaluator(KernelName::Lu, ProblemSize::Mini, 4);
    let space = ev.space().clone();
    let size = space.size().expect("discrete") as usize;
    let mut truth: Vec<(String, f64)> = Vec::with_capacity(size);
    for cfg in space.grid() {
        let r = tvm_autotune::autotvm::Evaluator::evaluate(&ev, &cfg);
        truth.push((cfg.key(), r.runtime_s.expect("ok")));
    }
    let global_best = truth.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);

    let mut tuner = YtoptTuner::new(space, 4);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: size / 2,
            batch: 1,
            max_process_s: None,
        },
    );
    let found = res.best().expect("ran").runtime_s.expect("ok");
    assert!(
        found <= global_best * 1.12,
        "BO with half budget should get within 12% of optimum: {found} vs {global_best}"
    );
}

/// Drains a queue of seed configurations before handing control to the
/// wrapped strategy — how a tuner carries the embedded paper-space grid
/// (or a previous run's trials) into the aggressive space.
struct WarmStartTuner<T: Tuner> {
    queue: VecDeque<Configuration>,
    inner: T,
}

impl<T: Tuner> Tuner for WarmStartTuner<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_batch(&mut self, n: usize) -> Vec<Configuration> {
        let mut batch = Vec::with_capacity(n);
        while batch.len() < n {
            match self.queue.pop_front() {
                Some(c) => batch.push(c),
                None => break,
            }
        }
        if batch.len() < n {
            batch.extend(self.inner.next_batch(n - batch.len()));
        }
        batch
    }

    fn update(&mut self, results: &[(Configuration, MeasureResult)]) {
        self.inner.update(results);
    }

    fn has_next(&self) -> bool {
        !self.queue.is_empty() || self.inner.has_next()
    }
}

/// A noise-free simulated device: the runtime is then a pure function of
/// the lowered schedule, and a neutral-knob aggressive config lowers to
/// the *identical* schedule as its paper counterpart (same builder, same
/// knobs), so embedded paper configs cost exactly what they cost in the
/// paper space.
fn quiet_device() -> SimDevice {
    SimDevice::new(GpuSpec::swing_cpu_core()).with_noise(0.0)
}

#[test]
fn aggressive_gemm_tuning_never_loses_to_the_paper_space() {
    // The paper space at mini is exhaustively enumerable (18 configs),
    // so `best_paper` is the true paper-space optimum.
    let paper_ev = MoldEvaluator::simulated(
        mold_for(KernelName::Gemm, ProblemSize::Mini),
        quiet_device(),
    );
    let agg_ev = MoldEvaluator::simulated(
        mold_for_mode(KernelName::Gemm, ProblemSize::Mini, SpaceMode::Aggressive),
        quiet_device(),
    );
    let paper_space = paper_ev.space().clone();
    let mut best_paper = f64::INFINITY;
    let mut embedded = VecDeque::new();
    for cfg in paper_space.grid() {
        let r = Evaluator::evaluate(&paper_ev, &cfg);
        best_paper = best_paper.min(r.runtime_s.expect("paper config runs"));
        embedded.push_back(embed_config(agg_ev.space(), &cfg));
    }
    let warm = embedded.len();

    let mut tuner = WarmStartTuner {
        queue: embedded,
        inner: YtoptTuner::new(agg_ev.space().clone(), 11),
    };
    let res = tune(
        &mut tuner,
        &agg_ev,
        TuneOptions {
            max_evals: 100,
            batch: 1,
            max_process_s: None,
        },
    );
    assert!(res.len() > warm, "budget must extend past the warm start");
    let best_aggr = res.best().expect("found").runtime_s.expect("ok");
    assert!(
        best_aggr <= best_paper,
        "aggressive superset must not lose to the paper space: {best_aggr} vs {best_paper}"
    );
    // The BO phase roams the wild part of the space, so the static
    // filter must have seen real traffic.
    let prune = res.prune.clone().expect("analyzed evaluator reports prune counters");
    assert!(prune.total() > 0, "no candidate reached the prune ledger: {prune:?}");
}

#[test]
fn aggressive_3mm_tuning_never_loses_to_the_paper_space() {
    // 3mm's paper space is too large to enumerate; the paper-space best
    // is itself a tuning result, and the aggressive run warm-starts from
    // that run's embedded trials before spending the rest of its 100-eval
    // budget on the widened space.
    let paper_ev = MoldEvaluator::simulated(
        mold_for(KernelName::Mm3, ProblemSize::Mini),
        quiet_device(),
    );
    let mut paper_tuner = YtoptTuner::new(paper_ev.space().clone(), 12);
    let paper_res = tune(
        &mut paper_tuner,
        &paper_ev,
        TuneOptions {
            max_evals: 40,
            batch: 1,
            max_process_s: None,
        },
    );
    let best_paper = paper_res.best().expect("found").runtime_s.expect("ok");

    let agg_ev = MoldEvaluator::simulated(
        mold_for_mode(KernelName::Mm3, ProblemSize::Mini, SpaceMode::Aggressive),
        quiet_device(),
    );
    let embedded: VecDeque<Configuration> = paper_res
        .trials
        .iter()
        .map(|t| embed_config(agg_ev.space(), &t.config))
        .collect();
    let mut tuner = WarmStartTuner {
        queue: embedded,
        inner: YtoptTuner::new(agg_ev.space().clone(), 12),
    };
    let res = tune(
        &mut tuner,
        &agg_ev,
        TuneOptions {
            max_evals: 100,
            batch: 1,
            max_process_s: None,
        },
    );
    let best_aggr = res.best().expect("found").runtime_s.expect("ok");
    assert!(
        best_aggr <= best_paper,
        "aggressive superset must not lose to the paper space: {best_aggr} vs {best_paper}"
    );
}

#[test]
fn real_cpu_tuning_on_mini_kernel() {
    // The Real evaluation mode: actually execute candidates on the
    // interpreter while tuning (tiny budget — interpretation is slow).
    let mold = mold_for(KernelName::Lu, ProblemSize::Mini);
    let ev = MoldEvaluator::real(mold, CpuDevice::new());
    let mut tuner = YtoptTuner::new(ev.space().clone(), 5);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: 4,
            batch: 1,
            max_process_s: None,
        },
    );
    assert_eq!(res.len(), 4);
    for t in &res.trials {
        assert!(t.runtime_s.expect("real run succeeded") > 0.0);
    }
}
