//! Integration: tuners driving real code molds on the simulated device.

use tvm_autotune::autotvm::{GaTuner, GridSearchTuner, RandomTuner, XgbTuner};
use tvm_autotune::prelude::*;

fn evaluator(kernel: KernelName, size: ProblemSize, seed: u64) -> MoldEvaluator {
    let mold = mold_for(kernel, size);
    let dev = SimDevice::new(GpuSpec::swing_cpu_core()).with_seed(seed);
    MoldEvaluator::simulated(mold, dev)
}

#[test]
fn ytopt_beats_random_start_on_lu_large() {
    let ev = evaluator(KernelName::Lu, ProblemSize::Large, 1);
    let mut tuner = YtoptTuner::new(ev.space().clone(), 1);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: 40,
            batch: 1,
            max_process_s: None,
        },
    );
    assert_eq!(res.len(), 40);
    let curve = res.incumbent_curve();
    // The model-based phase (after 10 random points) must improve on the
    // random warmup.
    assert!(
        curve[39] <= curve[9],
        "BO phase should not regress: {} vs {}",
        curve[39],
        curve[9]
    );
    // And land on the plateau of the landscape (probed global best ~1.9 s).
    assert!(curve[39] < 2.6, "best after 40 evals: {}", curve[39]);
}

#[test]
fn all_five_tuners_complete_on_cholesky() {
    let space =
        tvm_autotune::polybench::spaces::space_for(KernelName::Cholesky, ProblemSize::Large);
    let opts = TuneOptions {
        max_evals: 15,
        batch: 4,
        max_process_s: None,
    };
    let ev = evaluator(KernelName::Cholesky, ProblemSize::Large, 2);
    let results = vec![
        tune(&mut GaTuner::new(space.clone(), 2), &ev, opts),
        tune(&mut RandomTuner::new(space.clone(), 2), &ev, opts),
        tune(&mut GridSearchTuner::new(space.clone()), &ev, opts),
        tune(&mut XgbTuner::new(space.clone(), 2), &ev, opts),
        tune(&mut YtoptTuner::new(space, 2), &ev, opts),
    ];
    for r in &results {
        assert!(
            !r.is_empty() && r.len() <= 15,
            "{}: {} evals",
            r.tuner,
            r.len()
        );
        assert!(r.best().is_some(), "{} found nothing", r.tuner);
        assert!(r.total_process_s > 0.0);
        // All proposed configurations must be unique.
        let mut keys: Vec<String> = r.trials.iter().map(|t| t.config.key()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "{} repeated configurations", r.tuner);
    }
}

#[test]
fn xgb_stops_early_on_small_spaces() {
    // The paper: "XGBoost search tuner could only do at most 56
    // evaluations no matter how many evaluations are set".
    let ev = evaluator(KernelName::Lu, ProblemSize::Large, 3);
    let mut xgb = XgbTuner::new(ev.space().clone(), 3);
    let res = tune(
        &mut xgb,
        &ev,
        TuneOptions {
            max_evals: 400, // entire space as budget
            batch: 8,
            max_process_s: None,
        },
    );
    assert!(
        res.len() < 150,
        "XGB should exhaust its competitive pool early, did {} evals",
        res.len()
    );
    assert!(res.best().is_some());
}

#[test]
fn experiments_are_reproducible() {
    let run = |seed: u64| {
        let ev = evaluator(KernelName::Lu, ProblemSize::Large, seed);
        let mut t = YtoptTuner::new(ev.space().clone(), seed);
        let res = tune(
            &mut t,
            &ev,
            TuneOptions {
                max_evals: 20,
                batch: 1,
                max_process_s: None,
            },
        );
        res.trials
            .iter()
            .map(|t| (t.config.key(), t.runtime_s))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7), "same seed must reproduce exactly");
    assert_ne!(run(7), run(8), "different seeds must differ");
}

#[test]
fn bo_finds_global_optimum_of_enumerable_space() {
    // Exhaustively grade a small space, then check BO's answer against
    // the true optimum at a fraction of the budget.
    let ev = evaluator(KernelName::Lu, ProblemSize::Mini, 4);
    let space = ev.space().clone();
    let size = space.size().expect("discrete") as usize;
    let mut truth: Vec<(String, f64)> = Vec::with_capacity(size);
    for cfg in space.grid() {
        let r = tvm_autotune::autotvm::Evaluator::evaluate(&ev, &cfg);
        truth.push((cfg.key(), r.runtime_s.expect("ok")));
    }
    let global_best = truth.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);

    let mut tuner = YtoptTuner::new(space, 4);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: size / 2,
            batch: 1,
            max_process_s: None,
        },
    );
    let found = res.best().expect("ran").runtime_s.expect("ok");
    assert!(
        found <= global_best * 1.12,
        "BO with half budget should get within 12% of optimum: {found} vs {global_best}"
    );
}

#[test]
fn real_cpu_tuning_on_mini_kernel() {
    // The Real evaluation mode: actually execute candidates on the
    // interpreter while tuning (tiny budget — interpretation is slow).
    let mold = mold_for(KernelName::Lu, ProblemSize::Mini);
    let ev = MoldEvaluator::real(mold, CpuDevice::new());
    let mut tuner = YtoptTuner::new(ev.space().clone(), 5);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: 4,
            batch: 1,
            max_process_s: None,
        },
    );
    assert_eq!(res.len(), 4);
    for t in &res.trials {
        assert!(t.runtime_s.expect("real run succeeded") > 0.0);
    }
}
