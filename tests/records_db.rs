//! Integration: persistence of tuning results (AutoTVM-style JSON-lines
//! records and the ytopt-style performance database) round-tripped
//! through real tuning runs.

use tvm_autotune::autotvm::record::{load, pick_best, save, TuningRecord};
use tvm_autotune::bo::{run, BoOptions, PerformanceDatabase};
use tvm_autotune::prelude::*;

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvm-autotune-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn autotvm_records_roundtrip_real_run() {
    let mold = mold_for(KernelName::Cholesky, ProblemSize::Large);
    let ev = MoldEvaluator::simulated(mold, SimDevice::new(GpuSpec::swing_cpu_core()));
    let workload = ev.workload();
    let mut tuner = YtoptTuner::new(ev.space().clone(), 9);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals: 12,
            batch: 1,
            max_process_s: None,
        },
    );

    let recs = TuningRecord::from_result(&workload, &res);
    assert_eq!(recs.len(), 12);

    let path = tmpdir().join("records.jsonl");
    let _ = std::fs::remove_file(&path);
    save(&path, &recs).expect("save");
    let back = load(&path).expect("load");
    assert_eq!(back, recs);

    let best = pick_best(&back, &workload).expect("best");
    assert_eq!(
        best.runtime_s,
        res.best().expect("ran").runtime_s,
        "picked best must agree with the in-memory result"
    );
    // The best configuration must still be valid in the space.
    assert!(ev.space().validate(&best.config));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn performance_database_roundtrip_real_run() {
    let mold = mold_for(KernelName::Lu, ProblemSize::Large);
    let problem = MoldEvaluator::simulated(mold, SimDevice::new(GpuSpec::swing_cpu_core()));
    let res = run(
        &problem,
        BoOptions {
            max_evals: 10,
            ..Default::default()
        },
    );
    let db = res.to_database("lu-large");
    assert_eq!(db.len(), 10);

    let dir = tmpdir();
    let jpath = dir.join("db.json");
    let cpath = dir.join("results.csv");
    db.save_json(&jpath).expect("json");
    db.save_csv(&cpath).expect("csv");

    let back = PerformanceDatabase::load_json(&jpath).expect("load");
    assert_eq!(back.records, db.records);
    assert_eq!(
        back.best().expect("best").runtime_s,
        db.best().expect("best").runtime_s
    );

    let csv = std::fs::read_to_string(&cpath).expect("read csv");
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 11, "header + 10 rows");
    assert!(lines[0].starts_with("P0,P1,objective"));
    let _ = std::fs::remove_file(&jpath);
    let _ = std::fs::remove_file(&cpath);
}
