//! Integration: the full TE → schedule → lower → execute pipeline across
//! crates, including property-based schedule-equivalence tests.

use proptest::prelude::*;
use tvm_autotune::prelude::*;
use tvm_autotune::te;

fn matmul_graph(n: usize) -> (te::Tensor, te::Tensor, te::Tensor, te::IterVar) {
    let a = placeholder([n, n], DType::F32, "A");
    let b = placeholder([n, n], DType::F32, "B");
    let k = reduce_axis(0, n as i64, "k");
    let c = compute([n, n], "C", |i| {
        sum(
            a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
            std::slice::from_ref(&k),
        )
    });
    (a, b, c, k)
}

fn run_matmul_with_tiles(n: usize, ty: i64, tx: i64, split_k: Option<i64>) -> NDArray {
    let (a, b, c, k) = matmul_graph(n);
    let mut s = Schedule::create(std::slice::from_ref(&c));
    let (y, x) = (c.axis(0), c.axis(1));
    let (yo, yi) = s.split(&c, &y, ty);
    let (xo, xi) = s.split(&c, &x, tx);
    match split_k {
        Some(kf) => {
            let (ko, ki) = s.split(&c, &k, kf);
            s.reorder(&c, &[yo, xo, ko, ki, yi, xi]);
        }
        None => s.reorder(&c, &[yo, xo, k.clone(), yi, xi]),
    }
    let m = Module::new(lower(&s, &[a, b, c], "mm"));
    let mut args = m.alloc_args();
    args[0] = NDArray::random(&[n, n], DType::F32, 11, -1.0, 1.0);
    args[1] = NDArray::random(&[n, n], DType::F32, 12, -1.0, 1.0);
    m.run(&mut args).expect("execute");
    args[2].clone()
}

#[test]
fn schedules_are_semantics_preserving() {
    let baseline = run_matmul_with_tiles(24, 1, 1, None);
    for (ty, tx, kf) in [
        (4, 6, None),
        (8, 8, Some(4)),
        (5, 7, Some(5)),
        (24, 24, Some(24)),
    ] {
        let tiled = run_matmul_with_tiles(24, ty, tx, kf);
        assert!(
            baseline.allclose(&tiled, 1e-4, 1e-5),
            "tiles ({ty},{tx},{kf:?}) changed results: diff {}",
            baseline.max_abs_diff(&tiled)
        );
    }
}

#[test]
fn fused_schedule_matches() {
    let n = 16;
    let (a, b, c, _) = matmul_graph(n);
    let mut s = Schedule::create(std::slice::from_ref(&c));
    let (y, x) = (c.axis(0), c.axis(1));
    let f = s.fuse(&c, &y, &x);
    let (_, _) = s.split(&c, &f, 8);
    let m = Module::new(lower(&s, &[a, b, c], "mm_fused"));
    let mut args = m.alloc_args();
    args[0] = NDArray::random(&[n, n], DType::F32, 11, -1.0, 1.0);
    args[1] = NDArray::random(&[n, n], DType::F32, 12, -1.0, 1.0);
    m.run(&mut args).expect("execute");
    let baseline = run_matmul_with_tiles(n, 1, 1, None);
    assert!(baseline.allclose(&args[2], 1e-4, 1e-5));
}

#[test]
fn unroll_and_vectorize_preserve_semantics() {
    let n = 16;
    let (a, b, c, k) = matmul_graph(n);
    let mut s = Schedule::create(std::slice::from_ref(&c));
    let (y, x) = (c.axis(0), c.axis(1));
    let (yo, yi) = s.split(&c, &y, 4);
    let (xo, xi) = s.split(&c, &x, 4);
    s.reorder(&c, &[yo.clone(), xo, k.clone(), yi.clone(), xi.clone()]);
    s.unroll(&c, &yi);
    s.vectorize(&c, &xi);
    s.parallel(&c, &yo);
    let m = Module::new(lower(&s, &[a, b, c], "mm_annotated"));
    let mut args = m.alloc_args();
    args[0] = NDArray::random(&[n, n], DType::F32, 11, -1.0, 1.0);
    args[1] = NDArray::random(&[n, n], DType::F32, 12, -1.0, 1.0);
    m.run(&mut args).expect("execute");
    let baseline = run_matmul_with_tiles(n, 1, 1, None);
    assert!(baseline.allclose(&args[2], 1e-4, 1e-5));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (ty, tx, kf) in range leaves matmul results unchanged —
    /// including non-divisible factors that exercise boundary guards.
    #[test]
    fn prop_tiling_never_changes_matmul(ty in 1i64..20, tx in 1i64..20, kf in 1i64..20) {
        let baseline = run_matmul_with_tiles(12, 1, 1, None);
        let tiled = run_matmul_with_tiles(12, ty, tx, Some(kf));
        prop_assert!(baseline.allclose(&tiled, 1e-4, 1e-5));
    }

    /// The analytical device is a pure function of the lowered kernel.
    #[test]
    fn prop_sim_device_deterministic(ty in 1i64..32, tx in 1i64..32) {
        let (a, b, c, k) = matmul_graph(64);
        let mut s = Schedule::create(std::slice::from_ref(&c));
        let (y, x) = (c.axis(0), c.axis(1));
        let (yo, yi) = s.split(&c, &y, ty);
        let (xo, xi) = s.split(&c, &x, tx);
        s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);
        let f = lower(&s, &[a, b, c], "mm");
        let dev = SimDevice::new(GpuSpec::a100());
        let t1 = dev.predict(&f);
        let t2 = dev.predict(&f);
        prop_assert!(t1 > 0.0 && t1.is_finite());
        prop_assert_eq!(t1, t2);
    }
}

#[test]
fn polybench_molds_verify_on_cpu() {
    // End-to-end: every paper kernel at mini size, a handful of sampled
    // configurations, executed and checked against references.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(5);
    for kernel in KernelName::paper_kernels() {
        let mold = mold_for(kernel, ProblemSize::Mini);
        for _ in 0..2 {
            let cfg = mold.space().sample(&mut rng);
            tvm_autotune::polybench::verify::verify_config(mold.as_ref(), &cfg, 1e-9)
                .unwrap_or_else(|e| panic!("{kernel}: {e}"));
        }
    }
}
