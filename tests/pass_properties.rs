//! Per-pass property tests: every statement-level TIR pass — and the
//! whole default pipeline — must preserve execution semantics on
//! randomized split/reorder/fuse schedules, and must not change the
//! static schedule-safety analyzer's verdict.
//!
//! The reference interpreter is the semantics oracle: the original and
//! the transformed function are run from identical argument snapshots
//! and must produce bit-identical outputs (and the identical result /
//! error class).

use proptest::prelude::*;
use tvm_runtime::{interp, NDArray};
use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule};
use tvm_tir::passes::{licm, simplify, strength};
use tvm_tir::{analyze, lower::lower, optimize, PassManager, PrimFunc};

const N: usize = 8;

/// Randomized schedule shape for the matmul nest under test.
#[derive(Debug, Clone)]
struct Plan {
    split_y: i64,
    split_x: i64,
    reorder: bool,
    fuse_y: bool,
    parallel_outer: bool,
    vectorize_inner: bool,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        (1i64..=5, 1i64..=5),
        (any::<bool>(), any::<bool>()),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |((split_y, split_x), (reorder, fuse_y), (parallel_outer, vectorize_inner))| Plan {
                split_y,
                split_x,
                reorder,
                fuse_y,
                parallel_outer,
                vectorize_inner,
            },
        )
}

/// Lower an `N`×`N` matmul under `plan`. Non-divisible split factors
/// produce tail guards (min/select) — exactly the expressions LICM and
/// strength reduction exist to move and rewrite.
fn scheduled_matmul(plan: &Plan) -> PrimFunc {
    let a = placeholder([N, N], DType::F64, "A");
    let b = placeholder([N, N], DType::F64, "B");
    let k = reduce_axis(0, N as i64, "k");
    let c = compute([N, N], "C", |i| {
        sum(
            a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
            std::slice::from_ref(&k),
        )
    });
    let mut s = Schedule::create(std::slice::from_ref(&c));
    let (y, x) = (c.axis(0), c.axis(1));
    let (yo, yi) = s.split(&c, &y, plan.split_y);
    let (xo, xi) = s.split(&c, &x, plan.split_x);
    if plan.fuse_y {
        // Fusing the split back introduces div/mod recovery indexing.
        let f = s.fuse(&c, &yo, &yi);
        if plan.parallel_outer {
            s.parallel(&c, &f);
        }
    } else {
        if plan.reorder {
            s.reorder(
                &c,
                &[yo.clone(), xo.clone(), k.clone(), yi.clone(), xi.clone()],
            );
        }
        if plan.parallel_outer {
            s.parallel(&c, &yo);
        }
    }
    if plan.vectorize_inner {
        s.vectorize(&c, &xi);
    }
    lower(&s, &[a, b, c], "mm_prop")
}

fn fresh_args(seed: u64) -> Vec<NDArray> {
    vec![
        NDArray::random(&[N, N], DType::F64, seed, -1.0, 1.0),
        NDArray::random(&[N, N], DType::F64, seed ^ 0x9e37_79b9, -1.0, 1.0),
        NDArray::zeros(&[N, N], DType::F64),
    ]
}

/// Interpret `orig` and `transformed` from identical snapshots and
/// require bit-identical outcomes.
fn assert_same_semantics(orig: &PrimFunc, transformed: &PrimFunc, seed: u64, context: &str) {
    let mut base = fresh_args(seed);
    let mut xformed = fresh_args(seed);
    let r0 = interp::execute(orig, &mut base);
    let r1 = interp::execute(transformed, &mut xformed);
    assert_eq!(r0, r1, "{context}: result/error class diverged");
    for (i, (a, b)) in base.iter().zip(&xformed).enumerate() {
        assert_eq!(a, b, "{context}: arg {i} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn each_pass_preserves_matmul_semantics(plan in plan_strategy(), seed in any::<u64>()) {
        let func = scheduled_matmul(&plan);
        type PassFn = fn(&tvm_tir::Stmt) -> tvm_tir::Stmt;
        let passes: [(&str, PassFn); 3] = [
            ("strength-reduce", strength::strength_reduce_stmt),
            ("simplify", simplify::simplify_stmt),
            ("licm", licm::hoist_invariant_guards),
        ];
        for (name, pass) in passes {
            let transformed = PassManager::empty()
                .add_pass(name, pass)
                .run(&func)
                .unwrap_or_else(|e| panic!("{name} failed verification: {e:?}"));
            assert_same_semantics(&func, &transformed, seed, &format!("{name} / {plan:?}"));
        }
    }

    #[test]
    fn full_pipeline_preserves_matmul_semantics(plan in plan_strategy(), seed in any::<u64>()) {
        let func = scheduled_matmul(&plan);
        let optimized = optimize(&func).expect("default pipeline");
        assert_same_semantics(&func, &optimized, seed, &format!("pipeline / {plan:?}"));
    }

    #[test]
    fn analyzer_verdict_survives_optimization(plan in plan_strategy()) {
        let func = scheduled_matmul(&plan);
        let optimized = optimize(&func).expect("default pipeline");
        let before = analyze::check(&func);
        let after = analyze::check(&optimized);
        prop_assert_eq!(
            before.is_rejected(),
            after.is_rejected(),
            "optimization flipped the safety verdict for {:?}:\nbefore:\n{}\nafter:\n{}",
            &plan,
            before.render_text(),
            after.render_text()
        );
    }
}
