//! Differential soundness of the *aggressive* schedule spaces.
//!
//! The aggressive spaces deliberately contain illegal schedules — zero
//! tiles, over-wide vectorization, non-adjacent fuses, racy parallel
//! annotations — and the static analyzer is the only thing keeping them
//! away from the engines. This suite closes the loop in both directions:
//!
//! * every **admitted** `(kernel, config)` pair must run bit-identically
//!   on all four engines (reference interpreter, scalar VM, optimized
//!   VM, native JIT) without any `ExecError`;
//! * every **denied** pair must be confirmed by a concrete oracle: a
//!   `TIR-TRIP-ZERO` / `TIR-FUSE-ILLEGAL` prelint denial by the
//!   instantiation panic it predicts, a `TIR-VEC-OVER` denial by masked
//!   vector lanes in the lowered function, and a race denial by
//!   exhaustive enumeration of the denied loop's iterations.
//!
//! Each kernel must contribute at least one denial and one admission, so
//! neither side of the verdict is ever vacuous.

use configspace::{Configuration, ParamValue};
use polybench::molds::{mold_for, mold_for_mode};
use polybench::spaces::embed_config;
use polybench::{CodeMold, KernelName, ProblemSize, SpaceMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use tvm_runtime::{compile, compile_optimized, default_backend, interp, vm, NDArray};
use tvm_tir::analyze::{self, codes, oracle};
use tvm_tir::PrimFunc;

const KERNELS: [KernelName; 7] = [
    KernelName::Mm3,
    KernelName::Lu,
    KernelName::Cholesky,
    KernelName::Gemm,
    KernelName::Mm2,
    KernelName::Syrk,
    KernelName::Trmm,
];

/// An admitted config must execute on all four engines with no error and
/// bit-identical output arrays.
fn run_all_engines(func: &PrimFunc, args: &[NDArray], context: &str) {
    let mut via_interp = args.to_vec();
    let mut via_vm = args.to_vec();
    let mut via_opt = args.to_vec();
    let mut via_jit = args.to_vec();
    interp::execute(func, &mut via_interp)
        .unwrap_or_else(|e| panic!("{context}: interpreter failed after admit: {e}"));
    let cf = compile(func).unwrap_or_else(|e| panic!("{context}: admitted config must compile: {e}"));
    vm::execute(&cf, &mut via_vm)
        .unwrap_or_else(|e| panic!("{context}: scalar VM failed after admit: {e}"));
    let cf_opt = compile_optimized(func)
        .unwrap_or_else(|e| panic!("{context}: optimized pipeline must compile: {e}"));
    vm::execute(&cf_opt, &mut via_opt)
        .unwrap_or_else(|e| panic!("{context}: optimized VM failed after admit: {e}"));
    let cf_jit = default_backend().jit_compile(&cf_opt).unwrap_or(cf_opt);
    vm::execute(&cf_jit, &mut via_jit)
        .unwrap_or_else(|e| panic!("{context}: JIT failed after admit: {e}"));
    for (i, (a, b)) in via_interp.iter().zip(&via_vm).enumerate() {
        assert_eq!(a, b, "{context}: arg {i} diverged on the scalar VM");
    }
    for (i, (a, b)) in via_interp.iter().zip(&via_opt).enumerate() {
        assert_eq!(a, b, "{context}: arg {i} diverged on the optimized VM");
    }
    for (i, (a, b)) in via_interp.iter().zip(&via_jit).enumerate() {
        assert_eq!(a, b, "{context}: arg {i} diverged on the JIT");
    }
}

/// Classify one configuration through the full prelint → instantiate →
/// analyze pipeline, cross-check every denial against its concrete
/// oracle, and run admitted configs on all four engines. Returns `true`
/// iff the config was admitted.
fn classify_and_check(mold: &dyn CodeMold, config: &Configuration, context: &str) -> bool {
    let lint = mold.prelint(config);
    if !lint.is_empty() {
        let lint_codes: Vec<&str> = lint.iter().map(|d| d.code).collect();
        if lint_codes.iter().all(|&c| c == codes::VEC_OVER) {
            // Over-wide vectorization still instantiates — lowering masks
            // the dead lanes — and the oracle must find that mask.
            let func = mold.instantiate(config);
            assert!(
                oracle::confirm_masked_vector(&func),
                "{context}: TIR-VEC-OVER denial must materialize as masked vector lanes"
            );
        } else {
            // Zero trip counts and illegal fuses abort instantiation;
            // the panic is the denial's concrete witness.
            let attempt = catch_unwind(AssertUnwindSafe(|| mold.instantiate(config)));
            assert!(
                attempt.is_err(),
                "{context}: prelint denial {lint_codes:?} predicted an instantiation \
                 failure that did not happen"
            );
        }
        return false;
    }
    let func = mold.instantiate(config);
    let report = analyze::check(&func);
    if report.is_rejected() {
        let races: Vec<_> = report
            .denials()
            .filter(|d| d.code.starts_with("TIR-RACE"))
            .collect();
        if races.is_empty() {
            // Non-race analyzer denials must at least point at a real
            // buffer, not a phantom access.
            let names: Vec<&str> = func
                .params
                .iter()
                .chain(func.allocs.iter())
                .map(|b| b.name.as_str())
                .collect();
            for d in report.denials() {
                let buf = d
                    .buffer
                    .as_deref()
                    .unwrap_or_else(|| panic!("{context}: denial {} lacks a buffer", d.code));
                assert!(
                    names.contains(&buf),
                    "{context}: denial names unknown buffer `{buf}` (have {names:?})"
                );
            }
        } else {
            assert!(
                races.iter().any(|d| oracle::confirm_race(&func, d)),
                "{context}: race denial must be confirmed by concrete enumeration:\n{}",
                report.render_text()
            );
        }
        return false;
    }
    run_all_engines(&func, &mold.init_args(), context);
    true
}

/// Sampled sweep over every kernel's aggressive space, anchored by two
/// deterministic corners so each kernel contributes at least one denial
/// (the all-zero-tile grid corner) and one admission (the embedded paper
/// default) regardless of what the sampler draws.
#[test]
fn aggressive_configs_are_sound_on_all_four_engines() {
    let mut rng = SmallRng::seed_from_u64(0xA99);
    for kernel in KERNELS {
        let mold = mold_for_mode(kernel, ProblemSize::Mini, SpaceMode::Aggressive);
        let mut admits = 0usize;
        let mut denies = 0usize;

        let zero = mold.space().grid().next().expect("non-empty space");
        assert!(
            !classify_and_check(&*mold, &zero, &format!("{} zero-tile corner", mold.name())),
            "{}: the all-zero-tile corner must be denied",
            mold.name()
        );
        denies += 1;

        let paper = mold_for(kernel, ProblemSize::Mini);
        let embedded = embed_config(mold.space(), &paper.space().default_configuration());
        assert!(
            classify_and_check(
                &*mold,
                &embedded,
                &format!("{} embedded paper default", mold.name())
            ),
            "{}: the embedded paper default must be admitted",
            mold.name()
        );
        admits += 1;

        for i in 0..10 {
            let config = mold.space().sample(&mut rng);
            let context = format!("{} / {config} (sample {i})", mold.name());
            if classify_and_check(&*mold, &config, &context) {
                admits += 1;
            } else {
                denies += 1;
            }
        }
        assert!(
            admits >= 1 && denies >= 1,
            "{}: need both verdicts exercised, got {admits} admits / {denies} denies",
            mold.name()
        );
    }
}

/// All three oracle kinds, pinned on gemm with hand-picked configs so
/// each denial class is exercised deterministically (the sampled sweep
/// above may or may not draw them for any one kernel).
#[test]
fn gemm_denials_are_confirmed_by_every_oracle_kind() {
    let mold = mold_for_mode(KernelName::Gemm, ProblemSize::Mini, SpaceMode::Aggressive);
    let names: Vec<String> = ["P0", "P1", "ORDER", "FUSE", "VEC", "PAR", "UNROLL"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cfg = |vals: [i64; 7]| {
        Configuration::new(names.clone(), vals.map(ParamValue::Int).to_vec())
    };

    // VEC wider than the x tile: instantiable, lanes provably masked.
    let vec_over = cfg([4, 5, 0, 0, 64, 0, 0]);
    assert_eq!(
        mold.prelint(&vec_over)
            .iter()
            .map(|d| d.code)
            .collect::<Vec<_>>(),
        vec![codes::VEC_OVER]
    );
    assert!(oracle::confirm_masked_vector(&mold.instantiate(&vec_over)));

    // Parallel reduction: clean prelint, denied by the race analysis,
    // confirmed by exhaustive enumeration of the parallel iterations.
    let racy = cfg([4, 5, 0, 0, 0, 2, 0]);
    assert!(mold.prelint(&racy).is_empty(), "races are the analyzer's job");
    let func = mold.instantiate(&racy);
    let report = analyze::check(&func);
    let denial = report
        .denials()
        .find(|d| d.code.starts_with("TIR-RACE"))
        .expect("parallel reduction must be denied");
    assert!(oracle::confirm_race(&func, denial));

    // Zero tile and non-adjacent fuse: the predicted instantiation
    // failures must actually occur.
    for (label, bad) in [
        ("zero tile", cfg([0, 5, 0, 0, 0, 0, 0])),
        ("illegal fuse", cfg([4, 5, 0, 2, 0, 0, 0])),
    ] {
        assert!(!mold.prelint(&bad).is_empty(), "{label} must be denied");
        let attempt = catch_unwind(AssertUnwindSafe(|| mold.instantiate(&bad)));
        assert!(attempt.is_err(), "{label} must abort instantiation");
    }
}
