//! Differential soundness of the static schedule-safety analyzer.
//!
//! The analyzer gates every config before compilation, so its verdicts
//! must track the execution engines: an **accepted** `(kernel, config)`
//! pair must never raise an out-of-bounds `ExecError` in the interpreter
//! or the compiled VM, and a **rejected** pair's diagnostics must name a
//! buffer that actually exists in the lowered function.

use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tvm_runtime::interp::ExecError;
use tvm_runtime::{compile, interp, vm};
use tvm_te::{ops, DType, Var};
use tvm_tir::analyze;
use tvm_tir::{Buffer, ForKind, PrimFunc, Stmt};

const KERNELS: [KernelName; 7] = [
    KernelName::Mm3,
    KernelName::Lu,
    KernelName::Cholesky,
    KernelName::Gemm,
    KernelName::Mm2,
    KernelName::Syrk,
    KernelName::Trmm,
];

/// True when the error is the class the bounds analysis guards against.
fn is_oob(err: &ExecError) -> bool {
    matches!(err, ExecError::OutOfBounds { .. })
}

/// Every buffer name reachable from the function signature.
fn buffer_names(func: &PrimFunc) -> Vec<String> {
    func.params
        .iter()
        .chain(func.allocs.iter())
        .map(|b| b.name.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Accepted configs never go out of bounds on either engine;
    /// rejected configs name a real buffer in their diagnostics.
    #[test]
    fn accepted_configs_never_oob(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for kernel in KERNELS {
            let mold = mold_for(kernel, ProblemSize::Mini);
            let config = mold.space().sample(&mut rng);
            let func = mold.instantiate(&config);
            let report = analyze::check(&func);
            let context = format!("{} / {config}", mold.name());
            if report.is_rejected() {
                // Soundness of the *diagnostics*: they must point at
                // something real, not a phantom access.
                let names = buffer_names(&func);
                for d in report.denials() {
                    let buf = d.buffer.as_deref().unwrap_or_else(|| {
                        panic!("{context}: denial {} lacks a buffer", d.code)
                    });
                    prop_assert!(
                        names.iter().any(|n| n == buf),
                        "{}: denial names unknown buffer `{}` (have {:?})",
                        context, buf, names
                    );
                }
            } else {
                // Accepted: both engines must run without OOB.
                let mut via_interp = mold.init_args();
                if let Err(e) = interp::execute(&func, &mut via_interp) {
                    prop_assert!(!is_oob(&e), "{}: interp OOB after accept: {}", context, e);
                }
                let cf = compile(&func)
                    .unwrap_or_else(|e| panic!("{context}: accepted config failed to compile: {e}"));
                let mut via_vm = mold.init_args();
                if let Err(e) = vm::execute(&cf, &mut via_vm) {
                    prop_assert!(!is_oob(&e), "{}: VM OOB after accept: {}", context, e);
                }
            }
        }
    }
}

/// The PolyBench molds only emit in-bounds schedules, so the analyzer
/// must accept every configuration it sees from them — a mass-rejection
/// regression here would silently starve the tuner of measurements.
#[test]
fn all_mold_configs_are_accepted() {
    let mut rng = SmallRng::seed_from_u64(7);
    for kernel in KERNELS {
        let mold = mold_for(kernel, ProblemSize::Mini);
        for i in 0..12 {
            let config = if i == 0 {
                mold.space().default_configuration()
            } else {
                mold.space().sample(&mut rng)
            };
            let func = mold.instantiate(&config);
            let report = analyze::check(&func);
            assert!(
                !report.is_rejected(),
                "{} / {config}: legal schedule rejected:\n{}",
                mold.name(),
                report.render_text()
            );
        }
    }
}

/// Hand-broken functions must be rejected, and each denial must name one
/// of the function's real buffers and a concrete access path. The broken
/// function is verified to be *genuinely* broken by running it on the
/// interpreter and demanding an out-of-bounds error — the analyzer and
/// the engine must agree on both sides of the verdict.
#[test]
fn corrupted_kernels_are_rejected_with_real_access_paths() {
    for kernel in KERNELS {
        let mold = mold_for(kernel, ProblemSize::Mini);
        let config = mold.space().default_configuration();
        let func = mold.instantiate(&config);
        let corrupted = shift_store_indices(&func);
        let mut args = mold.init_args();
        match interp::execute(&corrupted, &mut args) {
            Err(e) if is_oob(&e) => {}
            other => panic!(
                "{}: shifted stores should OOB at runtime, got {other:?}",
                mold.name()
            ),
        }
        let report = analyze::check(&corrupted);
        assert!(
            report.is_rejected(),
            "{}: runtime-OOB schedule must be rejected, got:\n{}",
            mold.name(),
            report.render_text()
        );
        let names = buffer_names(&corrupted);
        for d in report.denials() {
            let buf = d.buffer.as_deref().expect("denial carries a buffer");
            assert!(
                names.iter().any(|n| n == buf),
                "{}: denial names unknown buffer `{buf}`",
                mold.name()
            );
            assert!(
                d.access.is_some(),
                "{}: denial lacks an access path",
                mold.name()
            );
        }
    }
}

/// Return a copy of `func` with every store's leading index shifted by
/// one: the last iteration of the surrounding loop then writes one row
/// past the end of the buffer, past any tail guard.
fn shift_store_indices(func: &PrimFunc) -> PrimFunc {
    fn shift(stmt: &Stmt) -> Stmt {
        match stmt {
            Stmt::For {
                var,
                min,
                extent,
                kind,
                body,
            } => Stmt::For {
                var: var.clone(),
                min: *min,
                extent: *extent,
                kind: *kind,
                body: Box::new(shift(body)),
            },
            Stmt::Seq(stmts) => Stmt::Seq(stmts.iter().map(shift).collect()),
            Stmt::IfThenElse { cond, then, else_ } => Stmt::IfThenElse {
                cond: cond.clone(),
                then: Box::new(shift(then)),
                else_: else_.as_ref().map(|e| Box::new(shift(e))),
            },
            Stmt::BufferStore {
                buffer,
                indices,
                value,
            } => {
                let mut indices = indices.clone();
                if let Some(first) = indices.first_mut() {
                    *first = first.clone() + ops::int(1);
                }
                Stmt::BufferStore {
                    buffer: buffer.clone(),
                    indices,
                    value: value.clone(),
                }
            }
            other => other.clone(),
        }
    }
    let mut out = func.clone();
    out.body = shift(&out.body);
    out
}

/// A synthetic parallel reduction (write-write race on the parallel axis)
/// must be denied with a race code, independent of the mold pipeline.
#[test]
fn synthetic_parallel_race_is_denied() {
    // parallel i: C[0] = C[0] + A[i] — the classic reduction race.
    let i = Var::index("i");
    let c = Buffer::new("C", [1usize], DType::F32);
    let a = tvm_te::placeholder([8], DType::F32, "A");
    let c_read = tvm_te::placeholder([1], DType::F32, "C");
    let race = PrimFunc {
        name: "race".into(),
        params: vec![c.clone()],
        allocs: vec![],
        body: Stmt::For {
            var: i.clone(),
            min: 0,
            extent: 8,
            kind: ForKind::Parallel,
            body: Box::new(Stmt::BufferStore {
                buffer: c,
                indices: vec![ops::int(0)],
                value: c_read.at(&[ops::int(0)]) + a.at(&[i.expr()]),
            }),
        },
    };
    let report = analyze::check(&race);
    assert!(report.is_rejected(), "parallel reduction must be denied");
    assert!(
        report
            .denials()
            .any(|d| d.code == analyze::codes::RACE_WW || d.code == analyze::codes::RACE_RW),
        "expected a race code, got:\n{}",
        report.render_text()
    );
}
