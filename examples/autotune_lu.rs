//! Autotune LU end to end with the BO framework proper (`ytopt_bo::run`),
//! exporting the performance database exactly like ytopt's `results.csv`.
//!
//! Run: `cargo run --release --example autotune_lu -- [size] [max_evals]`
//! (size: large | extralarge; default large, 100 evaluations)

use tvm_autotune::bo::{run, BoOptions, Problem};
use tvm_autotune::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size = args
        .get(1)
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Large);
    let max_evals = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let mold = mold_for(KernelName::Lu, size);
    println!(
        "autotuning lu/{size}: space size {}",
        mold.space().size().expect("discrete")
    );
    let device = SimDevice::new(GpuSpec::swing_cpu_core());
    let problem = MoldEvaluator::simulated(mold, device);

    let result = run(
        &problem,
        BoOptions {
            max_evals,
            ..Default::default()
        },
    );

    // Convergence curve (every time the incumbent improves).
    let mut best = f64::INFINITY;
    println!("\n  eval   elapsed(s)   runtime(s)  (improvements only)");
    for t in &result.trials {
        if let Some(r) = t.runtime_s {
            if r < best {
                best = r;
                println!(
                    "{:>6} {:>12.2} {:>12.4}  {}",
                    t.index, t.elapsed_s, r, t.config
                );
            }
        }
    }

    let best = result.best().expect("ran");
    println!(
        "\nbest configuration: {} -> {:.4} s",
        best.config,
        best.runtime_s.expect("ok")
    );
    println!(
        "total autotuning process time: {:.1} s",
        result.total_process_s
    );

    // Persist the performance database (ytopt writes results.csv).
    let db = result.to_database(&format!("lu-{size}"));
    let dir = std::env::temp_dir().join("tvm-autotune");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let csv = dir.join("results.csv");
    let json = dir.join("results.json");
    db.save_csv(&csv).expect("csv");
    db.save_json(&json).expect("json");
    println!(
        "performance database written to {} and {}",
        csv.display(),
        json.display()
    );
    println!("Problem::name() = {}", Problem::name(&problem));
}
