//! The paper's §5 head-to-head at example scale: all five tuners on one
//! kernel, printed like Figures 5/7/9/11/13.
//!
//! Run: `cargo run --release --example compare_tuners -- [kernel] [size] [evals]`
//! (defaults: cholesky large 50)

use tvm_autotune::autotvm::{GaTuner, GridSearchTuner, RandomTuner, XgbTuner};
use tvm_autotune::prelude::*;

fn evaluator(kernel: KernelName, size: ProblemSize, repeats: usize) -> MoldEvaluator {
    let mold = mold_for(kernel, size);
    MoldEvaluator::simulated(mold, SimDevice::new(GpuSpec::swing_cpu_core())).with_repeats(repeats)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = args
        .get(1)
        .and_then(|s| KernelName::parse(s))
        .unwrap_or(KernelName::Cholesky);
    let size = args
        .get(2)
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Large);
    let max_evals = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);

    let space = tvm_autotune::polybench::spaces::space_for(kernel, size);
    println!(
        "comparing 5 tuners on {kernel}/{size} (space {}, {max_evals} evaluations)\n",
        space.size().expect("discrete")
    );

    let opts = TuneOptions {
        max_evals,
        batch: 8,
        max_process_s: None,
    };
    let bo_opts = TuneOptions { batch: 1, ..opts };

    let mut results: Vec<TuningResult> = Vec::new();
    // AutoTVM measures each candidate 3 times; ytopt evaluates once.
    let ev = evaluator(kernel, size, 3);
    results.push(tune(&mut GaTuner::new(space.clone(), 7), &ev, opts));
    results.push(tune(&mut RandomTuner::new(space.clone(), 7), &ev, opts));
    results.push(tune(&mut GridSearchTuner::new(space.clone()), &ev, opts));
    results.push(tune(&mut XgbTuner::new(space.clone(), 7), &ev, opts));
    let ev1 = evaluator(kernel, size, 1);
    results.push(tune(&mut YtoptTuner::new(space, 7), &ev1, bo_opts));

    println!(
        "{:<20} {:>6} {:>12} {:>14} {:>18}",
        "tuner", "evals", "best (s)", "process (s)", "best tensor size"
    );
    for r in &results {
        let best = r.best().expect("ran");
        let cfg = best
            .config
            .ints()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("x");
        println!(
            "{:<20} {:>6} {:>12.4} {:>14.2} {:>18}",
            r.tuner,
            r.len(),
            best.runtime_s.expect("ok"),
            r.total_process_s,
            cfg
        );
    }

    let fastest = results
        .iter()
        .min_by(|a, b| {
            a.total_process_s
                .partial_cmp(&b.total_process_s)
                .expect("finite")
        })
        .expect("nonempty");
    println!("\nsmallest autotuning process time: {}", fastest.tuner);
}
