//! Quickstart: write a kernel in the TE DSL, schedule it, lower it, run
//! it on the CPU — then autotune a PolyBench kernel with the BO framework
//! on the simulated Swing device.
//!
//! Run: `cargo run --release --example quickstart`

use tvm_autotune::prelude::*;

fn main() {
    // ---- Part 1: the mini-TVM pipeline on a hand-written kernel ----
    let n = 64usize;
    let a = placeholder([n, n], DType::F32, "A");
    let b = placeholder([n, n], DType::F32, "B");
    let k = reduce_axis(0, n as i64, "k");
    let c = compute([n, n], "C", |i| {
        sum(
            a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
            std::slice::from_ref(&k),
        )
    });

    // The paper's schedule pattern: split y/x by a tile factor, reorder.
    let mut s = Schedule::create(std::slice::from_ref(&c));
    let (y, x) = (c.axis(0), c.axis(1));
    let (yo, yi) = s.split(&c, &y, 8);
    let (xo, xi) = s.split(&c, &x, 8);
    s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);

    let module = Module::new(lower(&s, &[a, b, c], "matmul_tiled"));
    println!("lowered function:\n{}", module.func());

    let mut args = module.alloc_args();
    args[0] = NDArray::random(&[n, n], DType::F32, 1, -1.0, 1.0);
    args[1] = NDArray::random(&[n, n], DType::F32, 2, -1.0, 1.0);
    let t = module.time(&mut args, 3).expect("cpu run");
    println!("matmul {n}x{n} on the CPU interpreter: {:.3} ms", t * 1e3);
    println!("C[0][0] = {:.6}\n", args[2].get(&[0, 0]));

    // ---- Part 2: autotune LU (large, N=2000) with Bayesian optimization
    // on the simulated Swing node, 40 evaluations ----
    let mold = mold_for(KernelName::Lu, ProblemSize::Large);
    println!(
        "tuning `{}` ({} configurations in the space) ...",
        mold.name(),
        mold.space().size().expect("discrete")
    );
    let device = SimDevice::new(GpuSpec::swing_cpu_core());
    let evaluator = MoldEvaluator::simulated(mold, device);
    let mut tuner = YtoptTuner::new(evaluator.space().clone(), 42);
    let result = tune(
        &mut tuner,
        &evaluator,
        TuneOptions {
            max_evals: 40,
            batch: 1,
            max_process_s: None,
        },
    );

    let best = result.best().expect("tuning ran");
    println!(
        "best after {} evaluations: tiles {} -> {:.4} s (simulated)",
        result.len(),
        best.config,
        best.runtime_s.expect("ok")
    );
    println!(
        "total autotuning process time: {:.1} s (simulated measurement + real search time)",
        result.total_process_s
    );
}
