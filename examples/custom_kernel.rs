//! Tune a *user-defined* kernel — the framework is generic over
//! [`tvm_autotune::bo::Problem`], not tied to the paper's three
//! benchmarks (one of the paper's future-work directions).
//!
//! The kernel is a 2-D 5-point Jacobi-style stencil written in the TE
//! DSL, with two tile factors and an unroll switch as tunables; the
//! evaluation really executes on the CPU interpreter.
//!
//! Run: `cargo run --release --example custom_kernel`

use std::time::Instant;
use tvm_autotune::bo::problem::{Evaluation, FnProblem};
use tvm_autotune::bo::{run, BoOptions};
use tvm_autotune::prelude::*;
use tvm_autotune::te::ops::cmp;
use tvm_autotune::te::select;

const N: usize = 96;

/// Build the stencil with the given schedule decisions.
fn build_stencil(tile_y: i64, tile_x: i64, unroll_inner: bool) -> Module {
    let a = placeholder([N, N], DType::F32, "A");
    let b = compute([N, N], "B", |idx| {
        let (i, j) = (idx[0].clone(), idx[1].clone());
        let interior = cmp::and(
            cmp::and(cmp::ge(i.clone(), 1i64), cmp::lt(i.clone(), (N - 1) as i64)),
            cmp::and(cmp::ge(j.clone(), 1i64), cmp::lt(j.clone(), (N - 1) as i64)),
        );
        let center = a.at(&[i.clone(), j.clone()]);
        let sum5 = a.at(&[i.clone() - 1, j.clone()])
            + a.at(&[i.clone() + 1, j.clone()])
            + a.at(&[i.clone(), j.clone() - 1])
            + a.at(&[i.clone(), j.clone() + 1])
            + center.clone();
        // 0.2 * 5-point average in the interior; copy on the boundary.
        select(interior, sum5 * PrimExprF32(0.2), center)
    });
    let mut s = Schedule::create(std::slice::from_ref(&b));
    let (y, x) = (b.axis(0), b.axis(1));
    let (yo, yi) = s.split(&b, &y, tile_y);
    let (xo, xi) = s.split(&b, &x, tile_x);
    s.reorder(&b, &[yo, xo, yi, xi.clone()]);
    if unroll_inner {
        s.unroll(&b, &xi);
    }
    Module::new(lower(&s, &[a, b], "jacobi5"))
}

#[allow(non_snake_case)]
fn PrimExprF32(v: f64) -> tvm_autotune::te::PrimExpr {
    tvm_autotune::te::PrimExpr::FloatImm(v, DType::F32)
}

fn main() {
    // Tunables: tile_y, tile_x over divisors of N, plus an unroll toggle.
    let divisors: Vec<i64> = (1..=N as i64).filter(|d| N as i64 % d == 0).collect();
    let mut cs = ConfigSpace::new();
    cs.add(Hyperparameter::ordinal_ints("tile_y", &divisors));
    cs.add(Hyperparameter::ordinal_ints("tile_x", &divisors));
    cs.add(Hyperparameter::categorical_strs("unroll", &["no", "yes"]));
    println!(
        "custom stencil kernel, space size {}",
        cs.size().expect("discrete")
    );

    let input = NDArray::random(&[N, N], DType::F32, 9, 0.0, 1.0);
    let tuning_input = input.clone();
    let problem = FnProblem::new(cs, move |cfg: &Configuration| {
        let unroll = cfg
            .get("unroll")
            .and_then(|v| v.as_str().map(|s| s == "yes"));
        let module = build_stencil(
            cfg.int("tile_y"),
            cfg.int("tile_x"),
            unroll.unwrap_or(false),
        );
        let t0 = Instant::now();
        let mut args = vec![tuning_input.clone(), NDArray::zeros(&[N, N], DType::F32)];
        match module.time(&mut args, 3) {
            Ok(t) => Evaluation::ok(t, t0.elapsed().as_secs_f64()),
            Err(e) => Evaluation::fail(e.to_string(), t0.elapsed().as_secs_f64()),
        }
    })
    .with_name("jacobi5");

    let result = run(
        &problem,
        BoOptions {
            max_evals: 25,
            ..Default::default()
        },
    );
    let best = result.best().expect("ran");
    println!(
        "best schedule after {} evaluations: {} -> {:.3} ms per run",
        result.len(),
        best.config,
        best.runtime_s.expect("ok") * 1e3
    );

    // Sanity: result must equal the untiled reference.
    let module = build_stencil(best.config.int("tile_y"), best.config.int("tile_x"), false);
    let mut args = vec![input.clone(), NDArray::zeros(&[N, N], DType::F32)];
    module.run(&mut args).expect("run");
    let reference = build_stencil(1, 1, false);
    let mut ref_args = vec![input, NDArray::zeros(&[N, N], DType::F32)];
    reference.run(&mut ref_args).expect("run");
    assert!(
        args[1].allclose(&ref_args[1], 1e-5, 1e-6),
        "tuned schedule must not change results"
    );
    println!("verified: tuned schedule produces identical results");
}
