//! Inspect the analytical device model: sweep tile sizes of a blocked
//! matmul across three simulated devices (A100, V100, one EPYC core) and
//! print the modeled runtime landscape plus the cost breakdown of one
//! configuration.
//!
//! Run: `cargo run --release --example gpu_cost_model`

use tvm_autotune::prelude::*;
use tvm_autotune::sim::cost_model;
use tvm_autotune::tir::PrimFunc;

fn tiled_matmul(n: usize, ty: i64, tx: i64) -> PrimFunc {
    let a = placeholder([n, n], DType::F32, "A");
    let b = placeholder([n, n], DType::F32, "B");
    let k = reduce_axis(0, n as i64, "k");
    let c = compute([n, n], "C", |i| {
        sum(
            a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
            std::slice::from_ref(&k),
        )
    });
    let mut s = Schedule::create(std::slice::from_ref(&c));
    let (y, x) = (c.axis(0), c.axis(1));
    let (yo, yi) = s.split(&c, &y, ty);
    let (xo, xi) = s.split(&c, &x, tx);
    s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);
    lower(&s, &[a, b, c], "mm")
}

fn main() {
    let n = 2048usize;
    let tiles: [i64; 6] = [1, 8, 32, 128, 512, 2048];
    let devices = [GpuSpec::a100(), GpuSpec::v100(), GpuSpec::swing_cpu_core()];

    for spec in &devices {
        println!("== {} ==", spec.name);
        print!("{:>8}", "ty\\tx");
        for &tx in &tiles {
            print!(" {tx:>9}");
        }
        println!();
        for &ty in &tiles {
            print!("{ty:>8}");
            for &tx in &tiles {
                let f = tiled_matmul(n, ty, tx);
                let t = cost_model(&f, spec).total();
                print!(" {:>8.2}ms", t * 1e3);
            }
            println!();
        }
        println!();
    }

    // Detailed breakdown of one configuration on the A100.
    let f = tiled_matmul(n, 32, 32);
    let cb = cost_model(&f, &GpuSpec::a100());
    println!("breakdown of 32x32 tiles on A100 (per lowered statement):");
    for (i, s) in cb.stmts.iter().enumerate() {
        println!(
            "  stmt {i}: compute {:.3} ms, L2 {:.3} ms, DRAM {:.3} ms, overhead {:.3} ms \
             ({} blocks x {} threads, {} launches)",
            s.compute_s * 1e3,
            s.l2_s * 1e3,
            s.dram_s * 1e3,
            s.overhead_s * 1e3,
            s.blocks,
            s.threads_per_block,
            s.launches
        );
    }
    println!("total: {:.3} ms", cb.total() * 1e3);
}
