//! ytopt → AutoTVM adapter: the paper's Figure 3, as a type.
//!
//! The proposed framework "basically replaces the autotuning modules
//! [of Figure 1] with the ytopt module". [`YtoptTuner`] does exactly
//! that: it exposes the Bayesian-optimization search through AutoTVM's
//! `Tuner` interface, so the same measure loop drives all five
//! strategies the paper compares.

use autotvm::measure::MeasureResult;
use autotvm::tuner::Tuner;
use configspace::{ConfigSpace, Configuration};
use ytopt_bo::search::{BayesianOptimizer, SearchConfig};

/// The BO search behind the AutoTVM `Tuner` interface.
pub struct YtoptTuner {
    bo: BayesianOptimizer,
}

impl YtoptTuner {
    /// New tuner with ytopt defaults (RF surrogate, LCB κ = 1.96).
    pub fn new(space: ConfigSpace, seed: u64) -> YtoptTuner {
        YtoptTuner {
            bo: BayesianOptimizer::new(
                space,
                SearchConfig {
                    seed,
                    ..Default::default()
                },
            ),
        }
    }

    /// New tuner with explicit search knobs (used by the ablations).
    pub fn with_config(space: ConfigSpace, cfg: SearchConfig) -> YtoptTuner {
        YtoptTuner {
            bo: BayesianOptimizer::new(space, cfg),
        }
    }

    /// Borrow the underlying optimizer (incumbent inspection).
    pub fn optimizer(&self) -> &BayesianOptimizer {
        &self.bo
    }
}

impl Tuner for YtoptTuner {
    fn name(&self) -> &str {
        "ytopt"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Configuration> {
        if n == 1 {
            self.bo.ask().into_iter().collect()
        } else {
            self.bo.ask_batch(n)
        }
    }

    fn update(&mut self, results: &[(Configuration, MeasureResult)]) {
        for (cfg, res) in results {
            self.bo.tell(cfg, res.runtime_s);
        }
    }

    fn has_next(&self) -> bool {
        !self.bo.is_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotvm::{tune, TuneOptions};
    use configspace::Hyperparameter;

    fn space() -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=16).collect::<Vec<i64>>(),
        ));
        cs.add(Hyperparameter::ordinal_ints(
            "P1",
            &(1..=16).collect::<Vec<i64>>(),
        ));
        cs
    }

    #[test]
    fn drives_through_autotvm_interface() {
        let ev = autotvm::measure::FnEvaluator::new(space(), |c| {
            let r = 1.0
                + 0.2 * ((c.int("P0") - 11) as f64).powi(2)
                + 0.2 * ((c.int("P1") - 6) as f64).powi(2);
            MeasureResult::ok(r, r)
        });
        let mut t = YtoptTuner::new(space(), 3);
        let res = tune(
            &mut t,
            &ev,
            TuneOptions {
                max_evals: 60,
                batch: 1,
                max_process_s: None,
            },
        );
        assert_eq!(res.tuner, "ytopt");
        assert_eq!(res.len(), 60);
        let best = res.best().expect("best").runtime_s.expect("ok");
        assert!(
            best < 1.5,
            "BO through the adapter should converge, got {best}"
        );
        let (inc, inc_y) = t.optimizer().incumbent().expect("incumbent");
        assert_eq!(Some(inc_y), res.best().expect("best").runtime_s);
        assert_eq!(inc.len(), 2);
    }

    #[test]
    fn exhausts_finite_space() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 3]));
        let ev = autotvm::measure::FnEvaluator::new(cs.clone(), |c| {
            MeasureResult::ok(c.int("P0") as f64, 0.1)
        });
        let mut t = YtoptTuner::new(cs, 1);
        let res = tune(&mut t, &ev, TuneOptions::default());
        assert_eq!(res.len(), 3);
        assert!(!t.has_next());
    }
}
