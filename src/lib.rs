#![warn(missing_docs)]
//! # tvm-autotune — autotuning TVM-style scientific kernels with Bayesian optimization
//!
//! A Rust reproduction of *"Autotuning Apache TVM-based Scientific
//! Applications Using Bayesian Optimization"* (Wu, Paramasivam, Taylor;
//! SC 2023 workshops), built from scratch:
//!
//! | Paper component | Crate |
//! |---|---|
//! | TVM tensor-expression language + schedules | [`te`] |
//! | TVM lowering, TIR, passes | [`tir`] |
//! | TVM runtime (tensors, CPU interpreter) | [`runtime`] |
//! | Swing cluster (NVIDIA A100) | [`sim`] — analytical device model |
//! | PolyBench 4.2 kernels (3mm, LU, Cholesky, …) | [`polybench`] |
//! | ConfigSpace | [`configspace`] |
//! | scikit-learn RF / XGBoost | [`surrogate`] |
//! | AutoTVM (Random/GridSearch/GA/XGB tuners) | [`autotvm`] |
//! | ytopt (RF surrogate + LCB Bayesian optimization) | [`bo`] |
//!
//! This umbrella crate re-exports everything and adds the two glue types
//! the experiments are built on:
//!
//! * [`MoldEvaluator`] — measures a PolyBench code mold on a device with
//!   the paper's process-time accounting (instantiate + build +
//!   transfer + repeated runs); implements both the AutoTVM
//!   [`autotvm::Evaluator`] and the ytopt [`bo::Problem`] interfaces,
//! * [`YtoptTuner`] — exposes the BO search through the AutoTVM `Tuner`
//!   interface, literally "replacing the autotuning module" as Figure 3
//!   of the paper describes, so one driver runs all five strategies.
//!
//! ## Quickstart
//!
//! ```
//! use tvm_autotune::{MoldEvaluator, YtoptTuner};
//! use tvm_autotune::polybench::{molds::mold_for, KernelName, ProblemSize};
//! use tvm_autotune::sim::{GpuSpec, SimDevice};
//! use tvm_autotune::autotvm::{tune, Tuner, TuneOptions};
//!
//! let mold = mold_for(KernelName::Lu, ProblemSize::Large);
//! let dev = SimDevice::new(GpuSpec::a100());
//! let eval = MoldEvaluator::simulated(mold, dev);
//! let mut tuner = YtoptTuner::new(eval.space().clone(), 42);
//! let result = tune(&mut tuner, &eval, TuneOptions { max_evals: 20, ..Default::default() });
//! assert_eq!(result.len(), 20);
//! assert!(result.best().is_some());
//! ```

pub use autotvm;
pub use configspace;
pub use gpu_sim as sim;
pub use polybench;
pub use surrogate;
pub use tvm_runtime as runtime;
pub use tvm_te as te;
pub use tvm_tir as tir;
pub use ytopt_bo as bo;

mod adapter;
mod evaluator;

pub use adapter::YtoptTuner;
pub use evaluator::{EvalMode, MemoCache, MoldEvaluator};

/// Convenient glob import for examples and downstream users.
pub mod prelude {
    pub use crate::adapter::YtoptTuner;
    pub use crate::evaluator::{EvalMode, MemoCache, MoldEvaluator};
    pub use autotvm::{
        resume_from_journal, tune, tune_journaled, tune_parallel, CacheStats, Evaluator,
        FaultInjector, FaultPlan, GaTuner, GridSearchTuner, HarnessOptions, HarnessedEvaluator,
        MeasureError, MeasureResult, RandomTuner, RetryPolicy, TuneOptions, Tuner, TuningResult,
        XgbTuner,
    };
    pub use configspace::{ConfigSpace, Configuration, Hyperparameter, ParamValue};
    pub use gpu_sim::{GpuSpec, SimDevice};
    pub use polybench::{
        molds::{mold_for, mold_for_mode},
        CodeMold, KernelName, ProblemSize, SpaceMode,
    };
    pub use tvm_runtime::{CpuDevice, Device, Module, NDArray};
    pub use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule};
    pub use tvm_tir::lower::lower;
    pub use ytopt_bo::{BoOptions, Problem, TrialJournal, TrialRecord};
}
