//! The mold evaluator: configuration → instantiate → build → run,
//! with the paper's process-time accounting.

use autotvm::measure::{Evaluator, MeasureError, MeasureResult};
use configspace::{ConfigSpace, Configuration};
use polybench::molds::CodeMold;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tvm_runtime::{CompiledFunc, Device, NDArray};
use tvm_tir::analyze::{Diagnostic, PruneReport, PruneStage, Severity, Verdict};
use tvm_tir::PrimFunc;
use ytopt_bo::problem::{
    CacheStats, Evaluation, JitStats, ParStats, Problem, PruneStats, SimdStats, StaticCheckStats,
};

/// Modeled host↔device transfer bandwidth (PCIe 4.0 ×16), bytes/s.
const TRANSFER_BW: f64 = 16e9;

/// How argument data is handled per evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Analytical device: runtime is modeled from the lowered function;
    /// no data is allocated (the paper-scale experiments).
    Simulated,
    /// Real execution: arrays are initialized and the kernel actually
    /// runs on the device (correctness runs, CPU examples).
    Real,
}

/// A cached static rejection: which pipeline stage denied the config and
/// the diagnostics justifying it, so batch pruning can replay the full
/// verdict and the error message stays stable across replays.
struct Rejection {
    stage: PruneStage,
    summary: String,
    diagnostics: Vec<Diagnostic>,
}

/// One memoized lowering: the instantiated function, its (modeled or
/// real) build cost, and the device's compiled artifact when it has one.
/// Statically rejected configs cache the verdict instead of a build —
/// prelint denials never even instantiate, so `func` is `None` there —
/// and every re-proposal replays the rejection without re-analysis.
struct CacheEntry {
    func: Option<PrimFunc>,
    build_s: f64,
    prepared: Option<Arc<CompiledFunc>>,
    reject: Option<Rejection>,
}

/// Process-wide lowering + compilation memo cache, shareable across
/// evaluators and tuning sessions.
///
/// Keys already fold in the kernel name, problem size, configuration and
/// the device's pipeline fingerprint (see [`MoldEvaluator::cache_key`]'s
/// doc), so one cache can safely serve many concurrent sessions tuning
/// different kernels on different engines: distinct workloads can never
/// collide, and a pipeline change can never replay a stale artifact.
/// Every [`MoldEvaluator`] gets a private cache by default; pass one
/// [`Arc<MemoCache>`] to several evaluators via
/// [`MoldEvaluator::with_cache`] to share builds across them — the
/// multi-tenant tuning service does exactly that and surfaces the
/// aggregate counters through its status endpoint.
#[derive(Default)]
pub struct MemoCache {
    entries: Mutex<HashMap<u64, Arc<CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoCache {
    /// Fresh, empty cache.
    pub fn new() -> MemoCache {
        MemoCache::default()
    }

    /// Aggregate hit/miss counters across every evaluator using this
    /// cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized lowerings.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup, counting a hit on success.
    fn get(&self, key: u64) -> Option<Arc<CacheEntry>> {
        let found = self.entries.lock().expect("cache lock").get(&key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Insert a freshly computed entry, counting the miss that led here.
    fn insert(&self, key: u64, entry: Arc<CacheEntry>) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().expect("cache lock").insert(key, entry);
    }
}

/// Measures configurations of one code mold on one device.
///
/// Process time per evaluation = mold instantiation (real wall clock) +
/// modeled/real build cost + one data transfer + `repeats` timed runs —
/// the ingredients of the paper's "overall autotuning process time".
///
/// After instantiation — and before any compilation or measurement —
/// the lowered function passes through the static schedule-safety
/// analyzer ([`tvm_tir::analyze`]). A `Deny` verdict short-circuits the
/// evaluation into [`MeasureError::StaticReject`], charged only the
/// analysis time; accept/reject counters are surfaced through
/// [`Evaluator::static_check_stats`] next to the cache counters.
///
/// Lowering and compilation are memoized per `(kernel, size, config)`
/// hash: repeated proposals (GridSearch revisits, GA duplicates, repeated
/// measurement) reuse the cached [`PrimFunc`] and compiled artifact and
/// skip both re-lowering and the build cost. Hit/miss counters are
/// surfaced through [`Evaluator::cache_stats`]/[`Problem::cache_stats`]
/// into tuning results.
///
/// All interior state is behind a `Mutex`/atomics, so one evaluator can
/// be shared by the parallel measurement drivers (`tune_parallel`,
/// `run_parallel`).
pub struct MoldEvaluator {
    mold: Box<dyn CodeMold>,
    device: Box<dyn Device>,
    mode: EvalMode,
    /// Timed runs per evaluation (AutoTVM measures multiple times; ytopt
    /// evaluates once).
    pub repeats: usize,
    cache: Arc<MemoCache>,
    accepted: AtomicU64,
    rejected: AtomicU64,
    prelint_denied: AtomicU64,
    denied_by_code: Mutex<HashMap<String, u64>>,
}

impl MoldEvaluator {
    /// Evaluator over the analytical device (no data allocation).
    pub fn simulated(mold: Box<dyn CodeMold>, device: impl Device + 'static) -> MoldEvaluator {
        MoldEvaluator {
            mold,
            device: Box::new(device),
            mode: EvalMode::Simulated,
            repeats: 1,
            cache: Arc::new(MemoCache::new()),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            prelint_denied: AtomicU64::new(0),
            denied_by_code: Mutex::new(HashMap::new()),
        }
    }

    /// Evaluator that really executes kernels (compiled VM on the CPU
    /// device, interpreter fallback).
    pub fn real(mold: Box<dyn CodeMold>, device: impl Device + 'static) -> MoldEvaluator {
        MoldEvaluator {
            mold,
            device: Box::new(device),
            mode: EvalMode::Real,
            repeats: 1,
            cache: Arc::new(MemoCache::new()),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            prelint_denied: AtomicU64::new(0),
            denied_by_code: Mutex::new(HashMap::new()),
        }
    }

    /// Builder: timed runs per evaluation.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Builder: share a process-wide [`MemoCache`] instead of the private
    /// per-evaluator one. Safe across kernels, sizes and engines because
    /// all of them are folded into the memo key.
    pub fn with_cache(mut self, cache: Arc<MemoCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The underlying mold.
    pub fn mold(&self) -> &dyn CodeMold {
        self.mold.as_ref()
    }

    /// The tuning space (inherent method so callers need not disambiguate
    /// between the `Evaluator` and `Problem` trait impls).
    pub fn space(&self) -> &ConfigSpace {
        self.mold.space()
    }

    /// Workload id for records, e.g. `"lu-large"`.
    pub fn workload(&self) -> String {
        format!("{}-{}", self.mold.name(), self.mold.size())
    }

    /// Snapshot of the memo cache's hit/miss counters. With a shared
    /// [`MemoCache`] these are the *aggregate* counters across every
    /// evaluator on that cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot of the static analyzer's accept/reject counters (one
    /// count per analyzed config, i.e. per cache miss).
    pub fn static_check_stats(&self) -> StaticCheckStats {
        StaticCheckStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the device's native-codegen counters, when the device
    /// runs a JIT rung (`None` for every other engine). Converted from
    /// the runtime's counter type into the serializable mirror the
    /// tuning/service layers report.
    pub fn jit_stats(&self) -> Option<JitStats> {
        self.device.jit_stats().map(|s| JitStats {
            functions_jitted: s.functions_jitted,
            nests_compiled: s.nests_compiled,
            bytes_emitted: s.bytes_emitted,
            fallbacks: s.fallbacks,
            fallback_reasons: s.fallback_reasons,
        })
    }

    /// Snapshot of the device's multicore-dispatch counters, when the
    /// device runs `Parallel` loops on a worker pool (`None` for the
    /// interpreter and scalar-VM engines). Converted from the runtime's
    /// counter type into the serializable mirror the tuning/service
    /// layers report.
    pub fn par_stats(&self) -> Option<ParStats> {
        self.device.par_stats().map(|s| ParStats {
            loops_proven: s.loops_proven,
            loops_unproven: s.loops_unproven,
            dispatches: s.dispatches,
            fallbacks: s.fallbacks,
            fallback_reasons: s.fallback_reasons,
            pool_threads: s.pool_threads,
            threads_spawned: s.threads_spawned,
        })
    }

    /// Snapshot of the device's packed-SIMD emission counters, when the
    /// device runs a vectorizing codegen rung (`None` for every other
    /// engine). Converted from the runtime's counter type into the
    /// serializable mirror the tuning/service layers report.
    pub fn simd_stats(&self) -> Option<SimdStats> {
        self.device.simd_stats().map(|s| SimdStats {
            packed_loops: s.packed_loops,
            tiled_loops: s.tiled_loops,
            scalar_loops: s.scalar_loops,
            f64_lanes: u64::from(s.f64_lanes),
            f32_lanes: u64::from(s.f32_lanes),
            scalar_reasons: s.scalar_reasons,
        })
    }

    /// Memo key: hash of (kernel, problem size, configuration, and the
    /// device's compile-pipeline fingerprint). Including the fingerprint
    /// means a pipeline change can never replay a stale cached build.
    fn cache_key(&self, config: &Configuration) -> u64 {
        let mut h = DefaultHasher::new();
        self.mold.name().hash(&mut h);
        self.mold.size().to_string().hash(&mut h);
        config.key().hash(&mut h);
        self.device.fingerprint().hash(&mut h);
        h.finish()
    }

    /// Count one denial into the lifetime pruning counters (called
    /// exactly once per denied config, at reject-entry insertion — cache
    /// replays never recount).
    fn count_denial(&self, stage: PruneStage, diagnostics: &[Diagnostic]) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        if stage == PruneStage::Prelint {
            self.prelint_denied.fetch_add(1, Ordering::Relaxed);
        }
        let mut codes: Vec<&str> = diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.code)
            .collect();
        codes.sort_unstable();
        codes.dedup();
        let mut by_code = self.denied_by_code.lock().expect("prune counters lock");
        for code in codes {
            *by_code.entry(code.to_string()).or_insert(0) += 1;
        }
    }

    /// Run the static gate on an uncached config: the cheap pre-lowering
    /// legality prelint first (denied configs are never instantiated),
    /// then the full analyzer over the lowered function. Returns the
    /// rejection to cache, or the admitted function.
    fn static_gate(&self, config: &Configuration) -> Result<PrimFunc, CacheEntry> {
        let lint = self.mold.prelint(config);
        if lint.iter().any(|d| d.severity == Severity::Deny) {
            let summary = tvm_tir::analyze::AnalysisReport {
                function: self.mold.name().to_string(),
                diagnostics: lint.clone(),
            }
            .reject_summary();
            self.count_denial(PruneStage::Prelint, &lint);
            return Err(CacheEntry {
                func: None,
                build_s: 0.0,
                prepared: None,
                reject: Some(Rejection {
                    stage: PruneStage::Prelint,
                    summary,
                    diagnostics: lint,
                }),
            });
        }
        let func = self.mold.instantiate(config);
        let report = tvm_tir::analyze::check(&func);
        if report.is_rejected() {
            let summary = report.reject_summary();
            self.count_denial(PruneStage::Analysis, &report.diagnostics);
            return Err(CacheEntry {
                func: Some(func),
                build_s: 0.0,
                prepared: None,
                reject: Some(Rejection {
                    stage: PruneStage::Analysis,
                    summary,
                    diagnostics: report.diagnostics,
                }),
            });
        }
        Ok(func)
    }

    /// Cached lowering for `config`: prelint + instantiate + analyze +
    /// build-cost + compile on the first request, a map lookup afterwards.
    fn lower_cached(&self, config: &Configuration) -> (Arc<CacheEntry>, bool) {
        let key = self.cache_key(config);
        if let Some(entry) = self.cache.get(key) {
            return (entry, true);
        }
        let entry = match self.static_gate(config) {
            Err(reject) => Arc::new(reject),
            Ok(func) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                let build_s = self.device.build_cost(&func);
                let prepared = self.device.prepare(&func);
                Arc::new(CacheEntry {
                    func: Some(func),
                    build_s,
                    prepared,
                    reject: None,
                })
            }
        };
        self.cache.insert(key, Arc::clone(&entry));
        (entry, false)
    }

    /// Statically filter a batch of candidates before any compilation or
    /// measurement: per config, the prelint runs first (denied schedules
    /// are never instantiated), then the full analyzer. Denials are
    /// cached so the later `evaluate` replays the verdict; admitted
    /// candidates are *not* cached here — the evaluation's cache miss
    /// still pays (and accounts) the lowering and build.
    pub fn prune(&self, batch: &[Configuration]) -> PruneReport {
        let mut report = PruneReport::default();
        for config in batch {
            let key = self.cache_key(config);
            if let Some(entry) = self.cache.get(key) {
                match &entry.reject {
                    Some(r) => report.deny(r.stage, r.diagnostics.clone()),
                    None => report.admit(),
                }
                continue;
            }
            match self.static_gate(config) {
                Err(reject) => {
                    let r = reject.reject.as_ref().expect("static_gate rejection");
                    report.deny(r.stage, r.diagnostics.clone());
                    self.cache.insert(key, Arc::new(reject));
                }
                Ok(_) => report.admit(),
            }
        }
        report
    }

    /// The batch verdicts as the trait-level admission mask: `None` for
    /// admitted candidates, `Some(message)` for denied ones — the exact
    /// `StaticReject` message `evaluate` replays, so pre-filtered trial
    /// streams are byte-identical to evaluated ones.
    fn prune_mask(&self, batch: &[Configuration]) -> Vec<Option<String>> {
        self.prune(batch)
            .verdicts
            .into_iter()
            .map(|v| match v {
                Verdict::Admit => None,
                Verdict::Deny { diagnostics, .. } => {
                    let summary = tvm_tir::analyze::AnalysisReport {
                        function: self.mold.name().to_string(),
                        diagnostics,
                    }
                    .reject_summary();
                    Some(format!("statically rejected: {summary}"))
                }
            })
            .collect()
    }

    /// Snapshot of the lifetime pruning counters: admitted = configs
    /// that passed the full gate at evaluation time, denials split by
    /// pipeline stage with per-code counts.
    pub fn prune_stats(&self) -> PruneStats {
        let rejected = self.rejected.load(Ordering::Relaxed);
        let prelint_denied = self.prelint_denied.load(Ordering::Relaxed);
        let mut denied_by_code: Vec<(String, u64)> = self
            .denied_by_code
            .lock()
            .expect("prune counters lock")
            .iter()
            .map(|(c, n)| (c.clone(), *n))
            .collect();
        denied_by_code.sort();
        PruneStats {
            admitted: self.accepted.load(Ordering::Relaxed),
            prelint_denied,
            analyzer_denied: rejected - prelint_denied,
            denied_by_code,
        }
    }

    fn measure(&self, config: &Configuration) -> MeasureResult {
        let t0 = Instant::now();
        if !self.mold.space().validate(config) {
            return MeasureResult::fail(
                MeasureError::InvalidSchedule(format!("configuration {config} not in space")),
                t0.elapsed().as_secs_f64(),
            );
        }
        let (entry, cache_hit) = self.lower_cached(config);
        // Real wall clock of this evaluation's lowering work: the full
        // instantiate + static analysis on a miss, a map lookup on a hit.
        let instantiate_s = t0.elapsed().as_secs_f64();
        if let Some(rejection) = &entry.reject {
            // Rejected before compilation: only analysis time is charged.
            return MeasureResult::fail(
                MeasureError::StaticReject(format!("statically rejected: {}", rejection.summary)),
                instantiate_s,
            );
        }
        // The build cost is paid once; cache hits reuse the artifact.
        let build_s = if cache_hit { 0.0 } else { entry.build_s };
        let func = entry
            .func
            .as_ref()
            .expect("admitted cache entry carries its lowered function");
        let transfer_bytes: usize = func.params.iter().map(|b| b.size_bytes()).sum();
        let transfer_s = transfer_bytes as f64 / TRANSFER_BW;

        let mut best = f64::INFINITY;
        let mut process = instantiate_s + build_s + transfer_s;
        for _ in 0..self.repeats {
            let run = match self.mode {
                EvalMode::Simulated => {
                    let mut no_args: [NDArray; 0] = [];
                    self.device.run(func, &mut no_args)
                }
                EvalMode::Real => {
                    let mut args = self.mold.init_args();
                    match entry.prepared.as_deref() {
                        // Compiled once per configuration; every repeat
                        // (and every cache hit) reuses the artifact.
                        Some(prepared) => self.device.run_prepared(prepared, &mut args),
                        None => self.device.run(func, &mut args),
                    }
                }
            };
            match run {
                Ok(t) => {
                    best = best.min(t);
                    process += t;
                }
                Err(e) => {
                    // Classify the device's free-form error into the
                    // taxonomy (e.g. an injected "transient device fault"
                    // becomes retryable for the harness).
                    return MeasureResult::fail(MeasureError::classify(e.to_string()), process);
                }
            }
        }
        MeasureResult::ok(best, process)
    }
}

impl Evaluator for MoldEvaluator {
    fn space(&self) -> &ConfigSpace {
        self.mold.space()
    }

    fn evaluate(&self, config: &Configuration) -> MeasureResult {
        self.measure(config)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(MoldEvaluator::cache_stats(self))
    }

    fn static_check_stats(&self) -> Option<StaticCheckStats> {
        Some(MoldEvaluator::static_check_stats(self))
    }

    fn pipeline_fingerprint(&self) -> Option<String> {
        self.device.fingerprint()
    }

    fn jit_stats(&self) -> Option<JitStats> {
        MoldEvaluator::jit_stats(self)
    }

    fn par_stats(&self) -> Option<ParStats> {
        MoldEvaluator::par_stats(self)
    }

    fn simd_stats(&self) -> Option<SimdStats> {
        MoldEvaluator::simd_stats(self)
    }

    fn prune_batch(&self, batch: &[Configuration]) -> Option<Vec<Option<String>>> {
        Some(self.prune_mask(batch))
    }

    fn prune_stats(&self) -> Option<PruneStats> {
        Some(MoldEvaluator::prune_stats(self))
    }
}

impl Problem for MoldEvaluator {
    fn space(&self) -> &ConfigSpace {
        self.mold.space()
    }

    fn evaluate(&self, config: &Configuration) -> Evaluation {
        let r = self.measure(config);
        Evaluation {
            runtime_s: r.runtime_s,
            process_s: r.process_s,
            error: r.error,
        }
    }

    fn name(&self) -> &str {
        self.mold.name()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(MoldEvaluator::cache_stats(self))
    }

    fn static_check_stats(&self) -> Option<StaticCheckStats> {
        Some(MoldEvaluator::static_check_stats(self))
    }

    fn pipeline_fingerprint(&self) -> Option<String> {
        self.device.fingerprint()
    }

    fn jit_stats(&self) -> Option<JitStats> {
        MoldEvaluator::jit_stats(self)
    }

    fn par_stats(&self) -> Option<ParStats> {
        MoldEvaluator::par_stats(self)
    }

    fn simd_stats(&self) -> Option<SimdStats> {
        MoldEvaluator::simd_stats(self)
    }

    fn prune_batch(&self, batch: &[Configuration]) -> Option<Vec<Option<String>>> {
        Some(self.prune_mask(batch))
    }

    fn prune_stats(&self) -> Option<PruneStats> {
        Some(MoldEvaluator::prune_stats(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuSpec, SimDevice};
    use polybench::molds::mold_for;
    use polybench::{KernelName, ProblemSize};
    use tvm_runtime::CpuDevice;

    #[test]
    fn simulated_evaluation_charges_build_and_run() {
        let mold = mold_for(KernelName::Lu, ProblemSize::Large);
        let ev = MoldEvaluator::simulated(mold, SimDevice::new(GpuSpec::a100()));
        let cfg = Evaluator::space(&ev).default_configuration();
        let r = Evaluator::evaluate(&ev, &cfg);
        assert!(r.is_ok(), "error: {:?}", r.error);
        let runtime = r.runtime_s.expect("ok");
        assert!(runtime > 0.0);
        // Process includes build (~0.8 s) + transfer + the run itself.
        assert!(r.process_s > runtime, "process must exceed bare runtime");
        assert_eq!(ev.workload(), "lu-large");
    }

    #[test]
    fn repeats_increase_process_time_not_runtime() {
        let mold = mold_for(KernelName::Cholesky, ProblemSize::Large);
        let once = MoldEvaluator::simulated(
            mold_for(KernelName::Cholesky, ProblemSize::Large),
            SimDevice::new(GpuSpec::a100()),
        );
        let thrice =
            MoldEvaluator::simulated(mold, SimDevice::new(GpuSpec::a100())).with_repeats(3);
        let cfg = Evaluator::space(&once).default_configuration();
        let r1 = Evaluator::evaluate(&once, &cfg);
        let r3 = Evaluator::evaluate(&thrice, &cfg);
        assert_eq!(r1.runtime_s, r3.runtime_s, "deterministic device");
        assert!(r3.process_s > r1.process_s);
    }

    #[test]
    fn real_mode_executes_on_cpu() {
        let mold = mold_for(KernelName::Lu, ProblemSize::Mini);
        let ev = MoldEvaluator::real(mold, CpuDevice::new());
        let cfg = Evaluator::space(&ev).default_configuration();
        let r = Evaluator::evaluate(&ev, &cfg);
        assert!(r.is_ok(), "error: {:?}", r.error);
        assert!(r.runtime_s.expect("ok") > 0.0);
    }

    #[test]
    fn jit_device_stats_surface_through_evaluator() {
        let mold = mold_for(KernelName::Gemm, ProblemSize::Mini);
        let ev = MoldEvaluator::real(mold, CpuDevice::jit());
        let cfg = Evaluator::space(&ev).default_configuration();
        let r = Evaluator::evaluate(&ev, &cfg);
        assert!(r.is_ok(), "error: {:?}", r.error);
        let stats = Evaluator::jit_stats(&ev).expect("jit device surfaces stats");
        assert_eq!(stats.attempts(), 1, "one compile attempt for one config");
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        assert_eq!(
            stats.functions_jitted, 1,
            "gemm must jit on x86-64: {:?}",
            stats.fallback_reasons
        );
        // Non-JIT devices surface nothing.
        let plain = MoldEvaluator::real(
            mold_for(KernelName::Gemm, ProblemSize::Mini),
            CpuDevice::new(),
        );
        assert!(Evaluator::jit_stats(&plain).is_none());
    }

    #[test]
    fn repeated_config_hits_cache_and_skips_rebuild() {
        let mold = mold_for(KernelName::Lu, ProblemSize::Large);
        let ev = MoldEvaluator::simulated(mold, SimDevice::new(GpuSpec::a100()));
        let cfg = Evaluator::space(&ev).default_configuration();
        let other = Evaluator::space(&ev).at(1);

        let first = Evaluator::evaluate(&ev, &cfg);
        let second = Evaluator::evaluate(&ev, &cfg);
        let _third = Evaluator::evaluate(&ev, &other);
        assert_eq!(
            first.runtime_s, second.runtime_s,
            "same artifact, same time"
        );
        // The hit skips instantiation and the ~0.8 s simulated build.
        assert!(
            second.process_s < first.process_s - 0.5,
            "hit must not re-pay the build: {} vs {}",
            second.process_s,
            first.process_s
        );
        let stats = ev.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2, "distinct configs miss");
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(Evaluator::cache_stats(&ev), Some(stats));
    }

    #[test]
    fn real_mode_reuses_compiled_artifact_across_evaluations() {
        let mold = mold_for(KernelName::Lu, ProblemSize::Mini);
        let ev = MoldEvaluator::real(mold, CpuDevice::new());
        let cfg = Evaluator::space(&ev).default_configuration();
        let first = Evaluator::evaluate(&ev, &cfg);
        let second = Evaluator::evaluate(&ev, &cfg);
        assert!(first.is_ok() && second.is_ok());
        let stats = ev.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn shared_cache_serves_hits_across_evaluators() {
        let shared = Arc::new(MemoCache::new());
        let a = MoldEvaluator::simulated(
            mold_for(KernelName::Lu, ProblemSize::Large),
            SimDevice::new(GpuSpec::a100()),
        )
        .with_cache(Arc::clone(&shared));
        let b = MoldEvaluator::simulated(
            mold_for(KernelName::Lu, ProblemSize::Large),
            SimDevice::new(GpuSpec::a100()),
        )
        .with_cache(Arc::clone(&shared));
        let cfg = Evaluator::space(&a).default_configuration();

        let first = Evaluator::evaluate(&a, &cfg);
        let second = Evaluator::evaluate(&b, &cfg);
        assert_eq!(first.runtime_s, second.runtime_s);
        // The second evaluator never lowered or built: cross-evaluator hit.
        assert!(
            second.process_s < first.process_s - 0.5,
            "shared cache must skip the build: {} vs {}",
            second.process_s,
            first.process_s
        );
        assert_eq!((shared.stats().hits, shared.stats().misses), (1, 1));
        assert_eq!(shared.len(), 1);

        // A different kernel on the same cache cannot collide.
        let c = MoldEvaluator::simulated(
            mold_for(KernelName::Cholesky, ProblemSize::Large),
            SimDevice::new(GpuSpec::a100()),
        )
        .with_cache(Arc::clone(&shared));
        let ccfg = Evaluator::space(&c).default_configuration();
        assert!(Evaluator::evaluate(&c, &ccfg).is_ok());
        assert_eq!(shared.stats().misses, 2, "distinct workload is a miss");
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn foreign_configuration_fails_gracefully() {
        use configspace::ParamValue;
        let mold = mold_for(KernelName::Lu, ProblemSize::Mini);
        let ev = MoldEvaluator::simulated(mold, SimDevice::new(GpuSpec::a100()));
        let bad = Configuration::new(
            vec!["P0".into(), "P1".into()],
            vec![ParamValue::Int(7), ParamValue::Int(7)], // 7 ∤ 40
        );
        let r = Evaluator::evaluate(&ev, &bad);
        assert!(!r.is_ok());
    }

    /// Test mold that lowers to a safe elementwise kernel for `P0 = 0`
    /// and to a parallel reduction race for `P0 = 1`.
    struct RacyMold {
        space: configspace::ConfigSpace,
    }

    impl RacyMold {
        fn new() -> RacyMold {
            let mut space = configspace::ConfigSpace::new();
            space.add(configspace::Hyperparameter::ordinal_ints("P0", &[0, 1]));
            RacyMold { space }
        }
    }

    impl CodeMold for RacyMold {
        fn name(&self) -> &str {
            "racy"
        }

        fn size(&self) -> ProblemSize {
            ProblemSize::Mini
        }

        fn space(&self) -> &configspace::ConfigSpace {
            &self.space
        }

        fn instantiate(&self, config: &Configuration) -> tvm_tir::PrimFunc {
            use tvm_te::{ops, DType, Var};
            use tvm_tir::{Buffer, ForKind, PrimFunc, Stmt};
            let i = Var::index("i");
            let c = Buffer::new("C", [8usize], DType::F32);
            let c_read = tvm_te::placeholder([8], DType::F32, "C");
            let store = if config.int("P0") == 1 {
                // parallel i: C[0] = C[0] + 1 — write-write race.
                Stmt::BufferStore {
                    buffer: c.clone(),
                    indices: vec![ops::int(0)],
                    value: c_read.at(&[ops::int(0)]) + ops::float(1.0),
                }
            } else {
                Stmt::BufferStore {
                    buffer: c.clone(),
                    indices: vec![i.expr()],
                    value: ops::float(0.0),
                }
            };
            PrimFunc {
                name: "racy".into(),
                params: vec![c],
                allocs: vec![],
                body: Stmt::For {
                    var: i,
                    min: 0,
                    extent: 8,
                    kind: ForKind::Parallel,
                    body: Box::new(store),
                },
            }
        }

        fn init_args(&self) -> Vec<tvm_runtime::NDArray> {
            vec![tvm_runtime::NDArray::zeros(&[8], tvm_te::DType::F32)]
        }

        fn reference_args(&self) -> Vec<Option<tvm_runtime::NDArray>> {
            vec![None]
        }
    }

    #[test]
    fn racy_config_is_rejected_before_compilation() {
        let ev =
            MoldEvaluator::simulated(Box::new(RacyMold::new()), SimDevice::new(GpuSpec::a100()));
        let safe = Evaluator::space(&ev).at(0);
        let racy = Evaluator::space(&ev).at(1);

        let good = Evaluator::evaluate(&ev, &safe);
        assert!(good.is_ok(), "safe config must measure: {:?}", good.error);

        let bad = Evaluator::evaluate(&ev, &racy);
        assert!(!bad.is_ok());
        let err = bad.error.as_ref().expect("rejection carries an error");
        assert_eq!(err.kind(), "static_reject");
        assert!(
            err.message().contains("TIR-RACE"),
            "verdict names the finding: {}",
            err.message()
        );
        // No build or run was charged: only the (fast) analysis time.
        assert!(
            bad.process_s < good.process_s,
            "rejection must be cheaper than a measurement: {} vs {}",
            bad.process_s,
            good.process_s
        );

        // Counters: one accept, one reject, surfaced via both traits.
        let stats = MoldEvaluator::static_check_stats(&ev);
        assert_eq!((stats.accepted, stats.rejected), (1, 1));
        assert_eq!(Evaluator::static_check_stats(&ev), Some(stats));
        assert_eq!(Problem::static_check_stats(&ev), Some(stats));

        // Replaying the rejected config hits the cache, replays the same
        // verdict, and does not re-run the analyzer.
        let again = Evaluator::evaluate(&ev, &racy);
        assert_eq!(again.error, bad.error);
        let stats = MoldEvaluator::static_check_stats(&ev);
        assert_eq!((stats.accepted, stats.rejected), (1, 1));
        assert_eq!(ev.cache_stats().hits, 1);
    }

    #[test]
    fn static_reject_round_trips_through_the_journal() {
        use ytopt_bo::{optimizer, BoOptions};
        let path = std::env::temp_dir().join(format!(
            "tvm-autotune-static-reject-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut opts = BoOptions {
            max_evals: 6,
            ..Default::default()
        };
        opts.search.n_initial = 4;
        opts.search.seed = 11;
        let ev =
            MoldEvaluator::simulated(Box::new(RacyMold::new()), SimDevice::new(GpuSpec::a100()));
        let result = optimizer::run_journaled(&ev, opts, &path).expect("journaled run");
        let rejected = result
            .trials
            .iter()
            .filter(|t| {
                t.error
                    .as_ref()
                    .is_some_and(|e| e.kind() == "static_reject")
            })
            .count();
        assert!(
            rejected > 0,
            "a 2-point space over 6 evals must hit the racy config"
        );
        assert_eq!(
            result.static_checks.map(|s| s.total()),
            Some(2),
            "both configs analyzed exactly once"
        );

        // Resume replays the journaled rejections instead of re-measuring.
        let fresh =
            MoldEvaluator::simulated(Box::new(RacyMold::new()), SimDevice::new(GpuSpec::a100()));
        let resumed = optimizer::resume_from_journal(&fresh, opts, &path).expect("resume");
        assert_eq!(resumed.trials.len(), result.trials.len());
        for (a, b) in result.trials.iter().zip(&resumed.trials) {
            assert_eq!(a.error, b.error, "replayed verdicts match");
        }
        let replayed = MoldEvaluator::static_check_stats(&fresh);
        assert_eq!(
            replayed.total(),
            0,
            "resume must not re-analyze journaled trials"
        );
        let _ = std::fs::remove_file(&path);
    }
}
