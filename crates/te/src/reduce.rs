//! Reduction combiners and the `sum` / `max` / `min` / `prod` builders.

use crate::expr::PrimExpr;
use crate::var::IterVar;
use std::sync::Arc;

/// A commutative, associative combining function for reductions, together
/// with its identity element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Combiner {
    /// `acc + x`, identity 0.
    Sum,
    /// `acc * x`, identity 1.
    Prod,
    /// `max(acc, x)`, identity -inf (or `i64::MIN`).
    Max,
    /// `min(acc, x)`, identity +inf (or `i64::MAX`).
    Min,
}

impl Combiner {
    /// Identity element as an `f64` (used by the interpreter; integer
    /// reductions convert).
    pub fn identity_f64(self) -> f64 {
        match self {
            Combiner::Sum => 0.0,
            Combiner::Prod => 1.0,
            Combiner::Max => f64::NEG_INFINITY,
            Combiner::Min => f64::INFINITY,
        }
    }

    /// Apply the combiner to an accumulator and a new value.
    pub fn combine_f64(self, acc: f64, x: f64) -> f64 {
        match self {
            Combiner::Sum => acc + x,
            Combiner::Prod => acc * x,
            Combiner::Max => acc.max(x),
            Combiner::Min => acc.min(x),
        }
    }

    /// Printed name (`sum`, `prod`, `max`, `min`).
    pub fn name(self) -> &'static str {
        match self {
            Combiner::Sum => "sum",
            Combiner::Prod => "prod",
            Combiner::Max => "max",
            Combiner::Min => "min",
        }
    }
}

fn reduce(combiner: Combiner, source: PrimExpr, axes: &[IterVar]) -> PrimExpr {
    assert!(!axes.is_empty(), "reduction needs at least one axis");
    for ax in axes {
        assert!(
            ax.is_reduce(),
            "axis `{}` passed to {} is not a reduce axis (use te::reduce_axis)",
            ax.var.name,
            combiner.name()
        );
    }
    PrimExpr::Reduce {
        combiner,
        source: Arc::new(source),
        axes: axes.to_vec(),
    }
}

/// `te.sum(source, axis=axes)`.
pub fn sum(source: PrimExpr, axes: &[IterVar]) -> PrimExpr {
    reduce(Combiner::Sum, source, axes)
}

/// Product reduction.
pub fn prod(source: PrimExpr, axes: &[IterVar]) -> PrimExpr {
    reduce(Combiner::Prod, source, axes)
}

/// `te.max(source, axis=axes)`.
pub fn max_reduce(source: PrimExpr, axes: &[IterVar]) -> PrimExpr {
    reduce(Combiner::Max, source, axes)
}

/// `te.min(source, axis=axes)`.
pub fn min_reduce(source: PrimExpr, axes: &[IterVar]) -> PrimExpr {
    reduce(Combiner::Min, source, axes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::float;
    use crate::var::reduce_axis;

    #[test]
    fn identities() {
        assert_eq!(Combiner::Sum.identity_f64(), 0.0);
        assert_eq!(Combiner::Prod.identity_f64(), 1.0);
        assert_eq!(Combiner::Max.identity_f64(), f64::NEG_INFINITY);
        assert_eq!(Combiner::Min.identity_f64(), f64::INFINITY);
    }

    #[test]
    fn combine() {
        assert_eq!(Combiner::Sum.combine_f64(1.0, 2.0), 3.0);
        assert_eq!(Combiner::Prod.combine_f64(2.0, 3.0), 6.0);
        assert_eq!(Combiner::Max.combine_f64(1.0, 2.0), 2.0);
        assert_eq!(Combiner::Min.combine_f64(1.0, 2.0), 1.0);
    }

    #[test]
    fn sum_builds_reduce_node() {
        let k = reduce_axis(0, 4, "k");
        let e = sum(float(1.0), &[k.clone()]);
        match e {
            PrimExpr::Reduce { combiner, axes, .. } => {
                assert_eq!(combiner, Combiner::Sum);
                assert_eq!(axes, vec![k]);
            }
            other => panic!("expected Reduce, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not a reduce axis")]
    fn rejects_data_par_axis() {
        let i = crate::var::IterVar::data_par(4, "i");
        let _ = sum(float(1.0), &[i]);
    }

    #[test]
    #[should_panic(expected = "at least one axis")]
    fn rejects_empty_axes() {
        let _ = sum(float(1.0), &[]);
    }
}
