//! The scalar expression AST (`PrimExpr`).

use crate::dtype::DType;
use crate::reduce::Combiner;
use crate::tensor::Tensor;
use crate::var::{IterVar, Var};
use std::sync::Arc;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b` (float division or truncated integer division)
    Div,
    /// Floor division on integers (`floordiv`)
    FloorDiv,
    /// Floor modulo on integers (`floormod`)
    FloorMod,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
}

/// Comparison operators (result type `Bool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
}

/// Pure math intrinsics callable from compute bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `sqrt(x)`
    Sqrt,
    /// `exp(x)`
    Exp,
    /// `log(x)` (natural)
    Log,
    /// `|x|`
    Abs,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `x^y`
    Pow,
}

impl Intrinsic {
    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Pow => 2,
            _ => 1,
        }
    }

    /// Name as it appears in printed IR.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Abs => "abs",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Pow => "pow",
        }
    }
}

/// A scalar expression tree.
///
/// Children are held behind [`Arc`], so cloning an expression is O(1) and the
/// lowering passes can freely share subtrees.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimExpr {
    /// Integer literal of the given type.
    IntImm(i64, DType),
    /// Floating-point literal of the given type.
    FloatImm(f64, DType),
    /// Boolean literal.
    BoolImm(bool),
    /// Reference to a scalar variable.
    Var(Var),
    /// Binary arithmetic.
    Binary(BinOp, Arc<PrimExpr>, Arc<PrimExpr>),
    /// Comparison (yields `Bool`).
    Cmp(CmpOp, Arc<PrimExpr>, Arc<PrimExpr>),
    /// Logical and.
    And(Arc<PrimExpr>, Arc<PrimExpr>),
    /// Logical or.
    Or(Arc<PrimExpr>, Arc<PrimExpr>),
    /// Logical not.
    Not(Arc<PrimExpr>),
    /// `if cond { then } else { other }` as a value.
    Select(Arc<PrimExpr>, Arc<PrimExpr>, Arc<PrimExpr>),
    /// Type conversion.
    Cast(DType, Arc<PrimExpr>),
    /// Math intrinsic call.
    Call(Intrinsic, Vec<PrimExpr>),
    /// Element read from a producer tensor: `T[i0, i1, ...]`.
    TensorRead(Tensor, Vec<PrimExpr>),
    /// Commutative reduction of `source` over `axes`
    /// (`te.sum`, `te.max`, ...). Only valid as the root of a compute body.
    Reduce {
        /// Combining function and its identity element.
        combiner: Combiner,
        /// Expression reduced at each point of the reduction domain.
        source: Arc<PrimExpr>,
        /// Reduction axes.
        axes: Vec<IterVar>,
    },
}

impl PrimExpr {
    /// Static result type of the expression.
    pub fn dtype(&self) -> DType {
        match self {
            PrimExpr::IntImm(_, t) | PrimExpr::FloatImm(_, t) => *t,
            PrimExpr::BoolImm(_) => DType::Bool,
            PrimExpr::Var(v) => v.dtype,
            PrimExpr::Binary(_, a, b) => a.dtype().unify(b.dtype()),
            PrimExpr::Cmp(..) | PrimExpr::And(..) | PrimExpr::Or(..) | PrimExpr::Not(_) => {
                DType::Bool
            }
            PrimExpr::Select(_, t, f) => t.dtype().unify(f.dtype()),
            PrimExpr::Cast(t, _) => *t,
            PrimExpr::Call(_, args) => args.first().map(|a| a.dtype()).unwrap_or(DType::F32),
            PrimExpr::TensorRead(t, _) => t.dtype(),
            PrimExpr::Reduce { source, .. } => source.dtype(),
        }
    }

    /// True when the expression is a literal constant.
    pub fn is_const(&self) -> bool {
        matches!(
            self,
            PrimExpr::IntImm(..) | PrimExpr::FloatImm(..) | PrimExpr::BoolImm(_)
        )
    }

    /// Integer value if this is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PrimExpr::IntImm(v, _) => Some(*v),
            PrimExpr::BoolImm(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Float value if this is a float literal.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            PrimExpr::FloatImm(v, _) => Some(*v),
            _ => None,
        }
    }

    /// True if this expression contains a [`PrimExpr::Reduce`] node.
    pub fn contains_reduce(&self) -> bool {
        let mut found = false;
        crate::visitor::walk(self, &mut |e| {
            if matches!(e, PrimExpr::Reduce { .. }) {
                found = true;
            }
        });
        found
    }

    /// Binary-op helper used by the `ops` module and lowering.
    pub fn binary(op: BinOp, a: PrimExpr, b: PrimExpr) -> PrimExpr {
        PrimExpr::Binary(op, Arc::new(a), Arc::new(b))
    }

    /// Comparison helper.
    pub fn cmp(op: CmpOp, a: PrimExpr, b: PrimExpr) -> PrimExpr {
        PrimExpr::Cmp(op, Arc::new(a), Arc::new(b))
    }
}

impl From<i64> for PrimExpr {
    fn from(v: i64) -> Self {
        PrimExpr::IntImm(v, DType::I64)
    }
}

impl From<i32> for PrimExpr {
    fn from(v: i32) -> Self {
        PrimExpr::IntImm(v as i64, DType::I32)
    }
}

impl From<f32> for PrimExpr {
    fn from(v: f32) -> Self {
        PrimExpr::FloatImm(v as f64, DType::F32)
    }
}

impl From<f64> for PrimExpr {
    fn from(v: f64) -> Self {
        PrimExpr::FloatImm(v, DType::F64)
    }
}

impl From<bool> for PrimExpr {
    fn from(v: bool) -> Self {
        PrimExpr::BoolImm(v)
    }
}

impl From<&Var> for PrimExpr {
    fn from(v: &Var) -> Self {
        PrimExpr::Var(v.clone())
    }
}

impl From<&IterVar> for PrimExpr {
    fn from(v: &IterVar) -> Self {
        PrimExpr::Var(v.var.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::int;

    #[test]
    fn dtype_inference() {
        let e = PrimExpr::binary(BinOp::Add, int(1), PrimExpr::from(2.0f32));
        assert_eq!(e.dtype(), DType::F32);
        let c = PrimExpr::cmp(CmpOp::Lt, int(1), int(2));
        assert_eq!(c.dtype(), DType::Bool);
    }

    #[test]
    fn const_detection() {
        assert!(int(3).is_const());
        assert_eq!(int(3).as_int(), Some(3));
        let v = Var::index("i");
        assert!(!v.expr().is_const());
        assert_eq!(v.expr().as_int(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(PrimExpr::from(true).dtype(), DType::Bool);
        assert_eq!(PrimExpr::from(1i32).dtype(), DType::I32);
        assert_eq!(PrimExpr::from(1f64).dtype(), DType::F64);
    }

    #[test]
    fn intrinsic_arity() {
        assert_eq!(Intrinsic::Sqrt.arity(), 1);
        assert_eq!(Intrinsic::Pow.arity(), 2);
        assert_eq!(Intrinsic::Sqrt.name(), "sqrt");
    }
}
