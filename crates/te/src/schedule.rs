//! Schedule tree: per-stage loop transformations (`split`, `reorder`,
//! `fuse`, `tile`) and annotations (`unroll`, `vectorize`, `parallel`,
//! `bind`).
//!
//! A [`Schedule`] owns one [`Stage`] per compute op reachable from its
//! outputs. Each stage tracks the *current* loop order
//! ([`Stage::leaf_iter_vars`]) and the relations (splits/fuses) that connect
//! leaf loops back to the op's original axes. Lowering (crate `tvm-tir`)
//! consumes this state.

use crate::expr::PrimExpr;
use crate::ops::{floordiv, floormod};
use crate::tensor::{OpKind, Tensor};
use crate::var::{IterVar, IterVarType, Var};
use std::collections::HashMap;

/// GPU thread axes a loop can be bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadTag {
    /// `blockIdx.x`
    BlockIdxX,
    /// `blockIdx.y`
    BlockIdxY,
    /// `threadIdx.x`
    ThreadIdxX,
    /// `threadIdx.y`
    ThreadIdxY,
}

impl ThreadTag {
    /// CUDA-style name.
    pub fn name(self) -> &'static str {
        match self {
            ThreadTag::BlockIdxX => "blockIdx.x",
            ThreadTag::BlockIdxY => "blockIdx.y",
            ThreadTag::ThreadIdxX => "threadIdx.x",
            ThreadTag::ThreadIdxY => "threadIdx.y",
        }
    }
}

/// Annotation attached to a leaf iteration variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IterVarAttr {
    /// Fully unroll the loop (requires constant extent at lowering).
    Unroll,
    /// Vectorize the loop (innermost, constant extent).
    Vectorize,
    /// Execute iterations in parallel (CPU threads).
    Parallel,
    /// Bind to a GPU thread axis.
    Bind(ThreadTag),
}

/// A split or fuse relation connecting original axes to derived loops.
#[derive(Debug, Clone)]
pub enum IterRelation {
    /// `parent` was split into `outer * factor + inner`; `factor` is the
    /// inner extent.
    Split {
        /// The axis that was split.
        parent: IterVar,
        /// Outer loop (`ceil(parent.extent / factor)` iterations).
        outer: IterVar,
        /// Inner loop (`factor` iterations).
        inner: IterVar,
        /// Inner extent.
        factor: i64,
    },
    /// `outer` and `inner` (adjacent) were fused into `fused`.
    Fuse {
        /// Original outer loop.
        outer: IterVar,
        /// Original inner loop.
        inner: IterVar,
        /// Replacement single loop of extent `outer.extent * inner.extent`.
        fused: IterVar,
    },
}

/// Where a stage's computation is attached.
#[derive(Debug, Clone)]
pub enum AttachType {
    /// Computed in its own top-level loop nest (the default).
    Root,
    /// Computed inside a consumer stage's loop nest, at the given leaf
    /// axis (`s[P].compute_at(s[C], axis)`).
    At {
        /// Consumer op id.
        consumer: u64,
        /// Leaf axis of the consumer the producer attaches under.
        axis: IterVar,
    },
}

/// Per-op scheduling state.
#[derive(Debug, Clone)]
pub struct Stage {
    /// The tensor this stage computes.
    pub tensor: Tensor,
    /// Current loop nest, outermost first.
    pub leaf_iter_vars: Vec<IterVar>,
    /// Applied split/fuse relations, in application order.
    pub relations: Vec<IterRelation>,
    /// Annotations keyed by leaf var id.
    pub attrs: HashMap<u64, IterVarAttr>,
    /// Computation placement.
    pub attach: AttachType,
}

impl Stage {
    fn new(tensor: Tensor) -> Stage {
        let (axes, raxes) = match &tensor.op.kind {
            OpKind::Compute {
                axes, reduce_axes, ..
            } => (axes.clone(), reduce_axes.clone()),
            OpKind::Placeholder => (Vec::new(), Vec::new()),
        };
        // Initial order: all data-parallel axes, then reduce axes — the
        // order `te.create_schedule` produces.
        let mut leaves = axes;
        leaves.extend(raxes);
        Stage {
            tensor,
            leaf_iter_vars: leaves,
            relations: Vec::new(),
            attrs: HashMap::new(),
            attach: AttachType::Root,
        }
    }

    /// True when the stage is computed inside a consumer
    /// (`compute_at` was applied).
    pub fn is_attached(&self) -> bool {
        matches!(self.attach, AttachType::At { .. })
    }

    fn leaf_pos(&self, iv: &IterVar) -> Option<usize> {
        self.leaf_iter_vars
            .iter()
            .position(|l| l.var.id == iv.var.id)
    }

    /// Annotation (if any) on a leaf var.
    pub fn attr_of(&self, iv: &IterVar) -> Option<IterVarAttr> {
        self.attrs.get(&iv.var.id).copied()
    }

    /// For every *non-leaf* variable in the relation chain, its value
    /// expressed in terms of leaf variables; plus boundary-guard predicates
    /// for splits whose factor does not divide the parent extent.
    ///
    /// Used by lowering: compute-body axis variables are substituted with
    /// these bindings before loop-nest construction.
    pub fn axis_bindings(&self) -> (HashMap<u64, PrimExpr>, Vec<PrimExpr>) {
        let mut bind: HashMap<u64, PrimExpr> = HashMap::new();
        let mut guards: Vec<PrimExpr> = Vec::new();
        // Walk relations in reverse: later relations operate on vars
        // produced by earlier ones, so reversing lets us resolve bottom-up.
        for rel in self.relations.iter().rev() {
            match rel {
                IterRelation::Split {
                    parent,
                    outer,
                    inner,
                    factor,
                } => {
                    let oe = bind
                        .get(&outer.var.id)
                        .cloned()
                        .unwrap_or_else(|| outer.var_expr());
                    let ie = bind
                        .get(&inner.var.id)
                        .cloned()
                        .unwrap_or_else(|| inner.var_expr());
                    let pe = oe * *factor + ie + parent.dom.min;
                    if parent.dom.extent % factor != 0 {
                        guards.push(crate::ops::cmp::lt(
                            pe.clone(),
                            PrimExpr::from(parent.dom.end()),
                        ));
                    }
                    bind.insert(parent.var.id, pe);
                }
                IterRelation::Fuse {
                    outer,
                    inner,
                    fused,
                } => {
                    let fe = bind
                        .get(&fused.var.id)
                        .cloned()
                        .unwrap_or_else(|| fused.var_expr());
                    let ie = inner.dom.extent;
                    bind.insert(outer.var.id, floordiv(fe.clone(), ie) + outer.dom.min);
                    bind.insert(inner.var.id, floormod(fe, ie) + inner.dom.min);
                }
            }
        }
        (bind, guards)
    }
}

/// Opaque handle to a stage inside a [`Schedule`].
pub type StageRef = usize;

/// A schedule over the compute graph rooted at one or more output tensors.
///
/// Mirrors `te.create_schedule([...])`: one stage per reachable compute op,
/// in topological (producer-before-consumer) order.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Output tensors the schedule was created for.
    pub outputs: Vec<Tensor>,
    /// Stages in topological order (placeholders excluded).
    pub stages: Vec<Stage>,
}

impl Schedule {
    /// Create a schedule for `outputs` (`te.create_schedule`).
    pub fn create(outputs: &[Tensor]) -> Schedule {
        assert!(!outputs.is_empty(), "schedule needs at least one output");
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: Vec<u64> = Vec::new();
        fn visit(t: &Tensor, order: &mut Vec<Tensor>, visited: &mut Vec<u64>) {
            if visited.contains(&t.op.id) {
                return;
            }
            visited.push(t.op.id);
            for inp in t.op.input_tensors() {
                visit(&inp, order, visited);
            }
            if !t.op.is_placeholder() {
                order.push(t.clone());
            }
        }
        for out in outputs {
            visit(out, &mut order, &mut visited);
        }
        Schedule {
            outputs: outputs.to_vec(),
            stages: order.into_iter().map(Stage::new).collect(),
        }
    }

    /// Stage handle for `tensor`.
    ///
    /// # Panics
    /// If `tensor` is not a compute op in this schedule.
    pub fn stage_of(&self, tensor: &Tensor) -> StageRef {
        self.stages
            .iter()
            .position(|s| s.tensor.same_as(tensor))
            .unwrap_or_else(|| panic!("tensor `{}` not scheduled here", tensor.name()))
    }

    /// Borrow a stage by tensor.
    pub fn stage(&self, tensor: &Tensor) -> &Stage {
        &self.stages[self.stage_of(tensor)]
    }

    fn stage_mut(&mut self, tensor: &Tensor) -> &mut Stage {
        let i = self.stage_of(tensor);
        &mut self.stages[i]
    }

    /// Split `iv` by `factor` (inner extent); returns `(outer, inner)`.
    ///
    /// Equivalent to `s[T].split(iv, factor)` in TVM. Non-divisible factors
    /// are allowed; lowering inserts a boundary guard.
    pub fn split(&mut self, tensor: &Tensor, iv: &IterVar, factor: i64) -> (IterVar, IterVar) {
        assert!(factor >= 1, "split factor must be >= 1, got {factor}");
        let stage = self.stage_mut(tensor);
        let pos = stage.leaf_pos(iv).unwrap_or_else(|| {
            panic!(
                "axis `{}` is not a leaf of stage `{}` (already split or foreign)",
                iv.var.name,
                tensor.name()
            )
        });
        let parent = stage.leaf_iter_vars[pos].clone();
        let outer_extent =
            parent.dom.extent.div_euclid(factor) + i64::from(parent.dom.extent % factor != 0);
        let outer = IterVar::new(
            crate::range::Range::from_extent(outer_extent),
            format!("{}.outer", parent.var.name),
            parent.iter_type,
        );
        let inner = IterVar::new(
            crate::range::Range::from_extent(factor),
            format!("{}.inner", parent.var.name),
            parent.iter_type,
        );
        stage
            .leaf_iter_vars
            .splice(pos..=pos, [outer.clone(), inner.clone()]);
        stage.relations.push(IterRelation::Split {
            parent,
            outer: outer.clone(),
            inner: inner.clone(),
            factor,
        });
        (outer, inner)
    }

    /// Split `iv` into `nparts` outer iterations (TVM's `nparts=` form);
    /// returns `(outer, inner)`.
    pub fn split_nparts(
        &mut self,
        tensor: &Tensor,
        iv: &IterVar,
        nparts: i64,
    ) -> (IterVar, IterVar) {
        assert!(nparts >= 1, "nparts must be >= 1, got {nparts}");
        let extent = {
            let stage = self.stage(tensor);
            let pos = stage
                .leaf_pos(iv)
                .unwrap_or_else(|| panic!("axis `{}` is not a leaf", iv.var.name));
            stage.leaf_iter_vars[pos].dom.extent
        };
        let factor = extent.div_euclid(nparts) + i64::from(extent % nparts != 0);
        self.split(tensor, iv, factor)
    }

    /// Reorder the listed leaf axes into the given order; unlisted axes
    /// keep their positions (`s[T].reorder(...)`).
    pub fn reorder(&mut self, tensor: &Tensor, order: &[IterVar]) {
        let stage = self.stage_mut(tensor);
        let mut positions: Vec<usize> = order
            .iter()
            .map(|iv| {
                stage.leaf_pos(iv).unwrap_or_else(|| {
                    panic!(
                        "axis `{}` is not a leaf of stage `{}`",
                        iv.var.name,
                        tensor.name()
                    )
                })
            })
            .collect();
        {
            let mut sorted = positions.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                positions.len(),
                "reorder arguments must be distinct axes"
            );
        }
        let slots = {
            let mut s = positions.clone();
            s.sort_unstable();
            s
        };
        let items: Vec<IterVar> = order.to_vec();
        for (slot, item) in slots.iter().zip(items) {
            stage.leaf_iter_vars[*slot] = item;
        }
        // `positions` no longer needed beyond validation
        positions.clear();
    }

    /// Fuse two *adjacent* leaf axes (`outer` immediately before `inner`)
    /// into one; returns the fused axis.
    pub fn fuse(&mut self, tensor: &Tensor, outer: &IterVar, inner: &IterVar) -> IterVar {
        let stage = self.stage_mut(tensor);
        let po = stage
            .leaf_pos(outer)
            .unwrap_or_else(|| panic!("axis `{}` is not a leaf", outer.var.name));
        let pi = stage
            .leaf_pos(inner)
            .unwrap_or_else(|| panic!("axis `{}` is not a leaf", inner.var.name));
        assert_eq!(
            pi,
            po + 1,
            "fuse requires adjacent axes (`{}` then `{}`)",
            outer.var.name,
            inner.var.name
        );
        let o = stage.leaf_iter_vars[po].clone();
        let i = stage.leaf_iter_vars[pi].clone();
        let iter_type = if o.is_reduce() || i.is_reduce() {
            IterVarType::Reduce
        } else {
            o.iter_type
        };
        let fused = IterVar::new(
            crate::range::Range::from_extent(o.dom.extent * i.dom.extent),
            format!("{}.{}.fused", o.var.name, i.var.name),
            iter_type,
        );
        stage.leaf_iter_vars.splice(po..=pi, [fused.clone()]);
        stage.relations.push(IterRelation::Fuse {
            outer: o,
            inner: i,
            fused: fused.clone(),
        });
        fused
    }

    /// `tile(x, y, xf, yf)` — split both axes and reorder to
    /// `(xo, yo, xi, yi)`; returns them in that order.
    pub fn tile(
        &mut self,
        tensor: &Tensor,
        x: &IterVar,
        y: &IterVar,
        x_factor: i64,
        y_factor: i64,
    ) -> (IterVar, IterVar, IterVar, IterVar) {
        let (xo, xi) = self.split(tensor, x, x_factor);
        let (yo, yi) = self.split(tensor, y, y_factor);
        self.reorder(tensor, &[xo.clone(), yo.clone(), xi.clone(), yi.clone()]);
        (xo, yo, xi, yi)
    }

    fn annotate(&mut self, tensor: &Tensor, iv: &IterVar, attr: IterVarAttr) {
        let stage = self.stage_mut(tensor);
        assert!(
            stage.leaf_pos(iv).is_some(),
            "axis `{}` is not a leaf of stage `{}`",
            iv.var.name,
            tensor.name()
        );
        stage.attrs.insert(iv.var.id, attr);
    }

    /// Mark a loop for full unrolling.
    pub fn unroll(&mut self, tensor: &Tensor, iv: &IterVar) {
        self.annotate(tensor, iv, IterVarAttr::Unroll);
    }

    /// Mark a loop for vectorization.
    pub fn vectorize(&mut self, tensor: &Tensor, iv: &IterVar) {
        self.annotate(tensor, iv, IterVarAttr::Vectorize);
    }

    /// Mark a loop for parallel execution.
    pub fn parallel(&mut self, tensor: &Tensor, iv: &IterVar) {
        self.annotate(tensor, iv, IterVarAttr::Parallel);
    }

    /// Bind a loop to a GPU thread axis.
    pub fn bind(&mut self, tensor: &Tensor, iv: &IterVar, tag: ThreadTag) {
        self.annotate(tensor, iv, IterVarAttr::Bind(tag));
    }

    /// Compute `producer` inside `consumer`'s loop nest, under leaf
    /// `axis` (`s[P].compute_at(s[C], axis)`).
    ///
    /// At lowering, the region of `producer` the remaining inner loops of
    /// `consumer` read is inferred and recomputed at every iteration of
    /// `axis`. The attached producer's own splits are not applied (its
    /// region is traversed with plain loops), matching TVM's restriction
    /// that inlined/attached stages lose their independent schedule.
    ///
    /// # Panics
    /// * `producer`/`consumer` not scheduled here, or equal;
    /// * `axis` is not a leaf of `consumer`;
    /// * `consumer` does not read `producer`;
    /// * `consumer` is itself attached (attachment chains are not
    ///   supported);
    /// * an output tensor is attached (outputs must stay at root).
    pub fn compute_at(&mut self, producer: &Tensor, consumer: &Tensor, axis: &IterVar) {
        assert!(
            !producer.same_as(consumer),
            "cannot attach `{}` to itself",
            producer.name()
        );
        assert!(
            consumer
                .op
                .input_tensors()
                .iter()
                .any(|t| t.same_as(producer)),
            "`{}` does not read `{}`",
            consumer.name(),
            producer.name()
        );
        assert!(
            !self.outputs.iter().any(|o| o.same_as(producer)),
            "output `{}` must stay at root",
            producer.name()
        );
        let consumer_stage = self.stage(consumer);
        assert!(
            !consumer_stage.is_attached(),
            "attachment chains are not supported (`{}` is itself attached)",
            consumer.name()
        );
        assert!(
            consumer_stage.leaf_pos(axis).is_some(),
            "axis `{}` is not a leaf of `{}`",
            axis.var.name,
            consumer.name()
        );
        let consumer_id = consumer.op.id;
        let stage = self.stage_mut(producer);
        stage.attach = AttachType::At {
            consumer: consumer_id,
            axis: axis.clone(),
        };
    }

    /// All variables (leaf or intermediate) known to a stage — for tests
    /// and diagnostics.
    pub fn all_vars(&self, tensor: &Tensor) -> Vec<Var> {
        let stage = self.stage(tensor);
        let mut vars: Vec<Var> = stage.leaf_iter_vars.iter().map(|l| l.var.clone()).collect();
        for rel in &stage.relations {
            match rel {
                IterRelation::Split {
                    parent,
                    outer,
                    inner,
                    ..
                } => {
                    for v in [&parent.var, &outer.var, &inner.var] {
                        if !vars.iter().any(|x| x.id == v.id) {
                            vars.push(v.clone());
                        }
                    }
                }
                IterRelation::Fuse {
                    outer,
                    inner,
                    fused,
                } => {
                    for v in [&outer.var, &inner.var, &fused.var] {
                        if !vars.iter().any(|x| x.id == v.id) {
                            vars.push(v.clone());
                        }
                    }
                }
            }
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::int;
    use crate::reduce::sum;
    use crate::var::reduce_axis;
    use crate::{compute, placeholder, DType};
    use std::collections::HashMap as Map;

    fn matmul(n: usize) -> (Tensor, Tensor, Tensor, IterVar) {
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        (a, b, c, k)
    }

    #[test]
    fn create_orders_stages_topologically() {
        let (_, _, c, _) = matmul(8);
        let d = compute([8, 8], "D", |i| {
            c.at(&[i[0].clone(), i[1].clone()]) + int(1)
        });
        let s = Schedule::create(&[d.clone()]);
        assert_eq!(s.stages.len(), 2);
        assert!(s.stages[0].tensor.same_as(&c));
        assert!(s.stages[1].tensor.same_as(&d));
    }

    #[test]
    fn initial_leaves_are_axes_then_reduce() {
        let (_, _, c, k) = matmul(8);
        let s = Schedule::create(&[c.clone()]);
        let st = s.stage(&c);
        assert_eq!(st.leaf_iter_vars.len(), 3);
        assert_eq!(st.leaf_iter_vars[2].var.id, k.var.id);
    }

    #[test]
    fn split_replaces_leaf() {
        let (_, _, c, _) = matmul(16);
        let mut s = Schedule::create(&[c.clone()]);
        let y = c.axis(0);
        let (yo, yi) = s.split(&c, &y, 4);
        assert_eq!(yo.extent(), 4);
        assert_eq!(yi.extent(), 4);
        let st = s.stage(&c);
        assert_eq!(st.leaf_iter_vars.len(), 4);
        assert_eq!(st.leaf_iter_vars[0].var.id, yo.var.id);
        assert_eq!(st.leaf_iter_vars[1].var.id, yi.var.id);
        assert!(st.leaf_pos(&y).is_none(), "parent no longer a leaf");
    }

    #[test]
    fn split_non_divisible_rounds_up_and_guards() {
        let (_, _, c, _) = matmul(10);
        let mut s = Schedule::create(&[c.clone()]);
        let y = c.axis(0);
        let (yo, yi) = s.split(&c, &y, 3);
        assert_eq!(yo.extent(), 4); // ceil(10/3)
        assert_eq!(yi.extent(), 3);
        let (_, guards) = s.stage(&c).axis_bindings();
        assert_eq!(guards.len(), 1, "non-divisible split must emit a guard");
    }

    #[test]
    fn axis_bindings_reconstruct_parent() {
        let (_, _, c, _) = matmul(16);
        let mut s = Schedule::create(&[c.clone()]);
        let y = c.axis(0);
        let (yo, yi) = s.split(&c, &y, 4);
        let (bind, guards) = s.stage(&c).axis_bindings();
        assert!(guards.is_empty());
        let pe = bind.get(&y.var.id).expect("parent bound");
        // Evaluate pe at yo=2, yi=3 -> 11
        let mut env: Map<u64, PrimExpr> = Map::new();
        env.insert(yo.var.id, int(2));
        env.insert(yi.var.id, int(3));
        let sub = crate::visitor::substitute(pe, &env);
        // constant-fold by structural evaluation
        fn eval(e: &PrimExpr) -> i64 {
            match e {
                PrimExpr::IntImm(v, _) => *v,
                PrimExpr::Binary(crate::BinOp::Add, a, b) => eval(a) + eval(b),
                PrimExpr::Binary(crate::BinOp::Mul, a, b) => eval(a) * eval(b),
                other => panic!("unexpected node {other:?}"),
            }
        }
        assert_eq!(eval(&sub), 11);
    }

    #[test]
    fn nested_split_bindings_chain() {
        let (_, _, c, _) = matmul(64);
        let mut s = Schedule::create(&[c.clone()]);
        let y = c.axis(0);
        let (_yo, yi) = s.split(&c, &y, 16);
        let (_yio, yii) = s.split(&c, &yi, 4);
        let (bind, _) = s.stage(&c).axis_bindings();
        // y and yi must both be bound; yii is a leaf.
        assert!(bind.contains_key(&y.var.id));
        assert!(bind.contains_key(&yi.var.id));
        assert!(!bind.contains_key(&yii.var.id));
        // y's binding must only reference leaf vars after full substitution.
        let leaves: Vec<u64> = s
            .stage(&c)
            .leaf_iter_vars
            .iter()
            .map(|l| l.var.id)
            .collect();
        let ye = bind.get(&y.var.id).unwrap();
        for v in crate::visitor::free_vars(ye) {
            assert!(
                leaves.contains(&v.id),
                "binding references non-leaf {}",
                v.name
            );
        }
    }

    #[test]
    fn reorder_permutes_slots() {
        let (_, _, c, k) = matmul(8);
        let mut s = Schedule::create(&[c.clone()]);
        let (y, x) = (c.axis(0), c.axis(1));
        s.reorder(&c, &[k.clone(), x.clone(), y.clone()]);
        let order: Vec<u64> = s
            .stage(&c)
            .leaf_iter_vars
            .iter()
            .map(|l| l.var.id)
            .collect();
        assert_eq!(order, vec![k.var.id, x.var.id, y.var.id]);
    }

    #[test]
    fn paper_style_split_reorder() {
        // The paper's mold: yo, yi = split(y, P); xo, xi = split(x, P);
        // reorder(yo, xo, k, yi, xi)
        let (_, _, c, k) = matmul(32);
        let mut s = Schedule::create(&[c.clone()]);
        let (y, x) = (c.axis(0), c.axis(1));
        let (yo, yi) = s.split(&c, &y, 8);
        let (xo, xi) = s.split(&c, &x, 8);
        s.reorder(
            &c,
            &[yo.clone(), xo.clone(), k.clone(), yi.clone(), xi.clone()],
        );
        let order: Vec<u64> = s
            .stage(&c)
            .leaf_iter_vars
            .iter()
            .map(|l| l.var.id)
            .collect();
        assert_eq!(
            order,
            vec![yo.var.id, xo.var.id, k.var.id, yi.var.id, xi.var.id]
        );
    }

    #[test]
    fn fuse_adjacent() {
        let (_, _, c, _) = matmul(8);
        let mut s = Schedule::create(&[c.clone()]);
        let (y, x) = (c.axis(0), c.axis(1));
        let f = s.fuse(&c, &y, &x);
        assert_eq!(f.extent(), 64);
        assert_eq!(s.stage(&c).leaf_iter_vars.len(), 2); // fused + k
        let (bind, _) = s.stage(&c).axis_bindings();
        assert!(bind.contains_key(&y.var.id) && bind.contains_key(&x.var.id));
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn fuse_non_adjacent_panics() {
        let (_, _, c, k) = matmul(8);
        let mut s = Schedule::create(&[c.clone()]);
        let y = c.axis(0);
        let _ = s.fuse(&c, &y, &k); // y and k are not adjacent (x between)
    }

    #[test]
    fn tile_produces_four_loops() {
        let (_, _, c, _) = matmul(16);
        let mut s = Schedule::create(&[c.clone()]);
        let (y, x) = (c.axis(0), c.axis(1));
        let (xo, yo, xi, yi) = s.tile(&c, &x, &y, 4, 4);
        let order: Vec<u64> = s
            .stage(&c)
            .leaf_iter_vars
            .iter()
            .take(4)
            .map(|l| l.var.id)
            .collect();
        assert_eq!(order, vec![xo.var.id, yo.var.id, xi.var.id, yi.var.id]);
    }

    #[test]
    fn annotations_stick() {
        let (_, _, c, _) = matmul(8);
        let mut s = Schedule::create(&[c.clone()]);
        let (y, x) = (c.axis(0), c.axis(1));
        s.parallel(&c, &y);
        s.vectorize(&c, &x);
        assert_eq!(s.stage(&c).attr_of(&y), Some(IterVarAttr::Parallel));
        assert_eq!(s.stage(&c).attr_of(&x), Some(IterVarAttr::Vectorize));
        s.bind(&c, &y, ThreadTag::BlockIdxX);
        assert_eq!(
            s.stage(&c).attr_of(&y),
            Some(IterVarAttr::Bind(ThreadTag::BlockIdxX))
        );
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn split_foreign_axis_panics() {
        let (_, _, c, _) = matmul(8);
        let (_, _, c2, _) = matmul(8);
        let mut s = Schedule::create(&[c]);
        let foreign = c2.axis(0);
        let t = s.outputs[0].clone();
        let _ = s.split(&t, &foreign, 2);
    }

    #[test]
    fn split_reduce_axis_keeps_kind() {
        let (_, _, c, k) = matmul(16);
        let mut s = Schedule::create(&[c.clone()]);
        let (ko, ki) = s.split(&c, &k, 4);
        assert!(ko.is_reduce() && ki.is_reduce());
    }
}
