#![warn(missing_docs)]
//! # tvm-te — a tensor-expression (TE) DSL in Rust
//!
//! This crate reimplements the slice of Apache TVM's tensor-expression
//! language that the paper *"Autotuning Apache TVM-based Scientific
//! Applications Using Bayesian Optimization"* exercises:
//!
//! * [`placeholder`] / [`compute`] tensor declarations,
//! * scalar [`expr::PrimExpr`] arithmetic with [`reduce_axis`]-based
//!   reductions ([`sum`], [`max_reduce`], [`min_reduce`]),
//! * a [`schedule::Schedule`] tree with the loop transformations the paper
//!   tunes over: `split`, `reorder`, `fuse`, `tile`, `unroll`, `vectorize`,
//!   `parallel` and GPU thread `bind`.
//!
//! The companion crate `tvm-tir` lowers a scheduled TE graph into an
//! explicit loop-nest IR which can be interpreted (`tvm-runtime`) or fed to
//! the analytical GPU cost model (`gpu-sim`).
//!
//! ## Quick example
//!
//! ```
//! use tvm_te::{placeholder, compute, reduce_axis, sum, DType, Schedule};
//!
//! let (n, m, k) = (64usize, 64usize, 64usize);
//! let a = placeholder([n, k], DType::F32, "A");
//! let b = placeholder([k, m], DType::F32, "B");
//! let kk = reduce_axis(0, k as i64, "k");
//! let c = compute([n, m], "C", |idx| {
//!     sum(a.at(&[idx[0].clone(), kk.var_expr()]) * b.at(&[kk.var_expr(), idx[1].clone()]),
//!         &[kk.clone()])
//! });
//! let mut s = Schedule::create(&[c.clone()]);
//! let (y, x) = (c.axis(0), c.axis(1));
//! let (yo, yi) = s.split(&c, &y, 8);
//! let (xo, xi) = s.split(&c, &x, 8);
//! s.reorder(&c, &[yo, xo, yi, xi]);
//! ```

pub mod dtype;
pub mod expr;
pub mod ops;
pub mod printer;
pub mod range;
pub mod reduce;
pub mod schedule;
pub mod tensor;
pub mod var;
pub mod visitor;

pub use dtype::DType;
pub use expr::{BinOp, CmpOp, Intrinsic, PrimExpr};
pub use ops::{
    cast, cos, exp, float, floordiv, floormod, int, log, max_expr, min_expr, select, sin, sqrt,
};
pub use range::Range;
pub use reduce::{max_reduce, min_reduce, prod, sum, Combiner};
pub use schedule::{AttachType, IterVarAttr, Schedule, Stage, StageRef};
pub use tensor::{compute, compute_multi, placeholder, Op, OpKind, Tensor};
pub use var::{reduce_axis, IterVar, IterVarType, Var};
