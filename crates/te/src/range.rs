//! Half-open integer ranges used as iteration domains.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open range `[min, min + extent)` describing an iteration domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Range {
    /// Inclusive lower bound.
    pub min: i64,
    /// Number of iterations; the exclusive upper bound is `min + extent`.
    pub extent: i64,
}

impl Range {
    /// Range `[min, min+extent)`.
    pub fn new(min: i64, extent: i64) -> Range {
        assert!(
            extent >= 0,
            "range extent must be non-negative, got {extent}"
        );
        Range { min, extent }
    }

    /// Range `[0, extent)`.
    pub fn from_extent(extent: i64) -> Range {
        Range::new(0, extent)
    }

    /// Exclusive upper bound.
    pub fn end(&self) -> i64 {
        self.min + self.extent
    }

    /// Whether `v` lies inside the range.
    pub fn contains(&self, v: i64) -> bool {
        v >= self.min && v < self.end()
    }

    /// True when the range holds no iterations.
    pub fn is_empty(&self) -> bool {
        self.extent == 0
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.min, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let r = Range::new(2, 5);
        assert_eq!(r.end(), 7);
        assert!(r.contains(2) && r.contains(6));
        assert!(!r.contains(7) && !r.contains(1));
        assert!(!r.is_empty());
        assert!(Range::from_extent(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_extent_panics() {
        let _ = Range::new(0, -1);
    }
}
