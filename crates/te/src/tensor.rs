//! Tensors and the operations (`placeholder`, `compute`) that produce them.

use crate::dtype::DType;
use crate::expr::PrimExpr;
use crate::var::{IterVar, IterVarType};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_OP_ID: AtomicU64 = AtomicU64::new(1);

/// What an [`Op`] computes.
#[derive(Debug)]
pub enum OpKind {
    /// An input tensor bound at runtime (`te.placeholder`).
    Placeholder,
    /// A tensor defined pointwise by an expression over its axes
    /// (`te.compute`). The body may be a single [`PrimExpr::Reduce`].
    Compute {
        /// Output (data-parallel) axes, one per output dimension.
        axes: Vec<IterVar>,
        /// Reduction axes referenced by the body (empty for pointwise ops).
        reduce_axes: Vec<IterVar>,
        /// Body expression, evaluated at each point of the output domain.
        body: PrimExpr,
    },
}

/// An operation node: uniquely identified producer of one output tensor.
#[derive(Debug)]
pub struct Op {
    /// Globally unique id — the basis of op identity/hashing.
    pub id: u64,
    /// Display name, e.g. `"E"` in the paper's 3mm kernel.
    pub name: String,
    /// Output shape.
    pub shape: Vec<usize>,
    /// Output element type.
    pub dtype: DType,
    /// Payload.
    pub kind: OpKind,
}

impl Op {
    /// Input tensors this op reads (dedup'd, in first-use order).
    pub fn input_tensors(&self) -> Vec<Tensor> {
        match &self.kind {
            OpKind::Placeholder => Vec::new(),
            OpKind::Compute { body, .. } => {
                let mut seen: Vec<Tensor> = Vec::new();
                crate::visitor::walk(body, &mut |e| {
                    if let PrimExpr::TensorRead(t, _) = e {
                        if !seen.iter().any(|s| s.same_as(t)) {
                            seen.push(t.clone());
                        }
                    }
                });
                seen
            }
        }
    }

    /// True for placeholder (input) ops.
    pub fn is_placeholder(&self) -> bool {
        matches!(self.kind, OpKind::Placeholder)
    }
}

/// Handle to the output tensor of an [`Op`].
///
/// Cheap to clone (reference-counted); identity follows the producing op.
#[derive(Clone)]
pub struct Tensor {
    /// Producing operation.
    pub op: Arc<Op>,
}

impl Tensor {
    /// Output shape.
    pub fn shape(&self) -> &[usize] {
        &self.op.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.op.shape.len()
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.op.dtype
    }

    /// Tensor name (same as the op name).
    pub fn name(&self) -> &str {
        &self.op.name
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.op.shape.iter().product()
    }

    /// Identity comparison (same producing op).
    pub fn same_as(&self, other: &Tensor) -> bool {
        self.op.id == other.op.id
    }

    /// Element access expression `self[indices...]` for use in compute
    /// bodies of downstream ops.
    ///
    /// # Panics
    /// If the number of indices does not match the tensor rank.
    pub fn at(&self, indices: &[PrimExpr]) -> PrimExpr {
        assert_eq!(
            indices.len(),
            self.ndim(),
            "tensor `{}` has rank {}, got {} indices",
            self.name(),
            self.ndim(),
            indices.len()
        );
        PrimExpr::TensorRead(self.clone(), indices.to_vec())
    }

    /// `i`-th output axis of the producing compute op.
    ///
    /// # Panics
    /// If the producer is a placeholder or `i` is out of range.
    pub fn axis(&self, i: usize) -> IterVar {
        match &self.op.kind {
            OpKind::Compute { axes, .. } => axes[i].clone(),
            OpKind::Placeholder => panic!("placeholder `{}` has no axes", self.name()),
        }
    }

    /// All output axes of the producing compute op.
    pub fn axes(&self) -> Vec<IterVar> {
        match &self.op.kind {
            OpKind::Compute { axes, .. } => axes.clone(),
            OpKind::Placeholder => Vec::new(),
        }
    }

    /// Reduce axes of the producing compute op (empty for pointwise ops
    /// and placeholders).
    pub fn reduce_axes(&self) -> Vec<IterVar> {
        match &self.op.kind {
            OpKind::Compute { reduce_axes, .. } => reduce_axes.clone(),
            OpKind::Placeholder => Vec::new(),
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor({}: {:?} {})",
            self.name(),
            self.shape(),
            self.dtype()
        )
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.same_as(other)
    }
}
impl Eq for Tensor {}

impl std::hash::Hash for Tensor {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.op.id.hash(state);
    }
}

/// Declare an input tensor (`te.placeholder`).
pub fn placeholder(shape: impl Into<Vec<usize>>, dtype: DType, name: impl Into<String>) -> Tensor {
    let shape = shape.into();
    assert!(!shape.is_empty(), "placeholder must have rank >= 1");
    Tensor {
        op: Arc::new(Op {
            id: NEXT_OP_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            shape,
            dtype,
            kind: OpKind::Placeholder,
        }),
    }
}

/// Define a tensor pointwise (`te.compute`).
///
/// `f` receives one index expression per output dimension (the axis
/// variables) and returns the element value; it may return a single
/// [`PrimExpr::Reduce`] for reductions like matmul.
///
/// ```
/// use tvm_te::{compute, placeholder, DType};
/// let a = placeholder([4, 4], DType::F32, "A");
/// let b = compute([4, 4], "B", |i| a.at(&[i[1].clone(), i[0].clone()])); // transpose
/// assert_eq!(b.shape(), &[4, 4]);
/// ```
pub fn compute(
    shape: impl Into<Vec<usize>>,
    name: impl Into<String>,
    f: impl FnOnce(&[PrimExpr]) -> PrimExpr,
) -> Tensor {
    let shape = shape.into();
    let name = name.into();
    let axis_names = ["i", "j", "k", "l", "m", "n"];
    let axes: Vec<IterVar> = shape
        .iter()
        .enumerate()
        .map(|(d, &ext)| {
            let nm = axis_names
                .get(d)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("ax{d}"));
            IterVar::new(
                crate::range::Range::from_extent(ext as i64),
                nm,
                IterVarType::DataPar,
            )
        })
        .collect();
    let idx: Vec<PrimExpr> = axes.iter().map(|a| a.var_expr()).collect();
    let body = f(&idx);
    compute_from_parts(shape, name, axes, body)
}

/// `compute` variant that exposes the created axes to the caller before the
/// body is built — convenient when the body references axes by name.
pub fn compute_multi(
    shape: impl Into<Vec<usize>>,
    name: impl Into<String>,
    f: impl FnOnce(&[IterVar]) -> PrimExpr,
) -> Tensor {
    let shape = shape.into();
    let axes: Vec<IterVar> = shape
        .iter()
        .enumerate()
        .map(|(d, &ext)| IterVar::data_par(ext as i64, format!("ax{d}")))
        .collect();
    let body = f(&axes);
    compute_from_parts(shape, name.into(), axes, body)
}

fn compute_from_parts(
    shape: Vec<usize>,
    name: String,
    axes: Vec<IterVar>,
    body: PrimExpr,
) -> Tensor {
    // A Reduce node is only legal at the root of the body (TVM invariant).
    let mut inner_reduce = false;
    if let PrimExpr::Reduce { source, .. } = &body {
        crate::visitor::walk(source, &mut |e| {
            if matches!(e, PrimExpr::Reduce { .. }) {
                inner_reduce = true;
            }
        });
    } else {
        inner_reduce = body.contains_reduce();
    }
    assert!(
        !inner_reduce,
        "Reduce is only allowed at the root of a compute body (op `{name}`)"
    );

    let reduce_axes = match &body {
        PrimExpr::Reduce { axes, .. } => axes.clone(),
        _ => Vec::new(),
    };
    let dtype = body.dtype();
    Tensor {
        op: Arc::new(Op {
            id: NEXT_OP_ID.fetch_add(1, Ordering::Relaxed),
            name,
            shape,
            dtype,
            kind: OpKind::Compute {
                axes,
                reduce_axes,
                body,
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::sum;
    use crate::var::reduce_axis;

    #[test]
    fn placeholder_basics() {
        let a = placeholder([3, 4], DType::F64, "A");
        assert_eq!(a.shape(), &[3, 4]);
        assert_eq!(a.numel(), 12);
        assert!(a.op.is_placeholder());
        assert!(a.op.input_tensors().is_empty());
    }

    #[test]
    fn compute_tracks_inputs_and_axes() {
        let a = placeholder([4, 8], DType::F32, "A");
        let b = placeholder([8, 4], DType::F32, "B");
        let k = reduce_axis(0, 8, "k");
        let c = compute([4, 4], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        assert_eq!(c.dtype(), DType::F32);
        assert_eq!(c.axes().len(), 2);
        assert_eq!(c.reduce_axes(), vec![k]);
        let ins = c.op.input_tensors();
        assert_eq!(ins.len(), 2);
        assert!(ins[0].same_as(&a) && ins[1].same_as(&b));
    }

    #[test]
    fn tensor_identity() {
        let a = placeholder([2], DType::F32, "A");
        let a2 = a.clone();
        let b = placeholder([2], DType::F32, "A");
        assert!(a.same_as(&a2));
        assert!(!a.same_as(&b));
    }

    #[test]
    #[should_panic(expected = "rank 2, got 1 indices")]
    fn at_checks_rank() {
        let a = placeholder([2, 2], DType::F32, "A");
        let _ = a.at(&[crate::ops::int(0)]);
    }

    #[test]
    #[should_panic(expected = "root of a compute body")]
    fn nested_reduce_rejected() {
        let a = placeholder([4], DType::F32, "A");
        let k = reduce_axis(0, 4, "k");
        let _ = compute([4], "B", |_| {
            sum(a.at(&[k.var_expr()]), &[k.clone()]) + crate::ops::float(1.0)
        });
    }
}
