//! Scalar data types carried by expressions and tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar element type of a tensor or expression.
///
/// Mirrors the TVM `DataType` surface needed by the paper's kernels (the
/// PolyBench kernels are `float32`/`float64`; integer types appear in index
/// arithmetic and predicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE-754 float (`float32`).
    F32,
    /// 64-bit IEEE-754 float (`float64`).
    F64,
    /// 32-bit signed integer (`int32`).
    I32,
    /// 64-bit signed integer (`int64`), the type of loop/index variables.
    I64,
    /// Boolean (`bool`), produced by comparisons.
    Bool,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
            DType::Bool => 1,
        }
    }

    /// True for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// True for `I32`/`I64`.
    pub fn is_int(self) -> bool {
        matches!(self, DType::I32 | DType::I64)
    }

    /// TVM-style type name, e.g. `"float32"`.
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "float32",
            DType::F64 => "float64",
            DType::I32 => "int32",
            DType::I64 => "int64",
            DType::Bool => "bool",
        }
    }

    /// Parse a TVM-style type name.
    pub fn parse(name: &str) -> Option<DType> {
        match name {
            "float32" | "f32" => Some(DType::F32),
            "float64" | "f64" => Some(DType::F64),
            "int32" | "i32" => Some(DType::I32),
            "int64" | "i64" => Some(DType::I64),
            "bool" => Some(DType::Bool),
            _ => None,
        }
    }

    /// Result type when combining two operand types in arithmetic
    /// (float dominates int; wider width dominates narrower).
    pub fn unify(self, other: DType) -> DType {
        use DType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (F64, _) | (_, F64) => F64,
            (F32, _) | (_, F32) => F32,
            (I64, _) | (_, I64) => I64,
            (I32, _) | (_, I32) => I32,
            _ => Bool,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F64.size_bytes(), 8);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn parse_roundtrip() {
        for d in [DType::F32, DType::F64, DType::I32, DType::I64, DType::Bool] {
            assert_eq!(DType::parse(d.name()), Some(d));
        }
        assert_eq!(DType::parse("float16"), None);
    }

    #[test]
    fn unify_promotes() {
        assert_eq!(DType::F32.unify(DType::I64), DType::F32);
        assert_eq!(DType::F64.unify(DType::F32), DType::F64);
        assert_eq!(DType::I32.unify(DType::I64), DType::I64);
        assert_eq!(DType::Bool.unify(DType::Bool), DType::Bool);
    }

    #[test]
    fn predicates() {
        assert!(DType::F32.is_float() && !DType::F32.is_int());
        assert!(DType::I64.is_int() && !DType::I64.is_float());
        assert!(!DType::Bool.is_int() && !DType::Bool.is_float());
    }
}
