//! Operator overloads and expression builder functions.

use crate::dtype::DType;
use crate::expr::{BinOp, CmpOp, Intrinsic, PrimExpr};
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::Arc;

/// `I64` integer literal.
pub fn int(v: i64) -> PrimExpr {
    PrimExpr::IntImm(v, DType::I64)
}

/// `F32` float literal.
pub fn float(v: f64) -> PrimExpr {
    PrimExpr::FloatImm(v, DType::F32)
}

/// Floor division (integer).
pub fn floordiv(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::binary(BinOp::FloorDiv, a.into(), b.into())
}

/// Floor modulo (integer).
pub fn floormod(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::binary(BinOp::FloorMod, a.into(), b.into())
}

/// Elementwise minimum.
pub fn min_expr(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::binary(BinOp::Min, a.into(), b.into())
}

/// Elementwise maximum.
pub fn max_expr(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::binary(BinOp::Max, a.into(), b.into())
}

/// Value-level `if cond { t } else { f }`.
pub fn select(
    cond: impl Into<PrimExpr>,
    t: impl Into<PrimExpr>,
    f: impl Into<PrimExpr>,
) -> PrimExpr {
    PrimExpr::Select(
        Arc::new(cond.into()),
        Arc::new(t.into()),
        Arc::new(f.into()),
    )
}

/// Convert `e` to `dtype`.
pub fn cast(dtype: DType, e: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::Cast(dtype, Arc::new(e.into()))
}

/// `sqrt(x)`.
pub fn sqrt(x: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::Call(Intrinsic::Sqrt, vec![x.into()])
}

/// `exp(x)`.
pub fn exp(x: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::Call(Intrinsic::Exp, vec![x.into()])
}

/// Natural log.
pub fn log(x: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::Call(Intrinsic::Log, vec![x.into()])
}

/// `sin(x)`.
pub fn sin(x: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::Call(Intrinsic::Sin, vec![x.into()])
}

/// `cos(x)`.
pub fn cos(x: impl Into<PrimExpr>) -> PrimExpr {
    PrimExpr::Call(Intrinsic::Cos, vec![x.into()])
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl $trait for PrimExpr {
            type Output = PrimExpr;
            fn $method(self, rhs: PrimExpr) -> PrimExpr {
                PrimExpr::binary($op, self, rhs)
            }
        }
        impl $trait<&PrimExpr> for PrimExpr {
            type Output = PrimExpr;
            fn $method(self, rhs: &PrimExpr) -> PrimExpr {
                PrimExpr::binary($op, self, rhs.clone())
            }
        }
        impl $trait<PrimExpr> for &PrimExpr {
            type Output = PrimExpr;
            fn $method(self, rhs: PrimExpr) -> PrimExpr {
                PrimExpr::binary($op, self.clone(), rhs)
            }
        }
        impl $trait<&PrimExpr> for &PrimExpr {
            type Output = PrimExpr;
            fn $method(self, rhs: &PrimExpr) -> PrimExpr {
                PrimExpr::binary($op, self.clone(), rhs.clone())
            }
        }
        impl $trait<i64> for PrimExpr {
            type Output = PrimExpr;
            fn $method(self, rhs: i64) -> PrimExpr {
                PrimExpr::binary($op, self, int(rhs))
            }
        }
        impl $trait<PrimExpr> for i64 {
            type Output = PrimExpr;
            fn $method(self, rhs: PrimExpr) -> PrimExpr {
                PrimExpr::binary($op, int(self), rhs)
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);

impl Neg for PrimExpr {
    type Output = PrimExpr;
    fn neg(self) -> PrimExpr {
        match self.dtype() {
            t if t.is_float() => PrimExpr::binary(BinOp::Sub, PrimExpr::FloatImm(0.0, t), self),
            t => PrimExpr::binary(BinOp::Sub, PrimExpr::IntImm(0, t), self),
        }
    }
}

/// Comparison builders (`lt`, `le`, ...) as free functions — Rust's
/// comparison operators cannot return `PrimExpr`.
pub mod cmp {
    use super::*;

    /// `a < b`
    pub fn lt(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
        PrimExpr::cmp(CmpOp::Lt, a.into(), b.into())
    }
    /// `a <= b`
    pub fn le(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
        PrimExpr::cmp(CmpOp::Le, a.into(), b.into())
    }
    /// `a > b`
    pub fn gt(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
        PrimExpr::cmp(CmpOp::Gt, a.into(), b.into())
    }
    /// `a >= b`
    pub fn ge(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
        PrimExpr::cmp(CmpOp::Ge, a.into(), b.into())
    }
    /// `a == b`
    pub fn eq(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
        PrimExpr::cmp(CmpOp::Eq, a.into(), b.into())
    }
    /// `a != b`
    pub fn ne(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
        PrimExpr::cmp(CmpOp::Ne, a.into(), b.into())
    }
    /// `a && b`
    pub fn and(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
        PrimExpr::And(Arc::new(a.into()), Arc::new(b.into()))
    }
    /// `a || b`
    pub fn or(a: impl Into<PrimExpr>, b: impl Into<PrimExpr>) -> PrimExpr {
        PrimExpr::Or(Arc::new(a.into()), Arc::new(b.into()))
    }
    /// `!a`
    pub fn not(a: impl Into<PrimExpr>) -> PrimExpr {
        PrimExpr::Not(Arc::new(a.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Var;

    #[test]
    fn overloads_build_trees() {
        let i = Var::index("i");
        let e = i.expr() * 8 + 3;
        match &e {
            PrimExpr::Binary(BinOp::Add, l, r) => {
                assert!(matches!(**l, PrimExpr::Binary(BinOp::Mul, ..)));
                assert_eq!(r.as_int(), Some(3));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn neg_float_and_int() {
        let e = -float(2.0);
        assert!(matches!(e, PrimExpr::Binary(BinOp::Sub, ..)));
        assert!(e.dtype().is_float());
        let e = -int(2);
        assert!(e.dtype().is_int());
    }

    #[test]
    fn ref_overloads() {
        let a = int(1);
        let b = int(2);
        let s = &a + &b;
        assert!(matches!(s, PrimExpr::Binary(BinOp::Add, ..)));
        let s2 = a.clone() + &b;
        let s3 = &a + b.clone();
        assert_eq!(s, s2);
        assert_eq!(s, s3);
    }

    #[test]
    fn cmp_builders() {
        let e = cmp::and(cmp::lt(int(1), int(2)), cmp::ge(int(3), int(3)));
        assert_eq!(e.dtype(), DType::Bool);
    }
}
