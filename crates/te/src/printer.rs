//! Human-readable printing of expressions and operations.

use crate::expr::{BinOp, CmpOp, PrimExpr};
use crate::tensor::{Op, OpKind};
use std::fmt;

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::FloorMod => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl fmt::Display for PrimExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimExpr::IntImm(v, _) => write!(f, "{v}"),
            PrimExpr::FloatImm(v, _) => write!(f, "{v:?}"),
            PrimExpr::BoolImm(b) => write!(f, "{b}"),
            PrimExpr::Var(v) => write!(f, "{}", v.name),
            PrimExpr::Binary(op @ (BinOp::Min | BinOp::Max), a, b) => {
                write!(f, "{op}({a}, {b})")
            }
            PrimExpr::Binary(op, a, b) => write!(f, "({a} {op} {b})"),
            PrimExpr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            PrimExpr::And(a, b) => write!(f, "({a} && {b})"),
            PrimExpr::Or(a, b) => write!(f, "({a} || {b})"),
            PrimExpr::Not(a) => write!(f, "!({a})"),
            PrimExpr::Select(c, t, e) => write!(f, "select({c}, {t}, {e})"),
            PrimExpr::Cast(t, a) => write!(f, "{t}({a})"),
            PrimExpr::Call(i, args) => {
                write!(f, "{}(", i.name())?;
                for (n, a) in args.iter().enumerate() {
                    if n > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            PrimExpr::TensorRead(t, idx) => {
                write!(f, "{}[", t.name())?;
                for (n, i) in idx.iter().enumerate() {
                    if n > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{i}")?;
                }
                write!(f, "]")
            }
            PrimExpr::Reduce {
                combiner,
                source,
                axes,
            } => {
                write!(f, "{}({source}, axis=[", combiner.name())?;
                for (n, a) in axes.iter().enumerate() {
                    if n > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", a.var.name)?;
                }
                write!(f, "])")
            }
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            OpKind::Placeholder => {
                write!(
                    f,
                    "placeholder {}: {:?} {}",
                    self.name, self.shape, self.dtype
                )
            }
            OpKind::Compute { axes, body, .. } => {
                write!(f, "compute {}[", self.name)?;
                for (n, a) in axes.iter().enumerate() {
                    if n > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", a.var.name)?;
                }
                write!(f, "] = {body}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::{int, sqrt};
    use crate::var::Var;

    #[test]
    fn expr_printing() {
        let i = Var::index("i");
        let e = i.expr() * 8 + 1;
        assert_eq!(format!("{e}"), "((i * 8) + 1)");
        let s = sqrt(int(4));
        assert_eq!(format!("{s}"), "sqrt(4)");
    }

    #[test]
    fn op_printing() {
        use crate::{compute, placeholder, DType};
        let a = placeholder([4], DType::F32, "A");
        let b = compute([4], "B", |i| a.at(&[i[0].clone()]) + a.at(&[i[0].clone()]));
        let s = format!("{}", b.op);
        assert!(s.starts_with("compute B[i] = "), "got: {s}");
        assert!(s.contains("A[i]"));
    }
}
