//! Expression traversal and rewriting utilities.

use crate::expr::PrimExpr;
use crate::var::Var;
use std::collections::HashMap;
use std::sync::Arc;

/// Pre-order visit of every node in `expr` (including `expr` itself).
pub fn walk(expr: &PrimExpr, f: &mut impl FnMut(&PrimExpr)) {
    f(expr);
    match expr {
        PrimExpr::IntImm(..) | PrimExpr::FloatImm(..) | PrimExpr::BoolImm(_) | PrimExpr::Var(_) => {
        }
        PrimExpr::Binary(_, a, b) | PrimExpr::Cmp(_, a, b) => {
            walk(a, f);
            walk(b, f);
        }
        PrimExpr::And(a, b) | PrimExpr::Or(a, b) => {
            walk(a, f);
            walk(b, f);
        }
        PrimExpr::Not(a) | PrimExpr::Cast(_, a) => walk(a, f),
        PrimExpr::Select(c, t, e) => {
            walk(c, f);
            walk(t, f);
            walk(e, f);
        }
        PrimExpr::Call(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        PrimExpr::TensorRead(_, idx) => {
            for i in idx {
                walk(i, f);
            }
        }
        PrimExpr::Reduce { source, .. } => walk(source, f),
    }
}

/// Bottom-up rewrite: children are rewritten first, then `f` may replace
/// the rebuilt node (`None` keeps it).
pub fn rewrite(expr: &PrimExpr, f: &mut impl FnMut(&PrimExpr) -> Option<PrimExpr>) -> PrimExpr {
    let rebuilt = match expr {
        PrimExpr::IntImm(..) | PrimExpr::FloatImm(..) | PrimExpr::BoolImm(_) | PrimExpr::Var(_) => {
            expr.clone()
        }
        PrimExpr::Binary(op, a, b) => {
            PrimExpr::Binary(*op, Arc::new(rewrite(a, f)), Arc::new(rewrite(b, f)))
        }
        PrimExpr::Cmp(op, a, b) => {
            PrimExpr::Cmp(*op, Arc::new(rewrite(a, f)), Arc::new(rewrite(b, f)))
        }
        PrimExpr::And(a, b) => PrimExpr::And(Arc::new(rewrite(a, f)), Arc::new(rewrite(b, f))),
        PrimExpr::Or(a, b) => PrimExpr::Or(Arc::new(rewrite(a, f)), Arc::new(rewrite(b, f))),
        PrimExpr::Not(a) => PrimExpr::Not(Arc::new(rewrite(a, f))),
        PrimExpr::Cast(t, a) => PrimExpr::Cast(*t, Arc::new(rewrite(a, f))),
        PrimExpr::Select(c, t, e) => PrimExpr::Select(
            Arc::new(rewrite(c, f)),
            Arc::new(rewrite(t, f)),
            Arc::new(rewrite(e, f)),
        ),
        PrimExpr::Call(i, args) => PrimExpr::Call(*i, args.iter().map(|a| rewrite(a, f)).collect()),
        PrimExpr::TensorRead(t, idx) => {
            PrimExpr::TensorRead(t.clone(), idx.iter().map(|i| rewrite(i, f)).collect())
        }
        PrimExpr::Reduce {
            combiner,
            source,
            axes,
        } => PrimExpr::Reduce {
            combiner: *combiner,
            source: Arc::new(rewrite(source, f)),
            axes: axes.clone(),
        },
    };
    f(&rebuilt).unwrap_or(rebuilt)
}

/// Substitute variables by id using `map`.
pub fn substitute(expr: &PrimExpr, map: &HashMap<u64, PrimExpr>) -> PrimExpr {
    rewrite(expr, &mut |e| match e {
        PrimExpr::Var(v) => map.get(&v.id).cloned(),
        _ => None,
    })
}

/// Collect the distinct variables referenced by `expr`, in first-use order.
pub fn free_vars(expr: &PrimExpr) -> Vec<Var> {
    let mut out: Vec<Var> = Vec::new();
    walk(expr, &mut |e| {
        if let PrimExpr::Var(v) = e {
            if !out.iter().any(|o| o.id == v.id) {
                out.push(v.clone());
            }
        }
    });
    out
}

/// Number of nodes in the expression tree.
pub fn node_count(expr: &PrimExpr) -> usize {
    let mut n = 0;
    walk(expr, &mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::int;

    #[test]
    fn walk_counts_nodes() {
        let v = Var::index("i");
        let e = v.expr() * 2 + 1;
        assert_eq!(node_count(&e), 5); // add, mul, var, 2, 1
    }

    #[test]
    fn substitute_replaces_vars() {
        let v = Var::index("i");
        let e = v.expr() + 1;
        let mut map = HashMap::new();
        map.insert(v.id, int(41));
        let s = substitute(&e, &map);
        // After substitution every leaf is const; evaluate by pattern.
        match s {
            PrimExpr::Binary(_, a, b) => {
                assert_eq!(a.as_int(), Some(41));
                assert_eq!(b.as_int(), Some(1));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn free_vars_dedup_ordered() {
        let i = Var::index("i");
        let j = Var::index("j");
        let e = (i.expr() + j.expr()) * i.expr();
        let fv = free_vars(&e);
        assert_eq!(fv.len(), 2);
        assert_eq!(fv[0].id, i.id);
        assert_eq!(fv[1].id, j.id);
    }

    #[test]
    fn rewrite_bottom_up_folds() {
        // replace every IntImm with 0 — proves the rewriter reaches leaves
        let v = Var::index("i");
        let e = v.expr() + 7;
        let z = rewrite(&e, &mut |n| match n {
            PrimExpr::IntImm(x, t) if *x != 0 => Some(PrimExpr::IntImm(0, *t)),
            _ => None,
        });
        let mut found_seven = false;
        walk(&z, &mut |n| {
            if n.as_int() == Some(7) {
                found_seven = true;
            }
        });
        assert!(!found_seven);
    }
}
