//! Scalar variables and iteration variables.

use crate::dtype::DType;
use crate::expr::PrimExpr;
use crate::range::Range;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

/// A scalar variable with a unique identity.
///
/// Two `Var`s are equal iff they were created by the same call — names are
/// purely cosmetic, so shadowing (`i`, `i.outer`, `i.inner`) is safe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Var {
    /// Globally unique id; the sole basis of identity.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Scalar type (loop variables are `I64`).
    pub dtype: DType,
}

impl Var {
    /// Fresh variable with a unique id.
    pub fn new(name: impl Into<String>, dtype: DType) -> Var {
        Var {
            id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            dtype,
        }
    }

    /// Fresh `I64` loop/index variable.
    pub fn index(name: impl Into<String>) -> Var {
        Var::new(name, DType::I64)
    }

    /// This variable as an expression.
    pub fn expr(&self) -> PrimExpr {
        PrimExpr::Var(self.clone())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// How an [`IterVar`] iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IterVarType {
    /// Data-parallel axis (an output axis of a compute op).
    DataPar,
    /// Reduction axis (created by [`reduce_axis`]).
    Reduce,
    /// Axis bound to a GPU thread index (blockIdx/threadIdx).
    ThreadIndex,
    /// Opaque axis (not currently produced; reserved for scan/extern ops).
    Opaque,
}

/// An iteration variable: a [`Var`] plus its iteration [`Range`] and kind.
///
/// This corresponds to `tvm.tir.IterVar`; output axes of `compute` and the
/// axes returned by `Stage::split`/`fuse` are all `IterVar`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IterVar {
    /// Underlying loop variable.
    pub var: Var,
    /// Iteration domain.
    pub dom: Range,
    /// Iteration kind.
    pub iter_type: IterVarType,
}

impl IterVar {
    /// New iteration variable over `dom`.
    pub fn new(dom: Range, name: impl Into<String>, iter_type: IterVarType) -> IterVar {
        IterVar {
            var: Var::index(name),
            dom,
            iter_type,
        }
    }

    /// Data-parallel axis `[0, extent)`.
    pub fn data_par(extent: i64, name: impl Into<String>) -> IterVar {
        IterVar::new(Range::from_extent(extent), name, IterVarType::DataPar)
    }

    /// The variable as an expression (`i` usable inside compute bodies).
    pub fn var_expr(&self) -> PrimExpr {
        self.var.expr()
    }

    /// Extent of the iteration domain.
    pub fn extent(&self) -> i64 {
        self.dom.extent
    }

    /// True if this is a reduction axis.
    pub fn is_reduce(&self) -> bool {
        self.iter_type == IterVarType::Reduce
    }
}

impl fmt::Display for IterVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.var, self.dom)
    }
}

/// Create a reduction axis over `[min, min+extent)`, like `te.reduce_axis`.
pub fn reduce_axis(min: i64, extent: i64, name: impl Into<String>) -> IterVar {
    IterVar::new(Range::new(min, extent), name, IterVarType::Reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_have_unique_identity() {
        let a = Var::index("i");
        let b = Var::index("i");
        assert_ne!(a, b, "same-named vars must differ by id");
        assert_eq!(a, a.clone());
    }

    #[test]
    fn reduce_axis_kind() {
        let k = reduce_axis(0, 16, "k");
        assert!(k.is_reduce());
        assert_eq!(k.extent(), 16);
        assert_eq!(k.var.dtype, DType::I64);
    }

    #[test]
    fn data_par_axis() {
        let i = IterVar::data_par(8, "i");
        assert!(!i.is_reduce());
        assert_eq!(i.dom, Range::from_extent(8));
    }
}
