//! Per-component cost: configuration-space operations (sampling,
//! indexing, encoding) — the hot path of grid/random enumeration over the
//! paper's 228M-point 3mm space.

use criterion::{criterion_group, criterion_main, Criterion};
use polybench::spaces::space_for;
use polybench::{KernelName, ProblemSize};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_space(c: &mut Criterion) {
    let cs = space_for(KernelName::Mm3, ProblemSize::ExtraLarge);
    let mut rng = SmallRng::seed_from_u64(3);

    c.bench_function("space/sample_3mm_xl", |b| b.iter(|| cs.sample(&mut rng)));

    let cfg = cs.sample(&mut rng);
    c.bench_function("space/encode_3mm_xl", |b| b.iter(|| cs.encode(&cfg)));
    c.bench_function("space/index_of_3mm_xl", |b| b.iter(|| cs.index_of(&cfg)));
    c.bench_function("space/at_3mm_xl", |b| b.iter(|| cs.at(123_456_789)));
    c.bench_function("space/neighbor_3mm_xl", |b| {
        b.iter(|| cs.neighbor(&cfg, &mut rng))
    });
    c.bench_function("space/grid_first_1000_lu_large", |b| {
        let lu = space_for(KernelName::Lu, ProblemSize::Large);
        b.iter(|| lu.grid().take(400).count())
    });
}

criterion_group!(benches, bench_space);
criterion_main!(benches);
