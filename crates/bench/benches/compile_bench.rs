//! Per-component cost: mold instantiation (TE build + schedule + lower)
//! and analytical device prediction — the per-candidate compile path of
//! every tuning evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{cost_model, GpuSpec};
use polybench::kernels::{cholesky::build_cholesky, lu::build_lu, mm3::build_3mm};
use polybench::molds::mold_for;
use polybench::{datasets::mm3_dims, KernelName, ProblemSize};

fn bench_compile(c: &mut Criterion) {
    let dims = mm3_dims(ProblemSize::ExtraLarge);
    c.bench_function("compile/lower_3mm_xl", |b| {
        b.iter(|| build_3mm(&dims, [50, 64, 48, 50, 48, 64]))
    });
    c.bench_function("compile/build_lu_large", |b| {
        b.iter(|| build_lu(2000, 40, 50))
    });
    c.bench_function("compile/build_cholesky_large", |b| {
        b.iter(|| build_cholesky(2000, 40, 50))
    });

    let spec = GpuSpec::swing_cpu_core();
    let f3 = build_3mm(&dims, [50, 64, 48, 50, 48, 64]);
    let flu = build_lu(2000, 40, 50);
    c.bench_function("cost_model/3mm_xl", |b| b.iter(|| cost_model(&f3, &spec)));
    c.bench_function("cost_model/lu_large", |b| {
        b.iter(|| cost_model(&flu, &spec))
    });

    // Full evaluation path through the mold API.
    let mold = mold_for(KernelName::Mm3, ProblemSize::ExtraLarge);
    let cfg = mold.baseline_configuration();
    c.bench_function("compile/mold_instantiate_3mm_xl", |b| {
        b.iter(|| mold.instantiate(&cfg))
    });
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
