//! Per-component cost: the reference CPU interpreter (real-numerics path
//! used for correctness validation and the CPU examples).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvm_runtime::{interp::execute, NDArray};
use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule};
use tvm_tir::lower::lower;
use tvm_tir::PrimFunc;

fn matmul_func(n: usize, tile: i64) -> PrimFunc {
    let a = placeholder([n, n], DType::F32, "A");
    let b = placeholder([n, n], DType::F32, "B");
    let k = reduce_axis(0, n as i64, "k");
    let c = compute([n, n], "C", |i| {
        sum(
            a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
            &[k.clone()],
        )
    });
    let mut s = Schedule::create(&[c.clone()]);
    if tile > 1 {
        let (y, x) = (c.axis(0), c.axis(1));
        let (yo, yi) = s.split(&c, &y, tile);
        let (xo, xi) = s.split(&c, &x, tile);
        s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);
    }
    lower(&s, &[a, b, c], "mm")
}

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp_matmul");
    g.sample_size(10);
    for &n in &[16usize, 32] {
        for &tile in &[1i64, 8] {
            let f = matmul_func(n, tile);
            let args = vec![
                NDArray::random(&[n, n], DType::F32, 1, -1.0, 1.0),
                NDArray::random(&[n, n], DType::F32, 2, -1.0, 1.0),
                NDArray::zeros(&[n, n], DType::F32),
            ];
            g.bench_with_input(BenchmarkId::new(format!("tile{tile}"), n), &n, |b, _| {
                b.iter(|| {
                    let mut a = args.clone();
                    execute(&f, &mut a).expect("run");
                    a
                })
            });
        }
    }
    g.finish();

    // Guard-heavy factorization kernel (LU mini).
    let flu = polybench::kernels::lu::build_lu(40, 8, 5);
    let lu_args = vec![polybench::reference::spd_matrix(40, DType::F64)];
    let mut g = c.benchmark_group("interp_lu_mini");
    g.sample_size(10);
    g.bench_function("tiles_8x5", |b| {
        b.iter(|| {
            let mut a = lu_args.clone();
            execute(&flu, &mut a).expect("run");
            a
        })
    });
    g.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
