//! End-to-end tuning-loop cost, one benchmark per paper experiment family
//! (reduced budget: criterion measures the loop, the figure binaries
//! produce the full-budget results).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polybench::{KernelName, ProblemSize};
use tvm_bench::{run_comparison, ExperimentOptions};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment");
    g.sample_size(10);
    let workloads = [
        ("fig4_5_lu_large", KernelName::Lu, ProblemSize::Large),
        ("fig6_7_lu_xl", KernelName::Lu, ProblemSize::ExtraLarge),
        (
            "fig8_9_cholesky_large",
            KernelName::Cholesky,
            ProblemSize::Large,
        ),
        (
            "fig10_11_cholesky_xl",
            KernelName::Cholesky,
            ProblemSize::ExtraLarge,
        ),
        ("fig12_13_3mm_xl", KernelName::Mm3, ProblemSize::ExtraLarge),
    ];
    for (label, kernel, size) in workloads {
        g.bench_with_input(BenchmarkId::new(label, 20), &20usize, |b, &n| {
            b.iter(|| {
                run_comparison(
                    kernel,
                    size,
                    ExperimentOptions {
                        max_evals: n,
                        seed: 1,
                        autotvm_repeats: 1,
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
