//! Per-component cost: surrogate model fit/predict — the dominant
//! "think time" of the model-based tuners (ytopt RF, XGB GBT).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use surrogate::forest::RandomForest;
use surrogate::gbt::GradientBoosting;
use surrogate::tree::RegressionTree;
use surrogate::Regressor;

fn dataset(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 31 + j * 17) % 97) as f64 / 97.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(j, v)| v * (j + 1) as f64)
                .sum::<f64>()
                + r[0] * r[1]
        })
        .collect();
    (x, y)
}

fn bench_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("surrogate_fit");
    for &n in &[50usize, 100, 200] {
        let (x, y) = dataset(n, 6);
        g.bench_with_input(BenchmarkId::new("rf32", n), &n, |b, _| {
            b.iter(|| {
                let mut rf = RandomForest::new(32).with_seed(1);
                rf.fit(&x, &y);
                rf
            })
        });
        g.bench_with_input(BenchmarkId::new("gbt40", n), &n, |b, _| {
            b.iter(|| {
                let mut m = GradientBoosting::new(40).with_max_depth(4).with_seed(1);
                m.fit(&x, &y);
                m
            })
        });
        g.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| {
                let mut t = RegressionTree::new(12);
                t.fit(&x, &y);
                t
            })
        });
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = dataset(100, 6);
    let mut rf = RandomForest::new(32).with_seed(1);
    rf.fit(&x, &y);
    let (cand, _) = dataset(400, 6);
    c.bench_function("surrogate_predict/rf32_x400_with_std", |b| {
        b.iter(|| rf.predict_with_std_batch(&cand))
    });
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
