//! Terminal scatter plots for the tuning-trace figures.
//!
//! The paper's Figures 4/6/8/10/12 are scatter plots of per-evaluation
//! runtime (y) against elapsed process time (x), one series per tuner.
//! This renders the same picture in a terminal so a reproduction run can
//! be eyeballed against the paper without leaving the shell.

/// One named series of `(x, y)` points.
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// Plot glyph.
    pub glyph: char,
    /// Data points.
    pub points: &'a [(f64, f64)],
}

/// Render series into an `width`×`height` character grid with labeled
/// axes. The y axis is log-scaled when the data spans more than two
/// decades (tuning traces usually do: bad corners are 10–50× the best).
pub fn scatter(series: &[Series<'_>], width: usize, height: usize) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite() && *y > 0.0)
        .collect();
    if pts.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if xmax <= xmin {
        xmax = xmin + 1.0;
    }
    let log_y = ymax / ymin > 100.0;
    let (tymin, tymax) = if log_y {
        (ymin.ln(), ymax.ln())
    } else {
        (ymin, ymax)
    };
    let tspan = if tymax > tymin { tymax - tymin } else { 1.0 };

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in s.points {
            if !(x.is_finite() && y.is_finite()) || y <= 0.0 {
                continue;
            }
            let ty = if log_y { y.ln() } else { y };
            let col = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
            let row = (((ty - tymin) / tspan) * (height - 1) as f64).round() as usize;
            let r = height - 1 - row.min(height - 1);
            let c = col.min(width - 1);
            // Overlaps show the later series' glyph.
            grid[r][c] = s.glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let frac = 1.0 - r as f64 / (height - 1) as f64;
        let label_val = if log_y {
            (tymin + frac * tspan).exp()
        } else {
            tymin + frac * tspan
        };
        out.push_str(&format!("{label_val:>9.3} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9} +{}\n{:>10} {:<.3}{}{:>.3}  (x: elapsed process time, s{})\n",
        "",
        "-".repeat(width),
        "",
        xmin,
        " ".repeat(width.saturating_sub(12)),
        xmax,
        if log_y {
            "; y: runtime, log scale"
        } else {
            "; y: runtime"
        }
    ));
    for s in series {
        out.push_str(&format!("  {} {}\n", s.glyph, s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_bounds() {
        let a = [(0.0, 1.0), (5.0, 2.0), (10.0, 10.0)];
        let b = [(2.0, 8.0), (9.0, 1.5)];
        let out = scatter(
            &[
                Series {
                    label: "ytopt",
                    glyph: 'o',
                    points: &a,
                },
                Series {
                    label: "grid",
                    glyph: 'x',
                    points: &b,
                },
            ],
            40,
            10,
        );
        assert!(out.contains('o'));
        assert!(out.contains('x'));
        assert!(out.contains("ytopt"));
        assert!(out.lines().count() >= 12);
    }

    #[test]
    fn log_scale_kicks_in_for_wide_ranges() {
        let a = [(0.0, 0.01), (1.0, 100.0)];
        let out = scatter(
            &[Series {
                label: "s",
                glyph: '*',
                points: &a,
            }],
            20,
            6,
        );
        assert!(out.contains("log scale"));
    }

    #[test]
    fn empty_data_is_graceful() {
        let out = scatter(
            &[Series {
                label: "s",
                glyph: '*',
                points: &[],
            }],
            20,
            6,
        );
        assert_eq!(out, "(no data)\n");
    }
}
