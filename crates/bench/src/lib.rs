#![warn(missing_docs)]
//! # tvm-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) on
//! the simulated Swing device. See DESIGN.md's experiment index for the
//! mapping and EXPERIMENTS.md for paper-vs-measured results.
//!
//! Binaries (all accept `--help`-free positional args, printed rows are
//! self-describing):
//!
//! * `table1_spaces` — Table 1 (parameter-space cardinalities),
//! * `figure_traces <kernel> <size>` — Figures 4/6/8/10/12 (per-trial
//!   `(elapsed, runtime)` series for the five tuners),
//! * `figure_minruntimes <kernel> <size>` — Figures 5/7/9/11/13 (best
//!   runtime + configuration per tuner),
//! * `run_all` — every experiment, results written to `results/`,
//! * `ablation_kappa`, `ablation_surrogate`, `ablation_model_fidelity` —
//!   the design-choice ablations listed in DESIGN.md.

pub mod plot;

use autotvm::{tune, GaTuner, GridSearchTuner, RandomTuner, TuneOptions, TuningResult, XgbTuner};
use gpu_sim::{GpuSpec, SimDevice};
use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use serde::Serialize;
use tvm_autotune::{MoldEvaluator, YtoptTuner};

/// The five strategies of the paper's §5, in its plotting order.
pub const TUNER_NAMES: [&str; 5] = [
    "AutoTVM-GA",
    "AutoTVM-Random",
    "AutoTVM-GridSearch",
    "AutoTVM-XGB",
    "ytopt",
];

/// Options shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentOptions {
    /// Evaluation budget per tuner (paper: 100).
    pub max_evals: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Timed runs per AutoTVM measurement (AutoTVM repeats; ytopt runs
    /// once per evaluation).
    pub autotvm_repeats: usize,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            max_evals: 100,
            seed: 2023,
            autotvm_repeats: 3,
        }
    }
}

/// One tuner's outcome on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct TunerOutcome {
    /// Tuner display name.
    pub tuner: String,
    /// Number of evaluations completed (≤ budget; XGB may stop early).
    pub evals: usize,
    /// Best runtime found, seconds.
    pub best_runtime_s: f64,
    /// Best configuration's tile values, in parameter order.
    pub best_config: Vec<i64>,
    /// Total autotuning process time, seconds.
    pub total_process_s: f64,
    /// Per-trial `(elapsed_s, runtime_s)` points (the figures' scatter).
    pub trace: Vec<(f64, f64)>,
}

impl TunerOutcome {
    fn from_result(r: &TuningResult) -> TunerOutcome {
        let best = r.best().expect("tuner measured at least one config");
        TunerOutcome {
            tuner: r.tuner.clone(),
            evals: r.len(),
            best_runtime_s: best.runtime_s.expect("best is successful"),
            best_config: best.config.ints(),
            total_process_s: r.total_process_s,
            trace: r
                .trials
                .iter()
                .filter_map(|t| t.runtime_s.map(|rt| (t.elapsed_s, rt)))
                .collect(),
        }
    }
}

/// A full five-tuner comparison on one workload (one paper figure pair).
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    /// Kernel name.
    pub kernel: String,
    /// Problem-size class.
    pub size: String,
    /// Parameter-space cardinality (Table 1 column).
    pub space_size: u128,
    /// Outcomes in [`TUNER_NAMES`] order.
    pub outcomes: Vec<TunerOutcome>,
}

fn evaluator(kernel: KernelName, size: ProblemSize, repeats: usize, seed: u64) -> MoldEvaluator {
    let mold = mold_for(kernel, size);
    let dev = SimDevice::new(GpuSpec::swing_cpu_core()).with_seed(seed);
    MoldEvaluator::simulated(mold, dev).with_repeats(repeats)
}

/// Run the paper's five-tuner comparison for one kernel/size.
pub fn run_comparison(
    kernel: KernelName,
    size: ProblemSize,
    opts: ExperimentOptions,
) -> Experiment {
    let space = polybench::spaces::space_for(kernel, size);
    let space_size = space.size().expect("paper spaces are discrete");

    let tune_opts = TuneOptions {
        max_evals: opts.max_evals,
        batch: 8,
        max_process_s: None,
    };
    // ytopt proposes and evaluates one point at a time (sequential BO).
    let bo_opts = TuneOptions {
        max_evals: opts.max_evals,
        batch: 1,
        max_process_s: None,
    };

    let mut outcomes = Vec::with_capacity(5);

    let ev = evaluator(kernel, size, opts.autotvm_repeats, opts.seed);
    let mut ga = GaTuner::new(space.clone(), opts.seed);
    outcomes.push(TunerOutcome::from_result(&tune(&mut ga, &ev, tune_opts)));

    let mut random = RandomTuner::new(space.clone(), opts.seed);
    outcomes.push(TunerOutcome::from_result(&tune(
        &mut random,
        &ev,
        tune_opts,
    )));

    let mut grid = GridSearchTuner::new(space.clone());
    outcomes.push(TunerOutcome::from_result(&tune(&mut grid, &ev, tune_opts)));

    let mut xgb = XgbTuner::new(space.clone(), opts.seed);
    outcomes.push(TunerOutcome::from_result(&tune(&mut xgb, &ev, tune_opts)));

    // ytopt: single evaluation per configuration (no repeat runs).
    let ev_bo = evaluator(kernel, size, 1, opts.seed);
    let mut ytopt = YtoptTuner::new(space, opts.seed);
    outcomes.push(TunerOutcome::from_result(&tune(
        &mut ytopt, &ev_bo, bo_opts,
    )));

    Experiment {
        kernel: kernel.to_string(),
        size: size.to_string(),
        space_size,
        outcomes,
    }
}

/// Pretty-print one experiment like the paper's figure pair.
pub fn print_experiment(e: &Experiment, with_trace: bool) {
    println!(
        "== {} / {} (space size {}) ==",
        e.kernel, e.size, e.space_size
    );
    println!(
        "{:<20} {:>6} {:>14} {:>18} {:>22}",
        "tuner", "evals", "best (s)", "process time (s)", "best tensor size"
    );
    for o in &e.outcomes {
        let cfg = o
            .best_config
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("x");
        println!(
            "{:<20} {:>6} {:>14.4} {:>18.2} {:>22}",
            o.tuner, o.evals, o.best_runtime_s, o.total_process_s, cfg
        );
    }
    if with_trace {
        for o in &e.outcomes {
            println!("-- trace {} (elapsed_s, runtime_s)", o.tuner);
            for (t, r) in &o.trace {
                println!("{t:.3},{r:.5}");
            }
        }
    }
}

/// Render the experiment's five traces as a terminal scatter plot (the
/// visual shape of the paper's Figures 4/6/8/10/12).
pub fn render_traces(e: &Experiment, width: usize, height: usize) -> String {
    let glyphs = ['g', 'r', '#', 'x', 'o'];
    let series: Vec<plot::Series<'_>> = e
        .outcomes
        .iter()
        .zip(glyphs)
        .map(|(o, glyph)| plot::Series {
            label: o.tuner.as_str(),
            glyph,
            points: &o.trace,
        })
        .collect();
    plot::scatter(&series, width, height)
}

/// Figure/table ids covered per workload, for EXPERIMENTS.md bookkeeping.
pub fn figure_ids(kernel: KernelName, size: ProblemSize) -> Option<(&'static str, &'static str)> {
    match (kernel, size) {
        (KernelName::Lu, ProblemSize::Large) => Some(("Figure 4", "Figure 5")),
        (KernelName::Lu, ProblemSize::ExtraLarge) => Some(("Figure 6", "Figure 7")),
        (KernelName::Cholesky, ProblemSize::Large) => Some(("Figure 8", "Figure 9")),
        (KernelName::Cholesky, ProblemSize::ExtraLarge) => Some(("Figure 10", "Figure 11")),
        (KernelName::Mm3, ProblemSize::ExtraLarge) => Some(("Figure 12", "Figure 13")),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_comparison_runs_all_tuners() {
        let opts = ExperimentOptions {
            max_evals: 8,
            seed: 1,
            autotvm_repeats: 1,
        };
        let e = run_comparison(KernelName::Lu, ProblemSize::Large, opts);
        assert_eq!(e.outcomes.len(), 5);
        assert_eq!(e.space_size, 400);
        for o in &e.outcomes {
            assert!(o.evals >= 1 && o.evals <= 8);
            assert!(o.best_runtime_s > 0.0);
            assert!(o.total_process_s > 0.0);
        }
        let names: Vec<&str> = e.outcomes.iter().map(|o| o.tuner.as_str()).collect();
        assert_eq!(names, TUNER_NAMES.to_vec());
    }

    #[test]
    fn figure_id_mapping_complete() {
        assert!(figure_ids(KernelName::Lu, ProblemSize::Large).is_some());
        assert!(figure_ids(KernelName::Mm3, ProblemSize::ExtraLarge).is_some());
        assert!(figure_ids(KernelName::Gemm, ProblemSize::Large).is_none());
    }
}
