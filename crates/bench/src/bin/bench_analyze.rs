//! Benchmark the static schedule-safety analyzer on the PolyBench molds.
//!
//! Reports, per kernel, the analyzer's cost per configuration (ns), the
//! fraction of sampled configurations it rejects, and the per-code
//! breakdown of the denials — the numbers that justify running it on the
//! tuning hot path: a verdict costs microseconds while the build it can
//! skip costs orders of magnitude more, and under the aggressive spaces
//! the analyzer is the only thing standing between the tuner and racy or
//! out-of-bounds schedules.
//!
//! The pipeline mirrors the evaluator's: the pre-lowering prelint runs
//! on the declared schedule facts first (zero tiles, illegal fuses are
//! denied *without instantiating* — they would panic the scheduler),
//! and only prelint-clean configurations are lowered and analyzed.
//!
//! Usage: `bench_analyze [--smoke] [--mode paper|aggressive]
//! [--size mini|small|medium|large]`
//!
//! Full mode writes `results/BENCH_analyze.json`. Smoke mode is the CI
//! gate: it only prints, and exits nonzero if the aggressive spaces stop
//! producing rejections (the analyzer has gone blind) or if the analyze
//! cost regresses past 3x the committed baseline (the analyzer has
//! become too slow for the hot path).

use polybench::molds::mold_for_mode;
use polybench::{KernelName, ProblemSize, SpaceMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;

const KERNELS: [KernelName; 7] = [
    KernelName::Mm3,
    KernelName::Mm2,
    KernelName::Gemm,
    KernelName::Syrk,
    KernelName::Trmm,
    KernelName::Lu,
    KernelName::Cholesky,
];

struct Row {
    kernel: String,
    configs: usize,
    analyze_ns_per_config: f64,
    instantiate_ns_per_config: f64,
    prelint_rejected: usize,
    analyzer_rejected: usize,
    by_code: BTreeMap<String, usize>,
}

impl Row {
    fn rejected(&self) -> usize {
        self.prelint_rejected + self.analyzer_rejected
    }
}

fn bench_kernel(kernel: KernelName, size: ProblemSize, mode: SpaceMode, configs: usize) -> Row {
    let mold = mold_for_mode(kernel, size, mode);
    let mut rng = SmallRng::seed_from_u64(42);
    let samples: Vec<_> = (0..configs).map(|_| mold.space().sample(&mut rng)).collect();

    // Phase 1 (timed as analysis): the prelint on declared schedule
    // facts. Denied configurations are never instantiated — they would
    // panic the scheduler.
    let mut by_code: BTreeMap<String, usize> = BTreeMap::new();
    let mut prelint_rejected = 0usize;
    let mut clean = Vec::with_capacity(configs);
    let t_lint = Instant::now();
    for config in &samples {
        let lint = mold.prelint(config);
        if lint.is_empty() {
            clean.push(config);
        } else {
            prelint_rejected += 1;
            let mut codes: Vec<&str> = lint.iter().map(|d| d.code).collect();
            codes.sort_unstable();
            codes.dedup();
            for code in codes {
                *by_code.entry(code.to_string()).or_insert(0) += 1;
            }
        }
    }
    let prelint_s = t_lint.elapsed().as_secs_f64();

    // Phase 2 (timed separately): lowering of the survivors — the cost
    // the analyzer competes against.
    let t_inst = Instant::now();
    let funcs: Vec<_> = clean.iter().map(|c| mold.instantiate(c)).collect();
    let instantiate_s = t_inst.elapsed().as_secs_f64();

    // Phase 3 (timed as analysis): the full interval/race analyzer on
    // the instantiated functions.
    let mut analyzer_rejected = 0usize;
    let t0 = Instant::now();
    for func in &funcs {
        let report = tvm_tir::analyze::check(func);
        if report.is_rejected() {
            analyzer_rejected += 1;
            let mut codes: Vec<&str> = report.denials().map(|d| d.code).collect();
            codes.sort_unstable();
            codes.dedup();
            for code in codes {
                *by_code.entry(code.to_string()).or_insert(0) += 1;
            }
        }
    }
    let analyze_s = t0.elapsed().as_secs_f64();

    Row {
        kernel: mold.name().to_string(),
        configs,
        analyze_ns_per_config: (prelint_s + analyze_s) * 1e9 / configs as f64,
        instantiate_ns_per_config: if funcs.is_empty() {
            0.0
        } else {
            instantiate_s * 1e9 / funcs.len() as f64
        },
        prelint_rejected,
        analyzer_rejected,
        by_code,
    }
}

/// The committed baseline's mean analyze cost, if a results file exists.
fn baseline_mean_analyze_ns() -> Option<f64> {
    let raw = std::fs::read_to_string("results/BENCH_analyze.json").ok()?;
    let json: serde_json::Value = serde_json::from_str(&raw).ok()?;
    json.get("mean_analyze_ns_per_config")?.as_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let size = args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Mini);
    let mode = match args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_ascii_lowercase())
        .as_deref()
    {
        Some("paper") => SpaceMode::Paper,
        Some("aggressive") | None => SpaceMode::Aggressive,
        Some(other) => {
            eprintln!("unknown --mode {other:?} (expected paper|aggressive)");
            std::process::exit(2);
        }
    };
    let configs = if smoke { 50 } else { 400 };

    println!(
        "# static schedule-safety analyzer, {configs} sampled configs per kernel, {size}, {mode:?} space"
    );
    println!(
        "{:<10} {:>14} {:>16} {:>9} {:>9}",
        "kernel", "analyze ns/cfg", "lower ns/cfg", "prelint", "analyzer"
    );
    let mut rows = Vec::new();
    for k in KERNELS {
        let row = bench_kernel(k, size, mode, configs);
        println!(
            "{:<10} {:>14.0} {:>16.0} {:>8.1}% {:>8.1}%",
            row.kernel,
            row.analyze_ns_per_config,
            row.instantiate_ns_per_config,
            100.0 * row.prelint_rejected as f64 / row.configs as f64,
            100.0 * row.analyzer_rejected as f64 / row.configs as f64,
        );
        rows.push(row);
    }
    let mut by_code: BTreeMap<String, usize> = BTreeMap::new();
    for row in &rows {
        for (code, n) in &row.by_code {
            *by_code.entry(code.clone()).or_insert(0) += n;
        }
    }
    let total_cfgs: usize = rows.iter().map(|r| r.configs).sum();
    let total_rejected: usize = rows.iter().map(Row::rejected).sum();
    let mean_ns = rows.iter().map(|r| r.analyze_ns_per_config).sum::<f64>() / rows.len() as f64;
    println!(
        "mean {mean_ns:.0} ns/config; {total_rejected}/{total_cfgs} rejected; by code:"
    );
    for (code, n) in &by_code {
        println!("  {code:<18} {n}");
    }

    if smoke {
        let mut failures = Vec::new();
        if mode == SpaceMode::Aggressive && total_rejected == 0 {
            failures.push(
                "aggressive spaces produced zero rejections — the analyzer has gone blind"
                    .to_string(),
            );
        }
        if let Some(baseline) = baseline_mean_analyze_ns() {
            if mean_ns > 3.0 * baseline {
                failures.push(format!(
                    "mean analyze cost {mean_ns:.0} ns/config exceeds 3x the committed \
                     baseline ({baseline:.0} ns/config)"
                ));
            }
        }
        if failures.is_empty() {
            println!("smoke gate: ok (skipping results/BENCH_analyze.json)");
        } else {
            for f in &failures {
                eprintln!("smoke gate FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }

    let json = serde_json::json!({
        "size": size.to_string(),
        "mode": format!("{mode:?}").to_lowercase(),
        "configs_per_kernel": configs,
        "kernels": rows.iter().map(|r| serde_json::json!({
            "kernel": r.kernel,
            "configs": r.configs,
            "analyze_ns_per_config": r.analyze_ns_per_config,
            "instantiate_ns_per_config": r.instantiate_ns_per_config,
            "prelint_rejected": r.prelint_rejected,
            "analyzer_rejected": r.analyzer_rejected,
            "rejected": r.rejected(),
            "fraction_rejected": r.rejected() as f64 / r.configs as f64,
            "rejected_by_code": r.by_code,
        })).collect::<Vec<_>>(),
        "rejected_by_code": by_code,
        "mean_analyze_ns_per_config": mean_ns,
        "fraction_rejected_overall": total_rejected as f64 / total_cfgs as f64,
    });
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(
        "results/BENCH_analyze.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results/BENCH_analyze.json");
    println!("wrote results/BENCH_analyze.json");
}
