//! Benchmark the static schedule-safety analyzer on the PolyBench molds.
//!
//! Reports, per kernel, the analyzer's cost per configuration (ns) and
//! the fraction of sampled configurations it rejects — the number that
//! justifies running it on the tuning hot path: a verdict costs
//! microseconds while the build it can skip costs ~a second.
//!
//! Usage: `bench_analyze [--smoke] [--size mini|small|medium|large]`
//! Full mode writes `results/BENCH_analyze.json`; smoke mode only prints.

use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

const KERNELS: [KernelName; 7] = [
    KernelName::Mm3,
    KernelName::Mm2,
    KernelName::Gemm,
    KernelName::Syrk,
    KernelName::Trmm,
    KernelName::Lu,
    KernelName::Cholesky,
];

struct Row {
    kernel: String,
    configs: usize,
    analyze_ns_per_config: f64,
    instantiate_ns_per_config: f64,
    rejected: usize,
}

fn bench_kernel(kernel: KernelName, size: ProblemSize, configs: usize, seed: u64) -> Row {
    let mold = mold_for(kernel, size);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Instantiate outside the timed region so the analyzer's cost is
    // isolated from lowering.
    let mut funcs = Vec::with_capacity(configs);
    let t_inst = Instant::now();
    for _ in 0..configs {
        let config = mold.space().sample(&mut rng);
        funcs.push(mold.instantiate(&config));
    }
    let instantiate_s = t_inst.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut rejected = 0usize;
    for func in &funcs {
        if tvm_tir::analyze::check(func).is_rejected() {
            rejected += 1;
        }
    }
    let analyze_s = t0.elapsed().as_secs_f64();

    Row {
        kernel: mold.name().to_string(),
        configs,
        analyze_ns_per_config: analyze_s * 1e9 / configs as f64,
        instantiate_ns_per_config: instantiate_s * 1e9 / configs as f64,
        rejected,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let size = args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Mini);
    let configs = if smoke { 20 } else { 200 };

    println!("# static schedule-safety analyzer, {configs} sampled configs per kernel, {size}");
    println!(
        "{:<10} {:>14} {:>16} {:>10}",
        "kernel", "analyze ns/cfg", "lower ns/cfg", "rejected"
    );
    let mut rows = Vec::new();
    for k in KERNELS {
        let row = bench_kernel(k, size, configs, 42);
        println!(
            "{:<10} {:>14.0} {:>16.0} {:>9.1}%",
            row.kernel,
            row.analyze_ns_per_config,
            row.instantiate_ns_per_config,
            100.0 * row.rejected as f64 / row.configs as f64
        );
        rows.push(row);
    }
    let total_cfgs: usize = rows.iter().map(|r| r.configs).sum();
    let total_rejected: usize = rows.iter().map(|r| r.rejected).sum();
    let mean_ns = rows.iter().map(|r| r.analyze_ns_per_config).sum::<f64>() / rows.len() as f64;
    println!(
        "mean {mean_ns:.0} ns/config; {total_rejected}/{total_cfgs} rejected \
         (molds emit only safe schedules — rejections here would be analyzer bugs)"
    );

    if smoke {
        println!("smoke mode: skipping results/BENCH_analyze.json");
        return;
    }

    let json = serde_json::json!({
        "size": size.to_string(),
        "configs_per_kernel": configs,
        "kernels": rows.iter().map(|r| serde_json::json!({
            "kernel": r.kernel,
            "configs": r.configs,
            "analyze_ns_per_config": r.analyze_ns_per_config,
            "instantiate_ns_per_config": r.instantiate_ns_per_config,
            "rejected": r.rejected,
            "fraction_rejected": r.rejected as f64 / r.configs as f64,
        })).collect::<Vec<_>>(),
        "mean_analyze_ns_per_config": mean_ns,
        "fraction_rejected_overall": total_rejected as f64 / total_cfgs as f64,
    });
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(
        "results/BENCH_analyze.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results/BENCH_analyze.json");
    println!("wrote results/BENCH_analyze.json");
}
