//! Calibration probe: sweep tile sizes on each paper workload and print
//! the modeled runtime landscape (not a paper artifact; used to sanity
//! check the device model and pick documentation examples).

use gpu_sim::{GpuSpec, SimDevice};
use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use tvm_autotune::MoldEvaluator;

fn main() {
    for (kernel, size) in [
        (KernelName::Lu, ProblemSize::Large),
        (KernelName::Lu, ProblemSize::ExtraLarge),
        (KernelName::Cholesky, ProblemSize::Large),
    ] {
        let mold = mold_for(kernel, size);
        let ev = MoldEvaluator::simulated(
            mold,
            SimDevice::new(GpuSpec::swing_cpu_core()).with_noise(0.0),
        );
        let space = ev.space().clone();
        println!("== {kernel} {size} ==");
        let p0 = space.get("P0").expect("P0");
        let p1 = space.get("P1").expect("P1");
        let c0 = p0.cardinality().expect("discrete") as usize;
        let c1 = p1.cardinality().expect("discrete") as usize;
        let mut best = (f64::INFINITY, 0i64, 0i64);
        for i in 0..c0 {
            for j in 0..c1 {
                let cfg = configspace::Configuration::new(
                    vec!["P0".into(), "P1".into()],
                    vec![p0.value_at(i), p1.value_at(j)],
                );
                let r = autotvm::Evaluator::evaluate(&ev, &cfg);
                let t = r.runtime_s.expect("ok");
                if t < best.0 {
                    best = (t, cfg.int("P0"), cfg.int("P1"));
                }
                if i % 4 == 0 && j % 4 == 0 {
                    println!(
                        "ty={:>5} tx={:>5} t={:.4}s",
                        cfg.int("P0"),
                        cfg.int("P1"),
                        t
                    );
                }
            }
        }
        println!("BEST: {}x{} -> {:.4}s", best.1, best.2, best.0);
    }
}
