//! Compiled-VM benchmark: interpreter vs VM per-trial execution cost.
//!
//! For each of the paper's kernels (3mm, LU, Cholesky) the baseline
//! configuration is lowered once and executed on both engines from
//! identical inputs; outputs must match bit for bit (the binary exits
//! nonzero on any divergence, which is what the CI smoke job checks).
//! A second phase measures end-to-end tuning throughput (trials/sec)
//! with a real-execution evaluator on the interpreter-pinned CPU device
//! vs the compiled one, cache counters included.
//!
//! Usage: `bench_vm [--smoke] [--size mini|small|medium|large]`
//! Full mode writes `results/BENCH_vm.json`; smoke mode only prints.

use autotvm::{tune, RandomTuner, TuneOptions};
use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use std::time::Instant;
use tvm_autotune::MoldEvaluator;
use tvm_runtime::{compile, interp, vm, CpuDevice, NDArray};

struct KernelRow {
    kernel: &'static str,
    size: ProblemSize,
    elements: usize,
    compile_s: f64,
    interp_s: f64,
    vm_s: f64,
}

impl KernelRow {
    fn interp_ns_per_element(&self) -> f64 {
        self.interp_s * 1e9 / self.elements as f64
    }
    fn vm_ns_per_element(&self) -> f64 {
        self.vm_s * 1e9 / self.elements as f64
    }
    fn speedup(&self) -> f64 {
        self.interp_s / self.vm_s
    }
}

/// Time one kernel on both engines; panics-free divergence reporting.
fn bench_kernel(kernel: KernelName, size: ProblemSize, vm_reps: usize) -> KernelRow {
    let mold = mold_for(kernel, size);
    let config = mold.baseline_configuration();
    let func = mold.instantiate(&config);
    let args = mold.init_args();
    let elements: usize = func
        .params
        .iter()
        .map(|b| b.shape.iter().product::<usize>())
        .sum();

    let mut via_interp = args.clone();
    let t0 = Instant::now();
    interp::execute(&func, &mut via_interp).expect("interpreter run");
    let interp_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let cf = compile(&func).expect("PolyBench kernels must compile");
    let compile_s = t0.elapsed().as_secs_f64();

    let mut vm_s = f64::INFINITY;
    let mut via_vm: Vec<NDArray> = Vec::new();
    for _ in 0..vm_reps.max(1) {
        via_vm = args.clone();
        let t0 = Instant::now();
        vm::execute(&cf, &mut via_vm).expect("vm run");
        vm_s = vm_s.min(t0.elapsed().as_secs_f64());
    }

    for (i, (a, b)) in via_interp.iter().zip(&via_vm).enumerate() {
        if a != b {
            eprintln!(
                "DIVERGENCE: kernel {} size {} arg {} differs between interpreter and VM",
                mold.name(),
                size,
                i
            );
            std::process::exit(1);
        }
    }

    KernelRow {
        kernel: match kernel {
            KernelName::Mm3 => "3mm",
            KernelName::Lu => "lu",
            KernelName::Cholesky => "cholesky",
            _ => "other",
        },
        size,
        elements,
        compile_s,
        interp_s,
        vm_s,
    }
}

/// End-to-end tuning throughput: trials/sec on a real-execution
/// evaluator, interpreter-pinned vs compiled CPU device.
fn trials_per_sec(compiled: bool, max_evals: usize) -> (f64, u64, u64) {
    let mold = mold_for(KernelName::Lu, ProblemSize::Mini);
    let device = if compiled {
        CpuDevice::new()
    } else {
        CpuDevice::interpreter()
    };
    let ev = MoldEvaluator::real(mold, device);
    let mut tuner = RandomTuner::new(ev.space().clone(), 2023);
    let t0 = Instant::now();
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals,
            batch: 8,
            max_process_s: None,
        },
    );
    let wall = t0.elapsed().as_secs_f64();
    let cache = res.cache.unwrap_or_default();
    (res.len() as f64 / wall, cache.hits, cache.misses)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let size = args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(if smoke {
            ProblemSize::Mini
        } else {
            ProblemSize::Small
        });
    let vm_reps = if smoke { 3 } else { 5 };

    let kernels = [KernelName::Mm3, KernelName::Lu, KernelName::Cholesky];
    let mut rows = Vec::new();
    println!("kernel     size    elements  interp ns/el    vm ns/el  compile ms  speedup");
    for k in kernels {
        let row = bench_kernel(k, size, vm_reps);
        println!(
            "{:<10} {:<7} {:>9}  {:>12.1}  {:>10.1}  {:>10.3}  {:>6.1}x",
            row.kernel,
            row.size.to_string(),
            row.elements,
            row.interp_ns_per_element(),
            row.vm_ns_per_element(),
            row.compile_s * 1e3,
            row.speedup()
        );
        rows.push(row);
    }

    let max_evals = if smoke { 6 } else { 20 };
    let (interp_tps, _, _) = trials_per_sec(false, max_evals);
    let (vm_tps, hits, misses) = trials_per_sec(true, max_evals);
    println!(
        "end-to-end (lu/mini, {max_evals} evals): interp {interp_tps:.1} trials/s, \
         vm {vm_tps:.1} trials/s ({:.1}x, cache {hits} hits / {misses} misses)",
        vm_tps / interp_tps
    );

    if smoke {
        println!("smoke mode: outputs bit-identical on all kernels");
        return;
    }

    let json = serde_json::json!({
        "size": size.to_string(),
        "kernels": rows.iter().map(|r| serde_json::json!({
            "kernel": r.kernel,
            "size": r.size.to_string(),
            "elements": r.elements,
            "compile_s": r.compile_s,
            "interp_s": r.interp_s,
            "vm_s": r.vm_s,
            "interp_ns_per_element": r.interp_ns_per_element(),
            "vm_ns_per_element": r.vm_ns_per_element(),
            "speedup": r.speedup(),
        })).collect::<Vec<_>>(),
        "end_to_end": {
            "kernel": "lu",
            "size": "mini",
            "max_evals": max_evals,
            "interp_trials_per_s": interp_tps,
            "vm_trials_per_s": vm_tps,
            "throughput_x": vm_tps / interp_tps,
            "cache_hits": hits,
            "cache_misses": misses,
        },
    });
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(
        "results/BENCH_vm.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results/BENCH_vm.json");
    println!("wrote results/BENCH_vm.json");
}
