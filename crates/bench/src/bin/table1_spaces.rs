//! Table 1: parameter-space cardinality for each kernel/problem size.
//!
//! Usage: `table1_spaces`

use polybench::spaces::{space_for, table1};

fn main() {
    println!("# Table 1: Parameter space for each application");
    println!(
        "{:<10} {:<12} {:>16}",
        "Kernels", "Problem Size", "Parameter Space"
    );
    for (kernel, size, cardinality) in table1() {
        println!(
            "{:<10} {:<12} {:>16}",
            kernel.to_string(),
            size.to_string(),
            cardinality
        );
    }
    println!();
    println!("# Per-parameter detail (extralarge 3mm, the paper's §4 listing)");
    let cs = space_for(
        polybench::KernelName::Mm3,
        polybench::ProblemSize::ExtraLarge,
    );
    for p in cs.params() {
        let card = p.cardinality().expect("discrete");
        let values: Vec<String> = (0..card as usize)
            .map(|i| p.value_at(i).to_string())
            .collect();
        println!("{} ({} values): [{}]", p.name(), card, values.join(", "));
    }
}
