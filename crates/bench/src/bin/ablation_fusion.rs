//! Ablation A4: operator fusion via `compute_at` (the FuseOps idea of the
//! paper's Figure 1, applied at the schedule level).
//!
//! Compares the paper's root schedule of 3mm (six split factors, stages
//! computed separately) against fused variants where the intermediate
//! products are attached into `G`'s tile loops, on the simulated device.
//!
//! Usage: `ablation_fusion [size]` (default large)

use gpu_sim::{GpuSpec, SimDevice};
use polybench::datasets::mm3_dims;
use polybench::kernels::mm3::{build_3mm, build_3mm_fused};
use polybench::ProblemSize;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size = args
        .get(1)
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Large);
    let d = mm3_dims(size);
    let dev = SimDevice::new(GpuSpec::swing_cpu_core()).with_noise(0.0);

    println!("# Ablation A4: compute_at fusion on 3mm/{size}");
    println!(
        "{:<34} {:>14} {:>12}",
        "schedule", "predicted (s)", "vs root"
    );
    let tiles: [(i64, i64); 3] = [(8, 8), (40, 40), (100, 100)];
    for (ty, tx) in tiles {
        let root = dev.predict(&build_3mm(&d, [ty, tx, ty, tx, ty, tx]));
        println!(
            "{:<34} {:>14.4} {:>12}",
            format!("root, tiles {ty}x{tx}"),
            root,
            "1.00x"
        );
        let fused_e = dev.predict(&build_3mm_fused(&d, ty, tx, false));
        println!(
            "{:<34} {:>14.4} {:>11.2}x",
            format!("E attached at G.yo, tiles {ty}x{tx}"),
            fused_e,
            fused_e / root
        );
        let fused_ef = dev.predict(&build_3mm_fused(&d, ty, tx, true));
        println!(
            "{:<34} {:>14.4} {:>11.2}x",
            format!("E+F attached, tiles {ty}x{tx}"),
            fused_ef,
            fused_ef / root
        );
    }
    println!(
        "\n(fusing F into every tile pair recomputes it {}x — the model\n\
         prices the locality-vs-recompute trade; correctness of every\n\
         variant is asserted in polybench's fused_3mm_matches_reference)",
        d.n / 40
    );
}
