//! Tuning-service throughput benchmark and integrity gate.
//!
//! Runs the multi-tenant service at increasing tenant counts (1, 10, 100
//! concurrent sessions; smoke mode stops at 10), measuring sessions/sec
//! and the p50/p99 wall-clock latency of individual live trials. The
//! binary exits nonzero if any session is lost (submitted but never
//! terminal), duplicated (trial indices repeat inside a report), or ends
//! in any state other than `Completed` — which is what the CI smoke job
//! checks.
//!
//! Usage: `bench_service [--smoke] [--evals N] [--workers N]`
//! Writes `results/BENCH_service.json` in both modes.

use std::io::Write;
use std::time::{Duration, Instant};
use tvm_service::job::{EngineKind, JobSpec, TunerKind};
use tvm_service::service::{JobState, ServiceConfig, TuningService};

const KERNELS: [&str; 7] = ["lu", "cholesky", "3mm", "gemm", "2mm", "syrk", "trmm"];

struct TierRow {
    tenants: usize,
    wall_s: f64,
    sessions_per_sec: f64,
    trials: usize,
    p50_trial_s: f64,
    p99_trial_s: f64,
    cache_hits: u64,
    cache_misses: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn spec_for(i: usize, evals: usize) -> JobSpec {
    let mut spec = JobSpec::new(
        format!("bench-tenant-{i}"),
        KERNELS[i % KERNELS.len()],
        "mini",
    );
    spec.tuner = TunerKind::Random;
    spec.seed = i as u64;
    spec.max_evals = evals;
    spec.batch = 4;
    spec.engine = EngineKind::Simulated;
    spec
}

/// Run one tier; exits the process on any lost/duplicated session.
fn run_tier(tenants: usize, evals: usize, workers: usize) -> TierRow {
    let dir = std::env::temp_dir()
        .join("tvm-bench-service")
        .join(format!("tier-{tenants}"));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServiceConfig {
        workers,
        queue_capacity: tenants.max(8) * 2,
        poll_ms: 2,
        ..ServiceConfig::default()
    };
    let (svc, _) = TuningService::open(&dir, cfg).expect("open service");

    let t0 = Instant::now();
    let ids: Vec<u64> = (0..tenants)
        .map(|i| {
            svc.submit(spec_for(i, evals)).unwrap_or_else(|r| {
                eprintln!("LOST SESSION: tenant {i} rejected at admission: {r}");
                std::process::exit(1);
            })
        })
        .collect();

    let mut trial_latencies: Vec<f64> = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        let Some(outcome) = svc.wait(*id, Duration::from_secs(600)) else {
            eprintln!("LOST SESSION: tenant {i} (job {id}) never reached a terminal state");
            std::process::exit(1);
        };
        if outcome.state != JobState::Completed {
            eprintln!(
                "LOST SESSION: tenant {i} (job {id}) ended {:?}: {:?}",
                outcome.state, outcome.message
            );
            std::process::exit(1);
        }
        let report = outcome.report.expect("completed outcome has a report");
        let mut seen = vec![false; evals];
        for t in &report.trials {
            if t.index >= evals || seen[t.index] {
                eprintln!(
                    "DUPLICATED SESSION: tenant {i} (job {id}) repeats trial index {}",
                    t.index
                );
                std::process::exit(1);
            }
            seen[t.index] = true;
            if !t.replayed {
                trial_latencies.push(t.wall_s);
            }
        }
        if report.trials.len() != evals {
            eprintln!(
                "LOST TRIALS: tenant {i} (job {id}) has {}/{} trials",
                report.trials.len(),
                evals
            );
            std::process::exit(1);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let status = svc.status();
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    trial_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    TierRow {
        tenants,
        wall_s,
        sessions_per_sec: tenants as f64 / wall_s.max(1e-9),
        trials: trial_latencies.len(),
        p50_trial_s: percentile(&trial_latencies, 0.50),
        p99_trial_s: percentile(&trial_latencies, 0.99),
        cache_hits: status.cache.hits,
        cache_misses: status.cache.misses,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let evals = flag("--evals").unwrap_or(8);
    let workers = flag("--workers").unwrap_or(4);
    let tiers: &[usize] = if smoke { &[1, 10] } else { &[1, 10, 100] };

    println!("# bench_service: {evals} evals/session, {workers} workers");
    println!(
        "{:>8} {:>10} {:>14} {:>8} {:>12} {:>12} {:>16}",
        "tenants", "wall (s)", "sessions/sec", "trials", "p50 (ms)", "p99 (ms)", "cache hit/miss"
    );
    let mut rows = Vec::new();
    for &tenants in tiers {
        let row = run_tier(tenants, evals, workers);
        println!(
            "{:>8} {:>10.3} {:>14.2} {:>8} {:>12.3} {:>12.3} {:>11}/{}",
            row.tenants,
            row.wall_s,
            row.sessions_per_sec,
            row.trials,
            row.p50_trial_s * 1e3,
            row.p99_trial_s * 1e3,
            row.cache_hits,
            row.cache_misses
        );
        rows.push(row);
    }

    std::fs::create_dir_all("results").expect("mkdir results");
    let mut f = std::io::BufWriter::new(
        std::fs::File::create("results/BENCH_service.json").expect("create json"),
    );
    writeln!(f, "[").expect("write");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "  {{\"tenants\": {}, \"wall_s\": {:.6}, \"sessions_per_sec\": {:.3}, \
             \"live_trials\": {}, \"p50_trial_s\": {:.6}, \"p99_trial_s\": {:.6}, \
             \"cache_hits\": {}, \"cache_misses\": {}}}{}",
            r.tenants,
            r.wall_s,
            r.sessions_per_sec,
            r.trials,
            r.p50_trial_s,
            r.p99_trial_s,
            r.cache_hits,
            r.cache_misses,
            comma
        )
        .expect("write");
    }
    writeln!(f, "]").expect("write");
    println!("wrote results/BENCH_service.json ({} tiers)", rows.len());
}
