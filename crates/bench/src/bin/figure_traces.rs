//! Figures 4, 6, 8, 10, 12: the autotuning process over time.
//!
//! Usage: `figure_traces <kernel> <size> [max_evals] [seed]`
//! e.g. `figure_traces lu large` regenerates Figure 4's five series.
//!
//! Each printed CSV row is one evaluation: `tuner,index,elapsed_s,runtime_s`
//! — the paper plots runtime (y) against elapsed process time (x).

use polybench::{KernelName, ProblemSize};
use tvm_bench::{run_comparison, ExperimentOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = args
        .get(1)
        .and_then(|s| KernelName::parse(s))
        .unwrap_or(KernelName::Lu);
    let size = args
        .get(2)
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Large);
    let max_evals = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(2023);

    let opts = ExperimentOptions {
        max_evals,
        seed,
        ..Default::default()
    };
    let e = run_comparison(kernel, size, opts);
    if let Some((trace_fig, _)) = tvm_bench::figure_ids(kernel, size) {
        println!("# {trace_fig}: autotuning process over time, {kernel} {size}");
    }
    println!("tuner,index,elapsed_s,runtime_s");
    for o in &e.outcomes {
        for (i, (t, r)) in o.trace.iter().enumerate() {
            println!("{},{},{:.3},{:.5}", o.tuner, i, t, r);
        }
    }
    eprintln!();
    tvm_bench::print_experiment(&e, false);
    println!();
    print!("{}", tvm_bench::render_traces(&e, 100, 24));
}
