//! Figures 5, 7, 9, 11, 13: minimum runtimes (and best tensor sizes) per
//! tuner.
//!
//! Usage: `figure_minruntimes <kernel> <size> [max_evals] [seed]`
//! e.g. `figure_minruntimes lu large` regenerates Figure 5.

use polybench::{KernelName, ProblemSize};
use tvm_bench::{run_comparison, ExperimentOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = args
        .get(1)
        .and_then(|s| KernelName::parse(s))
        .unwrap_or(KernelName::Lu);
    let size = args
        .get(2)
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Large);
    let max_evals = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(2023);

    let opts = ExperimentOptions {
        max_evals,
        seed,
        ..Default::default()
    };
    let e = run_comparison(kernel, size, opts);
    if let Some((_, min_fig)) = tvm_bench::figure_ids(kernel, size) {
        println!("# {min_fig}: minimum runtimes, {kernel} {size}");
    }
    tvm_bench::print_experiment(&e, false);
}
