//! Ablation A1: LCB exploration weight κ (DESIGN.md experiment index).
//!
//! Runs the BO tuner on LU-large with κ ∈ {0, 1, 1.96, 4} (and EI/PI for
//! reference) and reports best runtime + process time. κ = 1.96 is
//! ytopt's default; κ = 0 is pure exploitation.
//!
//! Usage: `ablation_kappa [max_evals] [seed]`

use autotvm::{tune, TuneOptions};
use gpu_sim::{GpuSpec, SimDevice};
use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use tvm_autotune::{MoldEvaluator, YtoptTuner};
use ytopt_bo::acquisition::Acquisition;
use ytopt_bo::search::SearchConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_evals = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2023);

    let variants: Vec<(String, Acquisition)> = vec![
        ("LCB k=0.0".into(), Acquisition::Lcb { kappa: 0.0 }),
        ("LCB k=1.0".into(), Acquisition::Lcb { kappa: 1.0 }),
        ("LCB k=1.96".into(), Acquisition::Lcb { kappa: 1.96 }),
        ("LCB k=4.0".into(), Acquisition::Lcb { kappa: 4.0 }),
        ("EI".into(), Acquisition::Ei),
        ("PI".into(), Acquisition::Pi),
    ];

    println!("# Ablation A1: acquisition function on lu/large ({max_evals} evals, seed {seed})");
    println!(
        "{:<12} {:>12} {:>16} {:>20}",
        "acquisition", "best (s)", "process (s)", "best tensor size"
    );
    for (label, acq) in variants {
        let mold = mold_for(KernelName::Lu, ProblemSize::Large);
        let dev = SimDevice::new(GpuSpec::swing_cpu_core()).with_seed(seed);
        let ev = MoldEvaluator::simulated(mold, dev);
        let space = ev.space().clone();
        let mut tuner = YtoptTuner::with_config(
            space,
            SearchConfig {
                acquisition: acq,
                seed,
                ..Default::default()
            },
        );
        let res = tune(
            &mut tuner,
            &ev,
            TuneOptions {
                max_evals,
                batch: 1,
                max_process_s: None,
            },
        );
        let best = res.best().expect("ran");
        let cfg = best
            .config
            .ints()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("x");
        println!(
            "{:<12} {:>12.4} {:>16.2} {:>20}",
            label,
            best.runtime_s.expect("ok"),
            res.total_process_s,
            cfg
        );
    }
}
