//! Run every paper experiment (Table 1 + Figures 4–13) and write results
//! to `results/` (JSON per experiment + a summary text file).
//!
//! Usage: `run_all [max_evals] [seed] [outdir]`

use polybench::spaces::table1;
use polybench::{KernelName, ProblemSize};
use std::fmt::Write as _;
use std::path::PathBuf;
use tvm_bench::{figure_ids, print_experiment, run_comparison, ExperimentOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_evals = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2023);
    let outdir = PathBuf::from(args.get(3).map(|s| s.as_str()).unwrap_or("results"));
    std::fs::create_dir_all(&outdir).expect("create results dir");

    let mut summary = String::new();

    // Table 1.
    let _ = writeln!(summary, "# Table 1: parameter-space cardinalities");
    for (k, s, card) in table1() {
        let _ = writeln!(summary, "{k:<10} {s:<12} {card:>16}");
    }
    let _ = writeln!(summary);

    // Figures 4-13: the five workload comparisons.
    let workloads = [
        (KernelName::Lu, ProblemSize::Large),
        (KernelName::Lu, ProblemSize::ExtraLarge),
        (KernelName::Cholesky, ProblemSize::Large),
        (KernelName::Cholesky, ProblemSize::ExtraLarge),
        (KernelName::Mm3, ProblemSize::ExtraLarge),
    ];
    let opts = ExperimentOptions {
        max_evals,
        seed,
        ..Default::default()
    };

    for (kernel, size) in workloads {
        let e = run_comparison(kernel, size, opts);
        let (trace_fig, min_fig) = figure_ids(kernel, size).expect("paper workload");
        println!("### {trace_fig} / {min_fig}");
        print_experiment(&e, false);
        println!();

        let _ = writeln!(summary, "# {trace_fig} / {min_fig}: {kernel} {size}");
        let _ = writeln!(
            summary,
            "{:<20} {:>6} {:>12} {:>16} {:>24}",
            "tuner", "evals", "best(s)", "process(s)", "best config"
        );
        for o in &e.outcomes {
            let cfg = o
                .best_config
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("x");
            let _ = writeln!(
                summary,
                "{:<20} {:>6} {:>12.4} {:>16.2} {:>24}",
                o.tuner, o.evals, o.best_runtime_s, o.total_process_s, cfg
            );
        }
        let _ = writeln!(summary);

        let json = serde_json::to_string_pretty(&e).expect("experiment serializes");
        let path = outdir.join(format!("{kernel}-{size}.json"));
        std::fs::write(&path, json).expect("write experiment json");
    }

    std::fs::write(outdir.join("summary.txt"), &summary).expect("write summary");
    println!("{summary}");
    println!("results written to {}", outdir.display());
}
