//! Worker-pool scaling bench: parallel dispatch vs sequential execution.
//!
//! Three invariants back the CI smoke step:
//!
//! 1. **No divergence** — every PolyBench kernel, under its default and
//!    randomly sampled configurations, must produce bit-identical
//!    outputs on the optimized device at 1, 2, 4 and 7 threads and on
//!    the reference interpreter. Any mismatch exits nonzero.
//! 2. **No lost fallback accounting** — every runtime entry into a
//!    `Parallel` loop must land in exactly one counter bucket
//!    (`dispatches` or `fallbacks`, with per-reason counts summing to
//!    the fallback total). Kernels whose schedules carry parallel
//!    annotations (gemm, 3mm, 2mm, syrk) must show at least one entry
//!    per device run; kernels without them (lu, cholesky, trmm) must
//!    show none at all.
//! 3. **Pool reuse** — after the first dispatch warms the pool,
//!    `threads_spawned` must not move again: the steady state performs
//!    zero thread spawns per trial.
//!
//! Full mode times every kernel's baseline configuration at 1/2/4/8
//! threads (min-of-reps ns/element) and writes
//! `results/BENCH_parallel.json`, including `host_cores` — scaling
//! numbers are only meaningful when the host has that many cores.
//!
//! Usage: `bench_parallel [--smoke] [--size mini|small|medium|large]`

use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use tvm_runtime::{compile_optimized, engine_fingerprint, interp, pool, vm, CpuDevice, Device, NDArray};

const KERNELS: [KernelName; 7] = [
    KernelName::Mm3,
    KernelName::Lu,
    KernelName::Cholesky,
    KernelName::Gemm,
    KernelName::Mm2,
    KernelName::Syrk,
    KernelName::Trmm,
];

/// Kernels whose schedules annotate an outer tile loop `Parallel`.
fn has_parallel_annotation(kernel: KernelName) -> bool {
    matches!(
        kernel,
        KernelName::Gemm | KernelName::Mm3 | KernelName::Mm2 | KernelName::Syrk
    )
}

fn kernel_label(kernel: KernelName) -> &'static str {
    match kernel {
        KernelName::Gemm => "gemm",
        KernelName::Mm3 => "3mm",
        KernelName::Mm2 => "2mm",
        KernelName::Lu => "lu",
        KernelName::Cholesky => "cholesky",
        KernelName::Syrk => "syrk",
        KernelName::Trmm => "trmm",
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_parallel: {msg}");
    std::process::exit(1);
}

/// Divergence + accounting phase for one kernel: run its default and
/// sampled configurations on the optimized device at every thread
/// count in `threads`, against the interpreter oracle from identical
/// inputs. Returns the number of device runs.
fn differential(
    kernel: KernelName,
    size: ProblemSize,
    configs_per_kernel: usize,
    threads: &[usize],
    dev: &CpuDevice,
) -> u64 {
    let mold = mold_for(kernel, size);
    let mut rng = SmallRng::seed_from_u64(777);
    let mut configs = vec![mold.space().default_configuration()];
    for _ in 1..configs_per_kernel.max(1) {
        configs.push(mold.space().sample(&mut rng));
    }
    let mut runs = 0u64;
    for config in &configs {
        let func = mold.instantiate(config);
        let args = mold.init_args();
        let mut oracle: Vec<NDArray> = args.clone();
        interp::execute(&func, &mut oracle).unwrap_or_else(|e| {
            die(&format!(
                "{} / {config}: interpreter oracle failed: {e:?}",
                mold.name()
            ))
        });
        for &t in threads {
            pool::set_num_threads(t);
            let mut via_dev: Vec<NDArray> = args.clone();
            dev.run(&func, &mut via_dev).unwrap_or_else(|e| {
                die(&format!(
                    "{} / {config} @ {t} threads: device failed: {e}",
                    mold.name()
                ))
            });
            runs += 1;
            for (i, (a, b)) in oracle.iter().zip(&via_dev).enumerate() {
                if a != b {
                    die(&format!(
                        "DIVERGENCE: {} / {config} @ {t} threads: arg {i} differs \
                         from the interpreter",
                        mold.name()
                    ));
                }
            }
        }
    }
    runs
}

/// The accounting invariant for one kernel's device: parallel-loop
/// entries partition into dispatches + fallbacks, reasons cover every
/// fallback, and the census matches the kernel's schedule.
fn check_accounting(kernel: KernelName, dev: &CpuDevice, runs: u64) {
    let stats = dev
        .par_stats()
        .unwrap_or_else(|| die("optimized device reports no ParStats"));
    let reason_sum: u64 = stats.fallback_reasons.iter().map(|(_, n)| n).sum();
    if reason_sum != stats.fallbacks {
        die(&format!(
            "{}: lost fallback accounting: {} fallbacks but reasons sum to {reason_sum}: {:?}",
            kernel_label(kernel),
            stats.fallbacks,
            stats.fallback_reasons
        ));
    }
    let entries = stats.dispatches + stats.fallbacks;
    if has_parallel_annotation(kernel) {
        if stats.loops_proven + stats.loops_unproven < runs {
            die(&format!(
                "{}: {} runs prepared only {} parallel loops — census lost",
                kernel_label(kernel),
                runs,
                stats.loops_proven + stats.loops_unproven
            ));
        }
        if entries < runs {
            die(&format!(
                "{}: {} runs but only {entries} parallel-loop entries counted \
                 ({} dispatches + {} fallbacks)",
                kernel_label(kernel),
                runs,
                stats.dispatches,
                stats.fallbacks
            ));
        }
    } else if stats.loops_proven + stats.loops_unproven + entries != 0 {
        die(&format!(
            "{}: carries no parallel annotation but counted {:?}",
            kernel_label(kernel),
            stats
        ));
    }
}

struct ThreadPoint {
    threads: usize,
    best_s: f64,
}

struct KernelScaling {
    kernel: &'static str,
    elements: usize,
    points: Vec<ThreadPoint>,
}

/// Time one kernel's baseline configuration at each thread count
/// (min-of-reps; same compiled function, same inputs).
fn time_kernel(kernel: KernelName, size: ProblemSize, reps: usize, threads: &[usize]) -> KernelScaling {
    let mold = mold_for(kernel, size);
    let config = mold.baseline_configuration();
    let func = mold.instantiate(&config);
    let args = mold.init_args();
    let elements: usize = func
        .params
        .iter()
        .map(|b| b.shape.iter().product::<usize>())
        .sum();
    let cf = compile_optimized(&func).expect("optimized pipeline must compile");
    let mut points = Vec::new();
    for &t in threads {
        pool::set_num_threads(t);
        let mut best_s = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let mut a = args.clone();
            let t0 = Instant::now();
            vm::execute(&cf, &mut a).expect("optimized vm run");
            best_s = best_s.min(t0.elapsed().as_secs_f64());
        }
        points.push(ThreadPoint { threads: t, best_s });
    }
    KernelScaling {
        kernel: kernel_label(kernel),
        elements,
        points,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let size = args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Mini);
    let configs_per_kernel = if smoke { 2 } else { 4 };
    let reps = if smoke { 3 } else { 9 };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("engine fingerprint: {}", engine_fingerprint());
    println!("host cores: {host_cores}");

    // Phase 1+2: divergence and accounting, one device per kernel so
    // the counters attribute cleanly. 7 threads exercises ragged chunk
    // boundaries on typical tile counts.
    let sweep = [1usize, 2, 4, 7];
    let mut total_runs = 0u64;
    for kernel in KERNELS {
        let dev = CpuDevice::new();
        let runs = differential(kernel, size, configs_per_kernel, &sweep, &dev);
        check_accounting(kernel, &dev, runs);
        total_runs += runs;
    }
    println!(
        "differential: {total_runs} device runs bit-identical to the interpreter \
         across {:?} threads",
        sweep
    );

    // Phase 3: pool reuse. The sweep above warmed the pool; a fresh
    // batch of dispatching trials must spawn nothing.
    pool::set_num_threads(4);
    let warm = {
        let mold = mold_for(KernelName::Gemm, size);
        let func = mold.instantiate(&mold.space().default_configuration());
        let dev = CpuDevice::new();
        let mut a = mold.init_args();
        dev.run(&func, &mut a).expect("warm-up run");
        pool::threads_spawned()
    };
    {
        let mold = mold_for(KernelName::Gemm, size);
        let func = mold.instantiate(&mold.space().default_configuration());
        let dev = CpuDevice::new();
        for _ in 0..10 {
            let mut a = mold.init_args();
            dev.run(&func, &mut a).expect("steady-state run");
        }
    }
    let spawned = pool::threads_spawned();
    if spawned != warm {
        die(&format!(
            "pool reuse violated: {warm} threads after warm-up, {spawned} after \
             10 steady-state trials"
        ));
    }
    println!("pool reuse: {spawned} threads spawned total, zero per steady-state trial");

    if smoke {
        println!("smoke mode: all invariants hold");
        return;
    }

    // Timing phase: scaling per kernel at 1/2/4/8 threads. On a host
    // with fewer cores the high-thread points measure chunking overhead,
    // not speedup — `host_cores` rides in the JSON so readers can tell.
    let scale_threads = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    println!("kernel  elements   threads        ns/el  speedup-vs-1");
    for kernel in KERNELS {
        let row = time_kernel(kernel, size, reps, &scale_threads);
        let base = row.points[0].best_s;
        for p in &row.points {
            println!(
                "{:<7} {:>8}  {:>7}  {:>12.1}  {:>11.2}x",
                row.kernel,
                row.elements,
                p.threads,
                p.best_s * 1e9 / row.elements as f64,
                base / p.best_s
            );
        }
        rows.push(row);
    }

    let json = serde_json::json!({
        "engine": engine_fingerprint(),
        "size": size.to_string(),
        "host_cores": host_cores,
        "differential_runs": total_runs,
        "kernels": rows.iter().map(|r| {
            let base = r.points[0].best_s;
            serde_json::json!({
                "kernel": r.kernel,
                "elements": r.elements,
                "threads": r.points.iter().map(|p| serde_json::json!({
                    "threads": p.threads,
                    "best_s": p.best_s,
                    "ns_per_element": p.best_s * 1e9 / r.elements as f64,
                    "speedup_vs_1": base / p.best_s,
                })).collect::<Vec<_>>(),
            })
        }).collect::<Vec<_>>(),
    });
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(
        "results/BENCH_parallel.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results/BENCH_parallel.json");
    println!("wrote results/BENCH_parallel.json");
}
