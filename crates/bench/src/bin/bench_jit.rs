//! JIT smoke/regression bench: native codegen vs the interpreter oracle.
//!
//! Two invariants back the CI step:
//!
//! 1. **No divergence** — every PolyBench kernel, under its default and
//!    several randomly sampled configurations, must produce bit-identical
//!    outputs on a `CpuDevice::jit()` and the reference interpreter. Any
//!    mismatch exits nonzero.
//! 2. **No lost fallback accounting** — every JIT compile attempt the
//!    device made must land in exactly one counter bucket
//!    (`functions_jitted` or `fallbacks`, with per-reason counts summing
//!    to the fallback total). A compile that neither jitted nor recorded
//!    its fallback would silently skew the service's status endpoint;
//!    here it exits nonzero.
//!
//! A second phase times gemm/3mm/2mm on the optimized VM vs the JIT and
//! reports ns/element plus the JIT-over-VM speedup. On targets without a
//! native backend every function falls back (invariant 2 still holds,
//! with `fallbacks == attempts`) and the timing phase degenerates to
//! comparing the optimized VM against itself.
//!
//! Usage: `bench_jit [--smoke] [--size mini|small|medium|large]`
//! Full mode writes `results/BENCH_jit.json`; smoke mode only prints.

use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use tvm_runtime::{
    compile_optimized, default_backend, interp, jit_fingerprint, vm, CpuDevice, Device, NDArray,
};

const KERNELS: [KernelName; 7] = [
    KernelName::Mm3,
    KernelName::Lu,
    KernelName::Cholesky,
    KernelName::Gemm,
    KernelName::Mm2,
    KernelName::Syrk,
    KernelName::Trmm,
];

fn kernel_label(kernel: KernelName) -> &'static str {
    match kernel {
        KernelName::Gemm => "gemm",
        KernelName::Mm3 => "3mm",
        KernelName::Mm2 => "2mm",
        KernelName::Lu => "lu",
        KernelName::Cholesky => "cholesky",
        KernelName::Syrk => "syrk",
        KernelName::Trmm => "trmm",
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_jit: {msg}");
    std::process::exit(1);
}

/// Detected ISA features relevant to the packed-SIMD tier, plus the
/// lane widths the active backend actually emits at (which fold in the
/// `TVM_JIT_SIMD` toggle). Recorded in the JSON so `results/BENCH_*`
/// figures stay interpretable across machines.
fn cpu_json() -> serde_json::Value {
    #[cfg(target_arch = "x86_64")]
    let (sse2, avx, avx2, fma) = (
        std::arch::is_x86_feature_detected!("sse2"),
        std::arch::is_x86_feature_detected!("avx"),
        std::arch::is_x86_feature_detected!("avx2"),
        std::arch::is_x86_feature_detected!("fma"),
    );
    #[cfg(not(target_arch = "x86_64"))]
    let (sse2, avx, avx2, fma) = (false, false, false, false);
    let (f64_lanes, f32_lanes) = default_backend().vector_widths();
    serde_json::json!({
        "arch": std::env::consts::ARCH,
        "sse2": sse2,
        "avx": avx,
        "avx2": avx2,
        "fma": fma,
        "f64_lanes": f64_lanes,
        "f32_lanes": f32_lanes,
    })
}

/// Differential phase: run every kernel × config on the JIT device and
/// the interpreter from identical inputs; returns the number of device
/// runs (= expected JIT compile attempts).
fn differential(size: ProblemSize, configs_per_kernel: usize, dev: &CpuDevice) -> u64 {
    let mut rng = SmallRng::seed_from_u64(2024);
    let mut runs = 0u64;
    for kernel in KERNELS {
        let mold = mold_for(kernel, size);
        let mut configs = vec![mold.space().default_configuration()];
        for _ in 1..configs_per_kernel.max(1) {
            configs.push(mold.space().sample(&mut rng));
        }
        for config in configs {
            let func = mold.instantiate(&config);
            let args = mold.init_args();
            let mut via_interp: Vec<NDArray> = args.clone();
            let mut via_jit: Vec<NDArray> = args;
            interp::execute(&func, &mut via_interp).unwrap_or_else(|e| {
                die(&format!(
                    "{} / {config}: interpreter oracle failed: {e:?}",
                    mold.name()
                ))
            });
            dev.run(&func, &mut via_jit).unwrap_or_else(|e| {
                die(&format!("{} / {config}: JIT device failed: {e}", mold.name()))
            });
            runs += 1;
            for (i, (a, b)) in via_interp.iter().zip(&via_jit).enumerate() {
                if a != b {
                    die(&format!(
                        "DIVERGENCE: {} / {config}: arg {i} differs between interpreter and JIT",
                        mold.name()
                    ));
                }
            }
        }
    }
    runs
}

/// The accounting invariant: attempts partition into jitted + fallbacks,
/// and the per-reason counts cover every fallback.
fn check_accounting(dev: &CpuDevice, expected_attempts: u64) {
    let stats = dev
        .jit_stats()
        .unwrap_or_else(|| die("JIT-mode device reports no JIT stats"));
    let attempts = stats.functions_jitted + stats.fallbacks;
    if attempts != expected_attempts {
        die(&format!(
            "lost fallback accounting: {} device runs but {} compile attempts counted \
             ({} jitted + {} fallbacks)",
            expected_attempts, attempts, stats.functions_jitted, stats.fallbacks
        ));
    }
    let reason_sum: u64 = stats.fallback_reasons.iter().map(|(_, n)| n).sum();
    if reason_sum != stats.fallbacks {
        die(&format!(
            "lost fallback accounting: {} fallbacks but reasons sum to {reason_sum}: {:?}",
            stats.fallbacks, stats.fallback_reasons
        ));
    }
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    if stats.functions_jitted == 0 {
        die("vacuous run: nothing reached native code on x86-64");
    }
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    if stats.fallbacks != expected_attempts {
        die("no-op backend must fall back on every attempt off x86-64");
    }
    println!(
        "accounting: {} attempts = {} jitted + {} fallbacks ({} reasons)",
        attempts,
        stats.functions_jitted,
        stats.fallbacks,
        stats.fallback_reasons.len()
    );
}

/// The packed-SIMD accounting invariant: the per-reason scalar counts
/// cover every scalar site, tiling only ever happens on packed sites,
/// and — when the packed tier is on — the default gemm/2mm/3mm runs
/// must actually exercise it (non-vacuity).
fn check_simd_accounting(dev: &CpuDevice) {
    let stats = dev
        .simd_stats()
        .unwrap_or_else(|| die("JIT-mode device reports no SIMD stats"));
    let reason_sum: u64 = stats.scalar_reasons.iter().map(|(_, n)| n).sum();
    if reason_sum != stats.scalar_loops {
        die(&format!(
            "lost SIMD accounting: {} scalar sites but reasons sum to {reason_sum}: {:?}",
            stats.scalar_loops, stats.scalar_reasons
        ));
    }
    if stats.tiled_loops > stats.packed_loops {
        die(&format!(
            "lost SIMD accounting: {} tiled sites exceed {} packed sites",
            stats.tiled_loops, stats.packed_loops
        ));
    }
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    if stats.f64_lanes > 1 && stats.packed_loops == 0 {
        die("vacuous run: packed tier enabled but no vector site took the packed path");
    }
    println!(
        "simd: {} sites = {} packed ({} tiled) + {} scalar ({} reasons), lanes f64x{} f32x{}",
        stats.sites(),
        stats.packed_loops,
        stats.tiled_loops,
        stats.scalar_loops,
        stats.scalar_reasons.len(),
        stats.f64_lanes,
        stats.f32_lanes
    );
}

/// Committed-baseline regression gate (smoke mode only): each timed
/// kernel's JIT-over-VM speedup must stay within a generous noise
/// margin of the figure checked into `results/BENCH_jit.json`, so a PR
/// that silently loses JIT performance fails CI here instead of
/// shipping. Full (non-smoke) runs rewrite the baseline. The gate only
/// arms when the run matches the committed conditions: native backend,
/// packed tier on, same problem size.
fn check_speedup_baseline(rows: &[TimedRow], size: ProblemSize) {
    const MARGIN: f64 = 0.4;
    if !cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        return;
    }
    if default_backend().vector_widths().0 <= 1 {
        println!("baseline gate: packed tier off (TVM_JIT_SIMD=0) — skipped");
        return;
    }
    let Ok(text) = std::fs::read_to_string("results/BENCH_jit.json") else {
        println!("baseline gate: no committed results/BENCH_jit.json — skipped");
        return;
    };
    let baseline: serde_json::Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| die(&format!("committed results/BENCH_jit.json unreadable: {e}")));
    if baseline.get("size").and_then(|v| v.as_str()) != Some(size.to_string().as_str()) {
        println!("baseline gate: committed baseline is for another size — skipped");
        return;
    }
    let kernels = baseline
        .get("kernels")
        .and_then(|v| v.as_array())
        .cloned()
        .unwrap_or_default();
    for row in rows {
        let committed = kernels.iter().find_map(|k| {
            (k.get("kernel").and_then(|v| v.as_str()) == Some(row.kernel))
                .then(|| k.get("jit_speedup").and_then(|v| v.as_f64()))
                .flatten()
        });
        let Some(committed) = committed else { continue };
        let measured = row.jit_speedup();
        if measured < committed * MARGIN {
            die(&format!(
                "JIT performance regression on {}: measured {measured:.2}x vs committed \
                 {committed:.2}x (floor {:.2}x)",
                row.kernel,
                committed * MARGIN
            ));
        }
        println!(
            "baseline gate: {} {measured:.2}x >= {:.2}x (committed {committed:.2}x) ok",
            row.kernel,
            committed * MARGIN
        );
    }
}

struct TimedRow {
    kernel: &'static str,
    elements: usize,
    opt_s: f64,
    jit_s: f64,
    jit_nests: usize,
    jitted: bool,
}

impl TimedRow {
    fn opt_ns_per_element(&self) -> f64 {
        self.opt_s * 1e9 / self.elements as f64
    }
    fn jit_ns_per_element(&self) -> f64 {
        self.jit_s * 1e9 / self.elements as f64
    }
    fn jit_speedup(&self) -> f64 {
        self.opt_s / self.jit_s
    }
}

fn time_kernel(kernel: KernelName, size: ProblemSize, reps: usize) -> TimedRow {
    let mold = mold_for(kernel, size);
    let config = mold.baseline_configuration();
    let func = mold.instantiate(&config);
    let args = mold.init_args();
    let elements: usize = func
        .params
        .iter()
        .map(|b| b.shape.iter().product::<usize>())
        .sum();
    let optimized = compile_optimized(&func).expect("optimized pipeline must compile");
    let (jit_func, jitted) = match default_backend().jit_compile(&optimized) {
        Ok(jf) => (jf, true),
        Err(_) => (
            compile_optimized(&func).expect("optimized pipeline must compile"),
            false,
        ),
    };
    let mut opt_s = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let mut a = args.clone();
        let t0 = Instant::now();
        vm::execute(&optimized, &mut a).expect("optimized vm run");
        opt_s = opt_s.min(t0.elapsed().as_secs_f64());
    }
    let mut jit_s = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let mut a = args.clone();
        let t0 = Instant::now();
        vm::execute(&jit_func, &mut a).expect("jit run");
        jit_s = jit_s.min(t0.elapsed().as_secs_f64());
    }
    TimedRow {
        kernel: kernel_label(kernel),
        elements,
        opt_s,
        jit_s,
        jit_nests: jit_func.jit_nest_count(),
        jitted,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let size = args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Mini);
    let configs_per_kernel = if smoke { 3 } else { 5 };
    let reps = if smoke { 3 } else { 7 };

    println!("jit fingerprint: {}", jit_fingerprint());
    let dev = CpuDevice::jit();
    let runs = differential(size, configs_per_kernel, &dev);
    println!(
        "differential: {} kernel runs bit-identical to the interpreter",
        runs
    );
    check_accounting(&dev, runs);
    check_simd_accounting(&dev);

    let native = cfg!(all(target_arch = "x86_64", target_os = "linux"));
    if !native {
        println!(
            "note: no native JIT backend on this target — the jit ns/el and jit-x columns \
             re-measure the optimized VM (every compile attempt declines)"
        );
    }
    let mut rows = Vec::new();
    println!("kernel  elements     opt ns/el     jit ns/el  nests  jit-x");
    for k in [KernelName::Gemm, KernelName::Mm3, KernelName::Mm2] {
        let row = time_kernel(k, size, reps);
        println!(
            "{:<7} {:>8}  {:>12.1}  {:>12.1}  {:>5}  {:>4.2}x",
            row.kernel,
            row.elements,
            row.opt_ns_per_element(),
            row.jit_ns_per_element(),
            row.jit_nests,
            row.jit_speedup()
        );
        rows.push(row);
    }

    if smoke {
        check_speedup_baseline(&rows, size);
        println!("smoke mode: all invariants hold");
        return;
    }

    let simd = dev.simd_stats().expect("jit device reports simd stats");

    let json = serde_json::json!({
        "jit_engine": jit_fingerprint(),
        "native_backend": native,
        "size": size.to_string(),
        "differential_runs": runs,
        "cpu": cpu_json(),
        "simd": serde_json::json!({
            "packed_loops": simd.packed_loops,
            "tiled_loops": simd.tiled_loops,
            "scalar_loops": simd.scalar_loops,
            "f64_lanes": simd.f64_lanes,
            "f32_lanes": simd.f32_lanes,
            "scalar_reasons": simd.scalar_reasons.iter().map(|(r, n)| serde_json::json!({
                "reason": r,
                "count": n,
            })).collect::<Vec<_>>(),
        }),
        "kernels": rows.iter().map(|r| serde_json::json!({
            "kernel": r.kernel,
            "elements": r.elements,
            "optimized_s": r.opt_s,
            "jit_s": r.jit_s,
            "optimized_ns_per_element": r.opt_ns_per_element(),
            "jit_ns_per_element": r.jit_ns_per_element(),
            "jit_nests": r.jit_nests,
            "jitted": r.jitted,
            "jit_speedup": r.jit_speedup(),
        })).collect::<Vec<_>>(),
    });
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(
        "results/BENCH_jit.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results/BENCH_jit.json");
    println!("wrote results/BENCH_jit.json");
}
