//! JIT smoke/regression bench: native codegen vs the interpreter oracle.
//!
//! Two invariants back the CI step:
//!
//! 1. **No divergence** — every PolyBench kernel, under its default and
//!    several randomly sampled configurations, must produce bit-identical
//!    outputs on a `CpuDevice::jit()` and the reference interpreter. Any
//!    mismatch exits nonzero.
//! 2. **No lost fallback accounting** — every JIT compile attempt the
//!    device made must land in exactly one counter bucket
//!    (`functions_jitted` or `fallbacks`, with per-reason counts summing
//!    to the fallback total). A compile that neither jitted nor recorded
//!    its fallback would silently skew the service's status endpoint;
//!    here it exits nonzero.
//!
//! A second phase times gemm/3mm/2mm on the optimized VM vs the JIT and
//! reports ns/element plus the JIT-over-VM speedup. On targets without a
//! native backend every function falls back (invariant 2 still holds,
//! with `fallbacks == attempts`) and the timing phase degenerates to
//! comparing the optimized VM against itself.
//!
//! Usage: `bench_jit [--smoke] [--size mini|small|medium|large]`
//! Full mode writes `results/BENCH_jit.json`; smoke mode only prints.

use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use tvm_runtime::{
    compile_optimized, default_backend, interp, jit_fingerprint, vm, CpuDevice, Device, NDArray,
};

const KERNELS: [KernelName; 7] = [
    KernelName::Mm3,
    KernelName::Lu,
    KernelName::Cholesky,
    KernelName::Gemm,
    KernelName::Mm2,
    KernelName::Syrk,
    KernelName::Trmm,
];

fn kernel_label(kernel: KernelName) -> &'static str {
    match kernel {
        KernelName::Gemm => "gemm",
        KernelName::Mm3 => "3mm",
        KernelName::Mm2 => "2mm",
        KernelName::Lu => "lu",
        KernelName::Cholesky => "cholesky",
        KernelName::Syrk => "syrk",
        KernelName::Trmm => "trmm",
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_jit: {msg}");
    std::process::exit(1);
}

/// Differential phase: run every kernel × config on the JIT device and
/// the interpreter from identical inputs; returns the number of device
/// runs (= expected JIT compile attempts).
fn differential(size: ProblemSize, configs_per_kernel: usize, dev: &CpuDevice) -> u64 {
    let mut rng = SmallRng::seed_from_u64(2024);
    let mut runs = 0u64;
    for kernel in KERNELS {
        let mold = mold_for(kernel, size);
        let mut configs = vec![mold.space().default_configuration()];
        for _ in 1..configs_per_kernel.max(1) {
            configs.push(mold.space().sample(&mut rng));
        }
        for config in configs {
            let func = mold.instantiate(&config);
            let args = mold.init_args();
            let mut via_interp: Vec<NDArray> = args.clone();
            let mut via_jit: Vec<NDArray> = args;
            interp::execute(&func, &mut via_interp).unwrap_or_else(|e| {
                die(&format!(
                    "{} / {config}: interpreter oracle failed: {e:?}",
                    mold.name()
                ))
            });
            dev.run(&func, &mut via_jit).unwrap_or_else(|e| {
                die(&format!("{} / {config}: JIT device failed: {e}", mold.name()))
            });
            runs += 1;
            for (i, (a, b)) in via_interp.iter().zip(&via_jit).enumerate() {
                if a != b {
                    die(&format!(
                        "DIVERGENCE: {} / {config}: arg {i} differs between interpreter and JIT",
                        mold.name()
                    ));
                }
            }
        }
    }
    runs
}

/// The accounting invariant: attempts partition into jitted + fallbacks,
/// and the per-reason counts cover every fallback.
fn check_accounting(dev: &CpuDevice, expected_attempts: u64) {
    let stats = dev
        .jit_stats()
        .unwrap_or_else(|| die("JIT-mode device reports no JIT stats"));
    let attempts = stats.functions_jitted + stats.fallbacks;
    if attempts != expected_attempts {
        die(&format!(
            "lost fallback accounting: {} device runs but {} compile attempts counted \
             ({} jitted + {} fallbacks)",
            expected_attempts, attempts, stats.functions_jitted, stats.fallbacks
        ));
    }
    let reason_sum: u64 = stats.fallback_reasons.iter().map(|(_, n)| n).sum();
    if reason_sum != stats.fallbacks {
        die(&format!(
            "lost fallback accounting: {} fallbacks but reasons sum to {reason_sum}: {:?}",
            stats.fallbacks, stats.fallback_reasons
        ));
    }
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    if stats.functions_jitted == 0 {
        die("vacuous run: nothing reached native code on x86-64");
    }
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    if stats.fallbacks != expected_attempts {
        die("no-op backend must fall back on every attempt off x86-64");
    }
    println!(
        "accounting: {} attempts = {} jitted + {} fallbacks ({} reasons)",
        attempts,
        stats.functions_jitted,
        stats.fallbacks,
        stats.fallback_reasons.len()
    );
}

struct TimedRow {
    kernel: &'static str,
    elements: usize,
    opt_s: f64,
    jit_s: f64,
    jit_nests: usize,
    jitted: bool,
}

impl TimedRow {
    fn opt_ns_per_element(&self) -> f64 {
        self.opt_s * 1e9 / self.elements as f64
    }
    fn jit_ns_per_element(&self) -> f64 {
        self.jit_s * 1e9 / self.elements as f64
    }
    fn jit_speedup(&self) -> f64 {
        self.opt_s / self.jit_s
    }
}

fn time_kernel(kernel: KernelName, size: ProblemSize, reps: usize) -> TimedRow {
    let mold = mold_for(kernel, size);
    let config = mold.baseline_configuration();
    let func = mold.instantiate(&config);
    let args = mold.init_args();
    let elements: usize = func
        .params
        .iter()
        .map(|b| b.shape.iter().product::<usize>())
        .sum();
    let optimized = compile_optimized(&func).expect("optimized pipeline must compile");
    let (jit_func, jitted) = match default_backend().jit_compile(&optimized) {
        Ok(jf) => (jf, true),
        Err(_) => (
            compile_optimized(&func).expect("optimized pipeline must compile"),
            false,
        ),
    };
    let mut opt_s = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let mut a = args.clone();
        let t0 = Instant::now();
        vm::execute(&optimized, &mut a).expect("optimized vm run");
        opt_s = opt_s.min(t0.elapsed().as_secs_f64());
    }
    let mut jit_s = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let mut a = args.clone();
        let t0 = Instant::now();
        vm::execute(&jit_func, &mut a).expect("jit run");
        jit_s = jit_s.min(t0.elapsed().as_secs_f64());
    }
    TimedRow {
        kernel: kernel_label(kernel),
        elements,
        opt_s,
        jit_s,
        jit_nests: jit_func.jit_nest_count(),
        jitted,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let size = args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Mini);
    let configs_per_kernel = if smoke { 3 } else { 5 };
    let reps = if smoke { 3 } else { 7 };

    println!("jit fingerprint: {}", jit_fingerprint());
    let dev = CpuDevice::jit();
    let runs = differential(size, configs_per_kernel, &dev);
    println!(
        "differential: {} kernel runs bit-identical to the interpreter",
        runs
    );
    check_accounting(&dev, runs);

    let native = cfg!(all(target_arch = "x86_64", target_os = "linux"));
    if !native {
        println!(
            "note: no native JIT backend on this target — the jit ns/el and jit-x columns \
             re-measure the optimized VM (every compile attempt declines)"
        );
    }
    let mut rows = Vec::new();
    println!("kernel  elements     opt ns/el     jit ns/el  nests  jit-x");
    for k in [KernelName::Gemm, KernelName::Mm3, KernelName::Mm2] {
        let row = time_kernel(k, size, reps);
        println!(
            "{:<7} {:>8}  {:>12.1}  {:>12.1}  {:>5}  {:>4.2}x",
            row.kernel,
            row.elements,
            row.opt_ns_per_element(),
            row.jit_ns_per_element(),
            row.jit_nests,
            row.jit_speedup()
        );
        rows.push(row);
    }

    if smoke {
        println!("smoke mode: all invariants hold");
        return;
    }

    let json = serde_json::json!({
        "jit_engine": jit_fingerprint(),
        "native_backend": native,
        "size": size.to_string(),
        "differential_runs": runs,
        "kernels": rows.iter().map(|r| serde_json::json!({
            "kernel": r.kernel,
            "elements": r.elements,
            "optimized_s": r.opt_s,
            "jit_s": r.jit_s,
            "optimized_ns_per_element": r.opt_ns_per_element(),
            "jit_ns_per_element": r.jit_ns_per_element(),
            "jit_nests": r.jit_nests,
            "jitted": r.jitted,
            "jit_speedup": r.jit_speedup(),
        })).collect::<Vec<_>>(),
    });
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(
        "results/BENCH_jit.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results/BENCH_jit.json");
    println!("wrote results/BENCH_jit.json");
}
