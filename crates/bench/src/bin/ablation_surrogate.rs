//! Ablation A2: surrogate model choice (DESIGN.md experiment index).
//!
//! Compares the convergence of the RF-surrogate BO (ytopt), the GBT cost
//! model (XGB tuner) and pure random search on LU-large: incumbent best
//! at checkpoints of the evaluation budget.
//!
//! Usage: `ablation_surrogate [max_evals] [seed]`

use autotvm::{tune, RandomTuner, TuneOptions, XgbTuner};
use gpu_sim::{GpuSpec, SimDevice};
use polybench::molds::mold_for;
use polybench::spaces::space_for;
use polybench::{KernelName, ProblemSize};
use tvm_autotune::{MoldEvaluator, YtoptTuner};

fn evaluator(seed: u64) -> MoldEvaluator {
    let mold = mold_for(KernelName::Lu, ProblemSize::Large);
    let dev = SimDevice::new(GpuSpec::swing_cpu_core()).with_seed(seed);
    MoldEvaluator::simulated(mold, dev)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_evals: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2023);
    let space = space_for(KernelName::Lu, ProblemSize::Large);
    let opts = TuneOptions {
        max_evals,
        batch: 1,
        max_process_s: None,
    };

    let checkpoints: Vec<usize> = [10usize, 25, 50, 100]
        .iter()
        .copied()
        .filter(|&c| c <= max_evals)
        .collect();

    println!("# Ablation A2: surrogate choice on lu/large (incumbent best at checkpoints)");
    print!("{:<22}", "surrogate");
    for c in &checkpoints {
        print!(" {:>10}", format!("@{c}"));
    }
    println!(" {:>12}", "process(s)");

    let mut rows: Vec<(String, Vec<f64>, f64)> = Vec::new();

    let ev = evaluator(seed);
    let mut rf = YtoptTuner::new(space.clone(), seed);
    let res = tune(&mut rf, &ev, opts);
    rows.push((
        "RandomForest+LCB".into(),
        curve_at(&res.incumbent_curve(), &checkpoints),
        res.total_process_s,
    ));

    let ev = evaluator(seed);
    let mut xgb = XgbTuner::new(space.clone(), seed);
    let res = tune(&mut xgb, &ev, opts);
    rows.push((
        "GradientBoosting(XGB)".into(),
        curve_at(&res.incumbent_curve(), &checkpoints),
        res.total_process_s,
    ));

    let ev = evaluator(seed);
    let mut random = RandomTuner::new(space, seed);
    let res = tune(&mut random, &ev, opts);
    rows.push((
        "none (random)".into(),
        curve_at(&res.incumbent_curve(), &checkpoints),
        res.total_process_s,
    ));

    for (name, curve, process) in rows {
        print!("{name:<22}");
        for v in curve {
            if v.is_finite() {
                print!(" {v:>10.4}");
            } else {
                print!(" {:>10}", "-");
            }
        }
        println!(" {process:>12.2}");
    }
}

fn curve_at(curve: &[f64], checkpoints: &[usize]) -> Vec<f64> {
    checkpoints
        .iter()
        .map(|&c| {
            curve
                .get(c.saturating_sub(1).min(curve.len().saturating_sub(1)))
                .copied()
                .unwrap_or(f64::INFINITY)
        })
        .collect()
}
