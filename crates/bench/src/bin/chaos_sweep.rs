//! Chaos sweep: all five tuners under increasing injected-failure rates.
//!
//! Wraps the LU-large mold evaluator in a deterministic
//! [`autotvm::FaultInjector`] (per-class failure rates) plus the
//! [`autotvm::HarnessedEvaluator`] (panic isolation + transient retry),
//! then runs the full five-tuner comparison at each rate. This is the
//! robustness experiment behind DESIGN.md's "Fault model and recovery":
//! no failure rate may crash a tuner or stop it short of its budget
//! (XGB's model-driven early stop excepted), and the best configuration
//! must always come from a successful trial.
//!
//! Usage: `chaos_sweep [kernel] [size] [max_evals] [seed]`
//! Writes `results/chaos_sweep.csv` next to the printed table.

use autotvm::{
    tune, FaultInjector, FaultPlan, GaTuner, GridSearchTuner, HarnessedEvaluator, RandomTuner,
    TuneOptions, TuningResult, XgbTuner,
};
use gpu_sim::{GpuSpec, SimDevice};
use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use std::io::Write;
use tvm_autotune::{MoldEvaluator, YtoptTuner};

const RATES: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5];

fn harnessed(
    kernel: KernelName,
    size: ProblemSize,
    rate: f64,
    seed: u64,
) -> HarnessedEvaluator<FaultInjector<MoldEvaluator>> {
    let mold = mold_for(kernel, size);
    let dev = SimDevice::new(GpuSpec::swing_cpu_core()).with_seed(seed);
    let ev = MoldEvaluator::simulated(mold, dev);
    HarnessedEvaluator::new(FaultInjector::new(ev, FaultPlan::uniform(rate, seed)))
}

struct Row {
    rate: f64,
    tuner: String,
    evals: usize,
    failed: usize,
    best_runtime_s: Option<f64>,
    total_process_s: f64,
}

fn row(rate: f64, r: &TuningResult) -> Row {
    Row {
        rate,
        tuner: r.tuner.clone(),
        evals: r.len(),
        failed: r.failed(),
        best_runtime_s: r.best().and_then(|t| t.runtime_s),
        total_process_s: r.total_process_s,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = args
        .get(1)
        .and_then(|s| KernelName::parse(s))
        .unwrap_or(KernelName::Lu);
    let size = args
        .get(2)
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(ProblemSize::Large);
    let max_evals = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(2023);

    let space = polybench::spaces::space_for(kernel, size);
    let opts = TuneOptions {
        max_evals,
        batch: 8,
        max_process_s: None,
    };
    let bo_opts = TuneOptions {
        max_evals,
        batch: 1,
        max_process_s: None,
    };

    println!("# chaos sweep: {kernel} {size}, budget {max_evals}, seed {seed}");
    println!(
        "{:<6} {:<20} {:>6} {:>7} {:>14} {:>18}",
        "rate", "tuner", "evals", "failed", "best (s)", "process time (s)"
    );

    let mut rows: Vec<Row> = Vec::new();
    for rate in RATES {
        let ev = harnessed(kernel, size, rate, seed);

        let mut ga = GaTuner::new(space.clone(), seed);
        rows.push(row(rate, &tune(&mut ga, &ev, opts)));

        let mut random = RandomTuner::new(space.clone(), seed);
        rows.push(row(rate, &tune(&mut random, &ev, opts)));

        let mut grid = GridSearchTuner::new(space.clone());
        rows.push(row(rate, &tune(&mut grid, &ev, opts)));

        let mut xgb = XgbTuner::new(space.clone(), seed);
        rows.push(row(rate, &tune(&mut xgb, &ev, opts)));

        let mut ytopt = YtoptTuner::new(space.clone(), seed);
        rows.push(row(rate, &tune(&mut ytopt, &ev, bo_opts)));
    }

    for r in &rows {
        let best = r
            .best_runtime_s
            .map(|b| format!("{b:.4}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<6} {:<20} {:>6} {:>7} {:>14} {:>18.2}",
            r.rate, r.tuner, r.evals, r.failed, best, r.total_process_s
        );
    }

    std::fs::create_dir_all("results").expect("mkdir results");
    let mut f = std::io::BufWriter::new(
        std::fs::File::create("results/chaos_sweep.csv").expect("create csv"),
    );
    writeln!(f, "rate,tuner,evals,failed,best_runtime_s,total_process_s").expect("write");
    for r in &rows {
        let best = r
            .best_runtime_s
            .map(|b| b.to_string())
            .unwrap_or_else(|| "inf".into());
        writeln!(
            f,
            "{},{},{},{},{},{}",
            r.rate, r.tuner, r.evals, r.failed, best, r.total_process_s
        )
        .expect("write");
    }
    println!("wrote results/chaos_sweep.csv ({} rows)", rows.len());
}
