//! Pass-pipeline benchmark: scalar VM vs pipeline-optimized VM vs JIT.
//!
//! For each matrix kernel (gemm, 3mm, 2mm) a *tuned* configuration is
//! found by a short random search on the optimized engine, then that
//! exact function is executed on the scalar bytecode VM, the optimized
//! VM (TIR pass pipeline + strided loops + fused multiply-add + mul-add
//! microkernels), and the native JIT (x86-64 machine code emitted from
//! the optimized bytecode; off x86-64 the backend declines and the JIT
//! column degenerates to the optimized VM) from identical inputs.
//! Outputs must match bit for bit — the binary exits nonzero on any
//! divergence, which is what the CI smoke job checks. A second phase
//! measures end-to-end tuning throughput (trials/sec) on the scalar vs
//! optimized CPU device.
//!
//! Usage: `bench_passes [--smoke] [--size mini|small|medium|large]`
//! Full mode writes `results/BENCH_passes.json`; smoke mode only prints.

use autotvm::{tune, Evaluator, RandomTuner, TuneOptions};
use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use std::time::Instant;
use tvm_autotune::MoldEvaluator;
use tvm_runtime::{
    compile, compile_optimized, default_backend, engine_fingerprint, jit_fingerprint,
    scalar_backend, vm, CpuDevice, NDArray,
};

struct KernelRow {
    kernel: &'static str,
    size: ProblemSize,
    elements: usize,
    config: String,
    scalar_s: f64,
    opt_s: f64,
    scalar_jit_s: f64,
    jit_s: f64,
    strided_loops: usize,
    microkernels: usize,
    jit_nests: usize,
    jit_code_bytes: usize,
    jitted: bool,
}

impl KernelRow {
    fn scalar_ns_per_element(&self) -> f64 {
        self.scalar_s * 1e9 / self.elements as f64
    }
    fn opt_ns_per_element(&self) -> f64 {
        self.opt_s * 1e9 / self.elements as f64
    }
    fn scalar_jit_ns_per_element(&self) -> f64 {
        self.scalar_jit_s * 1e9 / self.elements as f64
    }
    fn jit_ns_per_element(&self) -> f64 {
        self.jit_s * 1e9 / self.elements as f64
    }
    fn speedup(&self) -> f64 {
        self.scalar_s / self.opt_s
    }
    fn jit_speedup(&self) -> f64 {
        self.opt_s / self.jit_s
    }
    /// Packed tier over the scalar JIT — the headline figure of the
    /// packed-SIMD change (1.0x when either column fell back).
    fn simd_speedup(&self) -> f64 {
        self.scalar_jit_s / self.jit_s
    }
}

fn kernel_label(kernel: KernelName) -> &'static str {
    match kernel {
        KernelName::Gemm => "gemm",
        KernelName::Mm3 => "3mm",
        KernelName::Mm2 => "2mm",
        _ => "other",
    }
}

/// Detected ISA features relevant to the packed-SIMD tier, plus the
/// lane widths the active backend actually emits at (which fold in the
/// `TVM_JIT_SIMD` toggle). Recorded in the JSON so `results/BENCH_*`
/// figures stay interpretable across machines.
fn cpu_json() -> serde_json::Value {
    #[cfg(target_arch = "x86_64")]
    let (sse2, avx, avx2, fma) = (
        std::arch::is_x86_feature_detected!("sse2"),
        std::arch::is_x86_feature_detected!("avx"),
        std::arch::is_x86_feature_detected!("avx2"),
        std::arch::is_x86_feature_detected!("fma"),
    );
    #[cfg(not(target_arch = "x86_64"))]
    let (sse2, avx, avx2, fma) = (false, false, false, false);
    let (f64_lanes, f32_lanes) = default_backend().vector_widths();
    serde_json::json!({
        "arch": std::env::consts::ARCH,
        "sse2": sse2,
        "avx": avx,
        "avx2": avx2,
        "fma": fma,
        "f64_lanes": f64_lanes,
        "f32_lanes": f32_lanes,
    })
}

/// Canonical matmul tile shapes for the paper molds, which tile every
/// matmul stage as `(y-tile = P₂ᵢ, x-tile = P₂ᵢ₊₁)`. A y-tile of 1
/// leaves the reduction loop directly wrapping the mul-add microkernel
/// (the shape the JIT's unroll-and-jam tier fuses), and a moderate or
/// full-width x-tile gives the packed lanes room; seeding the short
/// random search with these shapes makes the reported numbers reflect
/// the tuned engines rather than tuner luck on a tiny budget. Each
/// target is clamped to the nearest value the space actually offers.
fn seed_configs(space: &configspace::ConfigSpace) -> Vec<configspace::Configuration> {
    let names: Vec<String> = space
        .params()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let pick = |p: &configspace::Hyperparameter, target: i64| -> configspace::ParamValue {
        if let configspace::Hyperparameter::Ordinal { sequence, .. } = p {
            sequence
                .iter()
                .min_by_key(|v| v.as_int().map_or(i64::MAX, |i| (i - target).abs()))
                .cloned()
                .unwrap_or_else(|| p.default_value())
        } else {
            p.default_value()
        }
    };
    [20i64, 40, i64::MAX]
        .iter()
        .map(|&xt| {
            let values = space
                .params()
                .iter()
                .enumerate()
                .map(|(i, p)| if i % 2 == 0 { pick(p, 1) } else { pick(p, xt) })
                .collect();
            configspace::Configuration::new(names.clone(), values)
        })
        .collect()
}

/// Tune briefly on the optimized engine and return the best
/// configuration found across the random search and the canonical
/// seeds (falling back to the baseline when every trial failed, which
/// cannot happen for these kernels).
fn tuned_config(
    kernel: KernelName,
    size: ProblemSize,
    max_evals: usize,
) -> configspace::Configuration {
    let mold = mold_for(kernel, size);
    let baseline = mold.baseline_configuration();
    let ev = MoldEvaluator::real(mold, CpuDevice::new());
    let mut tuner = RandomTuner::new(ev.space().clone(), 2023);
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals,
            batch: 4,
            max_process_s: None,
        },
    );
    let mut best = f64::INFINITY;
    let mut config = baseline;
    if let Some(t) = res.best() {
        if let Some(r) = t.runtime_s {
            (best, config) = (r, t.config.clone());
        }
    }
    for cand in seed_configs(ev.space()) {
        if let Some(r) = ev.evaluate(&cand).runtime_s {
            if r < best {
                (best, config) = (r, cand);
            }
        }
    }
    config
}

/// Time one tuned kernel on both engines and verify bit-identity.
fn bench_kernel(
    kernel: KernelName,
    size: ProblemSize,
    reps: usize,
    tune_evals: usize,
) -> KernelRow {
    let config = tuned_config(kernel, size, tune_evals);
    let mold = mold_for(kernel, size);
    let func = mold.instantiate(&config);
    let args = mold.init_args();
    let elements: usize = func
        .params
        .iter()
        .map(|b| b.shape.iter().product::<usize>())
        .sum();

    let scalar = compile(&func).expect("PolyBench kernels must compile");
    let optimized = compile_optimized(&func).expect("optimized pipeline must compile");

    let mut scalar_s = f64::INFINITY;
    let mut via_scalar: Vec<NDArray> = Vec::new();
    for _ in 0..reps.max(1) {
        via_scalar = args.clone();
        let t0 = Instant::now();
        vm::execute(&scalar, &mut via_scalar).expect("scalar vm run");
        scalar_s = scalar_s.min(t0.elapsed().as_secs_f64());
    }

    let mut opt_s = f64::INFINITY;
    let mut via_opt: Vec<NDArray> = Vec::new();
    for _ in 0..reps.max(1) {
        via_opt = args.clone();
        let t0 = Instant::now();
        vm::execute(&optimized, &mut via_opt).expect("optimized vm run");
        opt_s = opt_s.min(t0.elapsed().as_secs_f64());
    }

    // JIT column: the device's fallback contract — when the backend
    // declines, the optimized bytecode runs unchanged (and the column
    // honestly reports jitted = false). The scalar-JIT column runs the
    // same emitter with packed emission forced off, so the pair
    // isolates what the packed tier alone buys on this machine.
    let (jit_func, jitted) = match default_backend().jit_compile(&optimized) {
        Ok(jf) => (jf, true),
        Err(_) => (
            compile_optimized(&func).expect("optimized pipeline must compile"),
            false,
        ),
    };
    let (sjit_func, _) = match scalar_backend().jit_compile(&optimized) {
        Ok(jf) => (jf, true),
        Err(_) => (
            compile_optimized(&func).expect("optimized pipeline must compile"),
            false,
        ),
    };
    let mut scalar_jit_s = f64::INFINITY;
    let mut via_sjit: Vec<NDArray> = Vec::new();
    for _ in 0..reps.max(1) {
        via_sjit = args.clone();
        let t0 = Instant::now();
        vm::execute(&sjit_func, &mut via_sjit).expect("scalar jit run");
        scalar_jit_s = scalar_jit_s.min(t0.elapsed().as_secs_f64());
    }
    let mut jit_s = f64::INFINITY;
    let mut via_jit: Vec<NDArray> = Vec::new();
    for _ in 0..reps.max(1) {
        via_jit = args.clone();
        let t0 = Instant::now();
        vm::execute(&jit_func, &mut via_jit).expect("jit run");
        jit_s = jit_s.min(t0.elapsed().as_secs_f64());
    }

    for (engine, via) in [
        ("optimized VM", &via_opt),
        ("scalar JIT", &via_sjit),
        ("JIT", &via_jit),
    ] {
        for (i, (a, b)) in via_scalar.iter().zip(via).enumerate() {
            if a != b {
                eprintln!(
                    "DIVERGENCE: kernel {} size {} arg {} differs between scalar VM and {engine} \
                     (config {config})",
                    mold.name(),
                    size,
                    i
                );
                std::process::exit(1);
            }
        }
    }

    KernelRow {
        kernel: kernel_label(kernel),
        size,
        elements,
        config: config.to_string(),
        scalar_s,
        opt_s,
        scalar_jit_s,
        jit_s,
        strided_loops: optimized.strided_loop_count(),
        microkernels: optimized.microkernel_count(),
        jit_nests: jit_func.jit_nest_count(),
        jit_code_bytes: jit_func.jit_code_bytes(),
        jitted,
    }
}

/// End-to-end tuning throughput: trials/sec on a real-execution
/// evaluator, scalar-VM device vs optimized device.
fn trials_per_sec(optimized: bool, max_evals: usize) -> (f64, u64, u64) {
    let mold = mold_for(KernelName::Gemm, ProblemSize::Mini);
    let device = if optimized {
        CpuDevice::new()
    } else {
        CpuDevice::scalar_vm()
    };
    let ev = MoldEvaluator::real(mold, device);
    let mut tuner = RandomTuner::new(ev.space().clone(), 2023);
    let t0 = Instant::now();
    let res = tune(
        &mut tuner,
        &ev,
        TuneOptions {
            max_evals,
            batch: 8,
            max_process_s: None,
        },
    );
    let wall = t0.elapsed().as_secs_f64();
    let cache = res.cache.unwrap_or_default();
    (res.len() as f64 / wall, cache.hits, cache.misses)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let size = args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| ProblemSize::parse(s))
        .unwrap_or(if smoke {
            ProblemSize::Mini
        } else {
            ProblemSize::Small
        });
    let reps = if smoke { 3 } else { 7 };
    let tune_evals = if smoke { 4 } else { 16 };

    println!(
        "engine fingerprints: {} / {}",
        engine_fingerprint(),
        jit_fingerprint()
    );
    let native = cfg!(all(target_arch = "x86_64", target_os = "linux"));
    if !native {
        println!(
            "note: no native JIT backend on this target — the jit ns/el and jit-x columns \
             re-measure the optimized VM (every compile attempt declines)"
        );
    }
    let kernels = [KernelName::Gemm, KernelName::Mm3, KernelName::Mm2];
    let mut rows = Vec::new();
    println!(
        "kernel  size    elements  scalar ns/el     opt ns/el    sjit ns/el     jit ns/el  \
         strided  ukern  nests  speedup  jit-x  simd-x"
    );
    for k in kernels {
        let row = bench_kernel(k, size, reps, tune_evals);
        println!(
            "{:<7} {:<7} {:>8}  {:>12.1}  {:>12.1}  {:>12.1}  {:>12.1}  {:>7}  {:>5}  {:>5}  \
             {:>6.2}x  {:>4.2}x  {:>5.2}x",
            row.kernel,
            row.size.to_string(),
            row.elements,
            row.scalar_ns_per_element(),
            row.opt_ns_per_element(),
            row.scalar_jit_ns_per_element(),
            row.jit_ns_per_element(),
            row.strided_loops,
            row.microkernels,
            row.jit_nests,
            row.speedup(),
            row.jit_speedup(),
            row.simd_speedup()
        );
        rows.push(row);
    }

    let max_evals = if smoke { 6 } else { 20 };
    let (scalar_tps, _, _) = trials_per_sec(false, max_evals);
    let (opt_tps, hits, misses) = trials_per_sec(true, max_evals);
    println!(
        "end-to-end (gemm/mini, {max_evals} evals): scalar {scalar_tps:.1} trials/s, \
         optimized {opt_tps:.1} trials/s ({:.2}x, cache {hits} hits / {misses} misses)",
        opt_tps / scalar_tps
    );

    if smoke {
        println!("smoke mode: outputs bit-identical on all kernels");
        return;
    }

    let json = serde_json::json!({
        "engine": engine_fingerprint(),
        "jit_engine": jit_fingerprint(),
        "native_backend": native,
        "size": size.to_string(),
        "cpu": cpu_json(),
        "kernels": rows.iter().map(|r| serde_json::json!({
            "kernel": r.kernel,
            "size": r.size.to_string(),
            "elements": r.elements,
            "config": r.config,
            "scalar_s": r.scalar_s,
            "optimized_s": r.opt_s,
            "scalar_jit_s": r.scalar_jit_s,
            "jit_s": r.jit_s,
            "scalar_ns_per_element": r.scalar_ns_per_element(),
            "optimized_ns_per_element": r.opt_ns_per_element(),
            "scalar_jit_ns_per_element": r.scalar_jit_ns_per_element(),
            "jit_ns_per_element": r.jit_ns_per_element(),
            "strided_loops": r.strided_loops,
            "microkernels": r.microkernels,
            "jit_nests": r.jit_nests,
            "jit_code_bytes": r.jit_code_bytes,
            "jitted": r.jitted,
            "speedup": r.speedup(),
            "jit_speedup": r.jit_speedup(),
            "simd_speedup": r.simd_speedup(),
        })).collect::<Vec<_>>(),
        "end_to_end": serde_json::json!({
            "kernel": "gemm",
            "size": "mini",
            "max_evals": max_evals,
            "scalar_trials_per_s": scalar_tps,
            "optimized_trials_per_s": opt_tps,
            "throughput_x": opt_tps / scalar_tps,
            "cache_hits": hits,
            "cache_misses": misses,
        }),
    });
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(
        "results/BENCH_passes.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results/BENCH_passes.json");
    println!("wrote results/BENCH_passes.json");
}
