//! Ablation A3: analytical-model vs real-execution rank agreement
//! (DESIGN.md experiment index).
//!
//! At paper scale the kernels run on the analytical device; this ablation
//! checks that the model's *ranking* of configurations agrees with real
//! measured execution at a size the CPU interpreter can run: it samples
//! configurations of 3mm/mini, measures each on the interpreter, predicts
//! each with the cost model, and reports the Spearman rank correlation.
//!
//! Usage: `ablation_model_fidelity [n_configs] [seed]`

use gpu_sim::{GpuSpec, SimDevice};
use polybench::molds::mold_for;
use polybench::{KernelName, ProblemSize};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use surrogate::metrics::spearman;
use tvm_runtime::{CpuDevice, Device};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_configs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    println!("# Ablation A3: cost-model vs interpreter rank agreement (3mm & lu, mini)");
    for kernel in [KernelName::Mm3, KernelName::Lu] {
        let mold = mold_for(kernel, ProblemSize::Mini);
        let sim = SimDevice::new(GpuSpec::swing_cpu_core()).with_noise(0.0);
        let cpu = CpuDevice::new();
        let mut rng = SmallRng::seed_from_u64(seed);

        let mut measured = Vec::with_capacity(n_configs);
        let mut predicted = Vec::with_capacity(n_configs);
        println!("kernel={kernel}");
        println!(
            "{:<28} {:>14} {:>14}",
            "config", "measured (s)", "model (s)"
        );
        for _ in 0..n_configs {
            let cfg = mold.space().sample(&mut rng);
            let func = mold.instantiate(&cfg);
            let mut args_v = mold.init_args();
            // Median-ish of 3 runs to damp host noise.
            let t = cpu.time(&func, &mut args_v, 3).expect("cpu run");
            let p = sim.predict(&func);
            println!("{:<28} {:>14.6} {:>14.6}", cfg.to_string(), t, p);
            measured.push(t);
            predicted.push(p);
        }
        let rho = spearman(&measured, &predicted);
        println!("spearman(measured, model) = {rho:.3}\n");
    }
}
