//! `GATuner`: genetic algorithm over knob-index genomes.

use crate::measure::MeasureResult;
use crate::tuner::Tuner;
use configspace::{ConfigSpace, Configuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// One genome: the ordinal index of each parameter.
type Genome = Vec<usize>;

/// AutoTVM's `GATuner` (population GA with elitism, uniform crossover and
/// point mutation; fitness = negative runtime).
pub struct GaTuner {
    space: ConfigSpace,
    rng: SmallRng,
    /// Population size (AutoTVM default 100).
    pub pop_size: usize,
    /// Elites carried into the next generation (AutoTVM default 3).
    pub elite_num: usize,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Current generation waiting to be measured.
    pending: Vec<Genome>,
    /// Measured genomes and fitness of the current generation.
    scored: Vec<(Genome, f64)>,
    /// All-time elites.
    elites: Vec<(Genome, f64)>,
    visited: HashSet<Genome>,
    space_size: u128,
}

impl GaTuner {
    /// New tuner with AutoTVM's defaults.
    pub fn new(space: ConfigSpace, seed: u64) -> GaTuner {
        let space_size = space.size().expect("GaTuner needs a discrete space");
        let mut rng = SmallRng::seed_from_u64(seed);
        let pop_size = 100usize.min(space_size.min(u128::from(u32::MAX)) as usize);
        let mut t = GaTuner {
            space,
            rng: SmallRng::seed_from_u64(0),
            pop_size,
            elite_num: 3,
            mutation_prob: 0.1,
            pending: Vec::new(),
            scored: Vec::new(),
            elites: Vec::new(),
            visited: HashSet::new(),
            space_size,
        };
        std::mem::swap(&mut t.rng, &mut rng);
        t.seed_population();
        t
    }

    fn cards(&self) -> Vec<usize> {
        self.space
            .params()
            .iter()
            .map(|p| p.cardinality().expect("discrete") as usize)
            .collect()
    }

    fn random_genome(&mut self) -> Genome {
        self.cards()
            .iter()
            .map(|&c| self.rng.gen_range(0..c))
            .collect()
    }

    fn genome_to_config(&self, g: &Genome) -> Configuration {
        Configuration::new(
            self.space
                .params()
                .iter()
                .map(|p| p.name().to_string())
                .collect(),
            g.iter()
                .zip(self.space.params())
                .map(|(&i, p)| p.value_at(i))
                .collect(),
        )
    }

    fn config_to_genome(&self, c: &Configuration) -> Genome {
        self.space
            .params()
            .iter()
            .map(|p| {
                p.index_of(c.get(p.name()).expect("param present"))
                    .expect("value in space")
            })
            .collect()
    }

    fn seed_population(&mut self) {
        let mut attempts = 0;
        while self.pending.len() < self.pop_size && attempts < self.pop_size * 50 {
            attempts += 1;
            let g = self.random_genome();
            if !self.visited.contains(&g) {
                self.visited.insert(g.clone());
                self.pending.push(g);
            }
        }
    }

    fn breed(&mut self) {
        // Parents: tournament over last generation + all-time elites.
        let mut pool = self.scored.clone();
        pool.extend(self.elites.iter().cloned());
        if pool.is_empty() {
            self.seed_population();
            return;
        }
        let cards = self.cards();
        let mut next: Vec<Genome> = Vec::with_capacity(self.pop_size);
        let mut attempts = 0usize;
        let max_attempts = self.pop_size * 100;
        while next.len() < self.pop_size && attempts < max_attempts {
            attempts += 1;
            let a = self.tournament(&pool);
            let b = self.tournament(&pool);
            // Uniform crossover.
            let mut child: Genome = a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| if self.rng.gen_bool(0.5) { x } else { y })
                .collect();
            // Point mutation.
            for (d, gene) in child.iter_mut().enumerate() {
                if self.rng.gen::<f64>() < self.mutation_prob {
                    *gene = self.rng.gen_range(0..cards[d]);
                }
            }
            if self.visited.insert(child.clone()) {
                next.push(child);
            }
        }
        // Couldn't breed anything unvisited (space nearly exhausted):
        // fall back to random unvisited genomes.
        if next.is_empty() && (self.visited.len() as u128) < self.space_size {
            let mut attempts = 0;
            while next.is_empty() && attempts < 10_000 {
                attempts += 1;
                let g = self.random_genome();
                if self.visited.insert(g.clone()) {
                    next.push(g);
                }
            }
        }
        self.pending = next;
        self.scored.clear();
    }

    fn tournament(&mut self, pool: &[(Genome, f64)]) -> Genome {
        let k = 2.min(pool.len());
        let mut best: Option<&(Genome, f64)> = None;
        for _ in 0..k {
            let cand = &pool[self.rng.gen_range(0..pool.len())];
            if best.map(|b| cand.1 > b.1).unwrap_or(true) {
                best = Some(cand);
            }
        }
        best.expect("non-empty pool").0.clone()
    }
}

impl Tuner for GaTuner {
    fn name(&self) -> &str {
        "AutoTVM-GA"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Configuration> {
        if self.pending.is_empty() {
            self.breed();
        }
        let take = n.min(self.pending.len());
        let drained: Vec<Genome> = self.pending.drain(..take).collect();
        drained.iter().map(|g| self.genome_to_config(g)).collect()
    }

    fn update(&mut self, results: &[(Configuration, MeasureResult)]) {
        for (cfg, res) in results {
            let fitness = match res.runtime_s {
                Some(t) if t > 0.0 => -t,
                _ => f64::NEG_INFINITY,
            };
            let g = self.config_to_genome(cfg);
            self.scored.push((g.clone(), fitness));
            // Maintain the elite set.
            self.elites.push((g, fitness));
            self.elites
                .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            self.elites.truncate(self.elite_num);
        }
    }

    fn has_next(&self) -> bool {
        !self.pending.is_empty() || (self.visited.len() as u128) < self.space_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::Hyperparameter;

    fn space() -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=16).collect::<Vec<i64>>(),
        ));
        cs.add(Hyperparameter::ordinal_ints(
            "P1",
            &(1..=16).collect::<Vec<i64>>(),
        ));
        cs
    }

    /// Synthetic objective: minimum at (P0=12, P1=5).
    fn runtime(c: &Configuration) -> f64 {
        let (a, b) = (c.int("P0") as f64, c.int("P1") as f64);
        1.0 + (a - 12.0).powi(2) + (b - 5.0).powi(2)
    }

    #[test]
    fn converges_toward_optimum() {
        let mut t = GaTuner::new(space(), 5);
        let mut best = f64::INFINITY;
        let mut evals = 0;
        while evals < 160 && t.has_next() {
            let batch = t.next_batch(16);
            if batch.is_empty() {
                break;
            }
            let results: Vec<_> = batch
                .iter()
                .map(|c| {
                    let r = runtime(c);
                    (c.clone(), MeasureResult::ok(r, r))
                })
                .collect();
            for (_, r) in &results {
                best = best.min(r.runtime_s.expect("ok"));
                evals += 1;
            }
            t.update(&results);
        }
        // Random chance of hitting within distance^2 <= 8 in 160/256 draws
        // is high anyway, but GA should find something near-optimal.
        assert!(best < 10.0, "best={best}");
    }

    #[test]
    fn never_repeats_configurations() {
        let mut t = GaTuner::new(space(), 9);
        let mut seen = HashSet::new();
        let mut drawn = 0;
        while drawn < 256 && t.has_next() {
            let batch = t.next_batch(20);
            if batch.is_empty() {
                break;
            }
            let results: Vec<_> = batch
                .iter()
                .map(|c| {
                    assert!(seen.insert(c.key()), "repeat: {c}");
                    drawn += 1;
                    let r = runtime(c);
                    (c.clone(), MeasureResult::ok(r, r))
                })
                .collect();
            t.update(&results);
        }
        assert!(drawn >= 200, "should cover most of the space, got {drawn}");
    }

    #[test]
    fn exhausts_small_space() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 3]));
        let mut t = GaTuner::new(cs, 1);
        let mut total = 0;
        for _ in 0..10 {
            let batch = t.next_batch(10);
            let results: Vec<_> = batch
                .iter()
                .map(|c| (c.clone(), MeasureResult::ok(1.0, 1.0)))
                .collect();
            t.update(&results);
            total += batch.len();
            if !t.has_next() {
                break;
            }
        }
        assert_eq!(total, 3);
        assert!(!t.has_next());
    }
}
