//! Tuner strategies.

pub mod ga;
pub mod gridsearch;
pub mod random;
pub mod sa;
pub mod xgb;

use crate::measure::MeasureResult;
use configspace::Configuration;

/// A search strategy over a configuration space — AutoTVM's `Tuner`
/// interface (`next_batch` / `update` / `has_next`).
pub trait Tuner {
    /// Strategy name as plotted in the paper's figures
    /// (e.g. `"AutoTVM-XGB"`).
    fn name(&self) -> &str;

    /// Propose up to `n` configurations to measure next. May return fewer
    /// (or none) when the strategy's candidate pool is exhausted.
    fn next_batch(&mut self, n: usize) -> Vec<Configuration>;

    /// Feed back measurement results for previously proposed
    /// configurations.
    fn update(&mut self, results: &[(Configuration, MeasureResult)]);

    /// Whether the tuner can still propose new configurations.
    fn has_next(&self) -> bool;
}
