//! `XGBTuner`: gradient-boosted-tree cost model + candidate proposal.
//!
//! Mirrors AutoTVM's model-based tuner: observed (configuration, runtime)
//! pairs train a boosted-tree regressor over the encoded knob vector; the
//! tuner then proposes the unvisited candidates with the best predicted
//! runtime (full-grid ranking on small spaces, simulated annealing on
//! large ones), keeping only candidates predicted to be competitive with
//! the best runtime already measured.
//!
//! That competitiveness filter is what makes the tuner stop early on the
//! paper's small LU/Cholesky spaces — once the model is confident no
//! unvisited point beats the incumbent, the proposal pool empties. The
//! paper observes exactly this: "XGBoost search tuner could only do at
//! most 56 evaluations no matter how many evaluations are set".

use crate::measure::MeasureResult;
use crate::tuner::sa::anneal;
use crate::tuner::Tuner;
use configspace::{ConfigSpace, Configuration};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;
use surrogate::gbt::GradientBoosting;
use surrogate::Regressor;

/// Grid-rank candidates exhaustively up to this space size; anneal above.
const GRID_LIMIT: u128 = 1 << 16;

/// AutoTVM's `XGBTuner`.
pub struct XgbTuner {
    space: ConfigSpace,
    rng: SmallRng,
    /// Candidates proposed per model refresh (AutoTVM `plan_size`).
    pub plan_size: usize,
    /// Random trials before the first model fit.
    pub n_initial: usize,
    /// Proposal filter: keep candidates with predicted runtime below
    /// `(1 + margin) × best observed`.
    pub improvement_margin: f64,
    /// Boosting rounds per refit.
    pub n_rounds: usize,
    observed: Vec<(Vec<f64>, f64)>,
    best_runtime: f64,
    worst_runtime: f64,
    pending: Vec<Configuration>,
    visited: HashSet<String>,
    exhausted: bool,
}

impl XgbTuner {
    /// New tuner with AutoTVM-like defaults.
    pub fn new(space: ConfigSpace, seed: u64) -> XgbTuner {
        XgbTuner {
            space,
            rng: SmallRng::seed_from_u64(seed),
            plan_size: 16,
            n_initial: 16,
            improvement_margin: 0.05,
            n_rounds: 40,
            observed: Vec::new(),
            best_runtime: f64::INFINITY,
            worst_runtime: f64::NEG_INFINITY,
            pending: Vec::new(),
            visited: HashSet::new(),
            exhausted: false,
        }
    }

    /// Number of measurements the model has seen.
    pub fn observed_count(&self) -> usize {
        self.observed.len()
    }

    fn propose_random(&mut self, n: usize) {
        let mut attempts = 0;
        while self.pending.len() < n && attempts < n * 200 {
            attempts += 1;
            let c = self.space.sample(&mut self.rng);
            if !self.visited.contains(&c.key()) && !self.pending.iter().any(|p| p.key() == c.key())
            {
                self.pending.push(c);
            }
        }
    }

    fn refill(&mut self) {
        if self.observed.len() < self.n_initial {
            self.propose_random(self.plan_size);
            if self.pending.is_empty() {
                self.exhausted = true;
            }
            return;
        }

        // Train the cost model on everything observed so far.
        let (x, y): (Vec<Vec<f64>>, Vec<f64>) = self.observed.iter().cloned().unzip();
        let mut model = GradientBoosting::new(self.n_rounds)
            .with_max_depth(4)
            .with_seed(7);
        model.fit(&x, &y);

        let threshold = self.best_runtime * (1.0 + self.improvement_margin);
        let size = self.space.size().expect("discrete space");
        let mut candidates: Vec<(Configuration, f64)> = if size <= GRID_LIMIT {
            self.space
                .grid()
                .filter(|c| !self.visited.contains(&c.key()))
                .map(|c| {
                    let pred = model.predict_one(&self.space.encode(&c));
                    (c, pred)
                })
                .collect()
        } else {
            let space = &self.space;
            let score = |c: &Configuration| -model.predict_one(&space.encode(c));
            anneal(space, &score, self.plan_size * 4, 60, &mut self.rng)
                .into_iter()
                .filter(|(c, _)| !self.visited.contains(&c.key()))
                .map(|(c, s)| (c, -s))
                .collect()
        };
        candidates.retain(|(_, pred)| *pred <= threshold);
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(self.plan_size);

        self.pending = candidates.into_iter().map(|(c, _)| c).collect();
        if self.pending.is_empty() {
            // No unvisited candidate predicted competitive: stop early
            // (the paper's ≤56-evaluation behavior).
            self.exhausted = true;
        }
    }
}

impl Tuner for XgbTuner {
    fn name(&self) -> &str {
        "AutoTVM-XGB"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Configuration> {
        if self.exhausted {
            return Vec::new();
        }
        if self.pending.is_empty() {
            self.refill();
        }
        let take = n.min(self.pending.len());
        let out: Vec<Configuration> = self.pending.drain(..take).collect();
        for c in &out {
            self.visited.insert(c.key());
        }
        out
    }

    fn update(&mut self, results: &[(Configuration, MeasureResult)]) {
        // Two passes: ingest successes first so the penalty scale for
        // failures reflects every success in the batch, independent of the
        // order the measurer happened to return results in.
        for (cfg, res) in results {
            self.visited.insert(cfg.key());
            if let Some(t) = res.runtime_s {
                self.observed.push((self.space.encode(cfg), t));
                self.best_runtime = self.best_runtime.min(t);
                self.worst_runtime = self.worst_runtime.max(t);
            }
        }
        for (cfg, res) in results {
            if res.runtime_s.is_none() {
                // Teach the model that this region fails, as AutoTVM
                // does (a failed measurement gets the worst score):
                // a large-but-finite penalty keeps the regression
                // well-posed while steering proposals away.
                let penalty = if self.worst_runtime.is_finite() {
                    self.worst_runtime * 10.0
                } else {
                    1e6
                };
                self.observed.push((self.space.encode(cfg), penalty));
            }
        }
    }

    fn has_next(&self) -> bool {
        !self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::Hyperparameter;

    fn space(n: i64) -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=n).collect::<Vec<i64>>(),
        ));
        cs.add(Hyperparameter::ordinal_ints(
            "P1",
            &(1..=n).collect::<Vec<i64>>(),
        ));
        cs
    }

    /// Smooth objective, minimum 1.0 at (15, 6).
    fn runtime(c: &Configuration) -> f64 {
        let (a, b) = (c.int("P0") as f64, c.int("P1") as f64);
        1.0 + 0.05 * ((a - 15.0).powi(2) + (b - 6.0).powi(2))
    }

    fn drive(t: &mut XgbTuner, budget: usize) -> (usize, f64) {
        let mut evals = 0;
        let mut best = f64::INFINITY;
        while evals < budget && t.has_next() {
            let batch = t.next_batch(8);
            if batch.is_empty() {
                break;
            }
            let results: Vec<_> = batch
                .iter()
                .map(|c| {
                    let r = runtime(c);
                    (c.clone(), MeasureResult::ok(r, r))
                })
                .collect();
            evals += results.len();
            for (_, r) in &results {
                best = best.min(r.runtime_s.expect("ok"));
            }
            t.update(&results);
        }
        (evals, best)
    }

    #[test]
    fn model_guides_search_to_optimum() {
        let mut t = XgbTuner::new(space(20), 3);
        let (_, best) = drive(&mut t, 100);
        assert!(best < 1.6, "best={best}");
    }

    #[test]
    fn stops_early_on_small_space() {
        // 400-point space, like the paper's LU/Cholesky large: the tuner
        // must terminate well before a 400-evaluation budget.
        let mut t = XgbTuner::new(space(20), 1);
        let (evals, _) = drive(&mut t, 400);
        assert!(
            evals < 120,
            "competitiveness filter should stop the tuner early, did {evals}"
        );
        assert!(!t.has_next());
    }

    #[test]
    fn never_repeats() {
        let mut t = XgbTuner::new(space(12), 5);
        let mut seen = HashSet::new();
        while t.has_next() && seen.len() < 144 {
            let batch = t.next_batch(8);
            if batch.is_empty() {
                break;
            }
            let results: Vec<_> = batch
                .iter()
                .map(|c| {
                    assert!(seen.insert(c.key()), "repeat {c}");
                    let r = runtime(c);
                    (c.clone(), MeasureResult::ok(r, r))
                })
                .collect();
            t.update(&results);
        }
    }

    #[test]
    fn failed_measurements_are_tolerated() {
        let mut t = XgbTuner::new(space(10), 2);
        let batch = t.next_batch(4);
        let results: Vec<_> = batch
            .iter()
            .map(|c| (c.clone(), MeasureResult::fail("compile error", 0.1)))
            .collect();
        t.update(&results);
        assert!(t.has_next());
        assert!(!t.next_batch(4).is_empty());
    }

    #[test]
    fn failed_measurements_penalize_the_model() {
        let mut t = XgbTuner::new(space(10), 2);
        let batch = t.next_batch(4);
        assert_eq!(t.observed_count(), 0);
        // One success fixes the penalty scale; failures train at 10×.
        let mut results: Vec<_> = batch
            .iter()
            .skip(1)
            .map(|c| (c.clone(), MeasureResult::fail("compile error", 0.1)))
            .collect();
        results.push((batch[0].clone(), MeasureResult::ok(2.0, 2.0)));
        t.update(&results);
        assert_eq!(t.observed_count(), 4, "failures become training points");
        assert!(t.observed.iter().any(|(_, y)| (*y - 20.0).abs() < 1e-9));
    }
}
