//! Simulated-annealing candidate proposal (used by the XGB tuner on
//! spaces too large to enumerate, mirroring AutoTVM's `sa_model_optimizer`).

use configspace::{ConfigSpace, Configuration};
use rand::rngs::SmallRng;
use rand::Rng;

/// Run `chains` parallel annealing walks of `steps` steps maximizing
/// `score` (higher is better); returns the best point of every chain,
/// deduplicated, best first.
pub fn anneal(
    space: &ConfigSpace,
    score: &dyn Fn(&Configuration) -> f64,
    chains: usize,
    steps: usize,
    rng: &mut SmallRng,
) -> Vec<(Configuration, f64)> {
    let mut bests: Vec<(Configuration, f64)> = Vec::with_capacity(chains);
    for _ in 0..chains {
        let mut cur = space.sample(rng);
        let mut cur_s = score(&cur);
        let mut best = cur.clone();
        let mut best_s = cur_s;
        for step in 0..steps {
            let temp = 1.0 - step as f64 / steps as f64; // linear cooling
            let cand = space.neighbor(&cur, rng);
            let cand_s = score(&cand);
            let accept = cand_s >= cur_s || {
                let delta = cur_s - cand_s;
                rng.gen::<f64>() < (-delta / temp.max(1e-9)).exp()
            };
            if accept {
                cur = cand;
                cur_s = cand_s;
                if cur_s > best_s {
                    best = cur.clone();
                    best_s = cur_s;
                }
            }
        }
        bests.push((best, best_s));
    }
    bests.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    bests.dedup_by(|a, b| a.0.key() == b.0.key());
    bests
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::Hyperparameter;
    use rand::SeedableRng;

    #[test]
    fn finds_high_score_region() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(0..64).collect::<Vec<i64>>(),
        ));
        cs.add(Hyperparameter::ordinal_ints(
            "P1",
            &(0..64).collect::<Vec<i64>>(),
        ));
        // Peak at (40, 20).
        let score = |c: &Configuration| {
            let (a, b) = (c.int("P0") as f64, c.int("P1") as f64);
            -((a - 40.0).powi(2) + (b - 20.0).powi(2))
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let out = anneal(&cs, &score, 8, 200, &mut rng);
        assert!(!out.is_empty());
        let best = &out[0];
        assert!(
            best.1 > -100.0,
            "annealing should get close to the peak, best score {}",
            best.1
        );
    }

    #[test]
    fn results_sorted_and_deduped() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 3]));
        let score = |c: &Configuration| c.int("P0") as f64;
        let mut rng = SmallRng::seed_from_u64(1);
        let out = anneal(&cs, &score, 16, 30, &mut rng);
        assert!(out.windows(2).all(|w| w[0].1 >= w[1].1));
        let keys: std::collections::HashSet<_> = out.iter().map(|(c, _)| c.key()).collect();
        assert_eq!(keys.len(), out.len());
    }
}
