//! `RandomTuner`: enumerate the space in a random order.

use crate::measure::MeasureResult;
use crate::tuner::Tuner;
use configspace::{ConfigSpace, Configuration};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Spaces up to this size get a materialized random permutation (exact
/// no-repeat enumeration); larger spaces use rejection sampling.
const PERMUTE_LIMIT: u128 = 1 << 20;

/// AutoTVM's `RandomTuner`.
pub struct RandomTuner {
    space: ConfigSpace,
    rng: SmallRng,
    /// Pre-shuffled flat indices (small spaces).
    perm: Option<Vec<u128>>,
    cursor: usize,
    /// Visited keys (large spaces).
    visited: HashSet<String>,
    exhausted: bool,
}

impl RandomTuner {
    /// New tuner over `space`.
    pub fn new(space: ConfigSpace, seed: u64) -> RandomTuner {
        let mut rng = SmallRng::seed_from_u64(seed);
        let size = space.size().expect("RandomTuner needs a discrete space");
        let perm = if size <= PERMUTE_LIMIT {
            let mut p: Vec<u128> = (0..size).collect();
            p.shuffle(&mut rng);
            Some(p)
        } else {
            None
        };
        RandomTuner {
            space,
            rng,
            perm,
            cursor: 0,
            visited: HashSet::new(),
            exhausted: false,
        }
    }
}

impl Tuner for RandomTuner {
    fn name(&self) -> &str {
        "AutoTVM-Random"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Configuration> {
        let mut out = Vec::with_capacity(n);
        match &self.perm {
            Some(perm) => {
                while out.len() < n && self.cursor < perm.len() {
                    out.push(self.space.at(perm[self.cursor]));
                    self.cursor += 1;
                }
                if self.cursor >= perm.len() {
                    self.exhausted = true;
                }
            }
            None => {
                // Huge space: collisions are vanishingly rare; bound the
                // rejection loop anyway.
                let mut attempts = 0usize;
                while out.len() < n && attempts < n * 100 {
                    attempts += 1;
                    let size = self.space.size().expect("discrete");
                    let idx = (self.rng.gen::<u128>()) % size;
                    let c = self.space.at(idx);
                    if self.visited.insert(c.key()) {
                        out.push(c);
                    }
                }
                if out.is_empty() {
                    self.exhausted = true;
                }
            }
        }
        out
    }

    fn update(&mut self, _results: &[(Configuration, MeasureResult)]) {}

    fn has_next(&self) -> bool {
        !self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::Hyperparameter;

    fn small_space() -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 4, 8]));
        cs.add(Hyperparameter::ordinal_ints("P1", &[1, 2, 4]));
        cs
    }

    #[test]
    fn enumerates_whole_space_without_repeats() {
        let mut t = RandomTuner::new(small_space(), 1);
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        while t.has_next() {
            for c in t.next_batch(5) {
                assert!(seen.insert(c.key()), "duplicate {c}");
                total += 1;
            }
        }
        assert_eq!(total, 12);
    }

    #[test]
    fn order_is_random_but_seeded() {
        let c1: Vec<String> = RandomTuner::new(small_space(), 7)
            .next_batch(12)
            .iter()
            .map(|c| c.key())
            .collect();
        let c2: Vec<String> = RandomTuner::new(small_space(), 7)
            .next_batch(12)
            .iter()
            .map(|c| c.key())
            .collect();
        let c3: Vec<String> = RandomTuner::new(small_space(), 8)
            .next_batch(12)
            .iter()
            .map(|c| c.key())
            .collect();
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        // And differs from grid order.
        let grid: Vec<String> = small_space().grid().map(|c| c.key()).collect();
        assert_ne!(c1, grid);
    }

    #[test]
    fn huge_space_sampling_dedups() {
        let mut cs = ConfigSpace::new();
        for i in 0..8 {
            cs.add(Hyperparameter::ordinal_ints(
                format!("P{i}"),
                &(1..=12).collect::<Vec<i64>>(),
            ));
        }
        assert!(cs.size().expect("discrete") > PERMUTE_LIMIT);
        let mut t = RandomTuner::new(cs, 3);
        let batch = t.next_batch(50);
        assert_eq!(batch.len(), 50);
        let keys: std::collections::HashSet<_> = batch.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), 50);
    }
}
