//! `GridSearchTuner`: enumerate the space in grid (flat-index) order.

use crate::measure::MeasureResult;
use crate::tuner::Tuner;
use configspace::{ConfigSpace, Configuration};

/// AutoTVM's `GridSearchTuner`.
///
/// On the paper's spaces the grid order starts in the all-smallest-tiles
/// corner, which is why the paper finds this tuner "performed the worst
/// for all the experiments" at a 100-evaluation budget: it never leaves
/// the bad corner of a 74M-point space.
pub struct GridSearchTuner {
    space: ConfigSpace,
    cursor: u128,
    size: u128,
}

impl GridSearchTuner {
    /// New tuner over `space`.
    pub fn new(space: ConfigSpace) -> GridSearchTuner {
        let size = space
            .size()
            .expect("GridSearchTuner needs a discrete space");
        GridSearchTuner {
            space,
            cursor: 0,
            size,
        }
    }
}

impl Tuner for GridSearchTuner {
    fn name(&self) -> &str {
        "AutoTVM-GridSearch"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Configuration> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n && self.cursor < self.size {
            out.push(self.space.at(self.cursor));
            self.cursor += 1;
        }
        out
    }

    fn update(&mut self, _results: &[(Configuration, MeasureResult)]) {}

    fn has_next(&self) -> bool {
        self.cursor < self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::Hyperparameter;

    #[test]
    fn enumerates_in_grid_order() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2]));
        cs.add(Hyperparameter::ordinal_ints("P1", &[10, 20, 30]));
        let mut t = GridSearchTuner::new(cs);
        let all = t.next_batch(10);
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].ints(), vec![1, 10]);
        assert_eq!(all[1].ints(), vec![1, 20]);
        assert_eq!(all[5].ints(), vec![2, 30]);
        assert!(!t.has_next());
        assert!(t.next_batch(4).is_empty());
    }

    #[test]
    fn starts_in_smallest_tile_corner() {
        // The property that dooms grid search in the paper.
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 4, 1000]));
        cs.add(Hyperparameter::ordinal_ints("P1", &[1, 2, 4, 1000]));
        let mut t = GridSearchTuner::new(cs);
        let first = t.next_batch(1);
        assert_eq!(first[0].ints(), vec![1, 1]);
    }
}
