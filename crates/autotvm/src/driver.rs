//! The tuning driver: runs a tuner against an evaluator and records the
//! trial history with process-time accounting.
//!
//! Three entry points share one measure loop: [`tune`] (in-memory only),
//! [`tune_journaled`] (every completed trial fsync'd to an append-only
//! JSONL journal) and [`resume_from_journal`] (replay a journal's
//! completed trials through the tuner — re-feeding `update` without
//! re-measuring anything — then continue live until the budget is
//! reached). Every tuner is a deterministic function of (seed, observed
//! history), so a killed-and-resumed run follows the identical remaining
//! trajectory as an uninterrupted one.

use crate::measure::{
    CacheStats, Evaluator, JitStats, MeasureResult, ParStats, PruneStats, SimdStats,
    StaticCheckStats,
};
use crate::tuner::Tuner;
use configspace::Configuration;
use rayon::prelude::*;
use std::path::Path;
use std::time::Instant;
use ytopt_bo::fault::{panic_message, MeasureError};
use ytopt_bo::journal::{divergence_error, pipeline_mismatch_error, TrialJournal, TrialRecord};

/// Budget and batching options (the paper: `max_evals = 100`).
#[derive(Debug, Clone, Copy)]
pub struct TuneOptions {
    /// Maximum number of measured configurations.
    pub max_evals: usize,
    /// Configurations requested from the tuner per round (AutoTVM's
    /// measure batch).
    pub batch: usize,
    /// Optional cap on accumulated process time, seconds.
    pub max_process_s: Option<f64>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            max_evals: 100,
            batch: 8,
            max_process_s: None,
        }
    }
}

/// One measured trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// 0-based evaluation index.
    pub index: usize,
    /// The measured configuration.
    pub config: Configuration,
    /// Kernel runtime, seconds (`None` on failure).
    pub runtime_s: Option<f64>,
    /// Failure class when the measurement produced no runtime.
    pub error: Option<MeasureError>,
    /// Process time this evaluation consumed.
    pub eval_process_s: f64,
    /// Cumulative process time (tuner think time + evaluations) when this
    /// trial finished — the x-axis of the paper's Figures 4/6/8/10/12.
    pub elapsed_s: f64,
}

/// Complete history of one tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// Tuner display name.
    pub tuner: String,
    /// Trials in measurement order.
    pub trials: Vec<Trial>,
    /// Total autotuning process time (the paper's bar-chart metric).
    pub total_process_s: f64,
    /// Wall-clock the tuner itself spent proposing/updating.
    pub think_s: f64,
    /// How many trials were replayed from a journal rather than measured
    /// live (0 for fresh runs).
    pub replayed: usize,
    /// Hit/miss counters of the evaluator's lowering/compilation memo
    /// cache, when it keeps one.
    pub cache: Option<CacheStats>,
    /// Accept/reject counters of the evaluator's static schedule-safety
    /// analyzer, when it runs one.
    pub static_checks: Option<StaticCheckStats>,
    /// Native-codegen compile counters of the evaluator's device, when
    /// it runs a JIT rung (functions jitted, bytes emitted, fallbacks
    /// with reasons).
    pub jit: Option<JitStats>,
    /// Multicore-dispatch counters of the evaluator's device, when it
    /// runs parallel loops on a worker pool (loops proven race-free,
    /// dispatches, sequential fallbacks with reasons).
    pub par: Option<ParStats>,
    /// Packed-SIMD emission counters of the evaluator's device, when it
    /// runs a vectorizing codegen rung (vector sites packed vs scalar,
    /// with per-reason fallbacks and lane widths).
    pub simd: Option<SimdStats>,
    /// Batch static-pruning counters of the evaluator's analyzer
    /// pipeline, when it filters candidate batches before measurement
    /// (admitted / denied by stage, with per-code counts).
    pub prune: Option<PruneStats>,
}

impl TuningResult {
    /// The successful trial with the smallest runtime.
    pub fn best(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .filter(|t| t.runtime_s.is_some())
            .min_by(|a, b| {
                a.runtime_s
                    .partial_cmp(&b.runtime_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Number of evaluations performed.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True when no trial ran.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Number of failed trials.
    pub fn failed(&self) -> usize {
        self.trials.iter().filter(|t| t.runtime_s.is_none()).count()
    }

    /// Running minimum runtime after each trial (convergence curve).
    pub fn incumbent_curve(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.trials
            .iter()
            .map(|t| {
                if let Some(r) = t.runtime_s {
                    best = best.min(r);
                }
                best
            })
            .collect()
    }
}

/// Run `tuner` against `evaluator` until the budget is exhausted or the
/// tuner gives up (the paper's Step 1–5 loop).
///
/// Process-time accounting: the tuner's *real* `next_batch`/`update` time
/// is measured with a wall clock and added to the evaluations' (possibly
/// simulated) process seconds — so a model-based tuner that spends real
/// CPU time training is charged for it, exactly as in the paper's
/// "overall autotuning process time".
pub fn tune(tuner: &mut dyn Tuner, evaluator: &dyn Evaluator, opts: TuneOptions) -> TuningResult {
    tune_inner(tuner, evaluator, opts, None, Vec::new()).expect("journal-free tuning cannot do I/O")
}

/// Like [`tune`], but write every completed trial to a crash-consistent
/// journal at `path` (truncating any previous journal there). See
/// `ytopt_bo::journal` for the format and durability guarantees.
pub fn tune_journaled(
    tuner: &mut dyn Tuner,
    evaluator: &dyn Evaluator,
    opts: TuneOptions,
    path: impl AsRef<Path>,
) -> std::io::Result<TuningResult> {
    let mut journal = TrialJournal::create(path)?;
    tune_inner(tuner, evaluator, opts, Some(&mut journal), Vec::new())
}

/// Resume a (possibly interrupted) journaled run: replay every completed
/// trial from the journal at `path` through the tuner's normal
/// propose/update cycle — without re-measuring anything — then continue
/// live until the budget is reached, appending new trials to the same
/// journal.
///
/// Requires the same tuner construction (seed included), options and
/// evaluator as the original run; a mismatch is detected when the tuner's
/// proposals diverge from the journal and reported as `InvalidData`.
pub fn resume_from_journal(
    tuner: &mut dyn Tuner,
    evaluator: &dyn Evaluator,
    opts: TuneOptions,
    path: impl AsRef<Path>,
) -> std::io::Result<TuningResult> {
    let (mut journal, replay) = TrialJournal::open_resume(path)?;
    tune_inner(tuner, evaluator, opts, Some(&mut journal), replay)
}

fn tune_inner(
    tuner: &mut dyn Tuner,
    evaluator: &dyn Evaluator,
    opts: TuneOptions,
    mut journal: Option<&mut TrialJournal>,
    replay: Vec<TrialRecord>,
) -> std::io::Result<TuningResult> {
    let pipeline = evaluator.pipeline_fingerprint();
    let mut trials: Vec<Trial> = Vec::with_capacity(opts.max_evals);
    let mut elapsed = 0.0f64;
    let mut think = 0.0f64;
    let replay_total = replay.len();
    let mut replay = replay.into_iter();
    let mut replayed = 0usize;

    while trials.len() < opts.max_evals && tuner.has_next() {
        // While replaying, `elapsed` is restored from the journal rather
        // than accumulated live, so the resume process's own think time
        // does not distort the trajectory — and the cap must not fire at
        // a different trial than in the uninterrupted run.
        let replaying = trials.len() < replay_total;
        if !replaying {
            if let Some(cap) = opts.max_process_s {
                if elapsed >= cap {
                    break;
                }
            }
        }
        let want = opts.batch.min(opts.max_evals - trials.len());
        let t0 = Instant::now();
        let batch = tuner.next_batch(want);
        let dt = t0.elapsed().as_secs_f64();
        think += dt;
        if !replaying {
            elapsed += dt;
        }
        if batch.is_empty() {
            break;
        }

        let mut any_live = false;
        // Static batch filter, run lazily at the first *live* trial of
        // the round (replayed trials carry journaled verdicts and must
        // not re-analyze anything). Denied configs become zero-cost
        // `static_reject` trials without compiling or measuring.
        let mut pruned: Option<(usize, Vec<Option<String>>)> = None;
        let mut prune_checked = false;
        let mut results: Vec<(Configuration, MeasureResult)> = Vec::with_capacity(batch.len());
        for (i, config) in batch.iter().enumerate() {
            let (res, live) = match replay.next() {
                Some(rec) => {
                    if rec.config.key() != config.key() {
                        return Err(divergence_error(
                            trials.len(),
                            &rec.config.key(),
                            &config.key(),
                        ));
                    }
                    if rec.pipeline != pipeline {
                        return Err(pipeline_mismatch_error(
                            trials.len(),
                            &rec.pipeline,
                            &pipeline,
                        ));
                    }
                    replayed += 1;
                    elapsed = rec.elapsed_s;
                    (
                        MeasureResult {
                            runtime_s: rec.runtime_s,
                            process_s: rec.eval_process_s,
                            error: rec.error,
                        },
                        false,
                    )
                }
                None => {
                    if !prune_checked {
                        prune_checked = true;
                        let t0 = Instant::now();
                        pruned = evaluator.prune_batch(&batch[i..]).map(|mask| (i, mask));
                        // Static filtering is real work the process did.
                        elapsed += t0.elapsed().as_secs_f64();
                    }
                    let verdict = pruned
                        .as_ref()
                        .and_then(|(off, mask)| mask.get(i - off).cloned().flatten());
                    match verdict {
                        Some(msg) => (
                            MeasureResult::fail(MeasureError::StaticReject(msg), 0.0),
                            true,
                        ),
                        None => (evaluator.evaluate(config), true),
                    }
                }
            };
            if live {
                any_live = true;
                elapsed += res.process_s;
            }
            let trial = Trial {
                index: trials.len(),
                config: config.clone(),
                runtime_s: res.runtime_s,
                error: res.error.clone(),
                eval_process_s: res.process_s,
                elapsed_s: elapsed,
            };
            if live {
                if let Some(journal) = journal.as_deref_mut() {
                    journal.append(&TrialRecord {
                        index: trial.index,
                        config: trial.config.clone(),
                        runtime_s: trial.runtime_s,
                        error: trial.error.clone(),
                        eval_process_s: trial.eval_process_s,
                        elapsed_s: trial.elapsed_s,
                        pipeline: pipeline.clone(),
                    })?;
                }
            }
            trials.push(trial);
            results.push((config.clone(), res));
        }

        let t1 = Instant::now();
        tuner.update(&results);
        let dt = t1.elapsed().as_secs_f64();
        think += dt;
        if any_live {
            elapsed += dt;
        }
    }

    Ok(TuningResult {
        tuner: tuner.name().to_string(),
        trials,
        total_process_s: elapsed,
        think_s: think,
        replayed,
        cache: evaluator.cache_stats(),
        static_checks: evaluator.static_check_stats(),
        jit: evaluator.jit_stats(),
        par: evaluator.par_stats(),
        simd: evaluator.simd_stats(),
        prune: evaluator.prune_stats(),
    })
}

/// Like [`tune`], but measure each round's batch **concurrently** on the
/// rayon thread pool (the evaluator must be `Sync`).
///
/// Process-time accounting charges the *maximum* evaluation time of each
/// batch — the wall-clock a `batch`-wide worker pool would observe — plus
/// the tuner's own think time. Each worker's retries and backoff waits
/// are inside its own `process_s`, so overlapping backoffs are never
/// charged serially (the sequential [`tune`] charges them end to end,
/// which is correct for one worker).
///
/// A panicking measurement worker does **not** abort the run: the panic
/// is caught and becomes a failed trial ([`MeasureError::RuntimeCrash`]).
pub fn tune_parallel<E: Evaluator + Sync>(
    tuner: &mut dyn Tuner,
    evaluator: &E,
    opts: TuneOptions,
) -> TuningResult {
    let mut trials: Vec<Trial> = Vec::with_capacity(opts.max_evals);
    let mut elapsed = 0.0f64;
    let mut think = 0.0f64;

    while trials.len() < opts.max_evals && tuner.has_next() {
        if let Some(cap) = opts.max_process_s {
            if elapsed >= cap {
                break;
            }
        }
        let want = opts.batch.min(opts.max_evals - trials.len());
        let t0 = Instant::now();
        let batch = tuner.next_batch(want);
        let dt = t0.elapsed().as_secs_f64();
        think += dt;
        elapsed += dt;
        if batch.is_empty() {
            break;
        }

        // Static batch filter before any worker dispatch: denied configs
        // become zero-cost `static_reject` trials and never occupy a
        // measurement slot.
        let t0 = Instant::now();
        let mask = evaluator.prune_batch(&batch);
        elapsed += t0.elapsed().as_secs_f64();

        // Measure the admitted configs concurrently; each worker catches
        // its own panic so one crashed measurement cannot kill the batch.
        let results: Vec<MeasureResult> = batch
            .par_iter()
            .enumerate()
            .map(|(i, cfg)| {
                if let Some(msg) = mask.as_ref().and_then(|m| m.get(i).cloned().flatten()) {
                    return MeasureResult::fail(MeasureError::StaticReject(msg), 0.0);
                }
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| evaluator.evaluate(cfg)))
                    .unwrap_or_else(|payload| {
                        MeasureResult::fail(
                            MeasureError::RuntimeCrash(format!(
                                "measurement worker panicked: {}",
                                panic_message(payload.as_ref())
                            )),
                            0.0,
                        )
                    })
            })
            .collect();

        // A batch-wide pool finishes when its slowest member does.
        let batch_wall = results.iter().map(|r| r.process_s).fold(0.0f64, f64::max);
        elapsed += batch_wall;

        let feedback: Vec<(Configuration, MeasureResult)> =
            batch.into_iter().zip(results).collect();
        for (config, res) in &feedback {
            trials.push(Trial {
                index: trials.len(),
                config: config.clone(),
                runtime_s: res.runtime_s,
                error: res.error.clone(),
                eval_process_s: res.process_s,
                elapsed_s: elapsed,
            });
        }

        let t1 = Instant::now();
        tuner.update(&feedback);
        let dt = t1.elapsed().as_secs_f64();
        think += dt;
        elapsed += dt;
    }

    TuningResult {
        tuner: tuner.name().to_string(),
        trials,
        total_process_s: elapsed,
        think_s: think,
        replayed: 0,
        cache: evaluator.cache_stats(),
        static_checks: evaluator.static_check_stats(),
        jit: evaluator.jit_stats(),
        par: evaluator.par_stats(),
        simd: evaluator.simd_stats(),
        prune: evaluator.prune_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::FnEvaluator;
    use crate::tuner::gridsearch::GridSearchTuner;
    use crate::tuner::random::RandomTuner;
    use configspace::{ConfigSpace, Hyperparameter};

    fn space() -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=10).collect::<Vec<i64>>(),
        ));
        cs.add(Hyperparameter::ordinal_ints(
            "P1",
            &(1..=10).collect::<Vec<i64>>(),
        ));
        cs
    }

    fn evaluator() -> FnEvaluator<impl Fn(&Configuration) -> MeasureResult> {
        FnEvaluator::new(space(), |c| {
            let r = (c.int("P0") - 7).pow(2) as f64 + (c.int("P1") - 3).pow(2) as f64 + 1.0;
            MeasureResult::ok(r, r + 0.8)
        })
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("autotvm-driver-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn respects_budget() {
        let ev = evaluator();
        let mut t = RandomTuner::new(space(), 1);
        let res = tune(&mut t, &ev, TuneOptions::default());
        assert_eq!(res.len(), 100);
        assert_eq!(res.trials.last().expect("trials").index, 99);
        assert_eq!(res.replayed, 0);
    }

    #[test]
    fn elapsed_is_monotone_and_includes_eval_cost() {
        let ev = evaluator();
        let mut t = GridSearchTuner::new(space());
        let res = tune(
            &mut t,
            &ev,
            TuneOptions {
                max_evals: 20,
                batch: 4,
                max_process_s: None,
            },
        );
        assert!(res
            .trials
            .windows(2)
            .all(|w| w[0].elapsed_s < w[1].elapsed_s));
        let eval_sum: f64 = res.trials.iter().map(|t| t.eval_process_s).sum();
        assert!(res.total_process_s >= eval_sum);
        assert!(res.think_s >= 0.0);
    }

    #[test]
    fn best_finds_minimum_on_full_grid() {
        let ev = evaluator();
        let mut t = GridSearchTuner::new(space());
        let res = tune(
            &mut t,
            &ev,
            TuneOptions {
                max_evals: 100,
                batch: 10,
                max_process_s: None,
            },
        );
        let best = res.best().expect("has best");
        assert_eq!(best.runtime_s, Some(1.0));
        assert_eq!(best.config.int("P0"), 7);
        assert_eq!(best.config.int("P1"), 3);
    }

    #[test]
    fn incumbent_curve_is_nonincreasing() {
        let ev = evaluator();
        let mut t = RandomTuner::new(space(), 5);
        let res = tune(&mut t, &ev, TuneOptions::default());
        let curve = res.incumbent_curve();
        assert_eq!(curve.len(), res.len());
        assert!(curve.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn process_cap_stops_early() {
        let ev = evaluator();
        let mut t = RandomTuner::new(space(), 2);
        let res = tune(
            &mut t,
            &ev,
            TuneOptions {
                max_evals: 100,
                batch: 5,
                max_process_s: Some(30.0),
            },
        );
        assert!(res.len() < 100);
    }

    #[test]
    fn stops_when_tuner_exhausted() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 3]));
        let ev = FnEvaluator::new(cs.clone(), |_| MeasureResult::ok(1.0, 1.0));
        let mut t = GridSearchTuner::new(cs);
        let res = tune(&mut t, &ev, TuneOptions::default());
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn failed_trials_carry_their_error() {
        let ev = FnEvaluator::new(space(), |c| {
            if c.int("P0") % 2 == 0 {
                MeasureResult::fail(MeasureError::BuildFailed("even P0".into()), 0.2)
            } else {
                MeasureResult::ok(1.0, 1.0)
            }
        });
        let mut t = GridSearchTuner::new(space());
        let res = tune(
            &mut t,
            &ev,
            TuneOptions {
                max_evals: 20,
                batch: 5,
                max_process_s: None,
            },
        );
        assert!(res.failed() > 0);
        for t in &res.trials {
            match t.runtime_s {
                Some(_) => assert!(t.error.is_none()),
                None => {
                    assert_eq!(t.error.as_ref().map(|e| e.kind()), Some("build_failed"));
                }
            }
        }
        assert!(res.best().expect("best").error.is_none());
    }

    #[test]
    fn parallel_tuning_matches_sequential_trajectory() {
        let ev = evaluator();
        let opts = TuneOptions {
            max_evals: 40,
            batch: 8,
            max_process_s: None,
        };
        let mut t_seq = GridSearchTuner::new(space());
        let seq = tune(&mut t_seq, &ev, opts);
        let mut t_par = GridSearchTuner::new(space());
        let par = tune_parallel(&mut t_par, &ev, opts);
        let keys =
            |r: &TuningResult| -> Vec<String> { r.trials.iter().map(|t| t.config.key()).collect() };
        assert_eq!(keys(&seq), keys(&par), "same proposals, same order");
        assert_eq!(
            seq.best().expect("best").config.key(),
            par.best().expect("best").config.key()
        );
        // Same per-trial measurements, cheaper batch accounting.
        for (a, b) in seq.trials.iter().zip(&par.trials) {
            assert_eq!(a.runtime_s, b.runtime_s);
            assert_eq!(a.eval_process_s, b.eval_process_s);
        }
        assert!(par.total_process_s < seq.total_process_s);
    }

    #[test]
    fn parallel_tuning_charges_batch_max_not_sum() {
        // Every measurement burns 0.5 s of charged process time (think:
        // retries + backoff under the harness). Five overlapping workers
        // must be charged max(0.5) per round, not 5 × 0.5.
        let ev = FnEvaluator::new(space(), |c| MeasureResult::ok(c.int("P0") as f64, 0.5));
        let mut t = GridSearchTuner::new(space());
        let res = tune_parallel(
            &mut t,
            &ev,
            TuneOptions {
                max_evals: 20,
                batch: 5,
                max_process_s: None,
            },
        );
        assert_eq!(res.len(), 20);
        assert!(res.trials.iter().all(|t| t.eval_process_s == 0.5));
        // 4 rounds × 0.5 s batch wall (+ think ε), far below the 10 s a
        // serial charge would accumulate.
        assert!(
            res.total_process_s < 3.0,
            "expected ~2 s, got {}",
            res.total_process_s
        );
        assert!(res.total_process_s >= 2.0);
    }

    #[test]
    fn parallel_tuning_survives_worker_panics() {
        let ev = FnEvaluator::new(space(), |c| {
            if c.int("P0") == c.int("P1") {
                panic!("measurement exploded on the diagonal");
            }
            MeasureResult::ok(1.0, 0.1)
        });
        let mut t = GridSearchTuner::new(space());
        let res = tune_parallel(
            &mut t,
            &ev,
            TuneOptions {
                max_evals: 50,
                batch: 10,
                max_process_s: None,
            },
        );
        assert_eq!(res.len(), 50);
        assert_eq!(res.failed(), 5, "five diagonal cells in the first half");
        for t in res.trials.iter().filter(|t| t.runtime_s.is_none()) {
            let err = t.error.as_ref().expect("crash recorded");
            assert_eq!(err.kind(), "runtime_crash");
            assert!(err.message().contains("measurement exploded"));
        }
    }

    #[test]
    fn journaled_run_resumes_identically() {
        let path = tmp("driver-resume.jsonl");
        let _ = std::fs::remove_file(&path);
        let ev = evaluator();
        let opts = TuneOptions {
            max_evals: 40,
            batch: 8,
            max_process_s: None,
        };

        // Reference: uninterrupted run.
        let mut t_full = RandomTuner::new(space(), 42);
        let full = tune(&mut t_full, &ev, opts);

        // Interrupted: journal 16 trials, then resume with a *fresh*
        // identically-seeded tuner (as a restarted process would).
        let mut t_part = RandomTuner::new(space(), 42);
        let partial = tune_journaled(
            &mut t_part,
            &ev,
            TuneOptions {
                max_evals: 16,
                ..opts
            },
            &path,
        )
        .expect("journaled run");
        assert_eq!(partial.len(), 16);

        let mut t_res = RandomTuner::new(space(), 42);
        let resumed = resume_from_journal(&mut t_res, &ev, opts, &path).expect("resume");
        assert_eq!(resumed.len(), 40);
        assert_eq!(resumed.replayed, 16);
        assert_eq!(TrialJournal::load(&path).expect("load").len(), 40);

        let keys =
            |r: &TuningResult| -> Vec<String> { r.trials.iter().map(|t| t.config.key()).collect() };
        assert_eq!(keys(&full), keys(&resumed), "identical trajectory");
        assert_eq!(
            full.best().expect("best").config.key(),
            resumed.best().expect("best").config.key()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_wrong_seed_reports_divergence() {
        let path = tmp("driver-diverge.jsonl");
        let _ = std::fs::remove_file(&path);
        let ev = evaluator();
        let opts = TuneOptions {
            max_evals: 10,
            batch: 5,
            max_process_s: None,
        };
        let mut t = RandomTuner::new(space(), 1);
        tune_journaled(&mut t, &ev, opts, &path).expect("journaled run");
        let mut wrong = RandomTuner::new(space(), 2);
        let err = resume_from_journal(
            &mut wrong,
            &ev,
            TuneOptions {
                max_evals: 20,
                ..opts
            },
            &path,
        )
        .expect_err("must diverge");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }
}
