#![warn(missing_docs)]
//! # autotvm — the baseline tuning framework (AutoTVM reimplementation)
//!
//! The paper compares its BO framework against AutoTVM with four tuner
//! strategies; this crate provides all four over the same
//! [`configspace::ConfigSpace`] the molds expose:
//!
//! * [`tuner::random::RandomTuner`] — enumerate the space in random order,
//! * [`tuner::gridsearch::GridSearchTuner`] — enumerate in grid order,
//! * [`tuner::ga::GaTuner`] — genetic algorithm over knob indices,
//! * [`tuner::xgb::XgbTuner`] — gradient-boosted-tree cost model with
//!   simulated-annealing candidate proposal (the XGBoost tuner). Like the
//!   paper observed on the small LU/Cholesky spaces, its proposal pool can
//!   exhaust before the trial budget and the tuner stops early (§5: "at
//!   most 56 evaluations").
//!
//! [`measure`] defines the evaluation interface and the process-time
//! accounting (build + transfer + repeated runs), and [`driver::tune`]
//! runs the measure loop, charging the tuner's *real* think time plus the
//! (simulated or real) evaluation cost — the quantity Figures 4–13 of the
//! paper plot on their time axes. [`record`] persists trials as JSON, the
//! moral equivalent of AutoTVM's tuning logs.
//!
//! Fault tolerance: [`harness::HarnessedEvaluator`] wraps any evaluator
//! with panic isolation, wall-clock timeouts and transient-failure retry;
//! [`harness::FaultInjector`] is its deterministic chaos-testing
//! counterpart; [`driver::tune_journaled`] /
//! [`driver::resume_from_journal`] give crash-consistent checkpointing of
//! tuning runs.

pub mod autoscheduler;
pub mod driver;
pub mod harness;
pub mod measure;
pub mod record;
pub mod tuner;

pub use autoscheduler::AutoScheduler;
pub use driver::{
    resume_from_journal, tune, tune_journaled, tune_parallel, Trial, TuneOptions, TuningResult,
};
pub use harness::{FaultInjector, FaultPlan, HarnessOptions, HarnessedEvaluator, RetryPolicy};
pub use measure::{CacheStats, Evaluator, JitStats, MeasureError, MeasureResult, ParStats, SimdStats};
pub use tuner::{
    ga::GaTuner, gridsearch::GridSearchTuner, random::RandomTuner, xgb::XgbTuner, Tuner,
};
