//! Tuning-record persistence (AutoTVM's JSON tuning logs).

use crate::driver::{Trial, TuningResult};
use configspace::Configuration;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::path::Path;
use ytopt_bo::fault::MeasureError;

/// One serialized trial record (one JSON object per line, like AutoTVM's
/// log format).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TuningRecord {
    /// Kernel identifier, e.g. `"lu-large"`.
    pub workload: String,
    /// Tuner name.
    pub tuner: String,
    /// Evaluation index within the run.
    pub index: usize,
    /// The configuration.
    pub config: Configuration,
    /// Measured runtime (seconds), if successful.
    pub runtime_s: Option<f64>,
    /// Failure class, when the trial failed (absent in logs written
    /// before the fault taxonomy existed).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<MeasureError>,
    /// Cumulative process time when the trial finished.
    pub elapsed_s: f64,
}

impl TuningRecord {
    /// Build records from a tuning result.
    pub fn from_result(workload: &str, result: &TuningResult) -> Vec<TuningRecord> {
        result
            .trials
            .iter()
            .map(|t| TuningRecord {
                workload: workload.to_string(),
                tuner: result.tuner.clone(),
                index: t.index,
                config: t.config.clone(),
                runtime_s: t.runtime_s,
                error: t.error.clone(),
                elapsed_s: t.elapsed_s,
            })
            .collect()
    }
}

/// Append records to a JSON-lines log file.
pub fn save(path: &Path, records: &[TuningRecord]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?,
    );
    for r in records {
        let line = serde_json::to_string(r).expect("record serializes");
        writeln!(f, "{line}")?;
    }
    Ok(())
}

/// Load every record from a JSON-lines log file.
pub fn load(path: &Path) -> std::io::Result<Vec<TuningRecord>> {
    let f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for line in f.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: TuningRecord = serde_json::from_str(&line).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad record: {e}"))
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// Best (lowest-runtime) record for a workload, like
/// `autotvm.apply_history_best`.
pub fn pick_best<'a>(records: &'a [TuningRecord], workload: &str) -> Option<&'a TuningRecord> {
    records
        .iter()
        .filter(|r| r.workload == workload && r.runtime_s.is_some())
        .min_by(|a, b| {
            a.runtime_s
                .partial_cmp(&b.runtime_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
}

/// Reconstruct a (partial) tuning result from records — used by analysis
/// tooling over saved logs.
pub fn to_trials(records: &[TuningRecord]) -> Vec<Trial> {
    records
        .iter()
        .map(|r| Trial {
            index: r.index,
            config: r.config.clone(),
            runtime_s: r.runtime_s,
            error: r.error.clone(),
            eval_process_s: 0.0,
            elapsed_s: r.elapsed_s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::ParamValue;

    fn record(workload: &str, idx: usize, rt: Option<f64>) -> TuningRecord {
        TuningRecord {
            workload: workload.into(),
            tuner: "test".into(),
            index: idx,
            config: Configuration::new(vec!["P0".into()], vec![ParamValue::Int(idx as i64 + 1)]),
            runtime_s: rt,
            error: rt.is_none().then(|| MeasureError::Timeout {
                limit_s: 1.0,
                message: None,
            }),
            elapsed_s: idx as f64,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("tvm-autotune-test-records");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("log.jsonl");
        let _ = std::fs::remove_file(&path);
        let recs = vec![
            record("lu-large", 0, Some(1.5)),
            record("lu-large", 1, None),
        ];
        save(&path, &recs).expect("save");
        save(&path, &[record("lu-large", 2, Some(1.2))]).expect("append");
        let back = load(&path).expect("load");
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], recs[0]);
        let best = pick_best(&back, "lu-large").expect("best");
        assert_eq!(best.runtime_s, Some(1.2));
        assert!(pick_best(&back, "other").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_trials_skipped_by_pick_best() {
        let recs = vec![record("w", 0, None), record("w", 1, None)];
        assert!(pick_best(&recs, "w").is_none());
    }

    #[test]
    fn to_trials_preserves_order() {
        let recs = vec![record("w", 0, Some(2.0)), record("w", 1, Some(1.0))];
        let trials = to_trials(&recs);
        assert_eq!(trials.len(), 2);
        assert_eq!(trials[1].runtime_s, Some(1.0));
    }
}
