//! AutoScheduler-lite: automatic search-space generation.
//!
//! The paper contrasts AutoTVM ("relies on predefined tunable parameters
//! search space") with AutoScheduler, which "automatically generates the
//! search space by analyzing the computation definition" — and sets
//! AutoScheduler aside precisely because its space is implicit. This
//! module implements the analysis half so the comparison can be made
//! concrete: given a TE graph, it derives a tile-factor space from the
//! computation definition alone (divisor candidates per data-parallel
//! axis of every multi-dimensional stage, the same derivation rule the
//! paper applies by hand in §4) and materializes any configuration into a
//! scheduled, lowered function.
//!
//! The result is an explicit [`ConfigSpace`], so — unlike real
//! AutoScheduler — every tuner in this crate (and the BO framework) can
//! search it.

use configspace::{ConfigSpace, Configuration, Hyperparameter};
use tvm_te::{OpKind, Schedule, Tensor};
use tvm_tir::lower::lower;
use tvm_tir::PrimFunc;

/// All positive divisors of `n`, ascending (the §4 candidate rule).
fn divisors(n: u64) -> Vec<i64> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d as i64);
            if d * d != n {
                large.push((n / d) as i64);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// A tunable axis discovered by analysis.
#[derive(Debug, Clone)]
pub struct TunableAxis {
    /// Stage (op) name.
    pub stage: String,
    /// Axis position within the stage.
    pub axis: usize,
    /// Axis extent.
    pub extent: usize,
    /// Generated parameter name (`"<stage>.t<axis>"`).
    pub param: String,
}

/// Automatic scheduler over one TE graph.
pub struct AutoScheduler {
    outputs: Vec<Tensor>,
    args: Vec<Tensor>,
    name: String,
    tunables: Vec<TunableAxis>,
    space: ConfigSpace,
}

impl AutoScheduler {
    /// Analyze the computation definition rooted at `outputs` and derive
    /// the search space. `args` fixes the lowered calling convention,
    /// exactly as in [`lower`].
    ///
    /// Rule (mirroring the paper's manual derivation): every compute
    /// stage contributes one tile knob per data-parallel axis (up to the
    /// first two — `y` and `x` of the paper's molds), with the divisors
    /// of the axis extent as candidates.
    pub fn new(outputs: &[Tensor], args: &[Tensor], name: impl Into<String>) -> AutoScheduler {
        let schedule = Schedule::create(outputs);
        let mut tunables = Vec::new();
        let mut space = ConfigSpace::new();
        for st in &schedule.stages {
            let t = &st.tensor;
            let axes = match &t.op.kind {
                OpKind::Compute { axes, .. } => axes,
                OpKind::Placeholder => continue,
            };
            for (d, ax) in axes.iter().enumerate().take(2) {
                let extent = ax.extent() as usize;
                if extent < 2 {
                    continue;
                }
                let param = format!("{}.t{d}", t.name());
                space.add(Hyperparameter::ordinal_ints(
                    &param,
                    &divisors(extent as u64),
                ));
                tunables.push(TunableAxis {
                    stage: t.name().to_string(),
                    axis: d,
                    extent,
                    param,
                });
            }
        }
        AutoScheduler {
            outputs: outputs.to_vec(),
            args: args.to_vec(),
            name: name.into(),
            tunables,
            space,
        }
    }

    /// The generated (explicit) search space.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The discovered tunable axes.
    pub fn tunables(&self) -> &[TunableAxis] {
        &self.tunables
    }

    /// Apply a configuration: rebuild the schedule, split every tunable
    /// axis by its chosen factor, reorder reductions inward
    /// (`yo, xo, k…, yi, xi`), and lower.
    ///
    /// # Panics
    /// If `config` is not a member of [`AutoScheduler::space`].
    pub fn apply(&self, config: &Configuration) -> PrimFunc {
        assert!(
            self.space.validate(config),
            "configuration {config} is not in the generated space"
        );
        let mut s = Schedule::create(&self.outputs);
        let stage_tensors: Vec<Tensor> = s.stages.iter().map(|st| st.tensor.clone()).collect();
        for t in &stage_tensors {
            let axes = t.axes();
            let raxes = t.reduce_axes();
            let mut outer = Vec::new();
            let mut inner = Vec::new();
            for (d, ax) in axes.iter().enumerate() {
                let param = format!("{}.t{d}", t.name());
                match config.get(&param) {
                    Some(v) if d < 2 => {
                        let factor = v.as_int().expect("tile factors are integers");
                        let (o, i) = s.split(t, ax, factor);
                        outer.push(o);
                        inner.push(i);
                    }
                    _ => {
                        outer.push(ax.clone());
                    }
                }
            }
            if !inner.is_empty() {
                let mut order = outer;
                order.extend(raxes);
                order.extend(inner);
                s.reorder(t, &order);
            }
        }
        lower(&s, &self.args, &self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{Evaluator, FnEvaluator, MeasureResult};
    use tvm_te::{compute, placeholder, reduce_axis, sum, DType};

    fn matmul_graph(n: usize, m: usize, k: usize) -> (Vec<Tensor>, Tensor) {
        let a = placeholder([n, k], DType::F32, "A");
        let b = placeholder([k, m], DType::F32, "B");
        let kk = reduce_axis(0, k as i64, "k");
        let c = compute([n, m], "C", |i| {
            sum(
                a.at(&[i[0].clone(), kk.var_expr()]) * b.at(&[kk.var_expr(), i[1].clone()]),
                &[kk.clone()],
            )
        });
        (vec![a, b, c.clone()], c)
    }

    #[test]
    fn derives_divisor_space_from_definition() {
        let (args, c) = matmul_graph(12, 18, 8);
        let auto = AutoScheduler::new(&[c], &args, "mm");
        // One stage, two data-parallel axes: d(12)=6 x d(18)=6 = 36.
        assert_eq!(auto.tunables().len(), 2);
        assert_eq!(auto.space().size(), Some(36));
        assert_eq!(auto.tunables()[0].param, "C.t0");
        assert_eq!(auto.tunables()[1].extent, 18);
    }

    #[test]
    fn multi_stage_graph_gets_per_stage_knobs() {
        let (mut args, c) = matmul_graph(12, 18, 8);
        let o = compute([12, 18], "O", |i| {
            c.at(&[i[0].clone(), i[1].clone()]) + 1i64
        });
        args.pop();
        args.push(o.clone());
        let auto = AutoScheduler::new(&[o], &args, "mm_relu");
        assert_eq!(auto.tunables().len(), 4); // C.t0 C.t1 O.t0 O.t1
        assert!(auto.space().get("O.t1").is_some());
    }

    #[test]
    fn applied_configs_lower_and_verify() {
        let (args, c) = matmul_graph(12, 18, 8);
        let auto = AutoScheduler::new(&[c], &args, "mm");
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        use rand::SeedableRng;
        for _ in 0..5 {
            let cfg = auto.space().sample(&mut rng);
            let f = auto.apply(&cfg); // lower() verifies internally
            assert_eq!(f.params.len(), 3);
            // yo xo k yi xi, minus any unit-extent loops the simplifier
            // inlined (factor 1 or factor == extent).
            assert!((3..=5).contains(&f.body.loop_depth()));
        }
    }

    #[test]
    fn generated_space_is_tunable() {
        // The point of making the space explicit: any tuner can search it.
        let (args, c) = matmul_graph(12, 18, 8);
        let auto = AutoScheduler::new(&[c], &args, "mm");
        let ev = FnEvaluator::new(auto.space().clone(), move |cfg| {
            // Synthetic objective over the applied function's structure.
            let f = auto.apply(cfg);
            MeasureResult::ok(f.body.loop_depth() as f64, 0.1)
        });
        let mut tuner = crate::tuner::random::RandomTuner::new(ev.space().clone(), 1);
        let res = crate::driver::tune(
            &mut tuner,
            &ev,
            crate::driver::TuneOptions {
                max_evals: 10,
                batch: 2,
                max_process_s: None,
            },
        );
        assert_eq!(res.len(), 10);
    }

    #[test]
    #[should_panic(expected = "not in the generated space")]
    fn rejects_foreign_configuration() {
        let (args, c) = matmul_graph(12, 18, 8);
        let auto = AutoScheduler::new(&[c], &args, "mm");
        let bad = Configuration::new(
            vec!["C.t0".into(), "C.t1".into()],
            vec![
                configspace::ParamValue::Int(5), // 5 does not divide 12
                configspace::ParamValue::Int(1),
            ],
        );
        let _ = auto.apply(&bad);
    }
}
