//! Fault-tolerant measurement harness.
//!
//! Real measurement backends fail: builds error out, kernels hang, the
//! evaluation process panics, infrastructure flakes. TVM's measure
//! pipeline survives all of these; this module is our equivalent, shared
//! by the four AutoTVM tuners and the BO framework because
//! [`HarnessedEvaluator`] implements *both* measurement interfaces
//! ([`Evaluator`] and [`Problem`]) whenever its inner evaluator does.
//!
//! Three layers:
//!
//! * **Panic isolation** — every evaluation runs under `catch_unwind`; a
//!   panicking evaluator becomes a failed measurement
//!   ([`MeasureError::RuntimeCrash`]) instead of killing the tuning run.
//! * **Wall-clock timeout** — with [`HarnessOptions::timeout_s`] set, the
//!   evaluation runs on a worker thread while the caller waits on a
//!   watchdog channel; on expiry the trial is abandoned as
//!   [`MeasureError::Timeout`] (the worker is detached, like TVM's RPC
//!   runner killing a timed-out session).
//! * **Bounded retry with backoff** — [`MeasureError::Transient`]
//!   failures are retried up to [`RetryPolicy::max_attempts`] with
//!   exponential backoff. All attempts' process time **plus** the backoff
//!   waits are charged to the trial, so the paper's "autotuning process
//!   time" metric honestly reflects the cost of flaky infrastructure.
//!
//! [`FaultInjector`] is the test-side counterpart: a deterministic,
//! seeded chaos wrapper with per-class failure rates and latency spikes,
//! so every tuner can be exercised under realistic failure loads (the
//! CATBench argument: autotuning benchmarks must model invalid and
//! failed configurations).

use crate::measure::{Evaluator, MeasureResult};
use configspace::{ConfigSpace, Configuration};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use ytopt_bo::fault::{panic_message, MeasureError};
use ytopt_bo::problem::{Evaluation, Problem};

/// Retry policy for [`MeasureError::Transient`] failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per configuration (1 = no retry).
    pub max_attempts: usize,
    /// Backoff before the first retry, seconds.
    pub backoff_s: f64,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_mult: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_s: 0.05,
            backoff_mult: 2.0,
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_s: 0.0,
            backoff_mult: 1.0,
        }
    }
}

/// Harness knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct HarnessOptions {
    /// Wall-clock limit per evaluation attempt, seconds. `None` disables
    /// the watchdog (evaluations then run on the caller's thread).
    pub timeout_s: Option<f64>,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// When true, backoff waits really sleep; when false (default, for
    /// simulated evaluators) they are only *charged* to process time.
    pub sleep_on_backoff: bool,
}

/// Fault-tolerance wrapper around any evaluator.
///
/// Implements [`Evaluator`] when the inner type does, and [`Problem`]
/// when the inner type does — one harness for all five tuners.
pub struct HarnessedEvaluator<E> {
    inner: Arc<E>,
    opts: HarnessOptions,
}

impl<E> HarnessedEvaluator<E> {
    /// Wrap `inner` with default options (panic isolation + transient
    /// retry, no timeout).
    pub fn new(inner: E) -> HarnessedEvaluator<E> {
        HarnessedEvaluator {
            inner: Arc::new(inner),
            opts: HarnessOptions::default(),
        }
    }

    /// Builder: replace every option at once.
    pub fn with_options(mut self, opts: HarnessOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Builder: per-attempt wall-clock limit, seconds.
    pub fn with_timeout(mut self, timeout_s: f64) -> Self {
        self.opts.timeout_s = Some(timeout_s);
        self
    }

    /// Builder: retry policy for transient failures.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.opts.retry = retry;
        self
    }

    /// The active options.
    pub fn options(&self) -> &HarnessOptions {
        &self.opts
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Send + Sync + 'static> HarnessedEvaluator<E> {
    /// One guarded attempt: panic isolation always, watchdog timeout when
    /// configured.
    fn one_attempt(
        &self,
        config: &Configuration,
        run: fn(&E, &Configuration) -> MeasureResult,
    ) -> MeasureResult {
        match self.opts.timeout_s {
            None => {
                let inner = Arc::clone(&self.inner);
                match catch_unwind(AssertUnwindSafe(|| run(&inner, config))) {
                    Ok(res) => res,
                    Err(payload) => MeasureResult::fail(
                        MeasureError::RuntimeCrash(format!(
                            "evaluation panicked: {}",
                            panic_message(payload.as_ref())
                        )),
                        0.0,
                    ),
                }
            }
            Some(limit_s) => {
                let (tx, rx) = mpsc::channel();
                let inner = Arc::clone(&self.inner);
                let config = config.clone();
                let t0 = Instant::now();
                std::thread::Builder::new()
                    .name("harnessed-evaluation".into())
                    .spawn(move || {
                        let out = catch_unwind(AssertUnwindSafe(|| run(&inner, &config)));
                        // The receiver may have given up on us; ignore.
                        let _ = tx.send(out);
                    })
                    .expect("spawn evaluation worker");
                match rx.recv_timeout(Duration::from_secs_f64(limit_s)) {
                    Ok(Ok(res)) => res,
                    Ok(Err(payload)) => MeasureResult::fail(
                        MeasureError::RuntimeCrash(format!(
                            "evaluation panicked: {}",
                            panic_message(payload.as_ref())
                        )),
                        t0.elapsed().as_secs_f64(),
                    ),
                    // Timed out: abandon the worker (it is detached and
                    // will be dropped when it eventually finishes) and
                    // charge the full limit to process time.
                    Err(_) => MeasureResult::fail(
                        MeasureError::Timeout {
                            limit_s,
                            message: None,
                        },
                        limit_s,
                    ),
                }
            }
        }
    }

    /// Full harness: attempts + retry/backoff accounting. The returned
    /// result's `process_s` is the sum over every attempt plus backoffs —
    /// the wall time a real measurement pipeline would have burned.
    fn guard(
        &self,
        config: &Configuration,
        run: fn(&E, &Configuration) -> MeasureResult,
    ) -> MeasureResult {
        let attempts = self.opts.retry.max_attempts.max(1);
        let mut charged = 0.0f64;
        let mut backoff = self.opts.retry.backoff_s;
        for attempt in 0..attempts {
            let mut res = self.one_attempt(config, run);
            charged += res.process_s;
            let retryable = res
                .error
                .as_ref()
                .map(|e| e.is_transient())
                .unwrap_or(false);
            if !retryable || attempt + 1 == attempts {
                res.process_s = charged;
                return res;
            }
            charged += backoff;
            if self.opts.sleep_on_backoff && backoff > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(backoff));
            }
            backoff *= self.opts.retry.backoff_mult;
        }
        unreachable!("retry loop always returns")
    }
}

impl<E: Evaluator + Send + Sync + 'static> Evaluator for HarnessedEvaluator<E> {
    fn space(&self) -> &ConfigSpace {
        self.inner.space()
    }

    fn evaluate(&self, config: &Configuration) -> MeasureResult {
        self.guard(config, |e, c| e.evaluate(c))
    }

    fn cache_stats(&self) -> Option<ytopt_bo::problem::CacheStats> {
        Evaluator::cache_stats(&*self.inner)
    }

    fn static_check_stats(&self) -> Option<ytopt_bo::problem::StaticCheckStats> {
        Evaluator::static_check_stats(&*self.inner)
    }

    fn pipeline_fingerprint(&self) -> Option<String> {
        Evaluator::pipeline_fingerprint(&*self.inner)
    }

    fn jit_stats(&self) -> Option<ytopt_bo::problem::JitStats> {
        Evaluator::jit_stats(&*self.inner)
    }

    fn par_stats(&self) -> Option<ytopt_bo::problem::ParStats> {
        Evaluator::par_stats(&*self.inner)
    }

    fn simd_stats(&self) -> Option<ytopt_bo::problem::SimdStats> {
        Evaluator::simd_stats(&*self.inner)
    }

    fn prune_batch(&self, batch: &[Configuration]) -> Option<Vec<Option<String>>> {
        Evaluator::prune_batch(&*self.inner, batch)
    }

    fn prune_stats(&self) -> Option<ytopt_bo::problem::PruneStats> {
        Evaluator::prune_stats(&*self.inner)
    }
}

impl<E: Problem + Send + Sync + 'static> Problem for HarnessedEvaluator<E> {
    fn space(&self) -> &ConfigSpace {
        Problem::space(&*self.inner)
    }

    fn evaluate(&self, config: &Configuration) -> Evaluation {
        self.guard(config, |e, c| MeasureResult::from(Problem::evaluate(e, c)))
            .into()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn cache_stats(&self) -> Option<ytopt_bo::problem::CacheStats> {
        Problem::cache_stats(&*self.inner)
    }

    fn static_check_stats(&self) -> Option<ytopt_bo::problem::StaticCheckStats> {
        Problem::static_check_stats(&*self.inner)
    }

    fn pipeline_fingerprint(&self) -> Option<String> {
        Problem::pipeline_fingerprint(&*self.inner)
    }

    fn jit_stats(&self) -> Option<ytopt_bo::problem::JitStats> {
        Problem::jit_stats(&*self.inner)
    }

    fn par_stats(&self) -> Option<ytopt_bo::problem::ParStats> {
        Problem::par_stats(&*self.inner)
    }

    fn simd_stats(&self) -> Option<ytopt_bo::problem::SimdStats> {
        Problem::simd_stats(&*self.inner)
    }

    fn prune_batch(&self, batch: &[Configuration]) -> Option<Vec<Option<String>>> {
        Problem::prune_batch(&*self.inner, batch)
    }

    fn prune_stats(&self) -> Option<ytopt_bo::problem::PruneStats> {
        Problem::prune_stats(&*self.inner)
    }
}

/// Per-class injected failure rates (each in `[0, 1]`; they are tried in
/// field order against one uniform draw, so their sum must stay ≤ 1).
///
/// Serializable so chaos plans can ride inside persisted service job
/// specs and be reconstructed identically after a server restart.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability of an injected [`MeasureError::StaticReject`]. Drawn
    /// once per *configuration* (never per attempt): a static verdict is
    /// deterministic, so retries must see the same rejection. Charged
    /// only [`STATIC_REJECT_COST_S`] of process time — analysis is cheap.
    pub static_reject: f64,
    /// Probability of an injected [`MeasureError::BuildFailed`].
    pub build_failed: f64,
    /// Probability of an injected [`MeasureError::InvalidSchedule`].
    pub invalid_schedule: f64,
    /// Probability of an injected [`MeasureError::Timeout`].
    pub timeout: f64,
    /// Probability of an injected crash ([`MeasureError::RuntimeCrash`],
    /// or a real `panic!` when [`FaultPlan::panic_on_crash`] is set).
    pub runtime_crash: f64,
    /// Probability of an injected [`MeasureError::NumericMismatch`].
    pub numeric_mismatch: f64,
    /// Probability of an injected [`MeasureError::Transient`] (the class
    /// the harness retries — per *attempt*, so retries can succeed).
    pub transient: f64,
    /// Probability of a latency spike on an otherwise-successful
    /// evaluation.
    pub latency_spike: f64,
    /// Extra process seconds added by a latency spike.
    pub spike_s: f64,
    /// Process seconds charged by an injected failure (a failed build or
    /// crashed run still burns wall-clock).
    pub fail_process_s: f64,
    /// Deliver injected crashes as real panics (exercises the harness's
    /// `catch_unwind` and the parallel driver's worker isolation).
    pub panic_on_crash: bool,
    /// Seed for the deterministic per-(configuration, attempt) draws.
    pub seed: u64,
}

impl FaultPlan {
    /// No injected faults at all.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            static_reject: 0.0,
            build_failed: 0.0,
            invalid_schedule: 0.0,
            timeout: 0.0,
            runtime_crash: 0.0,
            numeric_mismatch: 0.0,
            transient: 0.0,
            latency_spike: 0.0,
            spike_s: 0.0,
            fail_process_s: 0.05,
            panic_on_crash: false,
            seed,
        }
    }

    /// Total failure probability `rate`, split uniformly across the five
    /// non-panic error classes (build, schedule, timeout, numeric,
    /// transient), plus a 5 % latency-spike chance.
    pub fn uniform(rate: f64, seed: u64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        let p = rate / 5.0;
        FaultPlan {
            static_reject: 0.0,
            build_failed: p,
            invalid_schedule: p,
            timeout: p,
            runtime_crash: 0.0,
            numeric_mismatch: p,
            transient: p,
            latency_spike: 0.05,
            spike_s: 0.5,
            fail_process_s: 0.05,
            panic_on_crash: false,
            seed,
        }
    }

    /// Sum of the per-class failure rates.
    pub fn total_failure_rate(&self) -> f64 {
        self.static_reject
            + self.build_failed
            + self.invalid_schedule
            + self.timeout
            + self.runtime_crash
            + self.numeric_mismatch
            + self.transient
    }
}

/// Process seconds charged by an injected [`MeasureError::StaticReject`]
/// — the analyzer's verdict costs microseconds, not a build.
pub const STATIC_REJECT_COST_S: f64 = 1e-4;

/// Deterministic, seeded chaos wrapper around any evaluator.
///
/// Failures are decided by hashing `(configuration key, seed, attempt)`,
/// **not** by a stateful RNG — so the injected fault for a given
/// configuration does not depend on evaluation order. This is what makes
/// chaos runs reproducible and journal-resumable: a replayed run skips
/// the journaled trials entirely, and the live remainder sees the exact
/// same faults it would have seen uninterrupted.
pub struct FaultInjector<E> {
    inner: E,
    plan: FaultPlan,
    /// Per-configuration attempt counters (retries re-roll the fault).
    attempts: Mutex<HashMap<String, u64>>,
}

impl<E> FaultInjector<E> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: E, plan: FaultPlan) -> FaultInjector<E> {
        FaultInjector {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Uniform draw in `[0, 1)` keyed on (config, seed, attempt, salt).
    fn draw(&self, key: &str, attempt: u64, salt: u64) -> f64 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        self.plan.seed.hash(&mut h);
        attempt.hash(&mut h);
        salt.hash(&mut h);
        ((h.finish() >> 11) as f64) / ((1u64 << 53) as f64)
    }

    /// Decide this attempt's fate: `Err(fault)` or `Ok(extra latency)`.
    fn inject(&self, config: &Configuration) -> Result<f64, MeasureError> {
        let key = config.key();
        // Static rejection is keyed on the configuration alone (attempt
        // pinned to 0): the verdict of a deterministic analyzer cannot
        // change on retry.
        if self.plan.static_reject > 0.0 && self.draw(&key, 0, 2) < self.plan.static_reject {
            // Still consume this attempt's slot so later classes keep
            // their per-attempt draws aligned with unrejected runs.
            self.attempts.lock().entry(key.clone()).or_insert(0);
            return Err(MeasureError::StaticReject(format!(
                "injected static rejection for {key} (TIR-OOB)"
            )));
        }
        let attempt = {
            let mut map = self.attempts.lock();
            let counter = map.entry(key.clone()).or_insert(0);
            let current = *counter;
            *counter += 1;
            current
        };
        let u = self.draw(&key, attempt, 0);
        let p = &self.plan;
        let mut acc = p.build_failed;
        if u < acc {
            return Err(MeasureError::BuildFailed(format!(
                "injected build failure for {key}"
            )));
        }
        acc += p.invalid_schedule;
        if u < acc {
            return Err(MeasureError::InvalidSchedule(format!(
                "injected invalid schedule for {key}"
            )));
        }
        acc += p.timeout;
        if u < acc {
            return Err(MeasureError::Timeout {
                limit_s: p.fail_process_s,
                message: None,
            });
        }
        acc += p.runtime_crash;
        if u < acc {
            return Err(MeasureError::RuntimeCrash(format!(
                "injected runtime crash for {key}"
            )));
        }
        acc += p.numeric_mismatch;
        if u < acc {
            return Err(MeasureError::NumericMismatch(format!(
                "injected numeric mismatch for {key}"
            )));
        }
        acc += p.transient;
        if u < acc {
            return Err(MeasureError::Transient(format!(
                "injected transient fault for {key} (attempt {attempt})"
            )));
        }
        let extra = if p.latency_spike > 0.0 && self.draw(&key, attempt, 1) < p.latency_spike {
            p.spike_s
        } else {
            0.0
        };
        Ok(extra)
    }

    fn fault_to_result(&self, fault: MeasureError) -> MeasureResult {
        if self.plan.panic_on_crash {
            if let MeasureError::RuntimeCrash(msg) = &fault {
                panic!("{msg}");
            }
        }
        // A static rejection happens before any build or run: it burns
        // analysis time only, not the plan's failure wall-clock.
        let process_s = if matches!(fault, MeasureError::StaticReject(_)) {
            STATIC_REJECT_COST_S
        } else {
            self.plan.fail_process_s
        };
        MeasureResult::fail(fault, process_s)
    }
}

impl<E: Evaluator> Evaluator for FaultInjector<E> {
    fn space(&self) -> &ConfigSpace {
        self.inner.space()
    }

    fn evaluate(&self, config: &Configuration) -> MeasureResult {
        match self.inject(config) {
            Err(fault) => self.fault_to_result(fault),
            Ok(extra) => {
                let mut res = self.inner.evaluate(config);
                res.process_s += extra;
                res
            }
        }
    }

    fn cache_stats(&self) -> Option<ytopt_bo::problem::CacheStats> {
        Evaluator::cache_stats(&self.inner)
    }

    fn static_check_stats(&self) -> Option<ytopt_bo::problem::StaticCheckStats> {
        Evaluator::static_check_stats(&self.inner)
    }

    fn pipeline_fingerprint(&self) -> Option<String> {
        Evaluator::pipeline_fingerprint(&self.inner)
    }

    fn jit_stats(&self) -> Option<ytopt_bo::problem::JitStats> {
        Evaluator::jit_stats(&self.inner)
    }

    fn par_stats(&self) -> Option<ytopt_bo::problem::ParStats> {
        Evaluator::par_stats(&self.inner)
    }

    fn simd_stats(&self) -> Option<ytopt_bo::problem::SimdStats> {
        Evaluator::simd_stats(&self.inner)
    }

    fn prune_batch(&self, batch: &[Configuration]) -> Option<Vec<Option<String>>> {
        // The injector's faults are drawn at evaluation time, so the
        // pre-filter mask is exactly the inner analyzer's verdicts.
        Evaluator::prune_batch(&self.inner, batch)
    }

    fn prune_stats(&self) -> Option<ytopt_bo::problem::PruneStats> {
        Evaluator::prune_stats(&self.inner)
    }
}

impl<E: Problem> Problem for FaultInjector<E> {
    fn space(&self) -> &ConfigSpace {
        Problem::space(&self.inner)
    }

    fn evaluate(&self, config: &Configuration) -> Evaluation {
        match self.inject(config) {
            Err(fault) => self.fault_to_result(fault).into(),
            Ok(extra) => {
                let mut eval = Problem::evaluate(&self.inner, config);
                eval.process_s += extra;
                eval
            }
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn cache_stats(&self) -> Option<ytopt_bo::problem::CacheStats> {
        Problem::cache_stats(&self.inner)
    }

    fn static_check_stats(&self) -> Option<ytopt_bo::problem::StaticCheckStats> {
        Problem::static_check_stats(&self.inner)
    }

    fn pipeline_fingerprint(&self) -> Option<String> {
        Problem::pipeline_fingerprint(&self.inner)
    }

    fn jit_stats(&self) -> Option<ytopt_bo::problem::JitStats> {
        Problem::jit_stats(&self.inner)
    }

    fn par_stats(&self) -> Option<ytopt_bo::problem::ParStats> {
        Problem::par_stats(&self.inner)
    }

    fn simd_stats(&self) -> Option<ytopt_bo::problem::SimdStats> {
        Problem::simd_stats(&self.inner)
    }

    fn prune_batch(&self, batch: &[Configuration]) -> Option<Vec<Option<String>>> {
        Problem::prune_batch(&self.inner, batch)
    }

    fn prune_stats(&self) -> Option<ytopt_bo::problem::PruneStats> {
        Problem::prune_stats(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::FnEvaluator;
    use configspace::Hyperparameter;

    fn space() -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=50).collect::<Vec<i64>>(),
        ));
        cs
    }

    fn ok_evaluator() -> FnEvaluator<impl Fn(&Configuration) -> MeasureResult> {
        FnEvaluator::new(space(), |c| MeasureResult::ok(c.int("P0") as f64, 1.0))
    }

    #[test]
    fn harness_passes_success_through() {
        let h = HarnessedEvaluator::new(ok_evaluator());
        let cfg = Evaluator::space(&h).at(4);
        let r = Evaluator::evaluate(&h, &cfg);
        assert_eq!(r.runtime_s, Some(5.0));
        assert_eq!(r.process_s, 1.0);
    }

    #[test]
    fn harness_catches_panics() {
        let h = HarnessedEvaluator::new(FnEvaluator::new(space(), |c| {
            if c.int("P0") == 3 {
                panic!("kernel exploded");
            }
            MeasureResult::ok(1.0, 1.0)
        }));
        let boom = Evaluator::space(&h).at(2);
        let r = Evaluator::evaluate(&h, &boom);
        assert!(!r.is_ok());
        let err = r.error.expect("error");
        assert_eq!(err.kind(), "runtime_crash");
        assert!(err.message().contains("kernel exploded"));
        // And the harness is still usable afterwards.
        let fine = Evaluator::space(&h).at(3);
        assert!(Evaluator::evaluate(&h, &fine).is_ok());
    }

    #[test]
    fn harness_enforces_timeout() {
        let h = HarnessedEvaluator::new(FnEvaluator::new(space(), |c| {
            if c.int("P0") == 1 {
                std::thread::sleep(Duration::from_millis(400));
            }
            MeasureResult::ok(1.0, 1.0)
        }))
        .with_timeout(0.05)
        .with_retry(RetryPolicy::none());
        let slow = Evaluator::space(&h).at(0);
        let t0 = Instant::now();
        let r = Evaluator::evaluate(&h, &slow);
        assert!(
            t0.elapsed() < Duration::from_millis(350),
            "must not wait out the sleep"
        );
        assert!(!r.is_ok());
        assert_eq!(r.error.as_ref().map(|e| e.kind()), Some("timeout"));
        // The abandoned trial is charged its full limit.
        assert!((r.process_s - 0.05).abs() < 1e-9);
        // Fast evaluations pass under the same watchdog.
        let fast = Evaluator::space(&h).at(5);
        assert!(Evaluator::evaluate(&h, &fast).is_ok());
    }

    #[test]
    fn transient_failures_retry_and_charge_backoff() {
        // Fails with a transient error on the first attempt only.
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let h = HarnessedEvaluator::new(FnEvaluator::new(space(), move |_| {
            if calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                MeasureResult::fail(MeasureError::Transient("flaky node".into()), 0.3)
            } else {
                MeasureResult::ok(2.0, 1.0)
            }
        }))
        .with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_s: 0.25,
            backoff_mult: 2.0,
        });
        let cfg = Evaluator::space(&h).at(0);
        let r = Evaluator::evaluate(&h, &cfg);
        assert_eq!(r.runtime_s, Some(2.0));
        // Charged: failed attempt (0.3) + backoff (0.25) + success (1.0).
        assert!((r.process_s - 1.55).abs() < 1e-9, "got {}", r.process_s);
    }

    #[test]
    fn persistent_transient_exhausts_retries() {
        let h = HarnessedEvaluator::new(FnEvaluator::new(space(), |_| {
            MeasureResult::fail(MeasureError::Transient("always down".into()), 0.1)
        }))
        .with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_s: 0.5,
            backoff_mult: 1.0,
        });
        let cfg = Evaluator::space(&h).at(0);
        let r = Evaluator::evaluate(&h, &cfg);
        assert!(!r.is_ok());
        assert_eq!(r.error.as_ref().map(|e| e.kind()), Some("transient"));
        // 3 × 0.1 attempts + 2 × 0.5 backoffs.
        assert!((r.process_s - 1.3).abs() < 1e-9, "got {}", r.process_s);
    }

    #[test]
    fn deterministic_failures_are_not_retried() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let h = HarnessedEvaluator::new(FnEvaluator::new(space(), move |_| {
            calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            MeasureResult::fail(MeasureError::BuildFailed("no codegen".into()), 0.1)
        }));
        let cfg = Evaluator::space(&h).at(0);
        let r = Evaluator::evaluate(&h, &cfg);
        assert_eq!(r.error.as_ref().map(|e| e.kind()), Some("build_failed"));
        assert!((r.process_s - 0.1).abs() < 1e-9, "single attempt only");
    }

    #[test]
    fn injector_is_deterministic_and_seeded() {
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(ok_evaluator(), FaultPlan::uniform(0.4, seed));
            (0..50)
                .map(|i| inj.evaluate(&Evaluator::space(&inj).at(i)).is_ok())
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same faults");
        assert_ne!(run(7), run(8), "different seed, different faults");
        let fails = run(7).iter().filter(|ok| !**ok).count();
        assert!(
            (5..=30).contains(&fails),
            "~40% of 50 evals should fail, got {fails}"
        );
    }

    #[test]
    fn injector_reroll_lets_harness_retry_succeed() {
        // Transient-only plan at a high rate: the harness's retries
        // re-roll per attempt, so most configurations eventually succeed.
        let mut plan = FaultPlan::none(3);
        plan.transient = 0.6;
        let h = HarnessedEvaluator::new(FaultInjector::new(ok_evaluator(), plan)).with_retry(
            RetryPolicy {
                max_attempts: 5,
                backoff_s: 0.01,
                backoff_mult: 1.0,
            },
        );
        let ok = (0..40)
            .filter(|&i| Evaluator::evaluate(&h, &Evaluator::space(&h).at(i)).is_ok())
            .count();
        assert!(ok >= 30, "retries should recover most transients, got {ok}");
    }

    #[test]
    fn injector_panic_on_crash_is_caught_by_harness() {
        let mut plan = FaultPlan::none(1);
        plan.runtime_crash = 1.0;
        plan.panic_on_crash = true;
        let h = HarnessedEvaluator::new(FaultInjector::new(ok_evaluator(), plan));
        let cfg = Evaluator::space(&h).at(0);
        let r = Evaluator::evaluate(&h, &cfg);
        assert!(!r.is_ok());
        assert_eq!(r.error.as_ref().map(|e| e.kind()), Some("runtime_crash"));
    }

    #[test]
    fn injector_rates_partition_into_classes() {
        let inj = FaultInjector::new(ok_evaluator(), FaultPlan::uniform(1.0, 11));
        assert!((inj.plan().total_failure_rate() - 1.0).abs() < 1e-9);
        let mut kinds = std::collections::HashSet::new();
        for i in 0..50 {
            let r = inj.evaluate(&Evaluator::space(&inj).at(i));
            assert!(!r.is_ok(), "rate 1.0 fails everything");
            kinds.insert(r.error.expect("error").kind());
        }
        assert!(kinds.len() >= 4, "all classes get exercised: {kinds:?}");
    }

    #[test]
    fn wrappers_forward_pipeline_fingerprint() {
        struct Fp(ConfigSpace);
        impl Evaluator for Fp {
            fn space(&self) -> &ConfigSpace {
                &self.0
            }
            fn evaluate(&self, _c: &Configuration) -> MeasureResult {
                MeasureResult::ok(1.0, 1.0)
            }
            fn pipeline_fingerprint(&self) -> Option<String> {
                Some("vm/fp-test".into())
            }
        }
        let h = HarnessedEvaluator::new(FaultInjector::new(Fp(space()), FaultPlan::none(0)));
        assert_eq!(
            Evaluator::pipeline_fingerprint(&h),
            Some("vm/fp-test".to_string()),
            "journaled chaos runs must keep the engine stamp through both wrappers"
        );
    }

    #[test]
    fn latency_spike_charges_process_time() {
        let mut plan = FaultPlan::none(5);
        plan.latency_spike = 1.0;
        plan.spike_s = 2.5;
        let inj = FaultInjector::new(ok_evaluator(), plan);
        let r = inj.evaluate(&Evaluator::space(&inj).at(0));
        assert!(r.is_ok());
        assert!((r.process_s - 3.5).abs() < 1e-9, "1.0 base + 2.5 spike");
    }
}
