//! Evaluation interface and measurement accounting.
//!
//! Failures are classified into the structured taxonomy shared with the
//! BO framework ([`MeasureError`]); [`MeasureResult`] and the BO side's
//! `ytopt_bo::problem::Evaluation` carry the same information and convert
//! into each other losslessly, so the fault-tolerance harness
//! ([`crate::harness`]) wraps either interface without copy-paste.

use configspace::{ConfigSpace, Configuration};
pub use ytopt_bo::fault::MeasureError;
use ytopt_bo::problem::Evaluation;
pub use ytopt_bo::problem::{CacheStats, JitStats, ParStats, PruneStats, SimdStats, StaticCheckStats};

/// Outcome of measuring one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureResult {
    /// Kernel runtime in seconds (`None` on failure).
    pub runtime_s: Option<f64>,
    /// Wall-clock the evaluation consumed: build + data transfer +
    /// `repeats` timed runs. This is what accumulates into the paper's
    /// "autotuning process time".
    pub process_s: f64,
    /// Structured failure, if any.
    pub error: Option<MeasureError>,
}

impl MeasureResult {
    /// Successful measurement.
    pub fn ok(runtime_s: f64, process_s: f64) -> MeasureResult {
        MeasureResult {
            runtime_s: Some(runtime_s),
            process_s,
            error: None,
        }
    }

    /// Failed measurement (still charges its process time). Accepts a
    /// [`MeasureError`] directly or any string-ish message (classified
    /// into the taxonomy).
    pub fn fail(error: impl Into<MeasureError>, process_s: f64) -> MeasureResult {
        MeasureResult {
            runtime_s: None,
            process_s,
            error: Some(error.into()),
        }
    }

    /// True when the measurement produced a runtime.
    pub fn is_ok(&self) -> bool {
        self.runtime_s.is_some()
    }
}

impl From<Evaluation> for MeasureResult {
    fn from(e: Evaluation) -> MeasureResult {
        MeasureResult {
            runtime_s: e.runtime_s,
            process_s: e.process_s,
            error: e.error,
        }
    }
}

impl From<MeasureResult> for Evaluation {
    fn from(r: MeasureResult) -> Evaluation {
        Evaluation {
            runtime_s: r.runtime_s,
            process_s: r.process_s,
            error: r.error,
        }
    }
}

/// Anything that can score configurations of a space.
///
/// Tuners are generic over this: the production implementation
/// (`tvm_autotune::MoldEvaluator`) compiles a PolyBench code mold and
/// measures it on a device; tests use synthetic functions.
pub trait Evaluator {
    /// The space being tuned.
    fn space(&self) -> &ConfigSpace;

    /// Measure one configuration.
    fn evaluate(&self, config: &Configuration) -> MeasureResult;

    /// Counters of this evaluator's lowering/compilation memo cache, if
    /// it keeps one (`None` for cacheless evaluators). Snapshotted into
    /// [`crate::driver::TuningResult::cache`] at the end of a run.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Accept/reject counters of this evaluator's static schedule-safety
    /// analyzer, if it runs one (`None` for unanalyzed evaluators).
    /// Snapshotted into [`crate::driver::TuningResult::static_checks`]
    /// at the end of a run.
    fn static_check_stats(&self) -> Option<StaticCheckStats> {
        None
    }

    /// Fingerprint of the compilation/optimization pipeline behind this
    /// evaluator's measurements (`None` when measurements do not depend
    /// on a compiler). Stamped into every journal record so a resumed
    /// run refuses to replay costs measured under a different pipeline.
    fn pipeline_fingerprint(&self) -> Option<String> {
        None
    }

    /// Native-codegen compile counters of this evaluator's device, if it
    /// runs a JIT rung (`None` otherwise). Snapshotted into
    /// [`crate::driver::TuningResult::jit`] at the end of a run.
    fn jit_stats(&self) -> Option<JitStats> {
        None
    }

    /// Multicore-dispatch counters of this evaluator's device, if it
    /// runs `Parallel` loops on a worker pool (`None` otherwise).
    /// Snapshotted into [`crate::driver::TuningResult::par`] at the end
    /// of a run.
    fn par_stats(&self) -> Option<ParStats> {
        None
    }

    /// Packed-SIMD emission counters of this evaluator's device, if it
    /// runs a vectorizing codegen rung (`None` otherwise). Snapshotted
    /// into [`crate::driver::TuningResult::simd`] at the end of a run.
    fn simd_stats(&self) -> Option<SimdStats> {
        None
    }

    /// Statically filter a batch of candidates before measurement, if
    /// this evaluator runs an analyzer pipeline (`None` otherwise). The
    /// mask has one slot per candidate: `None` admits it to measurement,
    /// `Some(message)` is the `static_reject` error the tuner records
    /// without compiling or measuring — byte-identical to the message
    /// `evaluate` would have produced, so journaled trial streams do not
    /// depend on whether a batch was pre-filtered.
    fn prune_batch(&self, _batch: &[Configuration]) -> Option<Vec<Option<String>>> {
        None
    }

    /// Batch static-pruning counters of this evaluator's analyzer
    /// pipeline, if it has one (`None` otherwise). Snapshotted into
    /// [`crate::driver::TuningResult::prune`] at the end of a run.
    fn prune_stats(&self) -> Option<PruneStats> {
        None
    }
}

/// A closure-backed evaluator for tests and custom problems.
pub struct FnEvaluator<F: Fn(&Configuration) -> MeasureResult> {
    space: ConfigSpace,
    f: F,
}

impl<F: Fn(&Configuration) -> MeasureResult> FnEvaluator<F> {
    /// Wrap a closure over a space.
    pub fn new(space: ConfigSpace, f: F) -> Self {
        FnEvaluator { space, f }
    }
}

impl<F: Fn(&Configuration) -> MeasureResult> Evaluator for FnEvaluator<F> {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn evaluate(&self, config: &Configuration) -> MeasureResult {
        (self.f)(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::Hyperparameter;

    #[test]
    fn result_constructors() {
        let ok = MeasureResult::ok(1.5, 2.0);
        assert!(ok.is_ok());
        assert_eq!(ok.runtime_s, Some(1.5));
        let bad = MeasureResult::fail("boom", 0.5);
        assert!(!bad.is_ok());
        assert_eq!(bad.error.as_ref().map(|e| e.message()), Some("boom"));
        assert_eq!(bad.error.as_ref().map(|e| e.kind()), Some("runtime_crash"));
        assert_eq!(bad.process_s, 0.5);
        let typed = MeasureResult::fail(MeasureError::BuildFailed("no codegen".into()), 0.2);
        assert_eq!(typed.error.as_ref().map(|e| e.kind()), Some("build_failed"));
    }

    #[test]
    fn converts_to_and_from_evaluation() {
        let r = MeasureResult::fail(
            MeasureError::Timeout {
                limit_s: 2.0,
                message: None,
            },
            2.0,
        );
        let e: Evaluation = r.clone().into();
        assert_eq!(e.runtime_s, None);
        assert_eq!(e.process_s, 2.0);
        assert_eq!(e.error.as_ref().map(|x| x.kind()), Some("timeout"));
        let back: MeasureResult = e.into();
        assert_eq!(back, r);
    }

    #[test]
    fn fn_evaluator_works() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 4]));
        let ev = FnEvaluator::new(cs, |c| MeasureResult::ok(c.int("P0") as f64, 1.0));
        let cfg = ev.space().at(2);
        assert_eq!(ev.evaluate(&cfg).runtime_s, Some(4.0));
    }
}
