//! Bytecode block optimizer: strided-pointer-bump loops, fused
//! multiply-add, and microkernel recognition.
//!
//! [`compile_optimized`] is the optimizing counterpart of
//! [`crate::compile`]: it first runs the TIR pass pipeline
//! ([`tvm_tir::optimize`] — strength reduction, guard unswitching LICM,
//! simplification, each re-verified), compiles the result, then applies
//! three bytecode-level transforms:
//!
//! 1. **FMA peephole** — adjacent `FBin(Mul)`/`FBin(Add)` pairs whose
//!    product register has exactly one use fuse into
//!    [`Instr::FMulAdd`]. Rounding is preserved per-operation, so this
//!    is a dispatch optimization, not a numeric one.
//! 2. **Strided loops** — for each innermost loop whose body is
//!    straight-line code, integer registers that are *affine* in the
//!    loop variable (built from `+`, `-`, and multiplication by
//!    loop-invariant constants) are computed once for iteration 0 in a
//!    loop prelude and thereafter advanced by their constant
//!    per-iteration stride ([`Item::StridedLoop`]). This removes the
//!    per-element index arithmetic that `split`/`fuse` reconstruction
//!    leaves behind. Only pure instructions move: loads, stores, bounds
//!    checks and anything that can fail keep their original order, so
//!    outputs and error classification stay bit-identical.
//! 3. **Microkernel recognition** — a strided body of exactly
//!    `load dst; load a; load b; fmuladd; store dst` with known address
//!    strides becomes [`Item::MulAddLoop`], executed by tight slice
//!    kernels in the VM (`f64` and native-`f32` fast paths, generic
//!    fallback). This is the 3mm/gemm hot loop.
//!
//! Why the incremental address update is exact: a register classified
//! affine holds `base + i·s` at iteration `i`, so bumping by `s` per
//! iteration reproduces the recomputed value exactly (the intermediate
//! values are the same ones the scalar program computes, so overflow
//! behaviour is unchanged too). Registers defined inside an innermost
//! loop are never read after it — the compiler places every consumer at
//! its operands' definition block — so post-loop register state is
//! unobservable.

use crate::compile::{
    compile_with_proofs, Block, CompileError, CompiledFunc, Instr, Item, LoopKind, Reg,
    SlotAccess,
};
use std::collections::{HashMap, HashSet};
use tvm_te::{BinOp, DType};
use tvm_tir::PrimFunc;

/// Version tag of the bytecode engine (compiler + block optimizer +
/// VM). Bump on any change to instruction semantics or the optimizer.
pub(crate) const ENGINE_VERSION: &str = "vm/v2";

/// Fingerprint of the full optimization pipeline an execution engine
/// applies between TIR and measurement: the bytecode engine version,
/// the TIR pass-pipeline version, and the parallel-dispatch protocol
/// version. Memo caches and measurement journals embed this string so
/// results produced by one pipeline are never silently replayed under
/// another.
pub fn engine_fingerprint() -> String {
    format!(
        "{ENGINE_VERSION}+{}+{}",
        tvm_tir::PIPELINE_VERSION,
        crate::pool::PAR_VERSION
    )
}

/// Compile with the full optimization pipeline: TIR passes (falling
/// back to the unoptimized function if a pass or its verification
/// fails), bytecode compilation, then the block optimizer. Parallel
/// loops the dependence analyzer proves race-free are marked
/// dispatchable, and vectorized loops it proves race-free are marked
/// packable for native backends; each proof runs on whichever function
/// actually compiles, so pass-pipeline rewrites can't invalidate it
/// silently.
pub fn compile_optimized(func: &PrimFunc) -> Result<CompiledFunc, CompileError> {
    use tvm_tir::analyze::deps::{race_free_parallel_vars, race_free_vectorized_vars};
    if let Ok(opt) = tvm_tir::optimize(func) {
        let par = race_free_parallel_vars(&opt);
        let vec = race_free_vectorized_vars(&opt);
        if let Ok(cf) = compile_with_proofs(&opt, &par, &vec) {
            return Ok(optimize_compiled(&cf));
        }
    }
    // The optimized IR failed to compile (e.g. a rewrite surfaced a
    // short-circuit shape the compiler rejects): keep the scalar
    // engine's exact behaviour on the original function.
    let par = race_free_parallel_vars(func);
    let vec = race_free_vectorized_vars(func);
    compile_with_proofs(func, &par, &vec).map(|cf| optimize_compiled(&cf))
}

/// Apply the bytecode-level transforms to an already-compiled function.
pub fn optimize_compiled(cf: &CompiledFunc) -> CompiledFunc {
    let consts = collect_consts(&cf.body);
    let fuse = freg_use_counts(&cf.body);
    let vn = value_numbers(&cf.body);
    let dts: Vec<DType> = cf
        .params
        .iter()
        .map(|p| p.dtype)
        .chain(cf.allocs.iter().map(|(_, dt)| *dt))
        .collect();
    let body = optimize_block(&cf.body, &consts, &fuse, &vn, &dts);
    CompiledFunc { body, ..cf.clone() }
}

/// Integer destination register of an instruction, if any.
fn int_dst(i: &Instr) -> Option<Reg> {
    match i {
        Instr::IConst(d, _)
        | Instr::FToI(d, _)
        | Instr::FBool(d, _)
        | Instr::IBin(_, d, _, _)
        | Instr::ICmp(_, d, _, _)
        | Instr::FCmp(_, d, _, _)
        | Instr::And(d, _, _)
        | Instr::Or(d, _, _)
        | Instr::Not(d, _)
        | Instr::ISel(d, _, _, _) => Some(*d),
        _ => None,
    }
}

/// `IConst` values: every `IConst` is an interned prologue constant
/// (single assignment, defined before any loop body that reads it).
fn collect_consts(b: &Block) -> HashMap<Reg, i64> {
    fn go(b: &Block, out: &mut HashMap<Reg, i64>) {
        for it in &b.items {
            match it {
                Item::Code(c) => {
                    for i in c {
                        if let Instr::IConst(r, v) = i {
                            out.insert(*r, *v);
                        }
                    }
                }
                Item::Loop { body, .. } => go(body, out),
                Item::If { then, else_, .. } => {
                    go(then, out);
                    if let Some(e) = else_ {
                        go(e, out);
                    }
                }
                Item::StridedLoop { .. } | Item::MulAddLoop { .. } | Item::JitCall { .. } => {}
            }
        }
    }
    let mut out = HashMap::new();
    go(b, &mut out);
    out
}

/// How many times each float register is read anywhere in the program
/// (gates the FMA peephole: the fused product register must be dead
/// outside the pair).
fn freg_use_counts(b: &Block) -> HashMap<Reg, usize> {
    fn uses(i: &Instr, out: &mut HashMap<Reg, usize>) {
        let mut u = |r: Reg| *out.entry(r).or_insert(0) += 1;
        match i {
            Instr::FToI(_, s) | Instr::F32Round(_, s) | Instr::FBool(_, s) => u(*s),
            Instr::FBin(_, _, a, b) | Instr::FBin32(_, _, a, b) => {
                u(*a);
                u(*b);
            }
            Instr::FSel(_, _, t, f) => {
                u(*t);
                u(*f);
            }
            Instr::Call1(_, _, x, _) => u(*x),
            Instr::Call2(_, _, x, y, _) => {
                u(*x);
                u(*y);
            }
            Instr::Store(_, _, v) | Instr::StoreChecked { val: v, .. } => u(*v),
            Instr::FMulAdd { add, a, b, .. } => {
                u(*add);
                u(*a);
                u(*b);
            }
            _ => {}
        }
    }
    fn go(b: &Block, out: &mut HashMap<Reg, usize>) {
        for it in &b.items {
            match it {
                Item::Code(c) => c.iter().for_each(|i| uses(i, out)),
                Item::Loop { body, .. } => go(body, out),
                Item::If { then, else_, .. } => {
                    go(then, out);
                    if let Some(e) = else_ {
                        go(e, out);
                    }
                }
                Item::StridedLoop { .. } | Item::MulAddLoop { .. } | Item::JitCall { .. } => {}
            }
        }
    }
    let mut out = HashMap::new();
    go(b, &mut out);
    out
}

/// Global value numbering over the integer register file: two registers
/// receive the same number iff they provably compute the same expression
/// (same constant, same loop variable, or the same operation over
/// value-equal operands). Sound because every non-loop-var register is
/// assigned exactly once and consumers live at (or below) their
/// operands' definition block, so number-equal registers read within one
/// loop body hold equal values in every iteration. Used to prove that a
/// load and a store address the same element when the compiler emitted
/// the index arithmetic twice (it performs no CSE).
fn value_numbers(b: &Block) -> HashMap<Reg, u32> {
    #[derive(Hash, PartialEq, Eq)]
    enum Key {
        Const(i64),
        Var(Reg),
        Opaque(Reg),
        Bin(u8, u32, u32),
    }
    struct Ctx {
        intern: HashMap<Key, u32>,
        vn: HashMap<Reg, u32>,
    }
    impl Ctx {
        fn id(&mut self, k: Key) -> u32 {
            let next = self.intern.len() as u32;
            *self.intern.entry(k).or_insert(next)
        }
        fn reg(&mut self, r: Reg) -> u32 {
            match self.vn.get(&r) {
                Some(&v) => v,
                None => {
                    let v = self.id(Key::Opaque(r));
                    self.vn.insert(r, v);
                    v
                }
            }
        }
    }
    fn go(b: &Block, cx: &mut Ctx) {
        for it in &b.items {
            match it {
                Item::Code(c) => {
                    for i in c {
                        match i {
                            Instr::IConst(d, v) => {
                                let id = cx.id(Key::Const(*v));
                                cx.vn.insert(*d, id);
                            }
                            Instr::IBin(op, d, a, b) => {
                                let (va, vb) = (cx.reg(*a), cx.reg(*b));
                                let id = cx.id(Key::Bin(*op as u8, va, vb));
                                cx.vn.insert(*d, id);
                            }
                            _ => {
                                if let Some(d) = int_dst(i) {
                                    let id = cx.id(Key::Opaque(d));
                                    cx.vn.insert(d, id);
                                }
                            }
                        }
                    }
                }
                Item::Loop { var, body, .. } => {
                    let id = cx.id(Key::Var(*var));
                    cx.vn.insert(*var, id);
                    go(body, cx);
                }
                Item::If { then, else_, .. } => {
                    go(then, cx);
                    if let Some(e) = else_ {
                        go(e, cx);
                    }
                }
                Item::StridedLoop { .. } | Item::MulAddLoop { .. } | Item::JitCall { .. } => {}
            }
        }
    }
    let mut cx = Ctx {
        intern: HashMap::new(),
        vn: HashMap::new(),
    };
    go(b, &mut cx);
    cx.vn
}

/// Fuse adjacent `mul`/`add` pairs into [`Instr::FMulAdd`]. Both
/// instructions must use the same rounding class and the product
/// register must have exactly one use in the whole program (the add).
fn fma_peephole(code: &[Instr], fuse: &HashMap<Reg, usize>) -> Vec<Instr> {
    let mut out: Vec<Instr> = Vec::with_capacity(code.len());
    let mut i = 0;
    while i < code.len() {
        if i + 1 < code.len() {
            let (mul32, m, a, b) = match &code[i] {
                Instr::FBin(BinOp::Mul, m, a, b) => (false, *m, *a, *b),
                Instr::FBin32(BinOp::Mul, m, a, b) => (true, *m, *a, *b),
                _ => (false, Reg::MAX, 0, 0),
            };
            if m != Reg::MAX {
                let nxt = match &code[i + 1] {
                    Instr::FBin(BinOp::Add, d, x, y) if !mul32 => Some((*d, *x, *y)),
                    Instr::FBin32(BinOp::Add, d, x, y) if mul32 => Some((*d, *x, *y)),
                    _ => None,
                };
                if let Some((d, x, y)) = nxt {
                    let add = if y == m && x != m {
                        Some(x)
                    } else if x == m && y != m {
                        Some(y)
                    } else {
                        None
                    };
                    if let Some(add) = add {
                        if fuse.get(&m).copied().unwrap_or(0) == 1 {
                            out.push(Instr::FMulAdd {
                                dst: d,
                                add,
                                a,
                                b,
                                round32: mul32,
                            });
                            i += 2;
                            continue;
                        }
                    }
                }
            }
        }
        out.push(code[i].clone());
        i += 1;
    }
    out
}

/// Per-iteration stride of an int register inside a loop over `var`:
/// the loop variable advances by 1, registers never written in the body
/// are invariant (stride 0), and registers the affine scan classified
/// carry their computed stride.
fn stride_of(r: Reg, var: Reg, written: &HashSet<Reg>, strides: &HashMap<Reg, i64>) -> Option<i64> {
    if r == var {
        Some(1)
    } else if let Some(&s) = strides.get(&r) {
        Some(s)
    } else if !written.contains(&r) {
        Some(0)
    } else {
        None
    }
}

fn optimize_block(
    b: &Block,
    consts: &HashMap<Reg, i64>,
    fuse: &HashMap<Reg, usize>,
    vn: &HashMap<Reg, u32>,
    dts: &[DType],
) -> Block {
    let items = b
        .items
        .iter()
        .map(|it| match it {
            Item::Code(c) => Item::Code(fma_peephole(c, fuse)),
            Item::If { cond, then, else_ } => Item::If {
                cond: *cond,
                then: optimize_block(then, consts, fuse, vn, dts),
                else_: else_
                    .as_ref()
                    .map(|e| optimize_block(e, consts, fuse, vn, dts)),
            },
            Item::Loop {
                var,
                min,
                extent,
                body,
                kind,
            } => {
                let body = optimize_block(body, consts, fuse, vn, dts);
                try_strided(*var, *min, *extent, *kind, &body, consts, vn, dts).unwrap_or(
                    Item::Loop {
                        var: *var,
                        min: *min,
                        extent: *extent,
                        body,
                        kind: *kind,
                    },
                )
            }
            other => other.clone(),
        })
        .collect();
    Block { items }
}

/// Rewrite an innermost straight-line loop into strided-pointer-bump
/// form, and further into a multiply-accumulate microkernel when the
/// residual body matches.
#[allow(clippy::too_many_arguments)]
fn try_strided(
    var: Reg,
    min: i64,
    extent: i64,
    kind: LoopKind,
    body: &Block,
    consts: &HashMap<Reg, i64>,
    vn: &HashMap<Reg, u32>,
    dts: &[DType],
) -> Option<Item> {
    if extent < 1 {
        return None;
    }
    // A proven-parallel loop with work to split stays a plain `Loop` so
    // the VM can dispatch its chunks to the worker pool; `StridedLoop`
    // carries mutable register state across iterations and is only ever
    // run sequentially.
    if matches!(kind, LoopKind::Parallel { proven: true }) && extent >= 2 {
        return None;
    }
    let code = match body.items.as_slice() {
        [Item::Code(c)] => c,
        _ => return None,
    };
    let written: HashSet<Reg> = code.iter().filter_map(int_dst).collect();
    // Affine scan: which int registers advance by a constant stride per
    // iteration? Only pure `+`/`-`/`·const` chains qualify; their
    // defining instructions move to the loop prelude.
    let mut strides: HashMap<Reg, i64> = HashMap::new();
    let mut moved: Vec<bool> = vec![false; code.len()];
    for (idx, instr) in code.iter().enumerate() {
        let Instr::IBin(op, d, a, b) = instr else {
            continue;
        };
        let sa = stride_of(*a, var, &written, &strides);
        let sb = stride_of(*b, var, &written, &strides);
        let s = match op {
            BinOp::Add => sa.zip(sb).and_then(|(x, y)| x.checked_add(y)),
            BinOp::Sub => sa.zip(sb).and_then(|(x, y)| x.checked_sub(y)),
            BinOp::Mul => match (sa, sb) {
                (Some(0), Some(0)) => Some(0),
                (Some(x), _) if consts.contains_key(b) && !written.contains(b) => {
                    x.checked_mul(consts[b])
                }
                (_, Some(y)) if consts.contains_key(a) && !written.contains(a) => {
                    y.checked_mul(consts[a])
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(s) = s {
            strides.insert(*d, s);
            moved[idx] = true;
        }
    }
    let mut pre: Vec<Instr> = vec![Instr::IConst(var, min)];
    let mut rest: Vec<Instr> = Vec::new();
    for (idx, instr) in code.iter().enumerate() {
        if moved[idx] {
            pre.push(instr.clone());
        } else {
            rest.push(instr.clone());
        }
    }
    let mut bumps: Vec<(Reg, i64)> = vec![(var, 1)];
    bumps.extend(
        strides
            .iter()
            .filter(|(_, &s)| s != 0)
            .map(|(&r, &s)| (r, s)),
    );
    bumps.sort_by_key(|&(r, _)| r); // deterministic order
    if let Some(item) = try_muladd(extent, &pre, &rest, var, &written, &strides, vn) {
        return Some(item);
    }
    if pre.len() <= 1 {
        // Nothing hoisted and no microkernel: the plain loop is as good.
        return None;
    }
    let lanes = plan_lanes(kind, &rest, dts);
    Some(Item::StridedLoop {
        extent,
        pre,
        bumps,
        body: rest,
        kind,
        lanes,
    })
}

/// Vector-width plan for a strided body: the uniform f64/f32 element
/// width of its loads and stores when the enclosing loop carries the
/// analyzer's `Vectorized` race-freedom proof, else 1 (scalar). Native
/// backends may widen the plan (AVX doubles it) but never pack a loop
/// planned scalar.
fn plan_lanes(kind: LoopKind, body: &[Instr], dts: &[DType]) -> u8 {
    if !matches!(kind, LoopKind::Vectorized { proven: true }) {
        return 1;
    }
    let mut mode: Option<DType> = None;
    for i in body {
        if let Instr::Load(_, slot, _) | Instr::Store(slot, _, _) = i {
            let dt = dts[*slot as usize];
            match mode {
                None => mode = Some(dt),
                Some(m) if m != dt => return 1,
                _ => {}
            }
        }
    }
    match mode {
        Some(DType::F64) => 2,
        Some(DType::F32) => 4,
        _ => 1,
    }
}

/// Recognize the contiguous multiply-accumulate body
/// `dst[·] = dst[·] + a[·]·b[·]` left after address hoisting, with all
/// three address strides known.
fn try_muladd(
    extent: i64,
    pre: &[Instr],
    rest: &[Instr],
    var: Reg,
    written: &HashSet<Reg>,
    strides: &HashMap<Reg, i64>,
    vn: &HashMap<Reg, u32>,
) -> Option<Item> {
    let [Instr::Load(c, slot_d, rc), Instr::Load(x, slot_a, ra), Instr::Load(y, slot_b, rb), Instr::FMulAdd {
        dst,
        add,
        a,
        b,
        round32,
    }, Instr::Store(slot_s, rs, vs)] = rest
    else {
        return None;
    };
    if add != c || slot_s != slot_d || vs != dst {
        return None;
    }
    // The store's address register usually differs from the load's (the
    // compiler emits index arithmetic twice, without CSE): accept it when
    // value numbering proves both registers compute the same expression,
    // and both advance by the same stride.
    let same_addr = rs == rc || matches!((vn.get(rc), vn.get(rs)), (Some(a), Some(b)) if a == b);
    if !same_addr {
        return None;
    }
    // Map the microkernel's factor operands in the multiply's own order
    // so the slice kernel computes exactly `fregs[a] * fregs[b]`.
    let ((slot_a, ra), (slot_b, rb)) = if a == x && b == y {
        ((*slot_a, *ra), (*slot_b, *rb))
    } else if a == y && b == x {
        ((*slot_b, *rb), (*slot_a, *ra))
    } else {
        return None;
    };
    let sd = stride_of(*rc, var, written, strides)?;
    if stride_of(*rs, var, written, strides)? != sd {
        return None;
    }
    let sa = stride_of(ra, var, written, strides)?;
    let sb = stride_of(rb, var, written, strides)?;
    Some(Item::MulAddLoop {
        extent,
        pre: pre.to_vec(),
        dst: SlotAccess {
            slot: *slot_d,
            addr: *rc,
            stride: sd,
        },
        a: SlotAccess {
            slot: slot_a,
            addr: ra,
            stride: sa,
        },
        b: SlotAccess {
            slot: slot_b,
            addr: rb,
            stride: sb,
        },
        round32: *round32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::ndarray::NDArray;
    use crate::{interp, vm};
    use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule};
    use tvm_tir::lower::lower;

    fn matmul_func(n: usize, tile: i64, dtype: DType) -> PrimFunc {
        let a = placeholder([n, n], dtype, "A");
        let b = placeholder([n, n], dtype, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let mut s = Schedule::create(&[c.clone()]);
        if tile > 1 {
            let (y, x) = (c.axis(0), c.axis(1));
            let (yo, yi) = s.split(&c, &y, tile);
            let (xo, xi) = s.split(&c, &x, tile);
            s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);
        }
        lower(&s, &[a, b, c], "mm")
    }

    fn assert_three_way(f: &PrimFunc, args: &[NDArray]) {
        let mut a1: Vec<NDArray> = args.to_vec();
        let mut a2: Vec<NDArray> = args.to_vec();
        let mut a3: Vec<NDArray> = args.to_vec();
        let r1 = interp::execute(f, &mut a1);
        let scalar = compile(f).expect("compile");
        let r2 = vm::execute(&scalar, &mut a2);
        let opt = compile_optimized(f).expect("compile_optimized");
        let r3 = vm::execute(&opt, &mut a3);
        assert_eq!(r1, r2);
        assert_eq!(r1, r3, "optimized VM error must match interpreter");
        for ((x, y), z) in a1.iter().zip(&a2).zip(&a3) {
            assert_eq!(x, y);
            assert_eq!(x, z, "optimized VM output must be bit-identical");
        }
    }

    #[test]
    fn tiled_matmul_hits_microkernel_and_matches() {
        for dtype in [DType::F32, DType::F64] {
            let f = matmul_func(16, 4, dtype);
            let opt = compile_optimized(&f).expect("compile_optimized");
            assert!(
                opt.microkernel_count() > 0,
                "tiled matmul inner loop must dispatch to the muladd microkernel ({dtype:?})"
            );
            let args = vec![
                NDArray::random(&[16, 16], dtype, 11, -1.0, 1.0),
                NDArray::random(&[16, 16], dtype, 12, -1.0, 1.0),
                NDArray::zeros(&[16, 16], dtype),
            ];
            assert_three_way(&f, &args);
        }
    }

    #[test]
    fn untiled_and_ragged_matmuls_match() {
        for (n, tile) in [(8usize, 1i64), (10, 3), (12, 5)] {
            let f = matmul_func(n, tile, DType::F32);
            let args = vec![
                NDArray::random(&[n, n], DType::F32, 21, -1.0, 1.0),
                NDArray::random(&[n, n], DType::F32, 22, -1.0, 1.0),
                NDArray::zeros(&[n, n], DType::F32),
            ];
            assert_three_way(&f, &args);
        }
    }

    #[test]
    fn strided_transform_applies_to_tiled_nest() {
        let f = matmul_func(16, 4, DType::F32);
        let opt = compile_optimized(&f).expect("compile_optimized");
        assert!(opt.strided_loop_count() > 0);
        // The scalar program must be untouched by the optimized path.
        let scalar = compile(&f).expect("compile");
        assert_eq!(scalar.strided_loop_count(), 0);
    }

    #[test]
    fn fma_peephole_requires_single_use() {
        // d = m + m where m = a*b: the product register has two uses in
        // the add, so fusing would read a stale register. Must not fuse.
        let fuse: HashMap<Reg, usize> = [(2u32, 2usize)].into_iter().collect();
        let code = vec![
            Instr::FBin(BinOp::Mul, 2, 0, 1),
            Instr::FBin(BinOp::Add, 3, 2, 2),
        ];
        let out = fma_peephole(&code, &fuse);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], Instr::FBin(BinOp::Mul, ..)));
    }

    #[test]
    fn fma_peephole_fuses_single_use_product() {
        let fuse: HashMap<Reg, usize> = [(2u32, 1usize), (4, 1)].into_iter().collect();
        let code = vec![
            Instr::FBin32(BinOp::Mul, 2, 0, 1),
            Instr::FBin32(BinOp::Add, 3, 4, 2),
        ];
        let out = fma_peephole(&code, &fuse);
        assert_eq!(out.len(), 1);
        match &out[0] {
            Instr::FMulAdd {
                dst,
                add,
                a,
                b,
                round32,
            } => {
                assert_eq!((*dst, *add, *a, *b, *round32), (3, 4, 0, 1, true));
            }
            other => panic!("expected FMulAdd, got {other:?}"),
        }
    }

    #[test]
    fn mixed_rounding_does_not_fuse() {
        let fuse: HashMap<Reg, usize> = [(2u32, 1usize)].into_iter().collect();
        let code = vec![
            Instr::FBin32(BinOp::Mul, 2, 0, 1),
            Instr::FBin(BinOp::Add, 3, 4, 2),
        ];
        assert_eq!(fma_peephole(&code, &fuse).len(), 2);
    }

    #[test]
    fn fingerprint_names_both_layers() {
        let fp = engine_fingerprint();
        assert!(fp.contains(ENGINE_VERSION));
        assert!(fp.contains(tvm_tir::PIPELINE_VERSION));
    }
}
