//! Compiled-module façade over a lowered function.

use crate::device::{CpuDevice, Device, DeviceError};
use crate::interp::ExecError;
use crate::ndarray::NDArray;
use tvm_te::DType;
use tvm_tir::PrimFunc;

/// A "compiled" kernel: a verified [`PrimFunc`] plus convenience entry
/// points — the moral equivalent of the module object `tvm.build` returns.
#[derive(Debug, Clone)]
pub struct Module {
    func: PrimFunc,
}

impl Module {
    /// Wrap a lowered function.
    pub fn new(func: PrimFunc) -> Module {
        Module { func }
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.func.name
    }

    /// The underlying function.
    pub fn func(&self) -> &PrimFunc {
        &self.func
    }

    /// Parameter signature as `(name, shape, dtype)` triples.
    pub fn signature(&self) -> Vec<(String, Vec<usize>, DType)> {
        self.func
            .params
            .iter()
            .map(|b| (b.name.clone(), b.shape.clone(), b.dtype))
            .collect()
    }

    /// Allocate zeroed arguments matching the signature — handy in tests
    /// and examples.
    pub fn alloc_args(&self) -> Vec<NDArray> {
        self.func
            .params
            .iter()
            .map(|b| NDArray::zeros(&b.shape, b.dtype))
            .collect()
    }

    /// Execute on the host CPU (compiled VM, interpreter fallback); output
    /// parameters are updated in place.
    pub fn run(&self, args: &mut [NDArray]) -> Result<(), ExecError> {
        crate::vm::run(&self.func, args)
    }

    /// Time `repeats` runs on `device`, returning the minimum seconds.
    pub fn time_on(
        &self,
        device: &dyn Device,
        args: &mut [NDArray],
        repeats: usize,
    ) -> Result<f64, DeviceError> {
        device.time(&self.func, args, repeats)
    }

    /// Time on the host CPU.
    pub fn time(&self, args: &mut [NDArray], repeats: usize) -> Result<f64, DeviceError> {
        self.time_on(&CpuDevice::new(), args, repeats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::{compute, placeholder, Schedule};
    use tvm_tir::lower::lower;

    fn square_module(n: usize) -> Module {
        let a = placeholder([n], DType::F32, "A");
        let b = compute([n], "B", |i| a.at(&[i[0].clone()]) * a.at(&[i[0].clone()]));
        let s = Schedule::create(&[b.clone()]);
        Module::new(lower(&s, &[a, b], "square"))
    }

    #[test]
    fn signature_and_alloc() {
        let m = square_module(8);
        let sig = m.signature();
        assert_eq!(sig.len(), 2);
        assert_eq!(sig[0].0, "A");
        assert_eq!(sig[1].1, vec![8]);
        let args = m.alloc_args();
        assert_eq!(args.len(), 2);
        assert_eq!(args[0].numel(), 8);
        assert_eq!(m.name(), "square");
    }

    #[test]
    fn run_and_time() {
        let m = square_module(4);
        let mut args = m.alloc_args();
        args[0] = NDArray::from_f32(&[4], &[1.0, 2.0, 3.0, 4.0]);
        m.run(&mut args).expect("run");
        assert_eq!(args[1].to_f64_vec(), vec![1.0, 4.0, 9.0, 16.0]);
        let t = m.time(&mut args, 2).expect("time");
        assert!(t >= 0.0);
    }
}
