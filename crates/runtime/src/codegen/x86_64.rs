//! Hand-rolled x86-64 emitter and loop-nest compiler.
//!
//! The backend compiles whole *loop nests* of an optimized bytecode
//! program — subtrees built from `Loop`, `StridedLoop`, `MulAddLoop`
//! and straight-line `Code` whose every instruction is in the
//! infallible JIT subset — into single native functions, eliminating
//! the VM's per-item dispatch and per-instruction interpretation.
//!
//! # Bit-exactness contract
//!
//! Emitted code must match the optimized VM (and therefore the
//! reference interpreter) bit for bit:
//!
//! - Register files stay in memory (`iregs`/`fregs` arrays passed in
//!   `rdi`/`rsi`); each bytecode instruction lowers to a short template
//!   over scratch registers, so evaluation order is the VM's order.
//! - Float ops use scalar SSE2 (`mulsd`/`addsd`/`divsd`/`sqrtsd`),
//!   which are IEEE-correctly-rounded exactly like Rust's `f64` ops.
//!   `f32` rounding replicates the VM's `as f32 as f64` with
//!   `cvtsd2ss`/`cvtss2sd` pairs after each operation.
//! - Packed SIMD (`movupd`/`mulpd`/`addpd` f64x2, `movups`/`mulps`/
//!   `addps` f32x4, or their VEX-256 f64x4/f32x8 forms when AVX is
//!   detected) is used in three places, all remainder-safe via scalar
//!   epilogues and all gated on `TVM_JIT_SIMD` ([`X86Backend::simd`]):
//!   mul-add microkernels with *parallel* stride patterns, where every
//!   lane performs one multiply and one add with per-element rounding —
//!   bit-identical to the scalar order, with a register-tiled 4×
//!   unroll-and-jam main loop; strided-loop bodies whose enclosing
//!   loop carries the analyzer's race-freedom proof
//!   (`LoopKind::Vectorized { proven: true }`), where each lane writes
//!   a disjoint element and keeps its own operation sequence; and a
//!   cross-iteration unroll-and-jam of the *reduction* loop itself,
//!   when a serial loop wraps exactly one axpy-like mul-add whose
//!   destination row is invariant in the loop variable (the y-tile-1
//!   matmul shape): four consecutive reduction steps are fused into
//!   one sweep that loads and stores the destination once per four
//!   multiply-adds. Each destination cell still sees the identical
//!   per-op-rounded sequence `(((d+m₀)+m₁)+m₂)+m₃` in ascending
//!   reduction order — only the interleaving across *distinct* cells
//!   changes — and a dataflow scan ([`NestCompiler::plan_jam`]) proves
//!   the destination address and broadcast factor invariant before the
//!   jam fires. `f32`
//!   lanes compute natively in f32: the result is bit-identical to the
//!   VM's widen→op→round double rounding because products of 24-bit
//!   significands are exact in f64 and 53 ≥ 2·24+2 makes the double
//!   rounding innocuous for add/sub/div (Figueroa, 1995). The
//!   dot-product reduction pattern (`dst` stride 0) has a serial
//!   accumulation chain and always stays scalar, and every vector site
//!   is tallied packed-or-scalar-with-reason in
//!   [`super::SimdReport`].
//! - FMA (`vfmadd231pd`) rounds *once* where the VM rounds twice, so
//!   it is **not** bit-exact and is gated behind the off-by-default
//!   [`X86Backend::allow_fma`] option (never enabled on the engine
//!   ladder or the differential path).
//!
//! Anything outside the subset — conditionals, bounds checks, checked
//! stores, failable integer division, float min/max (NaN semantics
//!   differ from Rust's), float→int casts (saturation differs), and
//! integer-typed buffers — rejects the nest; the VM executes those
//! items unchanged.

use super::exec_mem::ExecBuf;
use super::{CodegenBackend, JitProgram, SimdReport};
use crate::compile::{Block, CompileError, CompiledFunc, Instr, Item, LoopKind, Reg, SlotAccess};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tvm_te::{BinOp, DType, Intrinsic};

// ---------------------------------------------------------------- registers

/// General-purpose register number (REX numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct R(u8);

const RAX: R = R(0);
const RCX: R = R(1);
/// Slot base-pointer table argument.
const RDX: R = R(2);
/// Stack pointer (jam group counter lives in its top slot).
const RSP: R = R(4);
/// `fregs` argument.
const RSI: R = R(6);
/// `iregs` argument.
const RDI: R = R(7);
const R8: R = R(8);
const R9: R = R(9);
const R10: R = R(10);
/// Innermost-loop trip counter.
const R11: R = R(11);

/// XMM/YMM register number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct X(u8);

const X0: X = X(0);
const X1: X = X(1);
const X2: X = X(2);
const X3: X = X(3);
/// Scratch for packed strided-loop bodies (never mapped to a freg).
const XSCRATCH: X = X(15);

/// Condition code for `jcc` (low nibble of the `0F 8x` opcode).
const CC_L: u8 = 0xC;
const CC_NZ: u8 = 0x5;

// ---------------------------------------------------------------- assembler

/// Byte-level x86-64 assembler with forward-label fixups and backward
/// (loop back-edge) jump relocation.
struct Asm {
    code: Vec<u8>,
}

/// A forward `jcc`/`jmp` whose 32-bit displacement is patched later.
/// (Loop templates currently only need backward edges — trip counts are
/// static and ≥ 1 — but guards over dynamic extents will want this.)
#[allow(dead_code)]
struct Fwd(usize);

impl Asm {
    fn new() -> Asm {
        Asm { code: Vec::new() }
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn b(&mut self, byte: u8) {
        self.code.push(byte);
    }

    fn imm32(&mut self, v: i32) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    fn imm64(&mut self, v: i64) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// REX prefix; always emitted when `w` (64-bit operand) is set,
    /// otherwise only when an extended register is referenced.
    fn rex(&mut self, w: bool, reg: u8, index: u8, base: u8) {
        let rex =
            0x40 | ((w as u8) << 3) | ((reg >> 3) << 2) | ((index >> 3) << 1) | (base >> 3);
        if rex != 0x40 || w {
            self.b(rex);
        }
    }

    /// ModRM + optional SIB + displacement for `[base + disp]`.
    fn mem(&mut self, reg: u8, base: R, disp: i32) {
        let b = base.0 & 7;
        let (md, small) = if disp == 0 && b != 5 {
            (0x00u8, true)
        } else if (-128..=127).contains(&disp) {
            (0x40, true)
        } else {
            (0x80, false)
        };
        if b == 4 {
            // rsp/r12 as base require a SIB byte (index = none).
            self.b(md | (reg & 7) << 3 | 4);
            self.b(0x24);
        } else {
            self.b(md | (reg & 7) << 3 | b);
        }
        if md == 0x40 {
            self.b(disp as u8);
        } else if md == 0x80 || !small {
            self.imm32(disp);
        }
    }

    /// ModRM + SIB for `[base + index*scale]` (scale ∈ {1,4,8}).
    fn mem_sib(&mut self, reg: u8, base: R, index: R, scale: u8) {
        let ss = match scale {
            1 => 0,
            4 => 2,
            8 => 3,
            _ => unreachable!("unsupported scale"),
        };
        let b = base.0 & 7;
        if b == 5 {
            // rbp/r13 base needs an explicit disp8.
            self.b(0x40 | (reg & 7) << 3 | 4);
            self.b(ss << 6 | (index.0 & 7) << 3 | b);
            self.b(0);
        } else {
            self.b((reg & 7) << 3 | 4);
            self.b(ss << 6 | (index.0 & 7) << 3 | b);
        }
    }

    fn modrm_rr(&mut self, reg: u8, rm: u8) {
        self.b(0xC0 | (reg & 7) << 3 | (rm & 7));
    }

    // ---- integer ops (64-bit) ----

    fn mov_ri(&mut self, r: R, v: i64) {
        if v as i32 as i64 == v {
            self.rex(true, 0, 0, r.0);
            self.b(0xC7);
            self.modrm_rr(0, r.0);
            self.imm32(v as i32);
        } else {
            self.rex(true, 0, 0, r.0);
            self.b(0xB8 + (r.0 & 7));
            self.imm64(v);
        }
    }

    /// `mov r, [base+disp]`
    fn mov_rm(&mut self, r: R, base: R, disp: i32) {
        self.rex(true, r.0, 0, base.0);
        self.b(0x8B);
        self.mem(r.0, base, disp);
    }

    /// `mov [base+disp], r`
    fn mov_mr(&mut self, base: R, disp: i32, r: R) {
        self.rex(true, r.0, 0, base.0);
        self.b(0x89);
        self.mem(r.0, base, disp);
    }

    /// Two-register ALU op (dst = dst op src): opcodes with /r form.
    fn alu_rr(&mut self, opcode: &[u8], dst: R, src: R) {
        self.rex(true, dst.0, 0, src.0);
        self.code.extend_from_slice(opcode);
        self.modrm_rr(dst.0, src.0);
    }

    fn add_rr(&mut self, dst: R, src: R) {
        self.alu_rr(&[0x03], dst, src);
    }

    fn sub_rr(&mut self, dst: R, src: R) {
        self.alu_rr(&[0x2B], dst, src);
    }

    fn imul_rr(&mut self, dst: R, src: R) {
        self.alu_rr(&[0x0F, 0xAF], dst, src);
    }

    fn cmp_rr(&mut self, a: R, b: R) {
        self.alu_rr(&[0x3B], a, b);
    }

    /// `add r, imm32` (sign-extended).
    fn add_ri(&mut self, r: R, imm: i32) {
        self.rex(true, 0, 0, r.0);
        if (-128..=127).contains(&imm) {
            self.b(0x83);
            self.modrm_rr(0, r.0);
            self.b(imm as u8);
        } else {
            self.b(0x81);
            self.modrm_rr(0, r.0);
            self.imm32(imm);
        }
    }

    /// `add qword [base+disp], imm32`
    fn add_mi(&mut self, base: R, disp: i32, imm: i32) {
        self.rex(true, 0, 0, base.0);
        if (-128..=127).contains(&imm) {
            self.b(0x83);
            self.mem(0, base, disp);
            self.b(imm as u8);
        } else {
            self.b(0x81);
            self.mem(0, base, disp);
            self.imm32(imm);
        }
    }

    /// `add qword [base+disp], r`
    fn add_mr(&mut self, base: R, disp: i32, r: R) {
        self.rex(true, r.0, 0, base.0);
        self.b(0x01);
        self.mem(r.0, base, disp);
    }

    fn cmp_ri(&mut self, r: R, imm: i32) {
        self.rex(true, 0, 0, r.0);
        if (-128..=127).contains(&imm) {
            self.b(0x83);
            self.modrm_rr(7, r.0);
            self.b(imm as u8);
        } else {
            self.b(0x81);
            self.modrm_rr(7, r.0);
            self.imm32(imm);
        }
    }

    fn dec_r(&mut self, r: R) {
        self.rex(true, 0, 0, r.0);
        self.b(0xFF);
        self.modrm_rr(1, r.0);
    }

    /// `dec qword [base+disp]`
    fn dec_m(&mut self, base: R, disp: i32) {
        self.rex(true, 1, 0, base.0);
        self.b(0xFF);
        self.mem(1, base, disp);
    }

    fn push_r(&mut self, r: R) {
        if r.0 >= 8 {
            self.b(0x41);
        }
        self.b(0x50 + (r.0 & 7));
    }

    fn pop_r(&mut self, r: R) {
        if r.0 >= 8 {
            self.b(0x41);
        }
        self.b(0x58 + (r.0 & 7));
    }

    /// `lea dst, [base + index*scale]`
    fn lea_sib(&mut self, dst: R, base: R, index: R, scale: u8) {
        self.rex(true, dst.0, index.0, base.0);
        self.b(0x8D);
        self.mem_sib(dst.0, base, index, scale);
    }

    // ---- control flow ----

    fn ret(&mut self) {
        self.b(0xC3);
    }

    /// Backward conditional jump to an already-emitted position: the
    /// rel32 back-edge displacement is resolved immediately.
    fn jcc_back(&mut self, cc: u8, target: usize) {
        self.b(0x0F);
        self.b(0x80 + cc);
        let rel = target as i64 - (self.here() as i64 + 4);
        self.imm32(i32::try_from(rel).expect("back-edge in range"));
    }

    /// Forward conditional jump; patch with [`Asm::land`].
    #[allow(dead_code)]
    fn jcc_fwd(&mut self, cc: u8) -> Fwd {
        self.b(0x0F);
        self.b(0x80 + cc);
        let at = self.here();
        self.imm32(0);
        Fwd(at)
    }

    /// Resolve a forward jump to land here.
    #[allow(dead_code)]
    fn land(&mut self, f: Fwd) {
        let rel = self.here() as i64 - (f.0 as i64 + 4);
        let bytes = i32::try_from(rel).expect("forward jump in range").to_le_bytes();
        self.code[f.0..f.0 + 4].copy_from_slice(&bytes);
    }

    // ---- SSE scalar / packed ----

    /// Legacy-SSE op with a memory operand: `prefix 0F op /r [base+disp]`.
    fn sse_rm(&mut self, prefix: Option<u8>, op: u8, x: X, base: R, disp: i32) {
        if let Some(p) = prefix {
            self.b(p);
        }
        self.rex(false, x.0, 0, base.0);
        self.b(0x0F);
        self.b(op);
        self.mem(x.0, base, disp);
    }

    /// Legacy-SSE op with an indexed memory operand `[base + index*scale]`.
    fn sse_rm_sib(&mut self, prefix: Option<u8>, op: u8, x: X, base: R, index: R, scale: u8) {
        if let Some(p) = prefix {
            self.b(p);
        }
        self.rex(false, x.0, index.0, base.0);
        self.b(0x0F);
        self.b(op);
        self.mem_sib(x.0, base, index, scale);
    }

    /// Legacy-SSE register-register op.
    fn sse_rr(&mut self, prefix: Option<u8>, op: u8, dst: X, src: X) {
        if let Some(p) = prefix {
            self.b(p);
        }
        self.rex(false, dst.0, 0, src.0);
        self.b(0x0F);
        self.b(op);
        self.modrm_rr(dst.0, src.0);
    }

    fn movsd_rm(&mut self, x: X, base: R, disp: i32) {
        self.sse_rm(Some(0xF2), 0x10, x, base, disp);
    }

    fn movsd_mr(&mut self, base: R, disp: i32, x: X) {
        self.sse_rm(Some(0xF2), 0x11, x, base, disp);
    }

    fn movss_rm(&mut self, x: X, base: R, disp: i32) {
        self.sse_rm(Some(0xF3), 0x10, x, base, disp);
    }

    fn movss_mr(&mut self, base: R, disp: i32, x: X) {
        self.sse_rm(Some(0xF3), 0x11, x, base, disp);
    }

    fn cvtss2sd_rr(&mut self, dst: X, src: X) {
        self.sse_rr(Some(0xF3), 0x5A, dst, src);
    }

    fn cvtsd2ss_rr(&mut self, dst: X, src: X) {
        self.sse_rr(Some(0xF2), 0x5A, dst, src);
    }

    /// `cvtsi2sd x, r64`
    fn cvtsi2sd(&mut self, x: X, r: R) {
        self.b(0xF2);
        self.rex(true, x.0, 0, r.0);
        self.b(0x0F);
        self.b(0x2A);
        self.modrm_rr(x.0, r.0);
    }

    /// Round an f64 in `x` through f32 (`as f32 as f64`).
    fn round32(&mut self, x: X) {
        self.cvtsd2ss_rr(x, x);
        self.cvtss2sd_rr(x, x);
    }

    // ---- VEX (AVX) ----

    /// 3-byte VEX prefix. `r`/`x`/`b` are the *full* register numbers
    /// (bit 3 is extracted), `mm` the opcode map (1=0F, 2=0F38),
    /// `pp` the mandatory-prefix code (0=none, 1=66, 2=F3, 3=F2).
    fn vex(&mut self, r: u8, xi: u8, b: u8, mm: u8, w: bool, vvvv: u8, l256: bool, pp: u8) {
        self.b(0xC4);
        self.b(((!(r >> 3) & 1) << 7) | ((!(xi >> 3) & 1) << 6) | ((!(b >> 3) & 1) << 5) | mm);
        self.b(((w as u8) << 7) | ((!vvvv & 0xF) << 3) | ((l256 as u8) << 2) | pp);
    }

    /// VEX op, `dst, vvvv_src, [base+disp]` (map 0F). `src1` is a plain
    /// register *number* (the helper 1's-complements it); pass 0 when the
    /// instruction ignores vvvv — that encodes the mandatory 1111.
    fn vex_rm(&mut self, pp: u8, op: u8, dst: X, src1: u8, base: R, disp: i32) {
        self.vex(dst.0, 0, base.0, 1, false, src1, true, pp);
        self.b(op);
        self.mem(dst.0, base, disp);
    }

    fn vex_rr(&mut self, pp: u8, op: u8, dst: X, src1: u8, src2: X) {
        self.vex(dst.0, 0, src2.0, 1, false, src1, true, pp);
        self.b(op);
        self.modrm_rr(dst.0, src2.0);
    }

    /// VEX op, `dst, vvvv_src, [base + index*scale]` (map 0F).
    fn vex_rm_sib(&mut self, pp: u8, op: u8, dst: X, src1: u8, base: R, index: R, scale: u8) {
        self.vex(dst.0, index.0, base.0, 1, false, src1, true, pp);
        self.b(op);
        self.mem_sib(dst.0, base, index, scale);
    }

    /// `vbroadcastsd/ss ymm, [base]` (map 0F38, W0).
    fn vbroadcast(&mut self, op: u8, dst: X, base: R) {
        self.vbroadcast_m(op, dst, base, 0);
    }

    /// `vbroadcastsd/ss ymm, [base+disp]` (map 0F38, W0).
    fn vbroadcast_m(&mut self, op: u8, dst: X, base: R, disp: i32) {
        self.vex(dst.0, 0, base.0, 2, false, 0, true, 1);
        self.b(op);
        self.mem(dst.0, base, disp);
    }

    /// `vfmadd231pd ymm_dst, ymm_src1, [base]`: dst = src1*mem + dst.
    fn vfmadd231pd_rm(&mut self, dst: X, src1: u8, base: R) {
        self.vex(dst.0, 0, base.0, 2, true, src1, true, 1);
        self.b(0xB8);
        self.mem(dst.0, base, 0);
    }

    fn vzeroupper(&mut self) {
        self.b(0xC5);
        self.b(0xF8);
        self.b(0x77);
    }
}

// ------------------------------------------------------------ nest checking

fn reject<T>(msg: impl Into<String>) -> Result<T, String> {
    Err(msg.into())
}

fn float_slot(dts: &[DType], slot: u16) -> Result<DType, String> {
    match dts[slot as usize] {
        dt @ (DType::F32 | DType::F64) => Ok(dt),
        other => reject(format!("integer-typed buffer ({other:?})")),
    }
}

/// Is this instruction in the infallible, bit-exact JIT subset?
fn check_instr(i: &Instr, dts: &[DType]) -> Result<(), String> {
    match i {
        Instr::IConst(..) | Instr::FConst(..) | Instr::IToF(..) | Instr::IToF32(..) => Ok(()),
        Instr::F32Round(..) | Instr::FMulAdd { .. } => Ok(()),
        Instr::IBin(op, ..) => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => Ok(()),
            // Div/FloorDiv/FloorMod can fail; Min/Max are cheap enough
            // that the VM handles the (rare) nests using them.
            other => reject(format!("integer op {other:?}")),
        },
        Instr::FBin(op, ..) | Instr::FBin32(op, ..) => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => Ok(()),
            // minsd/maxsd NaN and ±0 semantics differ from Rust's
            // f64::min/max; floor ops need roundsd (SSE4.1) — rejected.
            other => reject(format!("float op {other:?}")),
        },
        Instr::Call1(Intrinsic::Sqrt, ..) => Ok(()),
        Instr::Call1(intr, ..) | Instr::Call2(intr, ..) => {
            reject(format!("intrinsic {intr:?}"))
        }
        Instr::Load(_, slot, _) | Instr::Store(slot, _, _) => {
            float_slot(dts, *slot).map(|_| ())
        }
        Instr::Bound { .. } => reject("runtime bounds check"),
        Instr::StoreChecked { .. } => reject("checked store"),
        // cvttsd2si saturation differs from Rust's `as i64`; FBool and
        // the compare/select family need NaN-faithful flag handling —
        // all left to the VM.
        Instr::FToI(..) => reject("float-to-int cast"),
        Instr::FBool(..)
        | Instr::ICmp(..)
        | Instr::FCmp(..)
        | Instr::And(..)
        | Instr::Or(..)
        | Instr::Not(..)
        | Instr::ISel(..)
        | Instr::FSel(..) => reject("compare/select"),
    }
}

fn check_code(code: &[Instr], dts: &[DType]) -> Result<(), String> {
    code.iter().try_for_each(|i| check_instr(i, dts))
}

/// Is this item compilable as (part of) a native nest?
fn check_item(item: &Item, dts: &[DType]) -> Result<(), String> {
    match item {
        Item::Code(c) => check_code(c, dts),
        Item::Loop {
            min, extent, body, ..
        } => {
            if min.checked_add(*extent).is_none() {
                return reject("loop bound overflow");
            }
            body.items.iter().try_for_each(|it| check_item(it, dts))
        }
        Item::StridedLoop {
            extent, pre, body, ..
        } => {
            if *extent < 1 {
                return reject("empty strided loop");
            }
            check_code(pre, dts)?;
            check_code(body, dts)
        }
        Item::MulAddLoop {
            extent,
            pre,
            dst,
            a,
            b,
            ..
        } => {
            if *extent < 1 {
                return reject("empty microkernel loop");
            }
            check_code(pre, dts)?;
            for acc in [dst, a, b] {
                float_slot(dts, acc.slot)?;
                let esize = if dts[acc.slot as usize] == DType::F64 { 8 } else { 4 };
                if acc.stride.checked_mul(esize).and_then(|v| i32::try_from(v).ok()).is_none() {
                    return reject("microkernel stride out of range");
                }
            }
            Ok(())
        }
        Item::If { .. } => reject("conditional"),
        Item::JitCall { .. } => reject("already compiled"),
    }
}

// ------------------------------------------------------------ nest codegen

/// Hand-rolled x86-64 backend (the only native backend today; the
/// [`CodegenBackend`] trait keeps aarch64/Cranelift additive).
#[derive(Debug, Clone)]
pub struct X86Backend {
    /// Emit packed-SIMD main loops at all (microkernels *and* proven
    /// vectorized strided loops). Off forces the fully scalar tier —
    /// bit-identical output, every vector site counted under the
    /// `simd-disabled` reason. Controlled by the `TVM_JIT_SIMD`
    /// environment variable in [`X86Backend::detect`] (default on).
    pub simd: bool,
    /// Use VEX-256 (4×f64 / 8×f32) vectors instead of SSE2 128-bit
    /// ones. Detected at construction.
    pub avx: bool,
    /// Allow single-rounded `vfmadd231pd` in f64 microkernels. **Not
    /// bit-exact** with the VM's two-rounding contract — off by
    /// default and never enabled on the differential or ladder paths.
    pub allow_fma: bool,
    /// FMA units present (gates `allow_fma` actually emitting FMA).
    pub fma_available: bool,
}

impl X86Backend {
    /// Detect host features; bit-exact defaults. `TVM_JIT_SIMD=0`
    /// forces the scalar tier.
    pub fn detect() -> X86Backend {
        X86Backend {
            simd: !matches!(
                std::env::var("TVM_JIT_SIMD").as_deref(),
                Ok("0") | Ok("false") | Ok("off")
            ),
            avx: std::arch::is_x86_feature_detected!("avx"),
            allow_fma: false,
            fma_available: std::arch::is_x86_feature_detected!("fma"),
        }
    }

    /// SSE2-only variant (what a pre-AVX host would produce); used by
    /// tests to cover both vector paths on one machine.
    pub fn sse2_only() -> X86Backend {
        X86Backend {
            simd: true,
            avx: false,
            allow_fma: false,
            fma_available: false,
        }
    }

    /// Fully scalar variant (the `TVM_JIT_SIMD=0` tier, pinned
    /// programmatically); used by tests and the bench binaries to
    /// measure the packed tier's speedup on one machine.
    pub fn scalar_only() -> X86Backend {
        X86Backend {
            simd: false,
            ..X86Backend::detect()
        }
    }

    /// `(f64, f32)` packed lane widths this configuration emits.
    fn lanes(&self) -> (u32, u32) {
        if !self.simd {
            (1, 1)
        } else if self.avx {
            (4, 8)
        } else {
            (2, 4)
        }
    }
}

impl CodegenBackend for X86Backend {
    fn name(&self) -> &'static str {
        "x86_64"
    }

    fn jit_compile(&self, cf: &CompiledFunc) -> Result<CompiledFunc, CompileError> {
        let dts: Vec<DType> = cf
            .params
            .iter()
            .map(|p| p.dtype)
            .chain(cf.allocs.iter().map(|(_, dt)| *dt))
            .collect();
        let mut asm = Asm::new();
        let mut entries: Vec<usize> = Vec::new();
        let mut first_reason: Option<String> = None;
        let mut simd = SimdReport::default();
        let body = rewrite_block(
            &cf.body,
            &dts,
            self,
            &mut asm,
            &mut entries,
            &mut first_reason,
            &mut simd,
        );
        if entries.is_empty() {
            let why = first_reason.unwrap_or_else(|| "no loop nest in function".into());
            return Err(CompileError(format!("no jittable loop nest: {why}")));
        }
        let bytes = asm.code.len();
        let buf = ExecBuf::from_code(&asm.code)?;
        let program = JitProgram {
            buf,
            entries,
            bytes,
            simd,
        };
        Ok(CompiledFunc {
            body,
            jit: Some(Arc::new(program)),
            ..cf.clone()
        })
    }

    fn vector_widths(&self) -> (u32, u32) {
        self.lanes()
    }
}

/// Replace every maximal jittable loop nest with a [`Item::JitCall`],
/// recursing into loops and conditionals that are not jittable as a
/// whole so inner nests still compile.
#[allow(clippy::too_many_arguments)]
fn rewrite_block(
    b: &Block,
    dts: &[DType],
    opts: &X86Backend,
    asm: &mut Asm,
    entries: &mut Vec<usize>,
    first_reason: &mut Option<String>,
    simd: &mut SimdReport,
) -> Block {
    let items = b
        .items
        .iter()
        .map(|item| match item {
            Item::Loop { .. } | Item::StridedLoop { .. } | Item::MulAddLoop { .. } => {
                // A nest holding a proven-parallel loop stays in
                // bytecode: jitting it whole would run the loop
                // sequentially inside the nest and silently lose pool
                // dispatch. Recursing below still compiles the serial
                // nests *inside* the parallel body — jitted entries are
                // sealed-RX and take their register files as arguments,
                // so worker-thread chunk VMs call them reentrantly.
                let verdict = if contains_proven_parallel(item) {
                    Err("parallel loop kept in bytecode for pool dispatch".to_string())
                } else {
                    check_item(item, dts)
                };
                match verdict {
                    Ok(()) => {
                        let entry = asm.here();
                        let mut nc = NestCompiler {
                            asm,
                            dts,
                            opts,
                            simd,
                        };
                        nc.emit_item(item);
                        nc.asm.ret();
                        entries.push(entry);
                        Item::JitCall {
                            entry: entries.len() - 1,
                        }
                    }
                    Err(why) => {
                        first_reason.get_or_insert(why);
                        match item {
                            // A rejected outer loop may still hold
                            // jittable inner nests.
                            Item::Loop {
                                var,
                                min,
                                extent,
                                body,
                                kind,
                            } => Item::Loop {
                                var: *var,
                                min: *min,
                                extent: *extent,
                                body: rewrite_block(
                                    body,
                                    dts,
                                    opts,
                                    asm,
                                    entries,
                                    first_reason,
                                    simd,
                                ),
                                kind: *kind,
                            },
                            other => other.clone(),
                        }
                    }
                }
            }
            Item::If { cond, then, else_ } => Item::If {
                cond: *cond,
                then: rewrite_block(then, dts, opts, asm, entries, first_reason, simd),
                else_: else_
                    .as_ref()
                    .map(|e| rewrite_block(e, dts, opts, asm, entries, first_reason, simd)),
            },
            other => other.clone(),
        })
        .collect();
    Block { items }
}

/// Does this item contain (or is it) a `Parallel` loop the analyzer
/// proved race-free with enough iterations to split? Such loops must
/// remain bytecode `Item::Loop`s so the VM can dispatch them to the
/// worker pool. `StridedLoop`/`MulAddLoop` never qualify: the block
/// optimizer refuses to convert dispatchable parallel loops.
fn contains_proven_parallel(item: &Item) -> bool {
    match item {
        Item::Loop {
            extent, body, kind, ..
        } => {
            (matches!(kind, LoopKind::Parallel { proven: true }) && *extent >= 2)
                || body.items.iter().any(contains_proven_parallel)
        }
        Item::If { then, else_, .. } => {
            then.items.iter().any(contains_proven_parallel)
                || else_
                    .as_ref()
                    .is_some_and(|e| e.items.iter().any(contains_proven_parallel))
        }
        _ => false,
    }
}

/// Offset of register `r` inside its (8-byte-element) register file.
fn off(r: Reg) -> i32 {
    (r as i32) * 8
}

struct NestCompiler<'a> {
    asm: &'a mut Asm,
    dts: &'a [DType],
    opts: &'a X86Backend,
    simd: &'a mut SimdReport,
}

/// Where a loop-invariant packed register gets its (broadcast) value.
enum InvSrc {
    /// A body `FConst` hoisted out of the loop: materialise the bits in
    /// the destination freg's slot (unobservable post-loop; the scalar
    /// tail re-executes the `FConst`) and broadcast from there.
    Const { dst: Reg, v: f64 },
    /// An freg defined outside the loop body (f64 mode only — an
    /// external freg holds a full f64, which native-f32 lanes can't
    /// represent): broadcast from its register-file slot.
    Freg(Reg),
    /// A stride-0 `Load`: the address register is never bumped, so the
    /// element is the same every iteration. Hoisting it above the
    /// loop's stores is sound *because* the loop is proven race-free:
    /// any store hitting the loaded element would be a cross-iteration
    /// read/write dependence the analyzer flags.
    Load { dst: Reg, slot: u16, addr: Reg },
}

/// k-iterations fused per trip of a jammed microkernel (the
/// "unroll-and-jam" depth: one destination load/store feeds this many
/// multiply-accumulate steps).
const JAM: i64 = 4;
/// Destination vectors kept live per jammed j-trip (the register-tile
/// width: independent accumulator chains that hide the add latency).
const JAM_U: usize = 4;
/// Accumulator registers for the jammed j-trip (X6/X8/X10/X12).
const JAM_ACC: [X; JAM_U] = [X(6), X(8), X(10), X(12)];
/// Product scratch registers paired with [`JAM_ACC`] (X7/X9/X11/X13).
const JAM_SCR: [X; JAM_U] = [X(7), X(9), X(11), X(13)];

/// Validated unroll-and-jam plan for a serial loop whose body is only
/// per-iteration address code plus one parallel-pattern microkernel
/// with a loop-invariant destination row. See
/// [`NestCompiler::plan_jam`] for the eligibility proof obligations.
struct JamPlan<'p> {
    /// The jammed ("k") loop's variable register.
    kvar: Reg,
    /// Its inclusive start.
    kmin: i64,
    /// Its trip count (≥ [`JAM`]).
    kextent: i64,
    /// Straight-line body code preceding the microkernel (address math).
    code: &'p [Instr],
    /// The microkernel's own prelude.
    pre: &'p [Instr],
    /// Destination operand (stride 1, address k-invariant).
    dst: SlotAccess,
    /// The stride-1 factor operand (varies along j).
    vec: SlotAccess,
    /// The stride-0 factor operand (the per-k broadcast scalar).
    inv: SlotAccess,
    /// Whether the invariant factor is the multiply's *first* operand
    /// (`a`), preserving the VM's NaN-payload operand order.
    inv_first: bool,
    /// f64 (pd) vs native-f32 (ps) mode.
    f64m: bool,
    /// Packed lane count for this mode.
    lanes: i64,
    /// The microkernel's ("j") trip count (≥ `lanes`).
    extent: i64,
}

/// Validated vectorization plan for one proven `StridedLoop` body.
struct PackedPlan {
    /// f64 (pd, 2/4 lanes) vs native-f32 (ps, 4/8 lanes) mode.
    f64m: bool,
    /// Emitted lane count (AVX doubles the planner's base width).
    lanes: i64,
    /// freg → xmm assignment (X0..X14; X15 stays scratch).
    xmap: HashMap<Reg, X>,
    /// Pre-loop invariant broadcasts, in first-use order.
    inv: Vec<InvSrc>,
    /// fregs whose defining instruction was hoisted (consts and
    /// stride-0 loads): skipped in the packed body.
    hoisted: HashSet<Reg>,
}

impl NestCompiler<'_> {
    fn emit_item(&mut self, item: &Item) {
        match item {
            Item::Code(c) => c.iter().for_each(|i| self.emit_instr(i)),
            Item::Loop {
                var,
                min,
                extent,
                body,
                ..
            } => {
                if *extent < 1 {
                    return;
                }
                if let Some(plan) = self.plan_jam(item) {
                    let done = (plan.kextent / JAM) * JAM;
                    let rem = plan.kextent - done;
                    self.emit_jammed(&plan);
                    if rem > 0 {
                        // Leftover k iterations run through the plain
                        // templates, continuing where the jammed groups
                        // left the loop variable.
                        self.emit_item(&Item::Loop {
                            var: *var,
                            min: *min + done,
                            extent: rem,
                            body: body.clone(),
                            kind: LoopKind::Serial,
                        });
                    }
                    return;
                }
                let end = min + extent;
                self.asm.mov_ri(RAX, *min);
                self.asm.mov_mr(RDI, off(*var), RAX);
                let top = self.asm.here();
                for it in &body.items {
                    self.emit_item(it);
                }
                self.asm.mov_rm(RAX, RDI, off(*var));
                self.asm.add_ri(RAX, 1);
                self.asm.mov_mr(RDI, off(*var), RAX);
                if end as i32 as i64 == end {
                    self.asm.cmp_ri(RAX, end as i32);
                } else {
                    self.asm.mov_ri(RCX, end);
                    self.asm.cmp_rr(RAX, RCX);
                }
                self.asm.jcc_back(CC_L, top);
            }
            Item::StridedLoop {
                extent,
                pre,
                bumps,
                body,
                kind,
                lanes,
            } => {
                pre.iter().for_each(|i| self.emit_instr(i));
                match self.plan_packed(*extent, bumps, body, kind, *lanes) {
                    Ok(plan) => {
                        self.simd.packed(false);
                        self.emit_packed_strided(*extent, bumps, body, &plan);
                    }
                    Err(reason) => {
                        self.simd.scalar(reason);
                        self.emit_scalar_strided(*extent, bumps, body);
                    }
                }
            }
            Item::MulAddLoop {
                extent,
                pre,
                dst,
                a,
                b,
                round32,
            } => {
                pre.iter().for_each(|i| self.emit_instr(i));
                self.emit_muladd(*extent, dst, a, b, *round32);
            }
            // Checked away before codegen.
            Item::If { .. } | Item::JitCall { .. } => unreachable!("rejected by check_item"),
        }
    }

    fn emit_instr(&mut self, i: &Instr) {
        let a = &mut *self.asm;
        match *i {
            Instr::IConst(d, v) => {
                a.mov_ri(RAX, v);
                a.mov_mr(RDI, off(d), RAX);
            }
            Instr::FConst(d, v) => {
                a.mov_ri(RAX, v.to_bits() as i64);
                a.mov_mr(RSI, off(d), RAX);
            }
            Instr::IToF(d, s) => {
                a.mov_rm(RAX, RDI, off(s));
                a.cvtsi2sd(X0, RAX);
                a.movsd_mr(RSI, off(d), X0);
            }
            Instr::IToF32(d, s) => {
                a.mov_rm(RAX, RDI, off(s));
                a.cvtsi2sd(X0, RAX);
                a.round32(X0);
                a.movsd_mr(RSI, off(d), X0);
            }
            Instr::F32Round(d, s) => {
                a.movsd_rm(X0, RSI, off(s));
                a.round32(X0);
                a.movsd_mr(RSI, off(d), X0);
            }
            Instr::IBin(op, d, x, y) => {
                a.mov_rm(RAX, RDI, off(x));
                a.mov_rm(RCX, RDI, off(y));
                match op {
                    BinOp::Add => a.add_rr(RAX, RCX),
                    BinOp::Sub => a.sub_rr(RAX, RCX),
                    BinOp::Mul => a.imul_rr(RAX, RCX),
                    _ => unreachable!("rejected by check_instr"),
                }
                a.mov_mr(RDI, off(d), RAX);
            }
            Instr::FBin(op, d, x, y) | Instr::FBin32(op, d, x, y) => {
                let r32 = matches!(i, Instr::FBin32(..));
                a.movsd_rm(X0, RSI, off(x));
                let opc = match op {
                    BinOp::Add => 0x58,
                    BinOp::Mul => 0x59,
                    BinOp::Sub => 0x5C,
                    BinOp::Div => 0x5E,
                    _ => unreachable!("rejected by check_instr"),
                };
                a.sse_rm(Some(0xF2), opc, X0, RSI, off(y));
                if r32 {
                    a.round32(X0);
                }
                a.movsd_mr(RSI, off(d), X0);
            }
            Instr::FMulAdd {
                dst,
                add,
                a: fa,
                b: fb,
                round32,
            } => {
                a.movsd_rm(X0, RSI, off(fa));
                a.sse_rm(Some(0xF2), 0x59, X0, RSI, off(fb)); // mulsd
                if round32 {
                    a.round32(X0);
                }
                a.movsd_rm(X1, RSI, off(add));
                a.sse_rr(Some(0xF2), 0x58, X1, X0); // addsd: add + m
                if round32 {
                    a.round32(X1);
                }
                a.movsd_mr(RSI, off(dst), X1);
            }
            Instr::Call1(Intrinsic::Sqrt, d, x, round) => {
                a.movsd_rm(X0, RSI, off(x));
                a.sse_rr(Some(0xF2), 0x51, X0, X0); // sqrtsd
                if round {
                    a.round32(X0);
                }
                a.movsd_mr(RSI, off(d), X0);
            }
            Instr::Load(d, slot, addr) => {
                a.mov_rm(RAX, RDI, off(addr));
                a.mov_rm(RCX, RDX, (slot as i32) * 8);
                if self.dts[slot as usize] == DType::F64 {
                    a.sse_rm_sib(Some(0xF2), 0x10, X0, RCX, RAX, 8); // movsd
                } else {
                    a.sse_rm_sib(Some(0xF3), 0x10, X0, RCX, RAX, 4); // movss
                    a.cvtss2sd_rr(X0, X0);
                }
                a.movsd_mr(RSI, off(d), X0);
            }
            Instr::Store(slot, addr, val) => {
                a.mov_rm(RAX, RDI, off(addr));
                a.mov_rm(RCX, RDX, (slot as i32) * 8);
                a.movsd_rm(X0, RSI, off(val));
                if self.dts[slot as usize] == DType::F64 {
                    a.sse_rm_sib(Some(0xF2), 0x11, X0, RCX, RAX, 8);
                } else {
                    a.cvtsd2ss_rr(X0, X0);
                    a.sse_rm_sib(Some(0xF3), 0x11, X0, RCX, RAX, 4);
                }
            }
            _ => unreachable!("rejected by check_instr"),
        }
    }

    /// The scalar strided-loop template (also the packed path's tail:
    /// after the packed main loop the strided registers sit exactly
    /// `vec_iters·lanes` iterations in, so this continues bit-for-bit).
    fn emit_scalar_strided(&mut self, extent: i64, bumps: &[(Reg, i64)], body: &[Instr]) {
        self.asm.mov_ri(R11, extent);
        let top = self.asm.here();
        body.iter().for_each(|i| self.emit_instr(i));
        self.emit_bumps(bumps, 1);
        self.asm.dec_r(R11);
        self.asm.jcc_back(CC_NZ, top);
    }

    /// Advance every strided register by `scale` iterations' worth.
    fn emit_bumps(&mut self, bumps: &[(Reg, i64)], scale: i64) {
        for &(r, s) in bumps {
            let s = s.checked_mul(scale).expect("checked in plan_packed");
            if s as i32 as i64 == s {
                self.asm.add_mi(RDI, off(r), s as i32);
            } else {
                self.asm.mov_ri(RAX, s);
                self.asm.add_mr(RDI, off(r), RAX);
            }
        }
    }

    /// Decide whether a strided-loop body can run packed, and how. The
    /// `Err` string is the per-reason scalar-fallback tag tallied in
    /// [`SimdReport`]; together with the packed count these partition
    /// every strided vector site.
    fn plan_packed(
        &self,
        extent: i64,
        bumps: &[(Reg, i64)],
        body: &[Instr],
        kind: &LoopKind,
        planned: u8,
    ) -> Result<PackedPlan, &'static str> {
        if !self.opts.simd {
            return Err("simd-disabled");
        }
        // Packing reorders iterations across lanes, so it is gated on
        // the dependence analyzer's race-freedom proof exactly like
        // pool dispatch is for `Parallel` loops.
        match kind {
            LoopKind::Vectorized { proven: true } => {}
            LoopKind::Vectorized { proven: false } => return Err("unproven-vectorize"),
            _ => return Err("no-vectorize-annotation"),
        }
        // Mode: the uniform dtype of every load/store in the body.
        let mut mode: Option<DType> = None;
        for i in body {
            if let Instr::Load(_, slot, _) | Instr::Store(slot, _, _) = i {
                let dt = self.dts[*slot as usize];
                match mode {
                    None => mode = Some(dt),
                    Some(m) if m != dt => return Err("mixed-precision"),
                    _ => {}
                }
            }
        }
        let Some(dt) = mode else {
            return Err("body-op");
        };
        let f64m = dt == DType::F64;
        let base: i64 = if f64m { 2 } else { 4 };
        let lanes = if self.opts.avx { base * 2 } else { base };
        if extent < lanes {
            return Err("short-extent");
        }
        if i64::from(planned) < base {
            // The block optimizer plans the base vector width on every
            // strided item; disagreeing here would mean the item was
            // built outside `compile_optimized`.
            return Err("planner-scalar");
        }
        for &(_, s) in bumps {
            if s.checked_mul(lanes).is_none() {
                return Err("stride-overflow");
            }
        }
        let strides: HashMap<Reg, i64> = bumps.iter().copied().collect();
        let mut plan = PackedPlan {
            f64m,
            lanes,
            xmap: HashMap::new(),
            inv: Vec::new(),
            hoisted: HashSet::new(),
        };
        // fregs defined by the body vs. read from outside it.
        let mut defined: HashSet<Reg> = HashSet::new();
        let mut external: HashSet<Reg> = HashSet::new();
        fn alloc(xmap: &mut HashMap<Reg, X>, r: Reg) -> Result<X, &'static str> {
            if let Some(&x) = xmap.get(&r) {
                return Ok(x);
            }
            // X15 stays scratch for in-body multiply-add temporaries.
            if xmap.len() >= 15 {
                return Err("register-pressure");
            }
            let x = X(xmap.len() as u8);
            xmap.insert(r, x);
            Ok(x)
        }
        macro_rules! def {
            ($d:expr) => {{
                if defined.contains(&$d) {
                    return Err("freg-reassign");
                }
                if external.contains(&$d) {
                    return Err("loop-carried-freg");
                }
                defined.insert($d);
                alloc(&mut plan.xmap, $d)?;
            }};
        }
        macro_rules! read {
            ($r:expr) => {{
                if !defined.contains(&$r) && !external.contains(&$r) {
                    // Defined outside the loop: loop-invariant (the
                    // body holds no integer/float redefinitions — they
                    // were rejected above or live in `pre`). Broadcast
                    // once. Native-f32 lanes can't hold an arbitrary
                    // f64, so this is an f64-mode-only trick.
                    if !f64m {
                        return Err("operand-precision");
                    }
                    external.insert($r);
                    alloc(&mut plan.xmap, $r)?;
                    plan.inv.push(InvSrc::Freg($r));
                }
            }};
        }
        for i in body {
            match *i {
                Instr::FConst(d, v) => {
                    if !f64m && f64::from(v as f32) != v {
                        return Err("const-precision");
                    }
                    def!(d);
                    plan.hoisted.insert(d);
                    plan.inv.push(InvSrc::Const { dst: d, v });
                }
                Instr::Load(d, slot, addr) => match strides.get(&addr).copied().unwrap_or(0) {
                    1 => def!(d),
                    0 => {
                        def!(d);
                        plan.hoisted.insert(d);
                        plan.inv.push(InvSrc::Load { dst: d, slot, addr });
                    }
                    _ => return Err("load-stride"),
                },
                Instr::Store(_, addr, val) => {
                    if strides.get(&addr).copied().unwrap_or(0) != 1 {
                        return Err("store-stride");
                    }
                    read!(val);
                }
                Instr::FBin(op, d, x, y) | Instr::FBin32(op, d, x, y) => {
                    if f64m != matches!(i, Instr::FBin(..)) {
                        return Err("mixed-precision");
                    }
                    debug_assert!(matches!(
                        op,
                        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div
                    ));
                    read!(x);
                    read!(y);
                    def!(d);
                }
                Instr::FMulAdd {
                    dst,
                    add,
                    a,
                    b,
                    round32,
                } => {
                    if round32 == f64m {
                        return Err("rounding-mismatch");
                    }
                    read!(add);
                    read!(a);
                    read!(b);
                    def!(dst);
                }
                Instr::F32Round(d, s) => {
                    if f64m {
                        return Err("mixed-precision");
                    }
                    read!(s);
                    def!(d);
                }
                Instr::Call1(Intrinsic::Sqrt, d, x, round) => {
                    if round == f64m {
                        return Err("rounding-mismatch");
                    }
                    read!(x);
                    def!(d);
                }
                _ => return Err("body-op"),
            }
        }
        Ok(plan)
    }

    /// Broadcast the scalar at `[base+disp]` across every lane of `x`.
    fn bcast(&mut self, f64m: bool, x: X, base: R, disp: i32) {
        if self.opts.avx {
            self.asm
                .vbroadcast_m(if f64m { 0x19 } else { 0x18 }, x, base, disp);
        } else if f64m {
            self.asm.movsd_rm(x, base, disp);
            self.asm.sse_rr(Some(0x66), 0x14, x, x); // unpcklpd
        } else {
            self.asm.movss_rm(x, base, disp);
            self.asm.sse_rr(None, 0xC6, x, x); // shufps x,x,0
            self.asm.b(0x00);
        }
    }

    /// Packed main loop + scalar epilogue for a proven vectorized
    /// strided loop. Lane `j` of every packed instruction is iteration
    /// `i+j`'s scalar instruction: instructions execute in body order
    /// at full width, so each lane sees the exact scalar operation
    /// sequence, every store writes a disjoint element (stride-1,
    /// proven race-free), and per-element IEEE rounding is preserved.
    fn emit_packed_strided(
        &mut self,
        extent: i64,
        bumps: &[(Reg, i64)],
        body: &[Instr],
        plan: &PackedPlan,
    ) {
        let f64m = plan.f64m;
        let esize: u8 = if f64m { 8 } else { 4 };
        let pp: u8 = if f64m { 1 } else { 0 };
        let sse_p: Option<u8> = if f64m { Some(0x66) } else { None };
        let vec_iters = extent / plan.lanes;
        let tail = extent % plan.lanes;
        for src in &plan.inv {
            match *src {
                InvSrc::Const { dst, v } => {
                    let bits = if f64m {
                        v.to_bits() as i64
                    } else {
                        i64::from((v as f32).to_bits())
                    };
                    // Materialise through the destination freg's slot:
                    // post-loop register state is unobservable and the
                    // scalar epilogue re-executes the `FConst` first.
                    self.asm.mov_ri(RAX, bits);
                    self.asm.mov_mr(RSI, off(dst), RAX);
                    self.bcast(f64m, plan.xmap[&dst], RSI, off(dst));
                }
                InvSrc::Freg(r) => self.bcast(f64m, plan.xmap[&r], RSI, off(r)),
                InvSrc::Load { dst, slot, addr } => {
                    self.asm.mov_rm(RAX, RDI, off(addr));
                    self.asm.mov_rm(RCX, RDX, (slot as i32) * 8);
                    self.asm.lea_sib(RAX, RCX, RAX, esize);
                    self.bcast(f64m, plan.xmap[&dst], RAX, 0);
                }
            }
        }
        self.asm.mov_ri(R11, vec_iters);
        let top = self.asm.here();
        for i in body {
            self.emit_packed_instr(i, plan, pp, sse_p, esize);
        }
        self.emit_bumps(bumps, plan.lanes);
        self.asm.dec_r(R11);
        self.asm.jcc_back(CC_NZ, top);
        if self.opts.avx {
            self.asm.vzeroupper();
        }
        if tail > 0 {
            self.emit_scalar_strided(tail, bumps, body);
        }
    }

    /// One body instruction at full vector width (see
    /// [`NestCompiler::emit_packed_strided`] for the lane contract).
    fn emit_packed_instr(
        &mut self,
        i: &Instr,
        plan: &PackedPlan,
        pp: u8,
        sse_p: Option<u8>,
        esize: u8,
    ) {
        let x = |r: Reg| plan.xmap[&r];
        match *i {
            // Hoisted to a pre-loop broadcast.
            Instr::FConst(..) => {}
            Instr::Load(d, slot, addr) => {
                if plan.hoisted.contains(&d) {
                    return; // stride-0: broadcast pre-loop
                }
                self.asm.mov_rm(RAX, RDI, off(addr));
                self.asm.mov_rm(RCX, RDX, (slot as i32) * 8);
                if self.opts.avx {
                    self.asm.vex_rm_sib(pp, 0x10, x(d), 0, RCX, RAX, esize);
                } else {
                    self.asm.sse_rm_sib(sse_p, 0x10, x(d), RCX, RAX, esize);
                }
            }
            Instr::Store(slot, addr, val) => {
                self.asm.mov_rm(RAX, RDI, off(addr));
                self.asm.mov_rm(RCX, RDX, (slot as i32) * 8);
                if self.opts.avx {
                    self.asm.vex_rm_sib(pp, 0x11, x(val), 0, RCX, RAX, esize);
                } else {
                    self.asm.sse_rm_sib(sse_p, 0x11, x(val), RCX, RAX, esize);
                }
            }
            Instr::FBin(op, d, a, b) | Instr::FBin32(op, d, a, b) => {
                let opc = match op {
                    BinOp::Add => 0x58,
                    BinOp::Mul => 0x59,
                    BinOp::Sub => 0x5C,
                    BinOp::Div => 0x5E,
                    _ => unreachable!("rejected by plan_packed"),
                };
                if self.opts.avx {
                    self.asm.vex_rr(pp, opc, x(d), x(a).0, x(b));
                } else {
                    // `d` is single-assignment-fresh, so distinct from
                    // `a`/`b`: a movap*-then-op pair is safe.
                    self.asm.sse_rr(sse_p, 0x28, x(d), x(a));
                    self.asm.sse_rr(sse_p, opc, x(d), x(b));
                }
            }
            Instr::FMulAdd { dst, add, a, b, .. } => {
                if self.opts.avx {
                    self.asm.vex_rr(pp, 0x59, XSCRATCH, x(a).0, x(b));
                    self.asm.vex_rr(pp, 0x58, x(dst), x(add).0, XSCRATCH);
                } else {
                    self.asm.sse_rr(sse_p, 0x28, XSCRATCH, x(a));
                    self.asm.sse_rr(sse_p, 0x59, XSCRATCH, x(b));
                    self.asm.sse_rr(sse_p, 0x28, x(dst), x(add));
                    self.asm.sse_rr(sse_p, 0x58, x(dst), XSCRATCH);
                }
            }
            Instr::F32Round(d, s) => {
                // Native-f32 lanes are already rounded: a plain copy.
                if self.opts.avx {
                    self.asm.vex_rr(pp, 0x28, x(d), 0, x(s));
                } else {
                    self.asm.sse_rr(sse_p, 0x28, x(d), x(s));
                }
            }
            Instr::Call1(Intrinsic::Sqrt, d, s, _) => {
                if self.opts.avx {
                    self.asm.vex_rr(pp, 0x51, x(d), 0, x(s));
                } else {
                    self.asm.sse_rr(sse_p, 0x51, x(d), x(s));
                }
            }
            _ => unreachable!("rejected by plan_packed"),
        }
    }

    /// Materialise the three element pointers of a microkernel into
    /// `r8` (dst), `r9` (a), `r10` (b).
    fn muladd_pointers(&mut self, dst: &SlotAccess, sa: &SlotAccess, sb: &SlotAccess) {
        for (acc, preg) in [(dst, R8), (sa, R9), (sb, R10)] {
            let esize = if self.dts[acc.slot as usize] == DType::F64 { 8 } else { 4 };
            self.asm.mov_rm(RAX, RDI, off(acc.addr));
            self.asm.mov_rm(preg, RDX, (acc.slot as i32) * 8);
            self.asm.lea_sib(preg, preg, RAX, esize);
        }
    }

    fn emit_muladd(
        &mut self,
        extent: i64,
        dst: &SlotAccess,
        sa: &SlotAccess,
        sb: &SlotAccess,
        round32: bool,
    ) {
        self.muladd_pointers(dst, sa, sb);
        let dt = self.dts[dst.slot as usize];
        let uniform = self.dts[sa.slot as usize] == dt && self.dts[sb.slot as usize] == dt;
        let matched_rounding =
            (dt == DType::F64 && !round32) || (dt == DType::F32 && round32);
        let disjoint = dst.slot != sa.slot && dst.slot != sb.slot;
        let fast = uniform && matched_rounding && disjoint;
        let strides = (dst.stride, sa.stride, sb.stride);
        if fast && strides.0 == 0 && strides.1 == 1 && strides.2 == 1 {
            // Serial accumulation order is observable: always scalar.
            self.simd.scalar("reduction-chain");
            self.muladd_reduction(extent, dt);
            return;
        }
        if fast && matches!(strides, (1, 0, 1) | (1, 1, 0) | (1, 1, 1)) {
            self.muladd_parallel(extent, dt, strides);
            return;
        }
        self.simd.scalar(if !uniform {
            "mixed-dtype"
        } else if !matched_rounding {
            "rounding-mismatch"
        } else if !disjoint {
            "aliased-dst"
        } else {
            "stride-pattern"
        });
        self.muladd_generic(extent, dst, sa, sb, round32);
    }

    /// Dot-product pattern `(sd, sa, sb) = (0, 1, 1)`: a single serial
    /// accumulator chain, kept scalar to preserve accumulation order.
    fn muladd_reduction(&mut self, extent: i64, dt: DType) {
        let a = &mut *self.asm;
        let (mov_rm, mov_mr, mul, add, step): (
            fn(&mut Asm, X, R, i32),
            fn(&mut Asm, R, i32, X),
            u8,
            u8,
            i32,
        ) = if dt == DType::F64 {
            (Asm::movsd_rm, Asm::movsd_mr, 0x59, 0x58, 8)
        } else {
            (Asm::movss_rm, Asm::movss_mr, 0x59, 0x58, 4)
        };
        let p = if dt == DType::F64 { Some(0xF2) } else { Some(0xF3) };
        mov_rm(a, X1, R8, 0); // acc = dst[d0]
        a.mov_ri(R11, extent);
        let top = a.here();
        mov_rm(a, X0, R9, 0);
        a.sse_rm(p, mul, X0, R10, 0); // x * y
        a.sse_rr(p, add, X1, X0); // acc += m
        a.add_ri(R9, step);
        a.add_ri(R10, step);
        a.dec_r(R11);
        a.jcc_back(CC_NZ, top);
        mov_mr(a, R8, 0, X1);
    }

    /// Parallel patterns `(1,0,1)`, `(1,1,0)`, `(1,1,1)`: every element
    /// is an independent multiply+add, so lane-splitting preserves
    /// per-element rounding exactly — vectorize with AVX-256 when
    /// available, SSE2 128-bit otherwise, scalar tail. When at least
    /// four packed iterations remain, a register-tiled 4× unroll-and-jam
    /// main loop runs first: four accumulator blocks in distinct
    /// registers per trip, amortising the loop overhead and letting the
    /// independent mul/add chains overlap. Elements stay independent
    /// with per-element rounding, so tiling is bit-neutral.
    fn muladd_parallel(&mut self, extent: i64, dt: DType, strides: (i64, i64, i64)) {
        let f64p = dt == DType::F64;
        let esize: i32 = if f64p { 8 } else { 4 };
        let lanes: i64 = if self.opts.avx {
            if f64p { 4 } else { 8 }
        } else if f64p {
            2
        } else {
            4
        };
        // `TVM_JIT_SIMD=0` forces the (bit-identical) scalar tail to
        // carry every iteration.
        let (vec_iters, tail) = if self.opts.simd {
            (extent / lanes, extent % lanes)
        } else {
            (0, extent)
        };
        let pp: u8 = if f64p { 1 } else { 0 }; // VEX pp for pd/ps
        let sse_p: Option<u8> = if f64p { Some(0x66) } else { None };
        let fma = self.opts.allow_fma && self.opts.fma_available && self.opts.avx && f64p;
        // Register tiling keeps the plain mul+add pipeline; the FMA
        // variant stays on the single-vector loop.
        let blocks = if fma { 0 } else { vec_iters / 4 };
        let single = vec_iters - blocks * 4;
        if self.opts.simd {
            self.simd.packed(blocks > 0);
        } else {
            self.simd.scalar("simd-disabled");
        }
        if vec_iters > 0 {
            // Broadcast the loop-invariant factor once (X2).
            match strides {
                (1, 0, 1) | (1, 1, 0) => {
                    let inv = if strides.1 == 0 { R9 } else { R10 };
                    if self.opts.avx {
                        self.asm.vbroadcast(if f64p { 0x19 } else { 0x18 }, X2, inv);
                    } else if f64p {
                        self.asm.movsd_rm(X2, inv, 0);
                        self.asm.sse_rr(Some(0x66), 0x14, X2, X2); // unpcklpd
                    } else {
                        self.asm.movss_rm(X2, inv, 0);
                        self.asm.sse_rr(None, 0xC6, X2, X2); // shufps x2,x2,0
                        self.asm.b(0x00);
                    }
                }
                _ => {}
            }
        }
        let vstep = (lanes as i32) * esize;
        if blocks > 0 {
            self.asm.mov_ri(R11, blocks);
            let top = self.asm.here();
            // Products first (X4..X7), in the multiply's operand order.
            for k in 0..4i32 {
                let m = X(4 + k as u8);
                let disp = k * vstep;
                match strides {
                    (1, 0, 1) => {
                        if self.opts.avx {
                            self.asm.vex_rm(pp, 0x59, m, X2.0, R10, disp);
                        } else {
                            self.asm.sse_rr(sse_p, 0x28, m, X2);
                            self.asm.sse_rm(sse_p, 0x10, X3, R10, disp);
                            self.asm.sse_rr(sse_p, 0x59, m, X3);
                        }
                    }
                    (1, 1, 0) => {
                        if self.opts.avx {
                            self.asm.vex_rm(pp, 0x10, m, 0, R9, disp);
                            self.asm.vex_rr(pp, 0x59, m, m.0, X2);
                        } else {
                            self.asm.sse_rm(sse_p, 0x10, m, R9, disp);
                            self.asm.sse_rr(sse_p, 0x59, m, X2);
                        }
                    }
                    _ => {
                        if self.opts.avx {
                            self.asm.vex_rm(pp, 0x10, m, 0, R9, disp);
                            self.asm.vex_rm(pp, 0x59, m, m.0, R10, disp);
                        } else {
                            self.asm.sse_rm(sse_p, 0x10, m, R9, disp);
                            self.asm.sse_rm(sse_p, 0x10, X3, R10, disp);
                            self.asm.sse_rr(sse_p, 0x59, m, X3);
                        }
                    }
                }
            }
            // Then the four dst accumulator blocks (X8..X11).
            for k in 0..4i32 {
                let (m, d) = (X(4 + k as u8), X(8 + k as u8));
                let disp = k * vstep;
                if self.opts.avx {
                    self.asm.vex_rm(pp, 0x10, d, 0, R8, disp);
                    self.asm.vex_rr(pp, 0x58, d, d.0, m);
                    self.asm.vex_rm(pp, 0x11, d, 0, R8, disp);
                } else {
                    self.asm.sse_rm(sse_p, 0x10, d, R8, disp);
                    self.asm.sse_rr(sse_p, 0x58, d, m);
                    self.asm.sse_rm(sse_p, 0x11, d, R8, disp);
                }
            }
            self.asm.add_ri(R8, 4 * vstep);
            if strides.1 == 1 {
                self.asm.add_ri(R9, 4 * vstep);
            }
            if strides.2 == 1 {
                self.asm.add_ri(R10, 4 * vstep);
            }
            self.asm.dec_r(R11);
            self.asm.jcc_back(CC_NZ, top);
        }
        if single > 0 {
            self.asm.mov_ri(R11, single);
            let top = self.asm.here();
            // X0 = a * b in the multiply's operand order.
            match strides {
                (1, 0, 1) => {
                    // x = a (invariant), y = b[i]. Legacy-SSE arithmetic
                    // requires aligned memory operands, so go through an
                    // unaligned movup* into a scratch register.
                    if self.opts.avx {
                        self.asm.vex_rm(pp, 0x59, X0, X2.0, R10, 0);
                    } else {
                        self.asm.sse_rr(sse_p, 0x28, X0, X2); // movap* x0, x2
                        self.asm.sse_rm(sse_p, 0x10, X3, R10, 0);
                        self.asm.sse_rr(sse_p, 0x59, X0, X3);
                    }
                }
                (1, 1, 0) => {
                    // x = a[i], y = b (invariant)
                    if self.opts.avx {
                        self.asm.vex_rm(pp, 0x10, X0, 0, R9, 0); // vmovup*
                        self.asm.vex_rr(pp, 0x59, X0, X0.0, X2);
                    } else {
                        self.asm.sse_rm(sse_p, 0x10, X0, R9, 0); // movup*
                        self.asm.sse_rr(sse_p, 0x59, X0, X2);
                    }
                }
                _ => {
                    // (1,1,1): x = a[i], y = b[i]
                    if self.opts.avx {
                        self.asm.vex_rm(pp, 0x10, X0, 0, R9, 0);
                        self.asm.vex_rm(pp, 0x59, X0, X0.0, R10, 0);
                    } else {
                        self.asm.sse_rm(sse_p, 0x10, X0, R9, 0);
                        self.asm.sse_rm(sse_p, 0x10, X3, R10, 0);
                        self.asm.sse_rr(sse_p, 0x59, X0, X3);
                    }
                }
            }
            if fma && strides == (1, 0, 1) {
                // dst += a*b single-rounded (opt-in, not bit-exact):
                // reload dst and fuse instead of the mul+add pair.
                self.asm.vex_rm(pp, 0x10, X1, 0, R8, 0);
                self.asm.vfmadd231pd_rm(X1, X2.0, R10);
            } else if self.opts.avx {
                self.asm.vex_rm(pp, 0x10, X1, 0, R8, 0);
                self.asm.vex_rr(pp, 0x58, X1, X1.0, X0); // dst + m
            } else {
                self.asm.sse_rm(sse_p, 0x10, X1, R8, 0);
                self.asm.sse_rr(sse_p, 0x58, X1, X0);
            }
            if self.opts.avx {
                self.asm.vex_rm(pp, 0x11, X1, 0, R8, 0);
            } else {
                self.asm.sse_rm(sse_p, 0x11, X1, R8, 0);
            }
            self.asm.add_ri(R8, vstep);
            if strides.1 == 1 {
                self.asm.add_ri(R9, vstep);
            }
            if strides.2 == 1 {
                self.asm.add_ri(R10, vstep);
            }
            self.asm.dec_r(R11);
            self.asm.jcc_back(CC_NZ, top);
        }
        if vec_iters > 0 && self.opts.avx {
            self.asm.vzeroupper();
        }
        if tail > 0 {
            let p: Option<u8> = if f64p { Some(0xF2) } else { Some(0xF3) };
            self.asm.mov_ri(R11, tail);
            let top = self.asm.here();
            // Scalar per-element op in native precision (bit-exact for
            // both f64 and — via Figueroa double-rounding innocuity —
            // native f32).
            if f64p {
                self.asm.movsd_rm(X0, R9, 0);
            } else {
                self.asm.movss_rm(X0, R9, 0);
            }
            self.asm.sse_rm(p, 0x59, X0, R10, 0);
            if f64p {
                self.asm.movsd_rm(X1, R8, 0);
            } else {
                self.asm.movss_rm(X1, R8, 0);
            }
            self.asm.sse_rr(p, 0x58, X1, X0);
            if f64p {
                self.asm.movsd_mr(R8, 0, X1);
            } else {
                self.asm.movss_mr(R8, 0, X1);
            }
            self.asm.add_ri(R8, esize);
            if strides.1 == 1 {
                self.asm.add_ri(R9, esize);
            }
            if strides.2 == 1 {
                self.asm.add_ri(R10, esize);
            }
            self.asm.dec_r(R11);
            self.asm.jcc_back(CC_NZ, top);
        }
    }

    /// Decide whether a serial loop is a jammable microkernel wrapper:
    /// `for k { addr-code; dst[j] += inv_k * vec_k[j] }` where the
    /// destination row is the same for every `k`. Jamming [`JAM`]
    /// consecutive `k` iterations into one fused `j` sweep then loads
    /// and stores each `dst[j]` once per group instead of once per `k`
    /// — and stays bit-exact *by construction*: every memory cell sees
    /// the identical operation sequence (`(((d+m₀)+m₁)+m₂)+m₃`, each
    /// multiply and add individually rounded, `k` ascending), only the
    /// interleaving across distinct cells changes.
    ///
    /// Eligibility (each check discharges a soundness obligation):
    /// - body is exactly `[Code?, MulAddLoop]` with parallel stride
    ///   pattern `(1,0,1)` or `(1,1,0)`, uniform dtype, matched
    ///   rounding, and a destination slot distinct from both factors;
    /// - the address code is memory-free (pure register arithmetic),
    ///   so running four iterations' worth up front has no observable
    ///   effect beyond the register file, which sees the exact scalar
    ///   write sequence;
    /// - it never writes the loop variable (the jam advances it);
    /// - a dataflow pass proves `dst.addr` independent of `k`,
    ///   treating loop-carried register reads as varying.
    fn plan_jam<'p>(&self, item: &'p Item) -> Option<JamPlan<'p>> {
        if !self.opts.simd || self.opts.allow_fma {
            return None;
        }
        let Item::Loop {
            var,
            min,
            extent: kextent,
            body,
            ..
        } = item
        else {
            return None;
        };
        if *kextent < JAM {
            return None;
        }
        let (code, ma): (&[Instr], &Item) = match body.items.as_slice() {
            [ma @ Item::MulAddLoop { .. }] => (&[], ma),
            [Item::Code(c), ma @ Item::MulAddLoop { .. }] => (c.as_slice(), ma),
            _ => return None,
        };
        let Item::MulAddLoop {
            extent,
            pre,
            dst,
            a,
            b,
            round32,
        } = ma
        else {
            unreachable!("matched above")
        };
        let dt = self.dts[dst.slot as usize];
        if self.dts[a.slot as usize] != dt || self.dts[b.slot as usize] != dt {
            return None;
        }
        let f64m = dt == DType::F64;
        if f64m == *round32 {
            return None;
        }
        if dst.slot == a.slot || dst.slot == b.slot {
            return None;
        }
        let (inv, vec, inv_first) = match (dst.stride, a.stride, b.stride) {
            (1, 0, 1) => (*a, *b, true),
            (1, 1, 0) => (*b, *a, false),
            _ => return None,
        };
        let lanes: i64 = if self.opts.avx {
            if f64m {
                4
            } else {
                8
            }
        } else if f64m {
            2
        } else {
            4
        };
        if *extent < lanes {
            return None;
        }
        // Setup-code scan: pure register arithmetic only, loop variable
        // never overwritten. (`FToI` — the only other ireg writer in
        // the ISA — is outside the JIT subset and cannot appear here.)
        let mut written: HashSet<Reg> = HashSet::new();
        for i in code.iter().chain(pre.iter()) {
            match i {
                Instr::IConst(d, _) | Instr::IBin(_, d, _, _) => {
                    if d == var {
                        return None;
                    }
                    written.insert(*d);
                }
                Instr::FConst(..)
                | Instr::IToF(..)
                | Instr::IToF32(..)
                | Instr::F32Round(..)
                | Instr::FBin(..)
                | Instr::FBin32(..)
                | Instr::FMulAdd { .. }
                | Instr::Call1(..) => {}
                _ => return None,
            }
        }
        // k-invariance of the destination address: a register is
        // varying if it derives from the loop variable or from a
        // loop-carried value (read of a setup-written register before
        // its write this iteration).
        let mut varying: HashSet<Reg> = HashSet::new();
        varying.insert(*var);
        let mut seen: HashSet<Reg> = HashSet::new();
        for i in code.iter().chain(pre.iter()) {
            match i {
                Instr::IConst(d, _) => {
                    seen.insert(*d);
                    varying.remove(d);
                }
                Instr::IBin(_, d, x, y) => {
                    let tainted = |r: &Reg| {
                        varying.contains(r) || (written.contains(r) && !seen.contains(r))
                    };
                    if tainted(x) || tainted(y) {
                        varying.insert(*d);
                    } else {
                        varying.remove(d);
                    }
                    seen.insert(*d);
                }
                _ => {}
            }
        }
        if varying.contains(&dst.addr) {
            return None;
        }
        Some(JamPlan {
            kvar: *var,
            kmin: *min,
            kextent: *kextent,
            code,
            pre,
            dst: *dst,
            vec,
            inv,
            inv_first,
            f64m,
            lanes,
            extent: *extent,
        })
    }

    /// Emit `m ← inv_k · vec_k[j..]` (packed, operand order preserved)
    /// into `scr`, then `acc ← acc + m`.
    fn jam_step(&mut self, plan: &JamPlan, jk: usize, bptr: R, disp: i32, acc: X, scr: X) {
        let pp: u8 = if plan.f64m { 1 } else { 0 };
        let sse_p: Option<u8> = if plan.f64m { Some(0x66) } else { None };
        let bc = X(2 + jk as u8);
        if self.opts.avx {
            if plan.inv_first {
                self.asm.vex_rm(pp, 0x59, scr, bc.0, bptr, disp);
            } else {
                self.asm.vex_rm(pp, 0x10, scr, 0, bptr, disp);
                self.asm.vex_rr(pp, 0x59, scr, scr.0, bc);
            }
            self.asm.vex_rr(pp, 0x58, acc, acc.0, scr);
        } else {
            // Legacy-SSE arithmetic needs aligned memory operands, so
            // the stride-1 factor goes through an unaligned movup*.
            if plan.inv_first {
                self.asm.sse_rr(sse_p, 0x28, scr, bc);
                self.asm.sse_rm(sse_p, 0x10, XSCRATCH, bptr, disp);
                self.asm.sse_rr(sse_p, 0x59, scr, XSCRATCH);
            } else {
                self.asm.sse_rm(sse_p, 0x10, scr, bptr, disp);
                self.asm.sse_rr(sse_p, 0x59, scr, bc);
            }
            self.asm.sse_rr(sse_p, 0x58, acc, scr);
        }
    }

    /// The jammed microkernel (see [`NestCompiler::plan_jam`] for the
    /// shape and its proof obligations). Per group of [`JAM`] `k`
    /// iterations: run each iteration's address code in scalar order
    /// (loop variable advanced exactly as the plain template would),
    /// broadcast its stride-0 factor into `X2..X5`, stack its stride-1
    /// pointer, then sweep `j` once — [`JAM_U`] destination vectors per
    /// trip ([`JAM_ACC`]), each receiving the four products in `k`
    /// order, stored once. Leftover vectors and the scalar tail keep
    /// the same per-element `k` sequence.
    fn emit_jammed(&mut self, plan: &JamPlan) {
        let f64m = plan.f64m;
        let esize: u8 = if f64m { 8 } else { 4 };
        let pp: u8 = if f64m { 1 } else { 0 };
        let sse_p: Option<u8> = if f64m { Some(0x66) } else { None };
        let p_sc: Option<u8> = if f64m { Some(0xF2) } else { Some(0xF3) };
        let groups = plan.kextent / JAM;
        let vstep = (plan.lanes as i32) * i32::from(esize);
        let jvecs = plan.extent / plan.lanes;
        let jtrips = jvecs / JAM_U as i64;
        let jsingle = (jvecs % JAM_U as i64) as usize;
        let jtail = plan.extent % plan.lanes;
        // One vector site, packed and register-tiled.
        self.simd.packed(true);
        // Stride-1 factor pointers for the group's four k's, k ascending.
        let bp = [R9, R10, RCX, RAX];
        self.asm.mov_ri(RAX, plan.kmin);
        self.asm.mov_mr(RDI, off(plan.kvar), RAX);
        // Every GPR is claimed below, so the group counter lives in the
        // stack's top slot (restored before returning).
        self.asm.mov_ri(RAX, groups);
        self.asm.push_r(RAX);
        let gtop = self.asm.here();
        for jk in 0..JAM as usize {
            // This k's address code, exactly as the scalar loop runs it
            // (pure register arithmetic: only RAX/RCX/X0/X1 scratch).
            for i in plan.code {
                self.emit_instr(i);
            }
            for i in plan.pre {
                self.emit_instr(i);
            }
            if jk == 0 {
                // Destination row pointer: k-invariant per the plan.
                self.asm.mov_rm(RAX, RDI, off(plan.dst.addr));
                self.asm.mov_rm(R8, RDX, (plan.dst.slot as i32) * 8);
                self.asm.lea_sib(R8, R8, RAX, esize);
            }
            self.asm.mov_rm(RAX, RDI, off(plan.inv.addr));
            self.asm.mov_rm(RCX, RDX, (plan.inv.slot as i32) * 8);
            self.asm.lea_sib(RAX, RCX, RAX, esize);
            self.bcast(f64m, X(2 + jk as u8), RAX, 0);
            self.asm.mov_rm(RAX, RDI, off(plan.vec.addr));
            self.asm.mov_rm(RCX, RDX, (plan.vec.slot as i32) * 8);
            self.asm.lea_sib(RAX, RCX, RAX, esize);
            self.asm.push_r(RAX);
            // Advance the loop variable (the scalar template's
            // post-body increment).
            self.asm.mov_rm(RAX, RDI, off(plan.kvar));
            self.asm.add_ri(RAX, 1);
            self.asm.mov_mr(RDI, off(plan.kvar), RAX);
        }
        for r in bp.iter().rev() {
            self.asm.pop_r(*r);
        }
        if jtrips > 0 {
            self.asm.mov_ri(R11, jtrips);
            let top = self.asm.here();
            for (u, acc) in JAM_ACC.iter().enumerate() {
                let disp = u as i32 * vstep;
                if self.opts.avx {
                    self.asm.vex_rm(pp, 0x10, *acc, 0, R8, disp);
                } else {
                    self.asm.sse_rm(sse_p, 0x10, *acc, R8, disp);
                }
            }
            for jk in 0..JAM as usize {
                for u in 0..JAM_U {
                    self.jam_step(plan, jk, bp[jk], u as i32 * vstep, JAM_ACC[u], JAM_SCR[u]);
                }
            }
            for (u, acc) in JAM_ACC.iter().enumerate() {
                let disp = u as i32 * vstep;
                if self.opts.avx {
                    self.asm.vex_rm(pp, 0x11, *acc, 0, R8, disp);
                } else {
                    self.asm.sse_rm(sse_p, 0x11, *acc, R8, disp);
                }
            }
            self.asm.add_ri(R8, JAM_U as i32 * vstep);
            for r in bp {
                self.asm.add_ri(r, JAM_U as i32 * vstep);
            }
            self.asm.dec_r(R11);
            self.asm.jcc_back(CC_NZ, top);
        }
        for _ in 0..jsingle {
            if self.opts.avx {
                self.asm.vex_rm(pp, 0x10, JAM_ACC[0], 0, R8, 0);
            } else {
                self.asm.sse_rm(sse_p, 0x10, JAM_ACC[0], R8, 0);
            }
            for jk in 0..JAM as usize {
                self.jam_step(plan, jk, bp[jk], 0, JAM_ACC[0], JAM_SCR[0]);
            }
            if self.opts.avx {
                self.asm.vex_rm(pp, 0x11, JAM_ACC[0], 0, R8, 0);
            } else {
                self.asm.sse_rm(sse_p, 0x11, JAM_ACC[0], R8, 0);
            }
            self.asm.add_ri(R8, vstep);
            for r in bp {
                self.asm.add_ri(r, vstep);
            }
        }
        if jtail > 0 {
            if self.opts.avx {
                // Keep the low-lane scalar tail out of dirty-upper
                // stalls; the next group rebroadcasts X2..X5 anyway.
                self.asm.vzeroupper();
            }
            self.asm.mov_ri(R11, jtail);
            let top = self.asm.here();
            if f64m {
                self.asm.movsd_rm(X0, R8, 0);
            } else {
                self.asm.movss_rm(X0, R8, 0);
            }
            for (jk, bptr) in bp.iter().enumerate() {
                let bc = X(2 + jk as u8);
                // m = inv·vec[j] in operand order (low lane of the
                // broadcast), then d = d + m — per-op rounding intact.
                if plan.inv_first {
                    self.asm.sse_rr(sse_p, 0x28, X1, bc);
                    self.asm.sse_rm(p_sc, 0x59, X1, *bptr, 0);
                } else {
                    if f64m {
                        self.asm.movsd_rm(X1, *bptr, 0);
                    } else {
                        self.asm.movss_rm(X1, *bptr, 0);
                    }
                    self.asm.sse_rr(p_sc, 0x59, X1, bc);
                }
                self.asm.sse_rr(p_sc, 0x58, X0, X1);
            }
            if f64m {
                self.asm.movsd_mr(R8, 0, X0);
            } else {
                self.asm.movss_mr(R8, 0, X0);
            }
            self.asm.add_ri(R8, i32::from(esize));
            for r in bp {
                self.asm.add_ri(r, i32::from(esize));
            }
            self.asm.dec_r(R11);
            self.asm.jcc_back(CC_NZ, top);
        }
        self.asm.dec_m(RSP, 0);
        self.asm.jcc_back(CC_NZ, gtop);
        self.asm.pop_r(RAX);
        if self.opts.avx {
            self.asm.vzeroupper();
        }
    }

    /// Generic element-order path: mixed dtypes, arbitrary strides, or
    /// an aliased destination. Replicates the VM's generic loop (load
    /// dst, load a, load b, round-per-op multiply-add, store) exactly,
    /// including its strict ascending element order.
    fn muladd_generic(
        &mut self,
        extent: i64,
        dst: &SlotAccess,
        sa: &SlotAccess,
        sb: &SlotAccess,
        round32: bool,
    ) {
        let dt_d = self.dts[dst.slot as usize];
        let dt_a = self.dts[sa.slot as usize];
        let dt_b = self.dts[sb.slot as usize];
        let esize = |dt: DType| if dt == DType::F64 { 8i64 } else { 4 };
        self.asm.mov_ri(R11, extent);
        let top = self.asm.here();
        self.load_widen(X1, R8, dt_d); // c
        self.load_widen(X0, R9, dt_a); // x
        self.load_widen(X2, R10, dt_b); // y
        self.asm.sse_rr(Some(0xF2), 0x59, X0, X2); // m = x*y (f64)
        if round32 {
            self.asm.round32(X0);
        }
        self.asm.sse_rr(Some(0xF2), 0x58, X1, X0); // s = c + m
        if round32 {
            self.asm.round32(X1);
        }
        self.store_narrow(R8, dt_d, X1);
        for (acc, preg, dt) in [(dst, R8, dt_d), (sa, R9, dt_a), (sb, R10, dt_b)] {
            let step = acc.stride * esize(dt);
            if step != 0 {
                self.asm.add_ri(preg, step as i32); // range-checked in check_item
            }
        }
        self.asm.dec_r(R11);
        self.asm.jcc_back(CC_NZ, top);
    }

    /// `x ← f64(*ptr)` honoring the slot dtype (f32 widens).
    fn load_widen(&mut self, x: X, ptr: R, dt: DType) {
        if dt == DType::F64 {
            self.asm.movsd_rm(x, ptr, 0);
        } else {
            self.asm.movss_rm(x, ptr, 0);
            self.asm.cvtss2sd_rr(x, x);
        }
    }

    /// `*ptr ← x` honoring the slot dtype (f32 narrows, like
    /// `set_f64_linear`'s `as f32`).
    fn store_narrow(&mut self, ptr: R, dt: DType, x: X) {
        if dt == DType::F64 {
            self.asm.movsd_mr(ptr, 0, x);
        } else {
            self.asm.cvtsd2ss_rr(x, x);
            self.asm.movss_mr(ptr, 0, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_code(code: &[u8], iregs: &mut [i64], fregs: &mut [f64], slots: &[*mut u8]) {
        let buf = ExecBuf::from_code(code).expect("map");
        let f: super::super::JitFn = unsafe { std::mem::transmute(buf.entry(0)) };
        unsafe { f(iregs.as_mut_ptr(), fregs.as_mut_ptr(), slots.as_ptr()) }
    }

    #[test]
    fn integer_templates_execute() {
        // iregs[2] = iregs[0] + iregs[1]; iregs[3] = iregs[0] * iregs[1]
        let mut a = Asm::new();
        let mut simd = SimdReport::default();
        let mut nc = NestCompiler {
            asm: &mut a,
            dts: &[],
            opts: &X86Backend::sse2_only(),
            simd: &mut simd,
        };
        nc.emit_instr(&Instr::IBin(BinOp::Add, 2, 0, 1));
        nc.emit_instr(&Instr::IBin(BinOp::Mul, 3, 0, 1));
        nc.emit_instr(&Instr::IConst(4, -7_000_000_000));
        a.ret();
        let mut ir = [6i64, 7, 0, 0, 0];
        let mut fr = [0f64];
        run_code(&a.code, &mut ir, &mut fr, &[]);
        assert_eq!(ir[2], 13);
        assert_eq!(ir[3], 42);
        assert_eq!(ir[4], -7_000_000_000);
    }

    #[test]
    fn float_templates_match_rust_semantics() {
        let mut a = Asm::new();
        let mut simd = SimdReport::default();
        let mut nc = NestCompiler {
            asm: &mut a,
            dts: &[],
            opts: &X86Backend::sse2_only(),
            simd: &mut simd,
        };
        nc.emit_instr(&Instr::FBin(BinOp::Div, 2, 0, 1));
        nc.emit_instr(&Instr::FBin32(BinOp::Mul, 3, 0, 1));
        nc.emit_instr(&Instr::FMulAdd {
            dst: 4,
            add: 2,
            a: 0,
            b: 1,
            round32: false,
        });
        nc.emit_instr(&Instr::Call1(Intrinsic::Sqrt, 5, 0, false));
        nc.emit_instr(&Instr::IToF32(1, 0));
        a.ret();
        let (x, y) = (1.9371823_f64, -0.3718_f64);
        let mut ir = [123456789i64, 0];
        let mut fr = [x, y, 0.0, 0.0, 0.0, 0.0];
        run_code(&a.code, &mut ir, &mut fr, &[]);
        assert_eq!(fr[2], x / y);
        assert_eq!(fr[3], (x * y) as f32 as f64);
        assert_eq!(fr[4], x / y + x * y);
        assert_eq!(fr[5], x.sqrt());
        assert_eq!(fr[1], 123456789i64 as f64 as f32 as f64);
    }

    #[test]
    fn loop_and_memory_templates_execute() {
        // for i in 2..6 { B[i] = A[i] (f32, widened/narrowed) }
        let mut av: Vec<f32> = (0..8).map(|v| v as f32 * 1.5).collect();
        let mut bv: Vec<f32> = vec![0.0; 8];
        let slots = [av.as_mut_ptr().cast::<u8>(), bv.as_mut_ptr().cast::<u8>()];
        let mut a = Asm::new();
        let dts = [DType::F32, DType::F32];
        let mut simd = SimdReport::default();
        let mut nc = NestCompiler {
            asm: &mut a,
            dts: &dts,
            opts: &X86Backend::sse2_only(),
            simd: &mut simd,
        };
        nc.emit_item(&Item::Loop {
            var: 0,
            min: 2,
            extent: 4,
            body: Block {
                items: vec![Item::Code(vec![
                    Instr::Load(0, 0, 0),
                    Instr::Store(1, 0, 0),
                ])],
            },
            kind: crate::compile::LoopKind::Serial,
        });
        a.ret();
        let mut ir = [0i64];
        let mut fr = [0f64];
        run_code(&a.code, &mut ir, &mut fr, &slots);
        assert_eq!(&bv[..2], &[0.0, 0.0]);
        assert_eq!(&bv[2..6], &av[2..6]);
        assert_eq!(&bv[6..], &[0.0, 0.0]);
        assert_eq!(ir[0], 6, "loop var left at end bound");
    }

    #[test]
    fn fma_encoding_single_rounds() {
        // The opt-in FMA path must produce f64::mul_add (single
        // rounding) — demonstrably different plumbing from the
        // bit-exact default.
        if !std::arch::is_x86_feature_detected!("fma") {
            return;
        }
        // a = b = 1+2⁻⁵², c = −(1+2⁻⁵¹): a·b = 1+2⁻⁵¹+2⁻¹⁰⁴, so the
        // two-rounding result is exactly 0 while FMA keeps the 2⁻¹⁰⁴.
        let n = 4usize;
        let one_ulp = f64::from_bits(0x3FF0000000000001);
        let c = -(1.0 + 2f64.powi(-51));
        let mut d = vec![c; n];
        let a_inv = [one_ulp];
        let mut b: Vec<f64> = vec![one_ulp; n];
        let expect: Vec<f64> = d.iter().map(|&c| a_inv[0].mul_add(b[0], c)).collect();
        let mut asm = Asm::new();
        // r8=dst, r9=a(invariant), r10=b
        asm.mov_rm(R8, RDX, 0);
        asm.mov_rm(R9, RDX, 8);
        asm.mov_rm(R10, RDX, 16);
        asm.vbroadcast(0x19, X2, R9);
        asm.vex_rm(1, 0x10, X1, 0, R8, 0);
        asm.vfmadd231pd_rm(X1, X2.0, R10);
        asm.vex_rm(1, 0x11, X1, 0, R8, 0);
        asm.vzeroupper();
        asm.ret();
        let slots = [
            d.as_mut_ptr().cast::<u8>(),
            a_inv.as_ptr() as *mut u8,
            b.as_mut_ptr().cast::<u8>(),
        ];
        let mut ir = [0i64];
        let mut fr = [0f64];
        run_code(&asm.code, &mut ir, &mut fr, &slots);
        assert_eq!(d, expect, "fused multiply-add semantics");
        // And it differs from the two-rounding contract on this input.
        let two_round = c + a_inv[0] * b[0];
        assert_ne!(d[0], two_round, "FMA must single-round");
    }
}
