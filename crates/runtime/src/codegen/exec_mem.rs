//! W^X executable code buffer.
//!
//! Lifecycle: an anonymous private mapping is created writable, the
//! emitted machine code is copied in, and the pages are flipped to
//! read+execute before any entry point escapes — the mapping is never
//! writable and executable at the same time. The mapping is unmapped on
//! drop, after the owning [`super::JitProgram`] (and thus every
//! `CompiledFunc` holding entry pointers into it) is gone.
//!
//! Implemented with raw syscalls (`mmap`/`mprotect`/`munmap`) so the
//! crate keeps its zero-external-dependency runtime: this module is only
//! compiled on `x86_64-linux`, where the syscall ABI is stable.

use crate::compile::CompileError;

const PROT_READ: i64 = 1;
const PROT_WRITE: i64 = 2;
const PROT_EXEC: i64 = 4;
const MAP_PRIVATE: i64 = 0x02;
const MAP_ANONYMOUS: i64 = 0x20;
const SYS_MMAP: i64 = 9;
const SYS_MPROTECT: i64 = 10;
const SYS_MUNMAP: i64 = 11;
const PAGE: usize = 4096;

/// Raw x86-64 Linux syscall (returns negative errno on failure).
unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
    let ret: i64;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// An immutable, executable code region.
#[derive(Debug)]
pub struct ExecBuf {
    ptr: *mut u8,
    len: usize,
}

// The region is read+execute only after construction; sharing raw
// pointers into it across threads is safe.
unsafe impl Send for ExecBuf {}
unsafe impl Sync for ExecBuf {}

impl ExecBuf {
    /// Map `code` into fresh executable pages (write, then seal to RX).
    pub fn from_code(code: &[u8]) -> Result<ExecBuf, CompileError> {
        if code.is_empty() {
            return Err(CompileError("empty code buffer".into()));
        }
        let len = code.len().div_ceil(PAGE) * PAGE;
        let ptr = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len as i64,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr < 0 {
            return Err(CompileError(format!("mmap failed (errno {})", -ptr)));
        }
        let ptr = ptr as *mut u8;
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
        }
        let rc = unsafe { syscall6(SYS_MPROTECT, ptr as i64, len as i64, PROT_READ | PROT_EXEC, 0, 0, 0) };
        if rc < 0 {
            unsafe { syscall6(SYS_MUNMAP, ptr as i64, len as i64, 0, 0, 0, 0) };
            return Err(CompileError(format!("mprotect failed (errno {})", -rc)));
        }
        Ok(ExecBuf { ptr, len })
    }

    /// Address of byte `off` inside the region.
    pub fn entry(&self, off: usize) -> *const u8 {
        debug_assert!(off < self.len);
        unsafe { self.ptr.add(off) }
    }
}

impl Drop for ExecBuf {
    fn drop(&mut self) {
        unsafe { syscall6(SYS_MUNMAP, self.ptr as i64, self.len as i64, 0, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_emitted_code() {
        // mov rax, 42; ret
        let code = [0x48, 0xC7, 0xC0, 0x2A, 0x00, 0x00, 0x00, 0xC3];
        let buf = ExecBuf::from_code(&code).expect("map");
        let f: extern "sysv64" fn() -> i64 = unsafe { std::mem::transmute(buf.entry(0)) };
        assert_eq!(f(), 42);
    }

    #[test]
    fn empty_code_is_rejected() {
        assert!(ExecBuf::from_code(&[]).is_err());
    }
}
