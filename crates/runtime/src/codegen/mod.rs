//! Native code generation behind the engine ladder.
//!
//! The [`CodegenBackend`] trait turns an already-optimized
//! [`CompiledFunc`] (strided pointer-bump loops and multiply-add
//! microkernels from [`crate::optimize`]) into one whose jittable loop
//! nests are replaced by calls into freshly emitted machine code. The
//! only native backend today is the hand-rolled x86-64 emitter in
//! [`x86_64`]; every other target gets [`NoopBackend`], which always
//! reports a [`CompileError`] so devices fall back to the optimized VM
//! — the JIT is strictly an *additional* rung, never a requirement.
//!
//! Compiled code lives in a W^X [`exec_mem::ExecBuf`] owned by the
//! [`JitProgram`]; functions are addressed by entry-point index, and
//! back-edge relocations are resolved at emission time (the buffer is
//! sealed read+execute before any pointer escapes).
//!
//! The x86-64 emitter has a packed-SIMD tier: analyzer-proven
//! vectorized strided loops and parallel-pattern mul-add microkernels
//! run as f64x2/f32x4 bodies (VEX-256 f64x4/f32x8 when AVX is
//! detected), with register-tiled unroll-and-jam main loops and scalar
//! epilogues for remainder iterations. Every vector site is accounted
//! in [`SimdStats`]: packed, or scalar with a counted reason, so
//! `packed + scalar-by-reason = total` always holds. The
//! `TVM_JIT_SIMD=0` environment toggle forces the fully scalar tier
//! (outputs are bit-identical either way, so the fingerprint does not
//! depend on it).
//!
//! Fingerprints: a JIT-mode device reports
//! [`jit_fingerprint`] = `vm/v2+tir-opt/v1+par/v1+jit/v2`, distinct from the
//! optimized VM's [`crate::optimize::engine_fingerprint`] so the
//! service's engine ladder can attribute trial records to the exact
//! engine that produced them.

use crate::compile::{CompileError, CompiledFunc};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) mod exec_mem;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod x86_64;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub use x86_64::X86Backend;

/// Version tag of the native codegen rung, appended to the optimized
/// engine fingerprint. Bump on any change to emitted code semantics.
/// v2: packed-SIMD tier (proof-gated f64x2/f32x4 strided-loop bodies,
/// register-tiled mul-add microkernels).
pub const JIT_VERSION: &str = "jit/v2";

/// Fingerprint reported by a JIT-mode device: the optimized engine's
/// fingerprint plus the codegen version.
pub fn jit_fingerprint() -> String {
    format!("{}+{}", crate::optimize::engine_fingerprint(), JIT_VERSION)
}

/// ABI of an emitted nest function: `(iregs, fregs, slot_base_ptrs)`.
/// All state stays in the VM's register files and storage buffers, so a
/// nest call is observably identical to interpreting the nest.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) type JitFn = unsafe extern "sysv64" fn(*mut i64, *mut f64, *const *mut u8);

/// Per-function packed-SIMD emission tally, produced while a backend
/// compiles one function. Every vector site (an innermost
/// `StridedLoop` or `MulAddLoop` inside a jitted nest) is recorded
/// exactly once: packed, or scalar with a reason — so
/// `packed_loops + scalar_loops == sites()` by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimdReport {
    /// Vector sites emitted with a packed main loop (scalar epilogue
    /// for remainder iterations allowed).
    pub packed_loops: u64,
    /// Subset of `packed_loops` whose main loop is register-tiled
    /// (4× unroll-and-jam accumulator blocks).
    pub tiled_loops: u64,
    /// Vector sites emitted fully scalar.
    pub scalar_loops: u64,
    /// Scalar reason → count; sums to `scalar_loops`.
    pub scalar_reasons: HashMap<String, u64>,
}

impl SimdReport {
    /// Record a packed site (`tiled` marks the register-tiled form).
    pub(crate) fn packed(&mut self, tiled: bool) {
        self.packed_loops += 1;
        if tiled {
            self.tiled_loops += 1;
        }
    }

    /// Record a scalar site with its reason.
    pub(crate) fn scalar(&mut self, reason: &str) {
        self.scalar_loops += 1;
        *self.scalar_reasons.entry(reason.to_string()).or_insert(0) += 1;
    }

    /// Total vector sites seen (packed + scalar).
    pub fn sites(&self) -> u64 {
        self.packed_loops + self.scalar_loops
    }
}

/// Executable machine code for every jitted nest of one function.
#[derive(Debug)]
pub struct JitProgram {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    pub(crate) buf: exec_mem::ExecBuf,
    /// Byte offset of each nest's entry point inside the buffer.
    pub(crate) entries: Vec<usize>,
    /// Total machine-code bytes emitted.
    pub(crate) bytes: usize,
    /// Packed-vs-scalar tally over this function's vector sites.
    pub(crate) simd: SimdReport,
}

impl JitProgram {
    /// Number of loop nests compiled to native code.
    pub fn nest_count(&self) -> usize {
        self.entries.len()
    }

    /// Total machine-code bytes emitted for this function.
    pub fn code_bytes(&self) -> usize {
        self.bytes
    }

    /// Callable entry point of nest `idx`.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    pub(crate) fn entry_fn(&self, idx: usize) -> JitFn {
        unsafe { std::mem::transmute(self.buf.entry(self.entries[idx])) }
    }

    /// Packed-vs-scalar vector-site tally for this function.
    pub fn simd_report(&self) -> &SimdReport {
        &self.simd
    }
}

/// A native code generator for optimized bytecode programs.
///
/// `jit_compile` either returns a new function in which at least one
/// loop nest has been replaced by a [`crate::compile::Item::JitCall`]
/// (holding a shared [`JitProgram`]), or a [`CompileError`] naming the
/// first reason nothing could be compiled — the caller then runs the
/// optimized VM program unchanged (fallback is never an error).
pub trait CodegenBackend: Send + Sync + std::fmt::Debug {
    /// Short target name (`"x86_64"`, `"noop"`), for stats and logs.
    fn name(&self) -> &'static str;

    /// Compile every jittable loop nest of `cf` to machine code.
    fn jit_compile(&self, cf: &CompiledFunc) -> Result<CompiledFunc, CompileError>;

    /// `(f64, f32)` packed lane widths this backend emits, in elements
    /// (1 = scalar). Purely informational — surfaced through
    /// [`SimdStats`] and the bench JSON `cpu` blocks.
    fn vector_widths(&self) -> (u32, u32) {
        (1, 1)
    }
}

/// Backend for targets without a native emitter: always falls back.
#[derive(Debug, Clone, Default)]
pub struct NoopBackend;

impl CodegenBackend for NoopBackend {
    fn name(&self) -> &'static str {
        "noop"
    }

    fn jit_compile(&self, _cf: &CompiledFunc) -> Result<CompiledFunc, CompileError> {
        Err(CompileError(
            "native codegen unsupported on this target".into(),
        ))
    }
}

/// The best backend for the build target: the x86-64 emitter on
/// x86-64 Linux, the always-fallback [`NoopBackend`] everywhere else.
pub fn default_backend() -> Arc<dyn CodegenBackend> {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        Arc::new(X86Backend::detect())
    }
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    {
        Arc::new(NoopBackend)
    }
}

/// The default backend with packed-SIMD emission forced off: scalar
/// SSE2 on x86-64 Linux, [`NoopBackend`] everywhere else. The benches
/// use it to measure the packed tier against the scalar JIT on the
/// same machine.
pub fn scalar_backend() -> Arc<dyn CodegenBackend> {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        Arc::new(X86Backend::scalar_only())
    }
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    {
        Arc::new(NoopBackend)
    }
}

/// Snapshot of JIT compile activity (see [`JitCounters`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JitStats {
    /// Functions where at least one nest compiled to native code.
    pub functions_jitted: u64,
    /// Total loop nests compiled across those functions.
    pub nests_compiled: u64,
    /// Total machine-code bytes emitted.
    pub bytes_emitted: u64,
    /// Functions that fell back entirely to the optimized VM.
    pub fallbacks: u64,
    /// Fallback reason → count, sorted by reason for stable output.
    pub fallback_reasons: Vec<(String, u64)>,
}

/// Thread-safe JIT compile counters, shared by all clones of a device.
#[derive(Debug, Default)]
pub struct JitCounters {
    functions_jitted: AtomicU64,
    nests_compiled: AtomicU64,
    bytes_emitted: AtomicU64,
    fallbacks: AtomicU64,
    reasons: Mutex<HashMap<String, u64>>,
}

impl JitCounters {
    /// A function compiled with `nests` native nests totalling `bytes`.
    pub fn record_success(&self, nests: u64, bytes: u64) {
        self.functions_jitted.fetch_add(1, Ordering::Relaxed);
        self.nests_compiled.fetch_add(nests, Ordering::Relaxed);
        self.bytes_emitted.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A function fell back to the optimized VM for `reason`.
    pub fn record_fallback(&self, reason: &str) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        let mut m = self.reasons.lock().expect("jit reason lock");
        *m.entry(reason.to_string()).or_insert(0) += 1;
    }

    /// Consistent-enough snapshot for status reporting.
    pub fn snapshot(&self) -> JitStats {
        let mut fallback_reasons: Vec<(String, u64)> = self
            .reasons
            .lock()
            .expect("jit reason lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        fallback_reasons.sort();
        JitStats {
            functions_jitted: self.functions_jitted.load(Ordering::Relaxed),
            nests_compiled: self.nests_compiled.load(Ordering::Relaxed),
            bytes_emitted: self.bytes_emitted.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            fallback_reasons,
        }
    }
}

/// Snapshot of packed-SIMD emission activity (see [`SimdCounters`]).
///
/// Invariant: `packed_loops + scalar_loops` equals the total vector
/// sites compiled, and `scalar_reasons` sums to `scalar_loops` — the
/// accounting partitions every site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimdStats {
    /// Vector sites emitted with a packed main loop.
    pub packed_loops: u64,
    /// Subset of `packed_loops` with a register-tiled main loop.
    pub tiled_loops: u64,
    /// Vector sites emitted fully scalar.
    pub scalar_loops: u64,
    /// Packed lane width for f64 sites (1 = scalar tier).
    pub f64_lanes: u32,
    /// Packed lane width for f32 sites (1 = scalar tier).
    pub f32_lanes: u32,
    /// Scalar reason → count, sorted by reason for stable output.
    pub scalar_reasons: Vec<(String, u64)>,
}

impl SimdStats {
    /// Total vector sites compiled (packed + scalar).
    pub fn sites(&self) -> u64 {
        self.packed_loops + self.scalar_loops
    }
}

/// Thread-safe packed-SIMD emission counters, shared by all clones of
/// a JIT-mode device (like [`JitCounters`]).
#[derive(Debug, Default)]
pub struct SimdCounters {
    packed_loops: AtomicU64,
    tiled_loops: AtomicU64,
    scalar_loops: AtomicU64,
    f64_lanes: AtomicU64,
    f32_lanes: AtomicU64,
    reasons: Mutex<HashMap<String, u64>>,
}

impl SimdCounters {
    /// Fold one function's emission report into the shared counters.
    pub fn record_report(&self, r: &SimdReport) {
        self.packed_loops.fetch_add(r.packed_loops, Ordering::Relaxed);
        self.tiled_loops.fetch_add(r.tiled_loops, Ordering::Relaxed);
        self.scalar_loops.fetch_add(r.scalar_loops, Ordering::Relaxed);
        if !r.scalar_reasons.is_empty() {
            let mut m = self.reasons.lock().expect("simd reason lock");
            for (k, v) in &r.scalar_reasons {
                *m.entry(k.clone()).or_insert(0) += v;
            }
        }
    }

    /// Record the backend's packed lane widths (idempotent).
    pub fn set_lanes(&self, f64_lanes: u32, f32_lanes: u32) {
        self.f64_lanes.store(f64_lanes as u64, Ordering::Relaxed);
        self.f32_lanes.store(f32_lanes as u64, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot for status reporting.
    pub fn snapshot(&self) -> SimdStats {
        let mut scalar_reasons: Vec<(String, u64)> = self
            .reasons
            .lock()
            .expect("simd reason lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        scalar_reasons.sort();
        SimdStats {
            packed_loops: self.packed_loops.load(Ordering::Relaxed),
            tiled_loops: self.tiled_loops.load(Ordering::Relaxed),
            scalar_loops: self.scalar_loops.load(Ordering::Relaxed),
            f64_lanes: self.f64_lanes.load(Ordering::Relaxed) as u32,
            f32_lanes: self.f32_lanes.load(Ordering::Relaxed) as u32,
            scalar_reasons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_backend_always_falls_back() {
        let f = tvm_te::placeholder([2], tvm_te::DType::F32, "A");
        let b = tvm_te::compute([2], "B", |i| f.at(&[i[0].clone()]) + 1i64);
        let s = tvm_te::Schedule::create(&[b.clone()]);
        let pf = tvm_tir::lower::lower(&s, &[f, b], "idf");
        let cf = crate::compile::compile(&pf).expect("compile");
        assert!(NoopBackend.jit_compile(&cf).is_err());
    }

    #[test]
    fn counters_snapshot_is_sorted_and_complete() {
        let c = JitCounters::default();
        c.record_success(3, 512);
        c.record_success(1, 128);
        c.record_fallback("zebra reason");
        c.record_fallback("alpha reason");
        c.record_fallback("alpha reason");
        let s = c.snapshot();
        assert_eq!(s.functions_jitted, 2);
        assert_eq!(s.nests_compiled, 4);
        assert_eq!(s.bytes_emitted, 640);
        assert_eq!(s.fallbacks, 3);
        assert_eq!(
            s.fallback_reasons,
            vec![("alpha reason".into(), 2), ("zebra reason".into(), 1)]
        );
    }

    #[test]
    fn jit_fingerprint_extends_engine_fingerprint() {
        let fp = jit_fingerprint();
        assert!(fp.starts_with(&crate::optimize::engine_fingerprint()));
        assert!(fp.ends_with(JIT_VERSION));
        assert_ne!(fp, crate::optimize::engine_fingerprint());
    }
}
