//! Native code generation behind the engine ladder.
//!
//! The [`CodegenBackend`] trait turns an already-optimized
//! [`CompiledFunc`] (strided pointer-bump loops and multiply-add
//! microkernels from [`crate::optimize`]) into one whose jittable loop
//! nests are replaced by calls into freshly emitted machine code. The
//! only native backend today is the hand-rolled x86-64 emitter in
//! [`x86_64`]; every other target gets [`NoopBackend`], which always
//! reports a [`CompileError`] so devices fall back to the optimized VM
//! — the JIT is strictly an *additional* rung, never a requirement.
//!
//! Compiled code lives in a W^X [`exec_mem::ExecBuf`] owned by the
//! [`JitProgram`]; functions are addressed by entry-point index, and
//! back-edge relocations are resolved at emission time (the buffer is
//! sealed read+execute before any pointer escapes).
//!
//! Fingerprints: a JIT-mode device reports
//! [`jit_fingerprint`] = `vm/v2+tir-opt/v1+par/v1+jit/v1`, distinct from the
//! optimized VM's [`crate::optimize::engine_fingerprint`] so the
//! service's engine ladder can attribute trial records to the exact
//! engine that produced them.

use crate::compile::{CompileError, CompiledFunc};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) mod exec_mem;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod x86_64;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub use x86_64::X86Backend;

/// Version tag of the native codegen rung, appended to the optimized
/// engine fingerprint. Bump on any change to emitted code semantics.
pub const JIT_VERSION: &str = "jit/v1";

/// Fingerprint reported by a JIT-mode device: the optimized engine's
/// fingerprint plus the codegen version.
pub fn jit_fingerprint() -> String {
    format!("{}+{}", crate::optimize::engine_fingerprint(), JIT_VERSION)
}

/// ABI of an emitted nest function: `(iregs, fregs, slot_base_ptrs)`.
/// All state stays in the VM's register files and storage buffers, so a
/// nest call is observably identical to interpreting the nest.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) type JitFn = unsafe extern "sysv64" fn(*mut i64, *mut f64, *const *mut u8);

/// Executable machine code for every jitted nest of one function.
#[derive(Debug)]
pub struct JitProgram {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    pub(crate) buf: exec_mem::ExecBuf,
    /// Byte offset of each nest's entry point inside the buffer.
    pub(crate) entries: Vec<usize>,
    /// Total machine-code bytes emitted.
    pub(crate) bytes: usize,
}

impl JitProgram {
    /// Number of loop nests compiled to native code.
    pub fn nest_count(&self) -> usize {
        self.entries.len()
    }

    /// Total machine-code bytes emitted for this function.
    pub fn code_bytes(&self) -> usize {
        self.bytes
    }

    /// Callable entry point of nest `idx`.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    pub(crate) fn entry_fn(&self, idx: usize) -> JitFn {
        unsafe { std::mem::transmute(self.buf.entry(self.entries[idx])) }
    }
}

/// A native code generator for optimized bytecode programs.
///
/// `jit_compile` either returns a new function in which at least one
/// loop nest has been replaced by a [`crate::compile::Item::JitCall`]
/// (holding a shared [`JitProgram`]), or a [`CompileError`] naming the
/// first reason nothing could be compiled — the caller then runs the
/// optimized VM program unchanged (fallback is never an error).
pub trait CodegenBackend: Send + Sync + std::fmt::Debug {
    /// Short target name (`"x86_64"`, `"noop"`), for stats and logs.
    fn name(&self) -> &'static str;

    /// Compile every jittable loop nest of `cf` to machine code.
    fn jit_compile(&self, cf: &CompiledFunc) -> Result<CompiledFunc, CompileError>;
}

/// Backend for targets without a native emitter: always falls back.
#[derive(Debug, Clone, Default)]
pub struct NoopBackend;

impl CodegenBackend for NoopBackend {
    fn name(&self) -> &'static str {
        "noop"
    }

    fn jit_compile(&self, _cf: &CompiledFunc) -> Result<CompiledFunc, CompileError> {
        Err(CompileError(
            "native codegen unsupported on this target".into(),
        ))
    }
}

/// The best backend for the build target: the x86-64 emitter on
/// x86-64 Linux, the always-fallback [`NoopBackend`] everywhere else.
pub fn default_backend() -> Arc<dyn CodegenBackend> {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        Arc::new(X86Backend::detect())
    }
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    {
        Arc::new(NoopBackend)
    }
}

/// Snapshot of JIT compile activity (see [`JitCounters`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JitStats {
    /// Functions where at least one nest compiled to native code.
    pub functions_jitted: u64,
    /// Total loop nests compiled across those functions.
    pub nests_compiled: u64,
    /// Total machine-code bytes emitted.
    pub bytes_emitted: u64,
    /// Functions that fell back entirely to the optimized VM.
    pub fallbacks: u64,
    /// Fallback reason → count, sorted by reason for stable output.
    pub fallback_reasons: Vec<(String, u64)>,
}

/// Thread-safe JIT compile counters, shared by all clones of a device.
#[derive(Debug, Default)]
pub struct JitCounters {
    functions_jitted: AtomicU64,
    nests_compiled: AtomicU64,
    bytes_emitted: AtomicU64,
    fallbacks: AtomicU64,
    reasons: Mutex<HashMap<String, u64>>,
}

impl JitCounters {
    /// A function compiled with `nests` native nests totalling `bytes`.
    pub fn record_success(&self, nests: u64, bytes: u64) {
        self.functions_jitted.fetch_add(1, Ordering::Relaxed);
        self.nests_compiled.fetch_add(nests, Ordering::Relaxed);
        self.bytes_emitted.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A function fell back to the optimized VM for `reason`.
    pub fn record_fallback(&self, reason: &str) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        let mut m = self.reasons.lock().expect("jit reason lock");
        *m.entry(reason.to_string()).or_insert(0) += 1;
    }

    /// Consistent-enough snapshot for status reporting.
    pub fn snapshot(&self) -> JitStats {
        let mut fallback_reasons: Vec<(String, u64)> = self
            .reasons
            .lock()
            .expect("jit reason lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        fallback_reasons.sort();
        JitStats {
            functions_jitted: self.functions_jitted.load(Ordering::Relaxed),
            nests_compiled: self.nests_compiled.load(Ordering::Relaxed),
            bytes_emitted: self.bytes_emitted.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            fallback_reasons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_backend_always_falls_back() {
        let f = tvm_te::placeholder([2], tvm_te::DType::F32, "A");
        let b = tvm_te::compute([2], "B", |i| f.at(&[i[0].clone()]) + 1i64);
        let s = tvm_te::Schedule::create(&[b.clone()]);
        let pf = tvm_tir::lower::lower(&s, &[f, b], "idf");
        let cf = crate::compile::compile(&pf).expect("compile");
        assert!(NoopBackend.jit_compile(&cf).is_err());
    }

    #[test]
    fn counters_snapshot_is_sorted_and_complete() {
        let c = JitCounters::default();
        c.record_success(3, 512);
        c.record_success(1, 128);
        c.record_fallback("zebra reason");
        c.record_fallback("alpha reason");
        c.record_fallback("alpha reason");
        let s = c.snapshot();
        assert_eq!(s.functions_jitted, 2);
        assert_eq!(s.nests_compiled, 4);
        assert_eq!(s.bytes_emitted, 640);
        assert_eq!(s.fallbacks, 3);
        assert_eq!(
            s.fallback_reasons,
            vec![("alpha reason".into(), 2), ("zebra reason".into(), 1)]
        );
    }

    #[test]
    fn jit_fingerprint_extends_engine_fingerprint() {
        let fp = jit_fingerprint();
        assert!(fp.starts_with(&crate::optimize::engine_fingerprint()));
        assert!(fp.ends_with(JIT_VERSION));
        assert_ne!(fp, crate::optimize::engine_fingerprint());
    }
}
