//! Register VM executing [`CompiledFunc`] programs.
//!
//! The VM holds two flat register files (`i64` and `f64`) and the buffer
//! storage; the steady state allocates nothing — error paths materialise
//! their index vectors only on failure. Semantics are bit-identical to
//! [`crate::interp`]: every arithmetic step, coercion, rounding and error
//! message matches the interpreter's, which the differential tests in the
//! workspace enforce across all PolyBench kernels.

use crate::compile::{Block, CompiledFunc, Instr, Item, LoopKind, Reg, SlotAccess};
use crate::interp::ExecError;
use crate::ndarray::NDArray;
use crate::pool;
use tvm_te::{BinOp, CmpOp, DType, Intrinsic};
use tvm_tir::PrimFunc;

struct Vm<'a> {
    iregs: Vec<i64>,
    fregs: Vec<f64>,
    cf: &'a CompiledFunc,
}

impl<'a> Vm<'a> {
    fn exec_block(&mut self, b: &Block, storage: &mut [NDArray]) -> Result<(), ExecError> {
        for item in &b.items {
            match item {
                Item::Code(code) => self.exec_code(code, storage)?,
                Item::Loop {
                    var,
                    min,
                    extent,
                    body,
                    kind,
                } => {
                    if let LoopKind::Parallel { proven } = kind {
                        if let Some(plan) =
                            pool::begin_parallel(*proven, *extent, self.cf.par.as_deref())
                        {
                            self.exec_parallel(*var, *min, *extent, body, plan.n_chunks, storage)?;
                            continue;
                        }
                    }
                    for it in *min..(min + extent) {
                        self.iregs[*var as usize] = it;
                        self.exec_block(body, storage)?;
                    }
                }
                Item::StridedLoop {
                    extent,
                    pre,
                    bumps,
                    body,
                    ..
                } => {
                    // The prelude computes every affine register for
                    // iteration 0; each iteration then advances them by
                    // their constant stride instead of recomputing.
                    self.exec_code(pre, storage)?;
                    for _ in 0..*extent {
                        self.exec_code(body, storage)?;
                        for &(r, s) in bumps.iter() {
                            // Wrapping: the bump after the final
                            // iteration computes a value the scalar
                            // program never does; it is never read.
                            let v = &mut self.iregs[r as usize];
                            *v = v.wrapping_add(s);
                        }
                    }
                }
                Item::MulAddLoop {
                    extent,
                    pre,
                    dst,
                    a,
                    b,
                    round32,
                } => {
                    self.exec_code(pre, storage)?;
                    self.exec_muladd(*extent, dst, a, b, *round32, storage);
                }
                Item::If { cond, then, else_ } => {
                    if self.iregs[*cond as usize] != 0 {
                        self.exec_block(then, storage)?;
                    } else if let Some(e) = else_ {
                        self.exec_block(e, storage)?;
                    }
                }
                Item::JitCall { entry } => {
                    let program = self.cf.jit.as_ref().expect("JitCall without program");
                    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
                    {
                        let slots: Vec<*mut u8> =
                            storage.iter_mut().map(|a| a.base_ptr_mut()).collect();
                        let f = program.entry_fn(*entry);
                        // Safety: the backend only compiles nests whose
                        // every memory access was statically proven
                        // in-bounds (no Bound/StoreChecked instructions),
                        // register indices are < n_iregs/n_fregs by
                        // construction, and the storage base pointers
                        // stay valid for the whole call (the VM never
                        // resizes storage mid-execution).
                        unsafe {
                            f(self.iregs.as_mut_ptr(), self.fregs.as_mut_ptr(), slots.as_ptr())
                        };
                    }
                    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
                    {
                        // Non-native targets use NoopBackend, which never
                        // produces JitCall items.
                        let _ = (entry, program);
                        unreachable!("JitCall on a target without native codegen");
                    }
                }
            }
        }
        Ok(())
    }

    /// Run a proven-race-free `Parallel` loop by splitting its iteration
    /// range into contiguous chunks executed on the persistent worker pool.
    ///
    /// Bit-exactness argument:
    /// - The analyzer proved no iteration reads or writes an element another
    ///   iteration writes, and every access proven is affine in the loop
    ///   variables, so each chunk's loads, stores and error checks are
    ///   independent of whether other chunks have run.
    /// - Each chunk executes on a *clone* of the caller's register files.
    ///   That is sound because the compiler is single-assignment apart from
    ///   loop variables and stride bumps, both of which are defined and
    ///   consumed strictly inside their loop: no register written inside the
    ///   loop body is ever read after the loop, so discarding the clones
    ///   cannot lose state the sequential program would have kept.
    /// - Error classification is preserved by returning the error of the
    ///   *lowest-indexed* failing chunk: chunks are contiguous ascending
    ///   ranges run sequentially within themselves, so that error is exactly
    ///   the first one sequential execution would hit. Later chunks may have
    ///   stored into the shared buffers before the error surfaces, but
    ///   `execute` only copies storage back to the caller on success, so
    ///   those writes are unobservable — same as sequential never reaching
    ///   them.
    fn exec_parallel(
        &mut self,
        var: Reg,
        min: i64,
        extent: i64,
        body: &Block,
        n_chunks: usize,
        storage: &mut [NDArray],
    ) -> Result<(), ExecError> {
        /// Raw view of the storage slice shared across worker threads.
        ///
        /// Safety: the race-freedom proof guarantees chunks touch disjoint
        /// elements (or read only elements no chunk writes), and the caller
        /// blocks in `run_chunks` until every chunk finished, so the
        /// pointer outlives all accesses.
        struct SharedStorage(*mut NDArray, usize);
        unsafe impl Sync for SharedStorage {}

        let shared = SharedStorage(storage.as_mut_ptr(), storage.len());
        // Borrow the wrapper (not its raw-pointer field): edition-2021
        // closures capture disjoint fields, and a bare `*mut NDArray`
        // capture would not be `Sync`.
        let shared = &shared;
        // First error per ascending chunk index wins (see doc comment).
        let first_err: parking_lot::Mutex<Option<(usize, ExecError)>> =
            parking_lot::Mutex::new(None);
        let iregs = &self.iregs;
        let fregs = &self.fregs;
        let cf = self.cf;
        pool::run_chunks(n_chunks, &|c| {
            let (lo, hi) = pool::chunk_range(min, extent, c, n_chunks);
            let mut vm = Vm {
                iregs: iregs.clone(),
                fregs: fregs.clone(),
                cf,
            };
            let st = unsafe { std::slice::from_raw_parts_mut(shared.0, shared.1) };
            for it in lo..hi {
                vm.iregs[var as usize] = it;
                if let Err(e) = vm.exec_block(body, st) {
                    let mut g = first_err.lock();
                    if g.as_ref().is_none_or(|(pc, _)| c < *pc) {
                        *g = Some((c, e));
                    }
                    break;
                }
            }
        });
        match first_err.into_inner() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    fn exec_code(&mut self, code: &[Instr], storage: &mut [NDArray]) -> Result<(), ExecError> {
        for instr in code {
            match instr {
                Instr::IConst(d, v) => self.iregs[*d as usize] = *v,
                Instr::FConst(d, v) => self.fregs[*d as usize] = *v,
                Instr::IToF(d, s) => self.fregs[*d as usize] = self.iregs[*s as usize] as f64,
                Instr::IToF32(d, s) => {
                    self.fregs[*d as usize] = self.iregs[*s as usize] as f64 as f32 as f64;
                }
                Instr::FToI(d, s) => self.iregs[*d as usize] = self.fregs[*s as usize] as i64,
                Instr::F32Round(d, s) => {
                    self.fregs[*d as usize] = self.fregs[*s as usize] as f32 as f64;
                }
                Instr::FBool(d, s) => {
                    self.iregs[*d as usize] = (self.fregs[*s as usize] != 0.0) as i64;
                }
                Instr::IBin(op, d, a, b) => {
                    let (x, y) = (self.iregs[*a as usize], self.iregs[*b as usize]);
                    self.iregs[*d as usize] = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => {
                            if y == 0 {
                                return Err(ExecError::BadExpr("integer division by zero".into()));
                            }
                            x / y
                        }
                        BinOp::FloorDiv => {
                            if y == 0 {
                                return Err(ExecError::BadExpr("floordiv by zero".into()));
                            }
                            x.div_euclid(y)
                        }
                        BinOp::FloorMod => {
                            if y == 0 {
                                return Err(ExecError::BadExpr("floormod by zero".into()));
                            }
                            x.rem_euclid(y)
                        }
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                    };
                }
                Instr::FBin(op, d, a, b) => {
                    let (x, y) = (self.fregs[*a as usize], self.fregs[*b as usize]);
                    self.fregs[*d as usize] = fbin(*op, x, y);
                }
                Instr::FBin32(op, d, a, b) => {
                    let (x, y) = (self.fregs[*a as usize], self.fregs[*b as usize]);
                    // f32 arithmetic rounds once after the full operation,
                    // exactly like the interpreter.
                    self.fregs[*d as usize] = fbin(*op, x, y) as f32 as f64;
                }
                Instr::ICmp(op, d, a, b) => {
                    let (x, y) = (self.iregs[*a as usize], self.iregs[*b as usize]);
                    self.iregs[*d as usize] = icmp(*op, x, y) as i64;
                }
                Instr::FCmp(op, d, a, b) => {
                    let (x, y) = (self.fregs[*a as usize], self.fregs[*b as usize]);
                    self.iregs[*d as usize] = fcmp(*op, x, y) as i64;
                }
                Instr::And(d, a, b) => {
                    self.iregs[*d as usize] =
                        (self.iregs[*a as usize] != 0 && self.iregs[*b as usize] != 0) as i64;
                }
                Instr::Or(d, a, b) => {
                    self.iregs[*d as usize] =
                        (self.iregs[*a as usize] != 0 || self.iregs[*b as usize] != 0) as i64;
                }
                Instr::Not(d, a) => {
                    self.iregs[*d as usize] = (self.iregs[*a as usize] == 0) as i64;
                }
                Instr::ISel(d, c, t, f) => {
                    self.iregs[*d as usize] = if self.iregs[*c as usize] != 0 {
                        self.iregs[*t as usize]
                    } else {
                        self.iregs[*f as usize]
                    };
                }
                Instr::FSel(d, c, t, f) => {
                    self.fregs[*d as usize] = if self.iregs[*c as usize] != 0 {
                        self.fregs[*t as usize]
                    } else {
                        self.fregs[*f as usize]
                    };
                }
                Instr::Call1(i, d, x, round) => {
                    let x = self.fregs[*x as usize];
                    let r = match i {
                        Intrinsic::Sqrt => x.sqrt(),
                        Intrinsic::Exp => x.exp(),
                        Intrinsic::Log => x.ln(),
                        Intrinsic::Abs => x.abs(),
                        Intrinsic::Sin => x.sin(),
                        Intrinsic::Cos => x.cos(),
                        Intrinsic::Pow => unreachable!("Pow is Call2"),
                    };
                    self.fregs[*d as usize] = if *round { r as f32 as f64 } else { r };
                }
                Instr::Call2(i, d, x, y, round) => {
                    debug_assert_eq!(*i, Intrinsic::Pow);
                    let r = self.fregs[*x as usize].powf(self.fregs[*y as usize]);
                    self.fregs[*d as usize] = if *round { r as f32 as f64 } else { r };
                }
                Instr::Bound { buf, extent, idx } => {
                    let i = self.iregs[idx[idx.len() - 1] as usize];
                    if i < 0 || i >= *extent {
                        return Err(ExecError::OutOfBounds {
                            buffer: self.cf.slot_names[*buf as usize].clone(),
                            indices: idx.iter().map(|&r| self.iregs[r as usize]).collect(),
                        });
                    }
                }
                Instr::Load(d, buf, addr) => {
                    let lin = self.iregs[*addr as usize] as usize;
                    self.fregs[*d as usize] = storage[*buf as usize].get_f64_linear(lin);
                }
                Instr::Store(buf, addr, val) => {
                    let lin = self.iregs[*addr as usize] as usize;
                    storage[*buf as usize].set_f64_linear(lin, self.fregs[*val as usize]);
                }
                Instr::FMulAdd {
                    dst,
                    add,
                    a,
                    b,
                    round32,
                } => {
                    // Fused dispatch, unfused rounding: the product and
                    // the sum each round exactly like the FBin/FBin32
                    // pair this instruction replaces.
                    let mut m = self.fregs[*a as usize] * self.fregs[*b as usize];
                    if *round32 {
                        m = m as f32 as f64;
                    }
                    let mut s = self.fregs[*add as usize] + m;
                    if *round32 {
                        s = s as f32 as f64;
                    }
                    self.fregs[*dst as usize] = s;
                }
                Instr::StoreChecked { buf, idx, val } => {
                    let shape = &self.cf.slot_shapes[*buf as usize];
                    let strides = &self.cf.slot_strides[*buf as usize];
                    let mut lin = 0usize;
                    for (d, &r) in idx.iter().enumerate() {
                        let i = self.iregs[r as usize];
                        if i < 0 || i as usize >= shape[d] {
                            return Err(ExecError::OutOfBounds {
                                buffer: self.cf.slot_names[*buf as usize].clone(),
                                indices: idx.iter().map(|&r| self.iregs[r as usize]).collect(),
                            });
                        }
                        lin += i as usize * strides[d];
                    }
                    storage[*buf as usize].set_f64_linear(lin, self.fregs[*val as usize]);
                }
            }
        }
        Ok(())
    }

    /// Execute a recognized `dst[·] = dst[·] + a[·]·b[·]` inner loop.
    ///
    /// Every address the loop touches was proven in-bounds at compile
    /// time (the pattern admits no `Bound` instructions), so this path
    /// is infallible. Reductions (`dst` stride 0) keep one accumulator
    /// updated in strictly ascending iteration order — the same fixed
    /// order as the scalar program — and are never lane-split, so
    /// results are bit-identical.
    fn exec_muladd(
        &mut self,
        extent: i64,
        d: &SlotAccess,
        a: &SlotAccess,
        b: &SlotAccess,
        round32: bool,
        storage: &mut [NDArray],
    ) {
        let n = extent as usize;
        let d0 = self.iregs[d.addr as usize];
        let a0 = self.iregs[a.addr as usize];
        let b0 = self.iregs[b.addr as usize];
        let (ds, asl, bsl) = (d.slot as usize, a.slot as usize, b.slot as usize);
        if ds != asl && ds != bsl {
            let dts = [
                storage[ds].dtype(),
                storage[asl].dtype(),
                storage[bsl].dtype(),
            ];
            if dts == [DType::F64; 3] && !round32 {
                let (dd, aa, bb) = disjoint3(storage, ds, asl, bsl);
                muladd_f64(
                    dd.as_f64_mut(),
                    aa.as_f64(),
                    bb.as_f64(),
                    n,
                    (d0, d.stride),
                    (a0, a.stride),
                    (b0, b.stride),
                );
                return;
            }
            if dts == [DType::F32; 3] && round32 {
                let (dd, aa, bb) = disjoint3(storage, ds, asl, bsl);
                muladd_f32(
                    dd.as_f32_mut(),
                    aa.as_f32(),
                    bb.as_f32(),
                    n,
                    (d0, d.stride),
                    (a0, a.stride),
                    (b0, b.stride),
                );
                return;
            }
        }
        // Generic path: replicate the scalar instruction sequence
        // (load, load, load, fmuladd, store) element by element for
        // mixed dtypes or an in-place destination.
        let (mut di, mut ai, mut bi) = (d0, a0, b0);
        for _ in 0..n {
            let c = storage[ds].get_f64_linear(di as usize);
            let x = storage[asl].get_f64_linear(ai as usize);
            let y = storage[bsl].get_f64_linear(bi as usize);
            let mut m = x * y;
            if round32 {
                m = m as f32 as f64;
            }
            let mut s = c + m;
            if round32 {
                s = s as f32 as f64;
            }
            storage[ds].set_f64_linear(di as usize, s);
            di = di.wrapping_add(d.stride);
            ai = ai.wrapping_add(a.stride);
            bi = bi.wrapping_add(b.stride);
        }
    }
}

/// Split storage into one mutable and two shared disjoint-slot borrows
/// (`d` must differ from `a` and `b`; `a == b` is fine).
fn disjoint3(
    st: &mut [NDArray],
    d: usize,
    a: usize,
    b: usize,
) -> (&mut NDArray, &NDArray, &NDArray) {
    debug_assert!(d != a && d != b);
    let (lo, hi) = st.split_at_mut(d);
    let (dref, rest) = hi.split_first_mut().expect("slot in range");
    let pa = if a < d { &lo[a] } else { &rest[a - d - 1] };
    let pb = if b < d { &lo[b] } else { &rest[b - d - 1] };
    (dref, pa, pb)
}

/// Chunked element-wise mul-add arms shared by the `f64` and `f32`
/// microkernels. Every destination lane is written exactly once, so
/// splitting the loop into 4-lane blocks (plus a scalar tail) keeps
/// each element's load → multiply → add → store sequence intact —
/// accumulation order is per-element, never across the block — while
/// handing LLVM an obvious packed shape it can autovectorize without
/// reassociation. Multiply operand order matches the scalar arm.
macro_rules! chunked_muladd_arms {
    ($axpy:ident, $xpay:ident, $hadamard:ident, $t:ty) => {
        /// `d[i] += x * b[i]` in 4-lane blocks.
        fn $axpy(d: &mut [$t], x: $t, b: &[$t]) {
            let mut dc = d.chunks_exact_mut(4);
            let mut bc = b.chunks_exact(4);
            for (dv, y) in (&mut dc).zip(&mut bc) {
                dv[0] += x * y[0];
                dv[1] += x * y[1];
                dv[2] += x * y[2];
                dv[3] += x * y[3];
            }
            for (dv, y) in dc.into_remainder().iter_mut().zip(bc.remainder()) {
                *dv += x * *y;
            }
        }

        /// `d[i] += a[i] * y` in 4-lane blocks.
        fn $xpay(d: &mut [$t], a: &[$t], y: $t) {
            let mut dc = d.chunks_exact_mut(4);
            let mut ac = a.chunks_exact(4);
            for (dv, x) in (&mut dc).zip(&mut ac) {
                dv[0] += x[0] * y;
                dv[1] += x[1] * y;
                dv[2] += x[2] * y;
                dv[3] += x[3] * y;
            }
            for (dv, x) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
                *dv += *x * y;
            }
        }

        /// `d[i] += a[i] * b[i]` in 4-lane blocks.
        fn $hadamard(d: &mut [$t], a: &[$t], b: &[$t]) {
            let mut dc = d.chunks_exact_mut(4);
            let mut ac = a.chunks_exact(4);
            let mut bc = b.chunks_exact(4);
            for ((dv, x), y) in (&mut dc).zip(&mut ac).zip(&mut bc) {
                dv[0] += x[0] * y[0];
                dv[1] += x[1] * y[1];
                dv[2] += x[2] * y[2];
                dv[3] += x[3] * y[3];
            }
            for ((dv, x), y) in dc
                .into_remainder()
                .iter_mut()
                .zip(ac.remainder())
                .zip(bc.remainder())
            {
                *dv += *x * *y;
            }
        }
    };
}

chunked_muladd_arms!(axpy_f64, xpay_f64, hadamard_f64, f64);
chunked_muladd_arms!(axpy_f32, xpay_f32, hadamard_f32, f32);

/// `f64` multiply-accumulate microkernel. Operates directly on the
/// stored values, so it is trivially bit-identical to the scalar VM.
#[allow(clippy::needless_range_loop)]
fn muladd_f64(
    d: &mut [f64],
    a: &[f64],
    b: &[f64],
    n: usize,
    (d0, sd): (i64, i64),
    (a0, sa): (i64, i64),
    (b0, sb): (i64, i64),
) {
    let (d0, a0, b0) = (d0 as usize, a0 as usize, b0 as usize);
    match (sd, sa, sb) {
        (0, 1, 1) => {
            // Dot-product reduction: single accumulator, ascending order.
            let mut acc = d[d0];
            for (x, y) in a[a0..a0 + n].iter().zip(&b[b0..b0 + n]) {
                acc += x * y;
            }
            d[d0] = acc;
        }
        (1, 0, 1) => axpy_f64(&mut d[d0..d0 + n], a[a0], &b[b0..b0 + n]),
        (1, 1, 0) => xpay_f64(&mut d[d0..d0 + n], &a[a0..a0 + n], b[b0]),
        (1, 1, 1) => hadamard_f64(&mut d[d0..d0 + n], &a[a0..a0 + n], &b[b0..b0 + n]),
        _ => {
            let (mut di, mut ai, mut bi) = (d0 as i64, a0 as i64, b0 as i64);
            if sd == 0 {
                let mut acc = d[d0];
                for _ in 0..n {
                    acc += a[ai as usize] * b[bi as usize];
                    ai = ai.wrapping_add(sa);
                    bi = bi.wrapping_add(sb);
                }
                d[d0] = acc;
            } else {
                for _ in 0..n {
                    d[di as usize] += a[ai as usize] * b[bi as usize];
                    di = di.wrapping_add(sd);
                    ai = ai.wrapping_add(sa);
                    bi = bi.wrapping_add(sb);
                }
            }
        }
    }
}

/// Native-`f32` multiply-accumulate microkernel.
///
/// The VM's `f32` contract is "compute in `f64`, round to `f32` after
/// each operation". Native `f32` arithmetic is bit-identical here: the
/// product of two `f32` values is exact in `f64` (48 significand bits
/// fit in 53), so rounding it to `f32` equals an `f32` multiply; and
/// double rounding `f64`→`f32` of an `f32`+`f32` sum is innocuous
/// because 53 ≥ 2·24 + 2 (Figueroa's theorem). Rust never contracts
/// `x * y + z` into an FMA without explicit opt-in, so each operation
/// rounds separately, exactly like the scalar instruction pair.
fn muladd_f32(
    d: &mut [f32],
    a: &[f32],
    b: &[f32],
    n: usize,
    (d0, sd): (i64, i64),
    (a0, sa): (i64, i64),
    (b0, sb): (i64, i64),
) {
    let (d0, a0, b0) = (d0 as usize, a0 as usize, b0 as usize);
    match (sd, sa, sb) {
        (0, 1, 1) => {
            let mut acc = d[d0];
            for (x, y) in a[a0..a0 + n].iter().zip(&b[b0..b0 + n]) {
                acc += x * y;
            }
            d[d0] = acc;
        }
        (1, 0, 1) => axpy_f32(&mut d[d0..d0 + n], a[a0], &b[b0..b0 + n]),
        (1, 1, 0) => xpay_f32(&mut d[d0..d0 + n], &a[a0..a0 + n], b[b0]),
        (1, 1, 1) => hadamard_f32(&mut d[d0..d0 + n], &a[a0..a0 + n], &b[b0..b0 + n]),
        _ => {
            let (mut di, mut ai, mut bi) = (d0 as i64, a0 as i64, b0 as i64);
            if sd == 0 {
                let mut acc = d[d0];
                for _ in 0..n {
                    acc += a[ai as usize] * b[bi as usize];
                    ai = ai.wrapping_add(sa);
                    bi = bi.wrapping_add(sb);
                }
                d[d0] = acc;
            } else {
                for _ in 0..n {
                    d[di as usize] += a[ai as usize] * b[bi as usize];
                    di = di.wrapping_add(sd);
                    ai = ai.wrapping_add(sa);
                    bi = bi.wrapping_add(sb);
                }
            }
        }
    }
}

#[inline]
fn fbin(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::FloorDiv => (x / y).floor(),
        BinOp::FloorMod => x - (x / y).floor() * y,
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
    }
}

#[inline]
fn icmp(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

#[inline]
fn fcmp(op: CmpOp, x: f64, y: f64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// Execute a compiled function over `args` (one array per parameter, in
/// order; outputs are written in place on success, untouched on failure) —
/// the same contract and the same error classification as
/// [`crate::interp::execute`].
pub fn execute(cf: &CompiledFunc, args: &mut [NDArray]) -> Result<(), ExecError> {
    if args.len() != cf.params.len() {
        return Err(ExecError::ArityMismatch {
            expected: cf.params.len(),
            got: args.len(),
        });
    }
    for (p, a) in cf.params.iter().zip(args.iter()) {
        if p.shape != a.shape() {
            return Err(ExecError::ArgMismatch {
                name: p.name.clone(),
                detail: format!("shape {:?} != expected {:?}", a.shape(), p.shape),
            });
        }
        if p.dtype != a.dtype() {
            return Err(ExecError::ArgMismatch {
                name: p.name.clone(),
                detail: format!("dtype {} != expected {}", a.dtype(), p.dtype),
            });
        }
    }
    let mut storage: Vec<NDArray> = Vec::with_capacity(cf.params.len() + cf.allocs.len());
    for a in args.iter() {
        storage.push(a.clone());
    }
    for (shape, dtype) in &cf.allocs {
        storage.push(NDArray::zeros(shape, *dtype));
    }
    let mut vm = Vm {
        iregs: vec![0; cf.n_iregs],
        fregs: vec![0.0; cf.n_fregs],
        cf,
    };
    vm.exec_block(&cf.body, &mut storage)?;
    for (i, a) in args.iter_mut().enumerate() {
        *a = storage[i].clone();
    }
    Ok(())
}

/// Execute `func` through the optimized compiled VM when it compiles,
/// falling back to the reference interpreter otherwise — the engine entry
/// point behind [`crate::Module::run`] and [`crate::CpuDevice`].
pub fn run(func: &PrimFunc, args: &mut [NDArray]) -> Result<(), ExecError> {
    match crate::optimize::compile_optimized(func) {
        Ok(cf) => execute(&cf, args),
        Err(_) => crate::interp::execute(func, args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::interp;
    use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule};
    use tvm_tir::lower::lower;

    fn matmul_func(n: usize, tile: i64) -> PrimFunc {
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let mut s = Schedule::create(&[c.clone()]);
        if tile > 1 {
            let (y, x) = (c.axis(0), c.axis(1));
            let (yo, yi) = s.split(&c, &y, tile);
            let (xo, xi) = s.split(&c, &x, tile);
            s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);
        }
        lower(&s, &[a, b, c], "mm")
    }

    fn differential(f: &PrimFunc, args: &[NDArray]) {
        let mut a1: Vec<NDArray> = args.to_vec();
        let mut a2: Vec<NDArray> = args.to_vec();
        let r1 = interp::execute(f, &mut a1);
        let cf = compile(f).expect("compile");
        let r2 = execute(&cf, &mut a2);
        assert_eq!(r1, r2, "error classification must match the interpreter");
        for (x, y) in a1.iter().zip(a2.iter()) {
            assert_eq!(x, y, "outputs must be bit-identical to the interpreter");
        }
    }

    #[test]
    fn matmul_bit_identical_to_interp() {
        for (n, tile) in [(12usize, 1i64), (16, 4), (10, 3)] {
            let f = matmul_func(n, tile);
            let args = vec![
                NDArray::random(&[n, n], DType::F32, 1, -1.0, 1.0),
                NDArray::random(&[n, n], DType::F32, 2, -1.0, 1.0),
                NDArray::zeros(&[n, n], DType::F32),
            ];
            differential(&f, &args);
        }
    }

    #[test]
    fn intermediate_alloc_chain_matches() {
        let a = placeholder([4], DType::F32, "A");
        let t = compute([4], "T", |i| a.at(&[i[0].clone()]) * 2i64);
        let o = compute([4], "O", |i| t.at(&[i[0].clone()]) + 1i64);
        let s = Schedule::create(&[o.clone()]);
        let f = lower(&s, &[a, o], "chain");
        let args = vec![
            NDArray::from_f32(&[4], &[1.0, 2.0, 3.0, 4.0]),
            NDArray::zeros(&[4], DType::F32),
        ];
        differential(&f, &args);
        let mut run_args = args.clone();
        run(&f, &mut run_args).expect("run");
        assert_eq!(run_args[1].to_f64_vec(), vec![3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn arity_shape_dtype_errors_match() {
        let a = placeholder([2], DType::F32, "A");
        let b = compute([2], "B", |i| a.at(&[i[0].clone()]));
        let s = Schedule::create(&[b.clone()]);
        let f = lower(&s, &[a, b], "id");
        let cf = compile(&f).expect("compile");
        // Arity.
        let mut one = vec![NDArray::zeros(&[2], DType::F32)];
        assert_eq!(
            execute(&cf, &mut one),
            interp::execute(&f, &mut one.clone())
        );
        // Shape.
        let mut bad_shape = vec![
            NDArray::zeros(&[3], DType::F32),
            NDArray::zeros(&[2], DType::F32),
        ];
        assert_eq!(
            execute(&cf, &mut bad_shape),
            interp::execute(&f, &mut bad_shape.clone())
        );
        // DType.
        let mut bad_dtype = vec![
            NDArray::zeros(&[2], DType::F64),
            NDArray::zeros(&[2], DType::F32),
        ];
        assert_eq!(
            execute(&cf, &mut bad_dtype),
            interp::execute(&f, &mut bad_dtype.clone())
        );
    }

    #[test]
    fn out_of_bounds_matches_interp() {
        use tvm_tir::builder::{ser, store, FuncBuilder};
        let a = placeholder([4], DType::F32, "A");
        let mut fb = FuncBuilder::new("oob");
        let ab = fb.param(&a);
        let body = ser("i", 5, |i| {
            store(&ab, &[i], tvm_te::PrimExpr::FloatImm(1.0, DType::F32))
        });
        let f = fb.build(body);
        let args = vec![NDArray::zeros(&[4], DType::F32)];
        differential(&f, &args);
        // And the error really is OutOfBounds with the full index vector.
        let cf = compile(&f).expect("compile");
        let mut a2 = args.clone();
        let err = execute(&cf, &mut a2).expect_err("oob");
        assert_eq!(
            err,
            ExecError::OutOfBounds {
                buffer: "A".into(),
                indices: vec![4],
            }
        );
        // Failed runs leave the caller's arrays untouched.
        assert_eq!(a2[0], args[0]);
    }

    #[test]
    fn in_place_builder_kernel_matches() {
        use tvm_tir::builder::{ser, store, FuncBuilder};
        let a = placeholder([4], DType::F32, "A");
        let mut fb = FuncBuilder::new("inc");
        let ab = fb.param(&a);
        let body = ser("i", 4, |i| {
            store(
                &ab,
                &[i.clone()],
                a.at(&[i.clone()]) + tvm_te::cast(DType::F32, i),
            )
        });
        let f = fb.build(body);
        let args = vec![NDArray::from_f32(&[4], &[10.0, 10.0, 10.0, 10.0])];
        differential(&f, &args);
    }

    #[test]
    fn max_reduction_matches() {
        use tvm_te::max_reduce;
        let a = placeholder([3, 4], DType::F32, "A");
        let k = reduce_axis(0, 4, "k");
        let m = compute([3], "M", |i| {
            max_reduce(a.at(&[i[0].clone(), k.var_expr()]), &[k.clone()])
        });
        let s = Schedule::create(&[m.clone()]);
        let f = lower(&s, &[a, m], "rowmax");
        let args = vec![
            NDArray::from_f32(
                &[3, 4],
                &[
                    1.0, 9.0, 2.0, 3.0, -5.0, -1.0, -9.0, -2.0, 0.0, 0.5, 0.25, 0.75,
                ],
            ),
            NDArray::zeros(&[3], DType::F32),
        ];
        differential(&f, &args);
    }

    #[test]
    fn division_by_zero_matches_interp() {
        use tvm_tir::builder::{ser, store, FuncBuilder};
        let a = placeholder([4], DType::F32, "A");
        let mut fb = FuncBuilder::new("divz");
        let ab = fb.param(&a);
        let body = ser("i", 4, |i| {
            // i / (i - i): divisor is a non-literal zero, caught at runtime.
            let zero = i.clone() - i.clone();
            store(&ab, &[i.clone() / zero], a.at(&[i]))
        });
        let f = fb.build(body);
        let args = vec![NDArray::zeros(&[4], DType::F32)];
        differential(&f, &args);
    }

    #[test]
    fn run_falls_back_to_interp_on_reject() {
        use tvm_te::PrimExpr;
        use tvm_tir::Stmt;
        let buf = tvm_tir::Buffer::new("A", vec![1usize], DType::F32);
        let f = PrimFunc {
            name: "bad".into(),
            params: vec![buf.clone()],
            allocs: vec![],
            body: Stmt::BufferStore {
                buffer: buf,
                indices: vec![PrimExpr::IntImm(0, DType::I64)],
                value: PrimExpr::Reduce {
                    combiner: tvm_te::Combiner::Sum,
                    source: std::sync::Arc::new(PrimExpr::FloatImm(0.0, DType::F32)),
                    axes: vec![],
                },
            },
        };
        let mut args = vec![NDArray::zeros(&[1], DType::F32)];
        // The VM rejects at compile time; `run` must fall back and report
        // the interpreter's own BadExpr.
        let err = run(&f, &mut args).expect_err("reduce");
        assert_eq!(
            err,
            ExecError::BadExpr("Reduce must be lowered before execution".into())
        );
    }

    /// Tiled matmul whose outer row-tile loop carries a `Parallel`
    /// annotation (the shape the polybench molds emit).
    fn parallel_matmul_func(n: usize, tile: i64) -> PrimFunc {
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let mut s = Schedule::create(&[c.clone()]);
        let (y, x) = (c.axis(0), c.axis(1));
        let (yo, yi) = s.split(&c, &y, tile);
        let (xo, xi) = s.split(&c, &x, tile);
        s.reorder(&c, &[yo.clone(), xo, k.clone(), yi, xi]);
        s.parallel(&c, &yo);
        lower(&s, &[a, b, c], "pmm")
    }

    #[test]
    fn proven_parallel_matmul_is_dispatched_and_bit_identical() {
        let _guard = crate::pool::test_threads_lock();
        let f = parallel_matmul_func(16, 4);
        let counters = std::sync::Arc::new(crate::pool::ParCounters::new());
        let mut cf = crate::optimize::compile_optimized(&f).expect("compile_optimized");
        assert_eq!(
            cf.parallel_loop_counts(),
            (1, 0),
            "divisible row tiling must prove race-free"
        );
        cf.par = Some(std::sync::Arc::clone(&counters));
        for threads in [1usize, 2, 4, 7] {
            crate::pool::set_num_threads(threads);
            let args = vec![
                NDArray::random(&[16, 16], DType::F32, 31, -1.0, 1.0),
                NDArray::random(&[16, 16], DType::F32, 32, -1.0, 1.0),
                NDArray::zeros(&[16, 16], DType::F32),
            ];
            let mut seq = args.clone();
            let mut par = args;
            let r1 = interp::execute(&f, &mut seq);
            let r2 = execute(&cf, &mut par);
            assert_eq!(r1, r2);
            for (x, y) in seq.iter().zip(par.iter()) {
                assert_eq!(x, y, "{threads} threads must be bit-identical");
            }
        }
        let stats = counters.snapshot();
        assert_eq!(stats.dispatches, 3, "threads 2/4/7 dispatch: {stats:?}");
        assert!(
            stats
                .fallback_reasons
                .iter()
                .any(|(r, n)| r == "single-thread" && *n == 1),
            "the 1-thread run must fall back with a reason: {stats:?}"
        );
    }

    #[test]
    fn parallel_error_classification_matches_interp() {
        use tvm_tir::builder::{par, store, FuncBuilder};
        let _guard = crate::pool::test_threads_lock();
        crate::pool::set_num_threads(4);
        let a = placeholder([8], DType::F32, "A");
        let b = placeholder([8], DType::F32, "B");
        let mut fb = FuncBuilder::new("oob_par");
        let _ab = fb.param(&a);
        let bb = fb.param(&b);
        // Race-free (every iteration writes a distinct element) but every
        // write lands out of bounds: the loop dispatches in parallel and
        // must still report the exact error sequential execution hits
        // first (iteration 0, in chunk 0).
        let body = par("i", 8, move |i| {
            store(&bb, &[i.clone() + 100i64], a.at(&[i]))
        });
        let f = fb.build(body);
        let cf = crate::optimize::compile_optimized(&f).expect("compile_optimized");
        assert_eq!(cf.parallel_loop_counts(), (1, 0), "OOB is not a race");
        let args = vec![
            NDArray::random(&[8], DType::F32, 33, -1.0, 1.0),
            NDArray::zeros(&[8], DType::F32),
        ];
        let mut seq = args.clone();
        let mut par_args = args;
        let r1 = interp::execute(&f, &mut seq);
        let r2 = execute(&cf, &mut par_args);
        assert!(r1.is_err(), "the kernel must fail");
        assert_eq!(r1, r2, "parallel error classification must match");
        for (x, y) in seq.iter().zip(par_args.iter()) {
            assert_eq!(x, y, "failed runs must leave arguments untouched");
        }
    }
}
