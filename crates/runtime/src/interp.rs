//! Reference interpreter for lowered TIR.
//!
//! Executes a [`PrimFunc`] against host [`NDArray`]s with exact loop-nest
//! semantics. `Parallel`/`Vectorized`/`ThreadBinding` loops execute with
//! *sequential semantics* here (like TVM's reference interpreter); their
//! kinds are exploited by the timing devices (`CpuDevice` repeats, the
//! `gpu-sim` cost model) rather than by this functional path.

use crate::ndarray::NDArray;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use tvm_te::{BinOp, CmpOp, DType, Intrinsic, PrimExpr};
use tvm_tir::{Buffer, PrimFunc, Stmt};

/// Interpretation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Argument count differs from parameter count.
    ArityMismatch {
        /// Parameters declared.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// Argument shape/dtype differs from the parameter buffer.
    ArgMismatch {
        /// Parameter name.
        name: String,
        /// Human-readable detail.
        detail: String,
    },
    /// An expression could not be evaluated (e.g. unbound variable —
    /// normally prevented by the verifier).
    BadExpr(String),
    /// An index evaluated out of bounds.
    OutOfBounds {
        /// Buffer name.
        buffer: String,
        /// Offending indices.
        indices: Vec<i64>,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} arguments, got {got}")
            }
            ExecError::ArgMismatch { name, detail } => {
                write!(f, "argument `{name}` mismatch: {detail}")
            }
            ExecError::BadExpr(s) => write!(f, "cannot evaluate expression: {s}"),
            ExecError::OutOfBounds { buffer, indices } => {
                write!(f, "indices {indices:?} out of bounds for `{buffer}`")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Value {
    I(i64),
    F(f64),
}

impl Value {
    #[inline]
    fn as_f64(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }
    #[inline]
    fn as_i64(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => v as i64,
        }
    }
    #[inline]
    fn truthy(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }
}

struct Machine<'a> {
    /// All buffers' storage; params first, then allocs.
    storage: &'a mut [NDArray],
    /// buffer id -> storage slot.
    buf_slot: HashMap<u64, usize>,
    /// TE op id -> storage slot (for `TensorRead`).
    op_slot: HashMap<u64, usize>,
    /// loop var id -> current value.
    env: HashMap<u64, i64>,
}

impl<'a> Machine<'a> {
    fn eval_index(&self, e: &PrimExpr) -> Result<i64, ExecError> {
        Ok(self.eval(e)?.as_i64())
    }

    fn read_tensor(&self, op_id: u64, name: &str, idx: &[PrimExpr]) -> Result<f64, ExecError> {
        let slot = *self
            .op_slot
            .get(&op_id)
            .ok_or_else(|| ExecError::BadExpr(format!("tensor `{name}` has no storage")))?;
        let arr = &self.storage[slot];
        let mut lin = 0usize;
        let strides = arr.strides();
        let shape = arr.shape();
        let mut raw = Vec::with_capacity(idx.len());
        for (d, ie) in idx.iter().enumerate() {
            let i = self.eval_index(ie)?;
            raw.push(i);
            if i < 0 || i as usize >= shape[d] {
                return Err(ExecError::OutOfBounds {
                    buffer: name.to_string(),
                    indices: raw,
                });
            }
            lin += i as usize * strides[d];
        }
        Ok(arr.get_f64_linear(lin))
    }

    fn eval(&self, e: &PrimExpr) -> Result<Value, ExecError> {
        match e {
            PrimExpr::IntImm(v, _) => Ok(Value::I(*v)),
            PrimExpr::FloatImm(v, _) => Ok(Value::F(*v)),
            PrimExpr::BoolImm(b) => Ok(Value::I(*b as i64)),
            PrimExpr::Var(v) => self
                .env
                .get(&v.id)
                .map(|&x| Value::I(x))
                .ok_or_else(|| ExecError::BadExpr(format!("unbound variable `{}`", v.name))),
            PrimExpr::Binary(op, a, b) => {
                let (va, vb) = (self.eval(a)?, self.eval(b)?);
                let dt = e.dtype();
                if dt.is_float() {
                    let (x, y) = (va.as_f64(), vb.as_f64());
                    let mut r = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::FloorDiv => (x / y).floor(),
                        BinOp::FloorMod => x - (x / y).floor() * y,
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                    };
                    // f32 arithmetic rounds after every operation.
                    if dt == DType::F32 {
                        r = r as f32 as f64;
                    }
                    Ok(Value::F(r))
                } else {
                    let (x, y) = (va.as_i64(), vb.as_i64());
                    let r = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => {
                            if y == 0 {
                                return Err(ExecError::BadExpr("integer division by zero".into()));
                            }
                            x / y
                        }
                        BinOp::FloorDiv => {
                            if y == 0 {
                                return Err(ExecError::BadExpr("floordiv by zero".into()));
                            }
                            x.div_euclid(y)
                        }
                        BinOp::FloorMod => {
                            if y == 0 {
                                return Err(ExecError::BadExpr("floormod by zero".into()));
                            }
                            x.rem_euclid(y)
                        }
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                    };
                    Ok(Value::I(r))
                }
            }
            PrimExpr::Cmp(op, a, b) => {
                let (va, vb) = (self.eval(a)?, self.eval(b)?);
                let r = if a.dtype().unify(b.dtype()).is_float() {
                    let (x, y) = (va.as_f64(), vb.as_f64());
                    match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    }
                } else {
                    let (x, y) = (va.as_i64(), vb.as_i64());
                    match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    }
                };
                Ok(Value::I(r as i64))
            }
            PrimExpr::And(a, b) => Ok(Value::I(
                (self.eval(a)?.truthy() && self.eval(b)?.truthy()) as i64,
            )),
            PrimExpr::Or(a, b) => Ok(Value::I(
                (self.eval(a)?.truthy() || self.eval(b)?.truthy()) as i64,
            )),
            PrimExpr::Not(a) => Ok(Value::I(!self.eval(a)?.truthy() as i64)),
            PrimExpr::Select(c, t, f) => {
                if self.eval(c)?.truthy() {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            PrimExpr::Cast(t, a) => {
                let v = self.eval(a)?;
                Ok(match t {
                    DType::F32 => Value::F(v.as_f64() as f32 as f64),
                    DType::F64 => Value::F(v.as_f64()),
                    _ => Value::I(v.as_i64()),
                })
            }
            PrimExpr::Call(i, args) => {
                let x = self.eval(&args[0])?.as_f64();
                let r = match i {
                    Intrinsic::Sqrt => x.sqrt(),
                    Intrinsic::Exp => x.exp(),
                    Intrinsic::Log => x.ln(),
                    Intrinsic::Abs => x.abs(),
                    Intrinsic::Sin => x.sin(),
                    Intrinsic::Cos => x.cos(),
                    Intrinsic::Pow => x.powf(self.eval(&args[1])?.as_f64()),
                };
                let r = if e.dtype() == DType::F32 {
                    r as f32 as f64
                } else {
                    r
                };
                Ok(Value::F(r))
            }
            PrimExpr::TensorRead(t, idx) => {
                Ok(Value::F(self.read_tensor(t.op.id, t.name(), idx)?))
            }
            PrimExpr::Reduce { .. } => Err(ExecError::BadExpr(
                "Reduce must be lowered before execution".into(),
            )),
        }
    }

    fn exec(&mut self, s: &Stmt) -> Result<(), ExecError> {
        match s {
            Stmt::For {
                var,
                min,
                extent,
                body,
                ..
            } => {
                for it in *min..(min + extent) {
                    self.env.insert(var.id, it);
                    self.exec(body)?;
                }
                self.env.remove(&var.id);
                Ok(())
            }
            Stmt::BufferStore {
                buffer,
                indices,
                value,
            } => {
                let val = self.eval(value)?;
                let slot = *self.buf_slot.get(&buffer.id).ok_or_else(|| {
                    ExecError::BadExpr(format!("no storage for `{}`", buffer.name))
                })?;
                let mut raw = Vec::with_capacity(indices.len());
                for ie in indices {
                    raw.push(self.eval_index(ie)?);
                }
                let arr = &mut self.storage[slot];
                let shape = arr.shape().to_vec();
                let strides = arr.strides();
                let mut lin = 0usize;
                for (d, &i) in raw.iter().enumerate() {
                    if i < 0 || i as usize >= shape[d] {
                        return Err(ExecError::OutOfBounds {
                            buffer: buffer.name.clone(),
                            indices: raw,
                        });
                    }
                    lin += i as usize * strides[d];
                }
                arr.set_f64_linear(lin, val.as_f64());
                Ok(())
            }
            Stmt::IfThenElse { cond, then, else_ } => {
                if self.eval(cond)?.truthy() {
                    self.exec(then)
                } else if let Some(e) = else_ {
                    self.exec(e)
                } else {
                    Ok(())
                }
            }
            Stmt::Seq(items) => {
                for st in items {
                    self.exec(st)?;
                }
                Ok(())
            }
            Stmt::Evaluate(e) => {
                self.eval(e)?;
                Ok(())
            }
            Stmt::Nop => Ok(()),
        }
    }
}

fn check_arg(param: &Arc<Buffer>, arg: &NDArray) -> Result<(), ExecError> {
    if param.shape != arg.shape() {
        return Err(ExecError::ArgMismatch {
            name: param.name.clone(),
            detail: format!("shape {:?} != expected {:?}", arg.shape(), param.shape),
        });
    }
    if param.dtype != arg.dtype() {
        return Err(ExecError::ArgMismatch {
            name: param.name.clone(),
            detail: format!("dtype {} != expected {}", arg.dtype(), param.dtype),
        });
    }
    Ok(())
}

/// Execute `func` over `args` (one array per parameter buffer, in order;
/// output parameters are written in place).
pub fn execute(func: &PrimFunc, args: &mut [NDArray]) -> Result<(), ExecError> {
    if args.len() != func.params.len() {
        return Err(ExecError::ArityMismatch {
            expected: func.params.len(),
            got: args.len(),
        });
    }
    for (p, a) in func.params.iter().zip(args.iter()) {
        check_arg(p, a)?;
    }

    // Storage layout: caller arrays first, then internal allocations.
    let mut alloc_storage: Vec<NDArray> = func
        .allocs
        .iter()
        .map(|b| NDArray::zeros(&b.shape, b.dtype))
        .collect();

    let mut all: Vec<NDArray> = Vec::with_capacity(args.len() + alloc_storage.len());
    // Move caller arrays in; moved back out after execution.
    for a in args.iter() {
        all.push(a.clone());
    }
    all.append(&mut alloc_storage);

    let mut buf_slot = HashMap::new();
    let mut op_slot = HashMap::new();
    for (i, b) in func.params.iter().chain(func.allocs.iter()).enumerate() {
        buf_slot.insert(b.id, i);
        if b.source_op != 0 {
            op_slot.insert(b.source_op, i);
        }
    }

    let mut m = Machine {
        storage: &mut all,
        buf_slot,
        op_slot,
        env: HashMap::new(),
    };
    m.exec(&func.body)?;

    for (i, a) in args.iter_mut().enumerate() {
        *a = all[i].clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule};
    use tvm_tir::lower::lower;

    fn run_matmul(n: usize, tile: i64) -> (NDArray, NDArray, NDArray) {
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let mut s = Schedule::create(&[c.clone()]);
        if tile > 1 {
            let (y, x) = (c.axis(0), c.axis(1));
            let (yo, yi) = s.split(&c, &y, tile);
            let (xo, xi) = s.split(&c, &x, tile);
            s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);
        }
        let f = lower(&s, &[a, b, c], "mm");
        let av = NDArray::random(&[n, n], DType::F32, 1, -1.0, 1.0);
        let bv = NDArray::random(&[n, n], DType::F32, 2, -1.0, 1.0);
        let cv = NDArray::zeros(&[n, n], DType::F32);
        let mut args = [av.clone(), bv.clone(), cv];
        execute(&f, &mut args).expect("execution");
        (av, bv, args[2].clone())
    }

    fn reference_matmul(a: &NDArray, b: &NDArray) -> NDArray {
        let n = a.shape()[0];
        let mut c = NDArray::zeros(&[n, n], DType::F32);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += (a.get(&[i, k]) as f32) * (b.get(&[k, j]) as f32);
                }
                c.set(&[i, j], acc as f64);
            }
        }
        c
    }

    #[test]
    fn matmul_matches_reference() {
        let (a, b, c) = run_matmul(12, 1);
        let r = reference_matmul(&a, &b);
        assert!(c.allclose(&r, 1e-5, 1e-6), "diff={}", c.max_abs_diff(&r));
    }

    #[test]
    fn tiled_matmul_matches_untiled() {
        let (_, _, c1) = run_matmul(16, 1);
        let (_, _, c4) = run_matmul(16, 4);
        assert!(c1.allclose(&c4, 1e-5, 1e-6));
    }

    #[test]
    fn nondivisible_tile_still_correct() {
        let (a, b, c) = run_matmul(10, 3);
        let r = reference_matmul(&a, &b);
        assert!(c.allclose(&r, 1e-5, 1e-6), "diff={}", c.max_abs_diff(&r));
    }

    #[test]
    fn arity_checked() {
        let a = placeholder([2], DType::F32, "A");
        let b = compute([2], "B", |i| a.at(&[i[0].clone()]));
        let s = Schedule::create(&[b.clone()]);
        let f = lower(&s, &[a, b], "id");
        let mut args = [NDArray::zeros(&[2], DType::F32)];
        assert!(matches!(
            execute(&f, &mut args),
            Err(ExecError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn shape_checked() {
        let a = placeholder([2], DType::F32, "A");
        let b = compute([2], "B", |i| a.at(&[i[0].clone()]));
        let s = Schedule::create(&[b.clone()]);
        let f = lower(&s, &[a, b], "id");
        let mut args = [
            NDArray::zeros(&[3], DType::F32),
            NDArray::zeros(&[2], DType::F32),
        ];
        assert!(matches!(
            execute(&f, &mut args),
            Err(ExecError::ArgMismatch { .. })
        ));
    }

    #[test]
    fn dtype_checked() {
        let a = placeholder([2], DType::F32, "A");
        let b = compute([2], "B", |i| a.at(&[i[0].clone()]));
        let s = Schedule::create(&[b.clone()]);
        let f = lower(&s, &[a, b], "id");
        let mut args = [
            NDArray::zeros(&[2], DType::F64),
            NDArray::zeros(&[2], DType::F32),
        ];
        assert!(matches!(
            execute(&f, &mut args),
            Err(ExecError::ArgMismatch { .. })
        ));
    }

    #[test]
    fn intermediate_alloc_chain() {
        let a = placeholder([4], DType::F32, "A");
        let t = compute([4], "T", |i| a.at(&[i[0].clone()]) * 2i64);
        let o = compute([4], "O", |i| t.at(&[i[0].clone()]) + 1i64);
        let s = Schedule::create(&[o.clone()]);
        let f = lower(&s, &[a, o], "chain");
        let mut args = [
            NDArray::from_f32(&[4], &[1.0, 2.0, 3.0, 4.0]),
            NDArray::zeros(&[4], DType::F32),
        ];
        execute(&f, &mut args).expect("run");
        assert_eq!(args[1].to_f64_vec(), vec![3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn max_reduction() {
        use tvm_te::max_reduce;
        let a = placeholder([3, 4], DType::F32, "A");
        let k = reduce_axis(0, 4, "k");
        let m = compute([3], "M", |i| {
            max_reduce(a.at(&[i[0].clone(), k.var_expr()]), &[k.clone()])
        });
        let s = Schedule::create(&[m.clone()]);
        let f = lower(&s, &[a, m], "rowmax");
        let av = NDArray::from_f32(
            &[3, 4],
            &[
                1.0, 9.0, 2.0, 3.0, -5.0, -1.0, -9.0, -2.0, 0.0, 0.5, 0.25, 0.75,
            ],
        );
        let mut args = [av, NDArray::zeros(&[3], DType::F32)];
        execute(&f, &mut args).expect("run");
        assert_eq!(args[1].to_f64_vec(), vec![9.0, -1.0, 0.75]);
    }

    #[test]
    fn in_place_builder_kernel() {
        // Built via the imperative builder: A[i] = A[i] + i (in place)
        use tvm_tir::builder::{ser, store, FuncBuilder};
        let a = placeholder([4], DType::F32, "A");
        let mut fb = FuncBuilder::new("inc");
        let ab = fb.param(&a);
        let body = ser("i", 4, |i| {
            store(
                &ab,
                &[i.clone()],
                a.at(&[i.clone()]) + tvm_te::cast(DType::F32, i),
            )
        });
        let f = fb.build(body);
        let mut args = [NDArray::from_f32(&[4], &[10.0, 10.0, 10.0, 10.0])];
        execute(&f, &mut args).expect("run");
        assert_eq!(args[0].to_f64_vec(), vec![10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn out_of_bounds_detected() {
        use tvm_tir::builder::{ser, store, FuncBuilder};
        let a = placeholder([4], DType::F32, "A");
        let mut fb = FuncBuilder::new("oob");
        let ab = fb.param(&a);
        let body = ser("i", 5, |i| {
            store(&ab, &[i], tvm_te::PrimExpr::FloatImm(1.0, DType::F32))
        });
        let f = fb.build(body);
        let mut args = [NDArray::zeros(&[4], DType::F32)];
        assert!(matches!(
            execute(&f, &mut args),
            Err(ExecError::OutOfBounds { .. })
        ));
    }
}
