//! Device abstraction: anything that can run and time a lowered function.

use crate::codegen::{default_backend, CodegenBackend, JitCounters, JitStats, SimdCounters, SimdStats};
use crate::compile::{compile, CompiledFunc};
use crate::interp::ExecError;
use crate::ndarray::NDArray;
use crate::pool::{ParCounters, ParStats};
use crate::vm;
use std::sync::Arc;
use std::time::Instant;
use tvm_tir::PrimFunc;

/// Failure while building or running a kernel on a device.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The interpreter rejected or failed the kernel.
    Exec(ExecError),
    /// The device's compile/cost model rejected the kernel (e.g. a
    /// configuration exceeding simulated shared memory).
    Rejected(String),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Exec(e) => write!(f, "execution error: {e}"),
            DeviceError::Rejected(s) => write!(f, "kernel rejected: {s}"),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<ExecError> for DeviceError {
    fn from(e: ExecError) -> Self {
        DeviceError::Exec(e)
    }
}

/// A measurement target: runs a kernel and reports seconds per run.
///
/// Implemented by [`CpuDevice`] (real host execution via the interpreter)
/// and by `gpu_sim::SimDevice` (analytical A100 model). Both are driven by
/// the same tuner code, which is exactly the role TVM's measure
/// infrastructure plays between AutoTVM and remote runners.
///
/// `Send + Sync` so evaluators can measure candidate batches from worker
/// threads (the BO framework's parallel evaluation mode).
pub trait Device: Send + Sync {
    /// Human-readable device name (e.g. `"cpu"`, `"sim-a100"`).
    fn name(&self) -> &str;

    /// Run the kernel once against `args`, returning elapsed seconds.
    ///
    /// For analytical devices the returned time is modeled and `args` may
    /// be left untouched.
    fn run(&self, func: &PrimFunc, args: &mut [NDArray]) -> Result<f64, DeviceError>;

    /// Simulated/real cost of *compiling* the kernel, in seconds.
    ///
    /// Used by autotuning process-time accounting (the paper's "autotuning
    /// process time" includes per-candidate build cost). The default
    /// charges nothing.
    fn build_cost(&self, _func: &PrimFunc) -> f64 {
        0.0
    }

    /// Run `repeats` times and return the minimum observed seconds —
    /// TVM's standard timing discipline (min filters scheduler noise).
    fn time(
        &self,
        func: &PrimFunc,
        args: &mut [NDArray],
        repeats: usize,
    ) -> Result<f64, DeviceError> {
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            best = best.min(self.run(func, args)?);
        }
        Ok(best)
    }

    /// Compile `func` to a reusable artifact for [`Device::run_prepared`],
    /// or `None` when this device has no compiled path (analytical devices,
    /// or a function the compiler rejects). Evaluators call this once per
    /// configuration and cache the result across repeats.
    fn prepare(&self, _func: &PrimFunc) -> Option<Arc<CompiledFunc>> {
        None
    }

    /// Run a previously [`Device::prepare`]d artifact, returning elapsed
    /// seconds. Only meaningful on devices whose `prepare` returns `Some`.
    fn run_prepared(
        &self,
        _prepared: &CompiledFunc,
        _args: &mut [NDArray],
    ) -> Result<f64, DeviceError> {
        Err(DeviceError::Rejected(
            "device has no compiled execution path".into(),
        ))
    }

    /// Fingerprint of the compile/optimization pipeline this device runs
    /// kernels through, or `None` when measurements do not depend on a
    /// compiler (analytical devices). Evaluators fold it into memo keys
    /// and journal records: measurements taken under one pipeline must
    /// never be silently reused under another.
    fn fingerprint(&self) -> Option<String> {
        None
    }

    /// Native-codegen compile statistics, or `None` when this device has
    /// no JIT rung. Counters accumulate across all clones of a device
    /// (evaluator workers share them), so the snapshot reflects the whole
    /// tuning run.
    fn jit_stats(&self) -> Option<JitStats> {
        None
    }

    /// Multicore-dispatch statistics (proven/unproven parallel loops,
    /// pool dispatches, per-reason sequential fallbacks), or `None` when
    /// this device never runs loops on the worker pool. Counters are
    /// shared across clones like [`Device::jit_stats`].
    fn par_stats(&self) -> Option<ParStats> {
        None
    }

    /// Packed-SIMD emission statistics (packed/tiled/scalar vector
    /// sites with per-reason fallbacks, plus the emitted lane widths),
    /// or `None` when this device has no native codegen rung. Counters
    /// are shared across clones like [`Device::jit_stats`].
    fn simd_stats(&self) -> Option<SimdStats> {
        None
    }
}

/// Execution engine of a [`CpuDevice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum CpuMode {
    /// Tree-walking reference interpreter only.
    Interp,
    /// Scalar bytecode VM, no optimization pipeline.
    Scalar,
    /// TIR pass pipeline + block-optimized VM (the default).
    #[default]
    Optimized,
    /// Optimized pipeline plus native machine-code generation for the
    /// hot loop nests, falling back to the optimized VM per function.
    Jit,
}

/// Codegen backend plus compile counters, shared by every clone of a
/// JIT-mode device so stats cover a whole (possibly multi-threaded)
/// tuning run.
#[derive(Debug)]
struct JitState {
    backend: Arc<dyn CodegenBackend>,
    counters: JitCounters,
    /// Packed-SIMD emission tally, merged from every compiled
    /// function's [`crate::codegen::SimdReport`].
    simd: SimdCounters,
}

/// Host CPU device executing kernels through the optimized compiled VM
/// (with interpreter fallback for functions the compiler rejects), and
/// optionally through native JIT-compiled code ([`CpuDevice::jit`]).
#[derive(Debug, Clone)]
pub struct CpuDevice {
    mode: CpuMode,
    jit: Option<Arc<JitState>>,
    /// Multicore-dispatch counters, shared across clones; `Some` on the
    /// rungs that execute `Parallel` loops on the worker pool
    /// (Optimized and Jit).
    par: Option<Arc<ParCounters>>,
}

impl Default for CpuDevice {
    fn default() -> CpuDevice {
        CpuDevice::new()
    }
}

impl CpuDevice {
    /// New CPU device (optimized compiled VM execution).
    pub fn new() -> CpuDevice {
        CpuDevice {
            mode: CpuMode::Optimized,
            jit: None,
            par: Some(Arc::new(ParCounters::new())),
        }
    }

    /// CPU device pinned to the reference interpreter — the differential
    /// oracle, and the baseline the `bench_vm` binary compares against.
    pub fn interpreter() -> CpuDevice {
        CpuDevice {
            mode: CpuMode::Interp,
            jit: None,
            par: None,
        }
    }

    /// CPU device pinned to the scalar (unoptimized) VM — the baseline
    /// the `bench_passes` binary compares the optimized engine against.
    /// Runs everything sequentially: `compile` marks every parallel loop
    /// unproven, so the scalar rung never consults the pool.
    pub fn scalar_vm() -> CpuDevice {
        CpuDevice {
            mode: CpuMode::Scalar,
            jit: None,
            par: None,
        }
    }

    /// CPU device with the native JIT rung: optimized bytecode whose hot
    /// loop nests run as emitted machine code, with per-function fallback
    /// to the optimized VM whenever the backend declines (every fallback
    /// is counted with its reason — see [`Device::jit_stats`]).
    pub fn jit() -> CpuDevice {
        CpuDevice::jit_with_backend(default_backend())
    }

    /// JIT-mode device with an explicit backend (tests use this to pin
    /// the SSE2-only emitter or a never-compiling backend).
    pub fn jit_with_backend(backend: Arc<dyn CodegenBackend>) -> CpuDevice {
        let simd = SimdCounters::default();
        let (f64_lanes, f32_lanes) = backend.vector_widths();
        simd.set_lanes(f64_lanes, f32_lanes);
        CpuDevice {
            mode: CpuMode::Jit,
            jit: Some(Arc::new(JitState {
                backend,
                counters: JitCounters::default(),
                simd,
            })),
            par: Some(Arc::new(ParCounters::new())),
        }
    }

    /// Wire the device's shared parallel counters into a compiled
    /// function and record its static census (how many parallel loops
    /// the analyzer proved race-free vs. left sequential).
    fn attach_par(&self, mut cf: CompiledFunc) -> CompiledFunc {
        if let Some(counters) = &self.par {
            let (proven, unproven) = cf.parallel_loop_counts();
            counters.record_prepared(proven as u64, unproven as u64);
            cf.par = Some(Arc::clone(counters));
        }
        cf
    }

    /// Optimize + JIT-compile with fallback accounting. `None` only when
    /// even the bytecode compiler rejects the function (interpreter
    /// territory); `Some` is the jitted function or, after a recorded
    /// fallback, the optimized-VM function unchanged.
    fn jit_prepare(&self, func: &PrimFunc) -> Option<Arc<CompiledFunc>> {
        let state = self.jit.as_ref().expect("jit mode without state");
        let cf = crate::optimize::compile_optimized(func).ok()?;
        match state.backend.jit_compile(&cf) {
            Ok(jitted) => {
                state.counters.record_success(
                    jitted.jit_nest_count() as u64,
                    jitted.jit_code_bytes() as u64,
                );
                if let Some(program) = &jitted.jit {
                    state.simd.record_report(program.simd_report());
                }
                Some(Arc::new(self.attach_par(jitted)))
            }
            Err(e) => {
                state.counters.record_fallback(&e.0);
                Some(Arc::new(self.attach_par(cf)))
            }
        }
    }
}

impl Device for CpuDevice {
    fn name(&self) -> &str {
        "cpu"
    }

    fn run(&self, func: &PrimFunc, args: &mut [NDArray]) -> Result<f64, DeviceError> {
        let t0 = Instant::now();
        match self.mode {
            CpuMode::Interp => crate::interp::execute(func, args)?,
            CpuMode::Scalar => match compile(func) {
                Ok(cf) => vm::execute(&cf, args)?,
                Err(_) => crate::interp::execute(func, args)?,
            },
            CpuMode::Optimized => match crate::optimize::compile_optimized(func) {
                Ok(cf) => vm::execute(&self.attach_par(cf), args)?,
                Err(_) => crate::interp::execute(func, args)?,
            },
            CpuMode::Jit => match self.jit_prepare(func) {
                Some(cf) => vm::execute(&cf, args)?,
                None => crate::interp::execute(func, args)?,
            },
        }
        Ok(t0.elapsed().as_secs_f64())
    }

    fn prepare(&self, func: &PrimFunc) -> Option<Arc<CompiledFunc>> {
        match self.mode {
            CpuMode::Interp => None,
            CpuMode::Scalar => compile(func).ok().map(Arc::new),
            CpuMode::Optimized => crate::optimize::compile_optimized(func)
                .ok()
                .map(|cf| Arc::new(self.attach_par(cf))),
            CpuMode::Jit => self.jit_prepare(func),
        }
    }

    fn run_prepared(
        &self,
        prepared: &CompiledFunc,
        args: &mut [NDArray],
    ) -> Result<f64, DeviceError> {
        let t0 = Instant::now();
        vm::execute(prepared, args)?;
        Ok(t0.elapsed().as_secs_f64())
    }

    fn fingerprint(&self) -> Option<String> {
        Some(match self.mode {
            CpuMode::Interp => "interp/v1".to_string(),
            CpuMode::Scalar => crate::optimize::ENGINE_VERSION.to_string(),
            CpuMode::Optimized => crate::optimize::engine_fingerprint(),
            // Distinct from Optimized even though fallbacks execute the
            // same bytecode: replay verification must attribute a trial
            // to the engine that could have jitted it.
            CpuMode::Jit => crate::codegen::jit_fingerprint(),
        })
    }

    fn jit_stats(&self) -> Option<JitStats> {
        self.jit.as_ref().map(|s| s.counters.snapshot())
    }

    fn par_stats(&self) -> Option<ParStats> {
        self.par.as_ref().map(|c| c.snapshot())
    }

    fn simd_stats(&self) -> Option<SimdStats> {
        self.jit.as_ref().map(|s| s.simd.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule};
    use tvm_tir::lower::lower;

    fn matmul(n: usize) -> PrimFunc {
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let s = Schedule::create(&[c.clone()]);
        lower(&s, &[a, b, c], "mm")
    }

    #[test]
    fn cpu_device_times_execution() {
        let a = placeholder([64], DType::F32, "A");
        let b = compute([64], "B", |i| a.at(&[i[0].clone()]) * 2i64);
        let s = Schedule::create(&[b.clone()]);
        let f = lower(&s, &[a, b], "dbl");
        let dev = CpuDevice::new();
        let mut args = [
            NDArray::random(&[64], DType::F32, 3, 0.0, 1.0),
            NDArray::zeros(&[64], DType::F32),
        ];
        let t = dev.run(&f, &mut args).expect("run");
        assert!(t >= 0.0);
        assert!(args[1].to_f64_vec()[0] > 0.0 || args[1].to_f64_vec().iter().any(|&v| v != 0.0));
        let tmin = dev.time(&f, &mut args, 3).expect("time");
        assert!(tmin <= t * 10.0 + 1.0);
        assert_eq!(dev.build_cost(&f), 0.0);
        assert_eq!(dev.name(), "cpu");
    }

    #[test]
    fn prepared_path_matches_direct_run() {
        let a = placeholder([32], DType::F32, "A");
        let b = compute([32], "B", |i| a.at(&[i[0].clone()]) * 3i64);
        let s = Schedule::create(&[b.clone()]);
        let f = lower(&s, &[a, b], "tpl");
        let dev = CpuDevice::new();
        let prepared = dev.prepare(&f).expect("cpu device compiles kernels");
        let input = NDArray::random(&[32], DType::F32, 5, -1.0, 1.0);
        let mut via_run = [input.clone(), NDArray::zeros(&[32], DType::F32)];
        let mut via_prepared = [input, NDArray::zeros(&[32], DType::F32)];
        dev.run(&f, &mut via_run).expect("run");
        dev.run_prepared(&prepared, &mut via_prepared)
            .expect("run_prepared");
        assert_eq!(via_run[1], via_prepared[1]);
        // The interpreter-pinned device has no compiled path.
        assert!(CpuDevice::interpreter().prepare(&f).is_none());
    }

    #[test]
    fn jit_device_matches_optimized_bit_for_bit() {
        let f = matmul(10);
        let mk_args = || {
            [
                NDArray::random(&[10, 10], DType::F32, 11, -1.0, 1.0),
                NDArray::random(&[10, 10], DType::F32, 12, -1.0, 1.0),
                NDArray::zeros(&[10, 10], DType::F32),
            ]
        };
        let jit = CpuDevice::jit();
        let mut via_jit = mk_args();
        let mut via_opt = mk_args();
        jit.run(&f, &mut via_jit).expect("jit run");
        CpuDevice::new().run(&f, &mut via_opt).expect("opt run");
        assert_eq!(via_jit[2], via_opt[2], "jit must match the optimized VM");

        let stats = jit.jit_stats().expect("jit device reports stats");
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            assert_eq!(stats.functions_jitted, 1, "matmul must actually jit");
            assert!(stats.nests_compiled >= 1);
            assert!(stats.bytes_emitted > 0);
            assert_eq!(stats.fallbacks, 0, "{:?}", stats.fallback_reasons);
            let prepared = jit.prepare(&f).expect("prepare");
            assert!(prepared.jit_nest_count() >= 1, "prepared artifact carries native code");
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            assert_eq!(stats.functions_jitted, 0);
            assert_eq!(stats.fallbacks, 1, "noop backend must count its refusal");
        }
        // Non-JIT devices expose no stats.
        assert!(CpuDevice::new().jit_stats().is_none());
    }

    #[test]
    fn jit_fallback_is_counted_and_still_correct() {
        // Float max is outside the jittable subset (NaN/-0.0 semantics),
        // so this relu must fall back to the optimized VM with a reason.
        let a = placeholder([16], DType::F32, "A");
        let b = compute([16], "B", |i| {
            tvm_te::max_expr(a.at(&[i[0].clone()]), 0.0f32)
        });
        let s = Schedule::create(&[b.clone()]);
        let f = lower(&s, &[a, b], "sel");
        let dev = CpuDevice::jit();
        let mut args = [
            NDArray::random(&[16], DType::F32, 9, -1.0, 1.0),
            NDArray::zeros(&[16], DType::F32),
        ];
        dev.run(&f, &mut args).expect("fallback run");
        let mut expect = [args[0].clone(), NDArray::zeros(&[16], DType::F32)];
        CpuDevice::new().run(&f, &mut expect).expect("opt run");
        assert_eq!(args[1], expect[1]);
        let stats = dev.jit_stats().expect("stats");
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.functions_jitted, 0);
        assert_eq!(
            stats.fallback_reasons.iter().map(|(_, n)| n).sum::<u64>(),
            1,
            "every fallback carries a reason: {:?}",
            stats.fallback_reasons
        );
    }

    #[test]
    fn par_stats_flow_through_the_device() {
        let _guard = crate::pool::test_threads_lock();
        crate::pool::set_num_threads(4);
        let n = 12;
        let a = placeholder([n, n], DType::F32, "A");
        let c = compute([n, n], "C", |i| a.at(&[i[0].clone(), i[1].clone()]) * 2i64);
        let mut s = Schedule::create(&[c.clone()]);
        let y = c.axis(0);
        s.parallel(&c, &y);
        let f = lower(&s, &[a, c], "par_dbl");
        let dev = CpuDevice::new();
        let mut args = [
            NDArray::random(&[n, n], DType::F32, 3, -1.0, 1.0),
            NDArray::zeros(&[n, n], DType::F32),
        ];
        dev.run(&f, &mut args).expect("run");
        let stats = dev.par_stats().expect("optimized rung tracks par stats");
        assert_eq!(stats.loops_proven, 1, "{stats:?}");
        assert_eq!(stats.loops_unproven, 0, "{stats:?}");
        assert_eq!(stats.dispatches, 1, "{stats:?}");
        assert_eq!(stats.pool_threads, 4);
        // Bit-identical to the interpreter under dispatch.
        let mut expect = [args[0].clone(), NDArray::zeros(&[n, n], DType::F32)];
        CpuDevice::interpreter().run(&f, &mut expect).expect("interp");
        assert_eq!(args[1], expect[1]);
        // Rungs that never dispatch expose no stats.
        assert!(CpuDevice::interpreter().par_stats().is_none());
        assert!(CpuDevice::scalar_vm().par_stats().is_none());
        // The parallel layer is part of the replay boundary.
        let fp = dev.fingerprint().expect("fingerprint");
        assert!(fp.ends_with("+par/v1"), "{fp}");
    }

    #[test]
    fn jit_fingerprint_is_distinct_per_rung() {
        let fps: Vec<String> = [
            CpuDevice::interpreter(),
            CpuDevice::scalar_vm(),
            CpuDevice::new(),
            CpuDevice::jit(),
        ]
        .iter()
        .map(|d| d.fingerprint().expect("cpu devices fingerprint"))
        .collect();
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "rung fingerprints must be distinct");
            }
        }
        assert!(fps[3].ends_with(crate::codegen::JIT_VERSION));
    }
}
