//! Persistent worker pool for `Parallel`-annotated loops.
//!
//! One process-wide pool, spawned lazily on the first parallel dispatch
//! and reused for every trial afterwards — the steady state performs
//! **zero thread spawns per trial** ([`threads_spawned`] is monotonic
//! and observable, so benches can assert pool reuse). Workers are plain
//! `std::thread`s parked on a `parking_lot` condvar.
//!
//! # Dispatch model
//!
//! [`run_chunks`] splits a job into `n_chunks` indexed chunks and lets
//! the caller *and* the workers race to claim chunk indices from a
//! shared atomic cursor. Chunk *boundaries* are a pure function of
//! `(extent, n_chunks)` — see [`chunk_range`] — so which thread runs a
//! chunk never changes what the chunk computes. Combined with the
//! analyzer's race-freedom proof (no element is touched by two distinct
//! iterations with a write involved), parallel execution is
//! bit-identical to sequential execution at every thread count.
//!
//! # Arbitration
//!
//! Two guards keep the pool from oversubscribing the machine:
//!
//! - **Rayon workers run sequentially.** `ytopt_bo::run_parallel` and
//!   `autotvm::tune_parallel` measure trials on rayon worker threads;
//!   a device pool fanning out *inside* each measurement worker would
//!   multiply thread counts and wreck timing fidelity. The eligibility
//!   check ([`begin_parallel`]) detects rayon workers via
//!   `rayon::current_thread_index()` and caps them to sequential
//!   execution with a counted reason.
//! - **No nested dispatch.** Chunk bodies run inside a thread-local
//!   serial scope; a proven-parallel loop nested inside a dispatched
//!   chunk executes sequentially (counted), instead of deadlocking or
//!   exploding the pool.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Version tag of the parallel execution layer, folded into
/// [`crate::optimize::engine_fingerprint`] (and therefore into memo
/// keys and journal stamps): parallel dispatch changes *how* results
/// are produced, so cached measurements must not cross this boundary.
pub const PAR_VERSION: &str = "par/v1";

/// Runtime-side snapshot of parallel-execution counters (the
/// serializable mirror lives in `ytopt_bo::ParStats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Parallel loops carrying a race-freedom proof, over every
    /// function prepared against these counters.
    pub loops_proven: u64,
    /// Parallel loops without a proof (always sequential).
    pub loops_unproven: u64,
    /// Worker-pool dispatches of proven loops at execution time.
    pub dispatches: u64,
    /// Sequential executions that a proven (or unproven) parallel loop
    /// fell back to, with per-reason counts.
    pub fallbacks: u64,
    /// `(reason, count)` pairs, sorted by reason.
    pub fallback_reasons: Vec<(String, u64)>,
    /// Thread budget the pool is configured for.
    pub pool_threads: u64,
    /// Threads the process-wide pool has ever spawned (monotonic;
    /// steady-state trials must not move it).
    pub threads_spawned: u64,
}

/// Why a parallel loop executed sequentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerialReason {
    /// No race-freedom proof from the analyzer.
    Unproven,
    /// The pool is configured for a single thread.
    SingleThread,
    /// Fewer than two iterations — nothing to split.
    TrivialExtent,
    /// Already inside a dispatched chunk (nested parallel loop).
    SerialContext,
    /// On a rayon measurement worker; the device pool caps to one
    /// thread to avoid oversubscription.
    MeasurementWorker,
}

impl SerialReason {
    fn label(self) -> &'static str {
        match self {
            SerialReason::Unproven => "unproven-race",
            SerialReason::SingleThread => "single-thread",
            SerialReason::TrivialExtent => "trivial-extent",
            SerialReason::SerialContext => "serial-context",
            SerialReason::MeasurementWorker => "measurement-worker",
        }
    }
}

/// Lock-free parallel-execution counters, shared `Arc`-style between a
/// device and every [`crate::CompiledFunc`] it prepares (mirroring
/// [`crate::codegen::JitCounters`]). Execution-time increments are
/// relaxed atomics: a parallel loop dispatches once per entry, so the
/// cost is noise next to the dispatch itself.
#[derive(Debug, Default)]
pub struct ParCounters {
    loops_proven: AtomicU64,
    loops_unproven: AtomicU64,
    dispatches: AtomicU64,
    seq_unproven: AtomicU64,
    seq_single_thread: AtomicU64,
    seq_trivial_extent: AtomicU64,
    seq_serial_context: AtomicU64,
    seq_measurement_worker: AtomicU64,
}

impl ParCounters {
    /// Fresh zeroed counters.
    pub fn new() -> ParCounters {
        ParCounters::default()
    }

    /// Record the static parallel-loop census of a prepared function.
    pub fn record_prepared(&self, proven: u64, unproven: u64) {
        self.loops_proven.fetch_add(proven, Ordering::Relaxed);
        self.loops_unproven.fetch_add(unproven, Ordering::Relaxed);
    }

    /// Record one worker-pool dispatch.
    pub fn record_dispatch(&self) {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one sequential fallback with its reason.
    pub fn record_fallback(&self, reason: SerialReason) {
        let ctr = match reason {
            SerialReason::Unproven => &self.seq_unproven,
            SerialReason::SingleThread => &self.seq_single_thread,
            SerialReason::TrivialExtent => &self.seq_trivial_extent,
            SerialReason::SerialContext => &self.seq_serial_context,
            SerialReason::MeasurementWorker => &self.seq_measurement_worker,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent snapshot (reasons sorted, zero-count reasons elided),
    /// including the global pool facts.
    pub fn snapshot(&self) -> ParStats {
        let reasons = [
            (SerialReason::Unproven, &self.seq_unproven),
            (SerialReason::SingleThread, &self.seq_single_thread),
            (SerialReason::TrivialExtent, &self.seq_trivial_extent),
            (SerialReason::SerialContext, &self.seq_serial_context),
            (
                SerialReason::MeasurementWorker,
                &self.seq_measurement_worker,
            ),
        ];
        let mut fallback_reasons: Vec<(String, u64)> = reasons
            .iter()
            .map(|(r, c)| (r.label().to_string(), c.load(Ordering::Relaxed)))
            .filter(|(_, n)| *n > 0)
            .collect();
        fallback_reasons.sort();
        ParStats {
            loops_proven: self.loops_proven.load(Ordering::Relaxed),
            loops_unproven: self.loops_unproven.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            fallbacks: fallback_reasons.iter().map(|(_, n)| n).sum(),
            fallback_reasons,
            pool_threads: num_threads() as u64,
            threads_spawned: threads_spawned(),
        }
    }
}

impl ParStats {
    /// Fold another snapshot into this one (counter-wise sums; reasons
    /// merged by name; pool facts are process-global, so take the max).
    pub fn merge(&mut self, other: &ParStats) {
        self.loops_proven += other.loops_proven;
        self.loops_unproven += other.loops_unproven;
        self.dispatches += other.dispatches;
        self.fallbacks += other.fallbacks;
        for (reason, n) in &other.fallback_reasons {
            match self.fallback_reasons.iter_mut().find(|(r, _)| r == reason) {
                Some((_, total)) => *total += n,
                None => self.fallback_reasons.push((reason.clone(), *n)),
            }
        }
        self.fallback_reasons.sort();
        self.pool_threads = self.pool_threads.max(other.pool_threads);
        self.threads_spawned = self.threads_spawned.max(other.threads_spawned);
    }
}

// ---------------------------------------------------------------------
// Thread budget
// ---------------------------------------------------------------------

/// Configured thread budget; 0 = not yet resolved.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Thread budget for parallel loops: `set_num_threads` wins, then the
/// `TVM_NUM_THREADS` environment variable, then the host parallelism.
/// Always at least 1.
pub fn num_threads() -> usize {
    let n = THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = std::env::var("TVM_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        });
    // First resolution wins; a concurrent set_num_threads overwrites.
    let _ = THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    THREADS.load(Ordering::Relaxed)
}

/// Override the thread budget (clamped to ≥ 1). Takes effect on the
/// next dispatch; already-running jobs are unaffected. Process-global —
/// safe only because results are bit-identical at every thread count.
pub fn set_num_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Threads the process-wide pool has ever spawned (monotonic).
pub fn threads_spawned() -> u64 {
    pool().spawned.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Serial scope (nested-dispatch prevention)
// ---------------------------------------------------------------------

thread_local! {
    static SERIAL_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Run `f` with parallel dispatch disabled on this thread (used for
/// chunk bodies; exposed for tests and for callers that need strictly
/// sequential execution).
pub fn run_sequential<T>(f: impl FnOnce() -> T) -> T {
    SERIAL_DEPTH.with(|d| d.set(d.get() + 1));
    let guard = SerialGuard;
    let out = f();
    drop(guard);
    out
}

struct SerialGuard;
impl Drop for SerialGuard {
    fn drop(&mut self) {
        SERIAL_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

fn in_serial_scope() -> bool {
    SERIAL_DEPTH.with(|d| d.get() > 0)
}

// ---------------------------------------------------------------------
// Eligibility
// ---------------------------------------------------------------------

/// A green-lit parallel dispatch: `n_chunks` ≥ 2 chunks over the range.
pub struct ParallelPlan {
    /// Number of chunks (= max threads that can participate).
    pub n_chunks: usize,
}

/// Decide whether a proven-parallel loop of `extent` iterations should
/// dispatch on the pool, recording the dispatch or the fallback reason
/// in `counters`. Returns `None` for sequential execution.
pub fn begin_parallel(
    proven: bool,
    extent: i64,
    counters: Option<&ParCounters>,
) -> Option<ParallelPlan> {
    let reason = if !proven {
        Some(SerialReason::Unproven)
    } else if extent < 2 {
        Some(SerialReason::TrivialExtent)
    } else if in_serial_scope() {
        Some(SerialReason::SerialContext)
    } else if rayon::current_thread_index().is_some() {
        Some(SerialReason::MeasurementWorker)
    } else if num_threads() < 2 {
        Some(SerialReason::SingleThread)
    } else {
        None
    };
    match reason {
        Some(r) => {
            if let Some(c) = counters {
                c.record_fallback(r);
            }
            None
        }
        None => {
            if let Some(c) = counters {
                c.record_dispatch();
            }
            Some(ParallelPlan {
                n_chunks: num_threads().min(extent as usize),
            })
        }
    }
}

/// Deterministic chunk `c` of `n` over `[min, min+extent)`: iteration
/// range `[min + extent*c/n, min + extent*(c+1)/n)`. Chunks partition
/// the range exactly, differ in size by at most one iteration, and
/// depend only on `(min, extent, n)` — never on which thread claims
/// them.
pub fn chunk_range(min: i64, extent: i64, c: usize, n: usize) -> (i64, i64) {
    let (c, n) = (c as i64, n as i64);
    let lo = min + extent * c / n;
    let hi = min + extent * (c + 1) / n;
    (lo, hi)
}

// ---------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------

struct Job {
    /// Type-erased chunk runner. Points at the caller's closure; the
    /// caller does not return from `run_chunks` until every chunk has
    /// finished, which keeps the borrow alive for as long as any worker
    /// can call it.
    task: TaskPtr,
    n_chunks: usize,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Chunks not yet finished.
    pending: AtomicUsize,
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// First captured panic payload, rethrown on the calling thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    panicked: AtomicBool,
}

struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine), and `run_chunks` blocks until `pending == 0`, so the pointer
// never outlives the closure it borrows.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct Pool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
    /// Workers ever spawned (monotonic).
    spawned: AtomicU64,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        spawned: AtomicU64::new(0),
    })
}

/// Ensure at least `n` workers exist (lazily, once — steady state
/// spawns nothing).
fn ensure_workers(n: usize) {
    let p = pool();
    loop {
        let have = p.spawned.load(Ordering::Relaxed);
        if have as usize >= n {
            return;
        }
        if p.spawned
            .compare_exchange(have, have + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            continue; // someone else spawned; re-check
        }
        std::thread::Builder::new()
            .name(format!("tvm-par-{have}"))
            .spawn(worker_loop)
            .expect("spawn pool worker");
    }
}

fn worker_loop() {
    let p = pool();
    loop {
        let job = {
            let mut q = p.queue.lock();
            loop {
                if let Some(j) = q.front() {
                    break Arc::clone(j);
                }
                p.work_cv.wait(&mut q);
            }
        };
        run_job_chunks(&job);
        // The job is exhausted (claiming failed); drop it from the
        // queue if the caller hasn't already.
        let mut q = p.queue.lock();
        if let Some(front) = q.front() {
            if Arc::ptr_eq(front, &job) {
                q.pop_front();
            }
        }
    }
}

/// Claim and run chunks until the cursor runs out. Chunk bodies run in
/// a serial scope so nested proven-parallel loops stay sequential.
fn run_job_chunks(job: &Job) {
    loop {
        let c = job.next.fetch_add(1, Ordering::Relaxed);
        if c >= job.n_chunks {
            return;
        }
        let task = job.task.0;
        // SAFETY: `task` outlives the job (see `TaskPtr`); `c` is a
        // fresh chunk index no other thread claimed.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sequential(|| unsafe { (*task)(c) })
        }));
        if let Err(payload) = result {
            if !job.panicked.swap(true, Ordering::Relaxed) {
                *job.panic.lock() = Some(payload);
            }
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = job.done_lock.lock();
            job.done_cv.notify_all();
        }
    }
}

/// Run `f(0..n_chunks)` across the pool: the calling thread
/// participates, idle workers join, and the call returns only when
/// every chunk has finished. Panics from any chunk are rethrown here
/// (first panic wins). `n_chunks` must be ≥ 1.
pub fn run_chunks(n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    assert!(n_chunks >= 1, "run_chunks needs at least one chunk");
    ensure_workers(n_chunks.saturating_sub(1));
    // The transmute erases the borrow's lifetime so the job can sit in
    // the pool's 'static queue; `run_chunks` blocks until pending == 0
    // below, so no worker touches `f` after we return (see `TaskPtr`'s
    // safety comment). An `as` cast can't do this: raw trait-object
    // pointees default to 'static, which the borrowed `f` can't meet.
    #[allow(clippy::useless_transmute, clippy::transmutes_expressible_as_ptr_casts)]
    let task = TaskPtr(unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
    });
    let job = Arc::new(Job {
        task,
        n_chunks,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(n_chunks),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
        panicked: AtomicBool::new(false),
    });
    {
        let p = pool();
        let mut q = p.queue.lock();
        q.push_back(Arc::clone(&job));
        p.work_cv.notify_all();
    }
    // Participate: the caller is one of the n workers.
    run_job_chunks(&job);
    // Wait for chunks claimed by pool workers.
    {
        let mut g = job.done_lock.lock();
        while job.pending.load(Ordering::Acquire) != 0 {
            job.done_cv.wait(&mut g);
        }
    }
    // Drop the (exhausted) job from the queue if a worker didn't.
    {
        let p = pool();
        let mut q = p.queue.lock();
        q.retain(|j| !Arc::ptr_eq(j, &job));
    }
    let payload = job.panic.lock().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Serializes unit tests that mutate the process-global thread budget
/// (`set_num_threads`): counter assertions would race otherwise. Tests
/// that only assert bit-identity don't need it — outputs are identical
/// at every thread count.
#[cfg(test)]
pub(crate) fn test_threads_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn chunks_partition_the_range_exactly() {
        for extent in [1i64, 2, 3, 7, 16, 100, 101] {
            for n in 1..=8usize {
                let n = n.min(extent as usize);
                let mut covered = Vec::new();
                for c in 0..n {
                    let (lo, hi) = chunk_range(5, extent, c, n);
                    assert!(lo <= hi);
                    covered.extend(lo..hi);
                }
                let expect: Vec<i64> = (5..5 + extent).collect();
                assert_eq!(covered, expect, "extent {extent}, {n} chunks");
            }
        }
    }

    #[test]
    fn run_chunks_visits_every_chunk_once() {
        let hits: Vec<AtomicI64> = (0..13).map(|_| AtomicI64::new(0)).collect();
        run_chunks(13, &|c| {
            hits[c].fetch_add(1, Ordering::Relaxed);
        });
        for (c, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {c}");
        }
    }

    #[test]
    fn pool_is_reused_across_jobs() {
        run_chunks(4, &|_| {});
        let after_first = threads_spawned();
        for _ in 0..50 {
            run_chunks(4, &|_| {});
        }
        assert_eq!(
            threads_spawned(),
            after_first,
            "steady-state jobs must not spawn threads"
        );
    }

    #[test]
    fn chunk_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            run_chunks(4, &|c| {
                if c == 2 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // The pool must survive a panicking job.
        run_chunks(4, &|_| {});
    }

    #[test]
    fn nested_dispatch_is_serialized() {
        // Inside a chunk, begin_parallel must refuse (serial-context).
        let refused = AtomicUsize::new(0);
        run_chunks(2, &|_| {
            if begin_parallel(true, 8, None).is_none() {
                refused.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(refused.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn rayon_workers_fall_back_to_sequential() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let on_worker = pool.install(|| begin_parallel(true, 8, None).is_none());
        assert!(on_worker, "dispatch inside a rayon pool must serialize");
    }

    #[test]
    fn fallback_reasons_are_counted() {
        let c = ParCounters::new();
        assert!(begin_parallel(false, 8, Some(&c)).is_none());
        assert!(begin_parallel(true, 1, Some(&c)).is_none());
        let stats = c.snapshot();
        assert_eq!(stats.fallbacks, 2);
        assert!(stats
            .fallback_reasons
            .iter()
            .any(|(r, n)| r == "unproven-race" && *n == 1));
        assert!(stats
            .fallback_reasons
            .iter()
            .any(|(r, n)| r == "trivial-extent" && *n == 1));
    }

    #[test]
    fn par_stats_merge_sums_and_maxes() {
        let mut a = ParStats {
            loops_proven: 1,
            dispatches: 3,
            fallbacks: 2,
            fallback_reasons: vec![("unproven-race".into(), 2)],
            pool_threads: 4,
            threads_spawned: 3,
            ..ParStats::default()
        };
        let b = ParStats {
            loops_proven: 2,
            dispatches: 1,
            fallbacks: 3,
            fallback_reasons: vec![("unproven-race".into(), 1), ("single-thread".into(), 2)],
            pool_threads: 2,
            threads_spawned: 7,
            ..ParStats::default()
        };
        a.merge(&b);
        assert_eq!(a.loops_proven, 3);
        assert_eq!(a.dispatches, 4);
        assert_eq!(a.fallbacks, 5);
        assert_eq!(
            a.fallback_reasons,
            vec![("single-thread".into(), 2), ("unproven-race".into(), 3)]
        );
        assert_eq!(a.pool_threads, 4);
        assert_eq!(a.threads_spawned, 7);
    }
}
