//! One-pass compiler from lowered TIR to a flat register program.
//!
//! [`compile`] turns a [`PrimFunc`] into a [`CompiledFunc`]: loop bounds are
//! resolved, every variable lives in a flat register file instead of a
//! `HashMap`, buffer accesses become precomputed strided offsets, and pure
//! loop-invariant index arithmetic is hoisted into the enclosing loop's
//! preheader. The companion [`crate::vm`] executes the result with zero
//! allocation in the steady state.
//!
//! The compiler is *semantics-preserving with respect to the interpreter*:
//! for every function it accepts, the VM produces bit-identical outputs and
//! identical [`crate::interp::ExecError`]s. Anything it cannot prove it can
//! reproduce exactly (`Reduce` nodes, unbound variables, short-circuit
//! operands that may fail) is rejected with a [`CompileError`], and the
//! engine falls back to the interpreter — so fallback behaviour is *always*
//! the authoritative interpreter behaviour.

use std::collections::HashMap;
use tvm_te::{BinOp, CmpOp, DType, Intrinsic, PrimExpr, Tensor};
use tvm_tir::{PrimFunc, Stmt};

/// Register index into the VM's `i64` or `f64` register file.
pub(crate) type Reg = u32;

/// Why a function could not be compiled (the engine then falls back to the
/// reference interpreter, which defines the authoritative behaviour).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot compile: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// A single VM instruction. Register classes mirror the interpreter's
/// dynamic `Value` classes exactly: `I*` operate on the `i64` file, `F*` on
/// the `f64` file, and every cross-file move corresponds to an
/// `as_f64`/`as_i64`/`truthy` coercion the interpreter performs at the same
/// point.
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    /// `ireg[dst] = v`
    IConst(Reg, i64),
    /// `freg[dst] = v`
    FConst(Reg, f64),
    /// `freg[dst] = ireg[src] as f64` (`Value::as_f64` on an int)
    IToF(Reg, Reg),
    /// `freg[dst] = ireg[src] as f64 as f32 as f64` (cast to `F32` from int)
    IToF32(Reg, Reg),
    /// `ireg[dst] = freg[src] as i64` (`Value::as_i64` on a float)
    FToI(Reg, Reg),
    /// `freg[dst] = freg[src] as f32 as f64` (f32 re-rounding)
    F32Round(Reg, Reg),
    /// `ireg[dst] = (freg[src] != 0.0) as i64` (`truthy` on a float)
    FBool(Reg, Reg),
    /// Integer binary op; `Div`/`FloorDiv`/`FloorMod` check for zero at
    /// runtime and fail with the interpreter's exact `BadExpr` messages.
    IBin(BinOp, Reg, Reg, Reg),
    /// Float binary op in `f64`.
    FBin(BinOp, Reg, Reg, Reg),
    /// Float binary op re-rounded through `f32` after the full operation.
    FBin32(BinOp, Reg, Reg, Reg),
    /// Integer compare, result 0/1 in an int register.
    ICmp(CmpOp, Reg, Reg, Reg),
    /// Float compare, result 0/1 in an int register.
    FCmp(CmpOp, Reg, Reg, Reg),
    /// `ireg[dst] = (ireg[a] != 0 && ireg[b] != 0) as i64`
    And(Reg, Reg, Reg),
    /// `ireg[dst] = (ireg[a] != 0 || ireg[b] != 0) as i64`
    Or(Reg, Reg, Reg),
    /// `ireg[dst] = (ireg[a] == 0) as i64`
    Not(Reg, Reg),
    /// `ireg[dst] = if ireg[c] != 0 { ireg[t] } else { ireg[f] }`
    ISel(Reg, Reg, Reg, Reg),
    /// Float select.
    FSel(Reg, Reg, Reg, Reg),
    /// Unary intrinsic; `round32` re-rounds through `f32`.
    Call1(Intrinsic, Reg, Reg, bool),
    /// Binary intrinsic (`Pow`): `dst, x, y, round32`.
    Call2(Intrinsic, Reg, Reg, Reg, bool),
    /// Check `ireg[*idx.last()]` against `[0, extent)`; on failure report
    /// the index prefix evaluated so far (the interpreter's partial-index
    /// out-of-bounds shape for tensor reads).
    Bound {
        /// Storage slot.
        buf: u16,
        /// Extent of the checked dimension.
        extent: i64,
        /// Index registers for dimensions `0..=d` (last is checked).
        idx: Box<[Reg]>,
    },
    /// `freg[dst] = storage[buf].get_f64_linear(ireg[addr])`; the address
    /// is proven or checked in-bounds before this executes.
    Load(Reg, u16, Reg),
    /// Unchecked store at a proven-in-bounds linear address.
    Store(u16, Reg, Reg),
    /// Checked store: evaluates dims against the buffer shape in order,
    /// reporting the *full* index vector on failure (the interpreter's
    /// store semantics), then writes.
    StoreChecked {
        /// Storage slot.
        buf: u16,
        /// One index register per dimension.
        idx: Box<[Reg]>,
        /// Value register (`f64` file).
        val: Reg,
    },
    /// `freg[dst] = freg[add] + freg[a] * freg[b]`, rounded through `f32`
    /// after *each* of the two operations when `round32` is set. This is a
    /// fused *instruction*, not a fused *rounding*: the product is rounded
    /// exactly as the separate `FBin`/`FBin32` pair it replaces, so results
    /// stay bit-identical to the unfused program (and the interpreter).
    FMulAdd {
        /// Destination (`f64` file).
        dst: Reg,
        /// Addend register.
        add: Reg,
        /// First factor.
        a: Reg,
        /// Second factor.
        b: Reg,
        /// Round through `f32` after the multiply and after the add.
        round32: bool,
    },
}

/// Execution flavor of a loop, from the schedule's `ForKind`. `Unrolled`
/// and thread-bound loops run serially on the CPU VM, so they map to
/// [`LoopKind::Serial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoopKind {
    /// Ordinary sequential loop.
    Serial,
    /// Schedule-declared parallel loop. When `proven` is set the
    /// analyzer's race-freedom proof
    /// ([`tvm_tir::analyze::deps::race_free_parallel_vars`]) covers this
    /// loop, and the VM may chunk its iteration range across the
    /// persistent worker pool ([`crate::pool`]) — results stay
    /// bit-identical to sequential order because no element is touched
    /// by two distinct iterations with a write involved. Unproven
    /// parallel loops execute sequentially (with a counted fallback
    /// reason), and the optimizer must not reorder observable effects
    /// across either form.
    Parallel {
        /// Race-freedom proof carried from the analyzer.
        proven: bool,
    },
    /// Schedule-declared vectorized loop. When `proven` is set the
    /// analyzer's race-freedom proof
    /// ([`tvm_tir::analyze::deps::race_free_vectorized_vars`]) covers
    /// this loop, and the native codegen backend may evaluate blocks of
    /// iterations simultaneously with packed SIMD lanes — bit-identical
    /// to sequential order because each lane writes a disjoint element
    /// and keeps its own operation sequence. Unproven vectorized loops
    /// run scalar (with a counted fallback reason).
    Vectorized {
        /// Race-freedom proof carried from the analyzer.
        proven: bool,
    },
}

/// One buffer operand of a [`Item::MulAddLoop`] microkernel: the storage
/// slot, the register holding the linear address at iteration 0, and the
/// address stride per iteration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotAccess {
    pub(crate) slot: u16,
    pub(crate) addr: Reg,
    pub(crate) stride: i64,
}

/// One node of the structured program: straight-line code, a counted loop,
/// or a conditional. Loops keep their bodies as nested blocks so the VM
/// needs no jump resolution.
#[derive(Debug, Clone)]
pub(crate) enum Item {
    /// Straight-line instructions.
    Code(Vec<Instr>),
    /// `for ireg[var] in min..min+extent { body }`
    Loop {
        /// Loop variable register.
        var: Reg,
        /// Inclusive start.
        min: i64,
        /// Trip count.
        extent: i64,
        /// Loop body.
        body: Block,
        /// Execution flavor (drives the block optimizer's choices).
        kind: LoopKind,
    },
    /// `if ireg[cond] != 0 { then } else { else_ }`
    If {
        /// Condition register (already truthy-normalised or raw int).
        cond: Reg,
        /// Taken branch.
        then: Block,
        /// Fallback branch.
        else_: Option<Block>,
    },
    /// An innermost loop rewritten by the block optimizer
    /// ([`crate::optimize`]) into strided-pointer-bump form: `pre` runs
    /// once per loop entry (loop variable set to `min`, affine index
    /// registers computed for iteration 0), then `extent` iterations of
    /// `body` each followed by adding `stride` to every register in
    /// `bumps`. Registers defined inside an innermost loop are never read
    /// after it (the compiler emits consumers at the definition block), so
    /// the bumped registers' post-loop values are unobservable.
    StridedLoop {
        /// Trip count.
        extent: i64,
        /// Loop-entry prelude: loop-var init plus iteration-0 values of
        /// the affine registers, in original program order.
        pre: Vec<Instr>,
        /// `(register, per-iteration stride)` bumps applied after each
        /// iteration.
        bumps: Vec<(Reg, i64)>,
        /// Per-iteration instructions (everything non-affine).
        body: Vec<Instr>,
        /// Original loop kind.
        kind: LoopKind,
        /// Planned base vector width in elements (the block optimizer's
        /// vector-width plan: 2 for f64, 4 for f32 bodies of proven
        /// `Vectorized` loops, 1 otherwise). Native backends may widen
        /// (AVX doubles it) but never pack a loop planned scalar.
        lanes: u8,
    },
    /// A recognized contiguous multiply-accumulate inner loop:
    /// `dst[i·sd] = dst[i·sd] + a[i·sa] * b[i·sb]` for `extent`
    /// iterations, with `round32` rounding after each operation. Executes
    /// as a tight slice microkernel; semantics (including accumulation
    /// order — strictly ascending, one element at a time) are bit-identical
    /// to the scalar instruction sequence it replaces.
    MulAddLoop {
        /// Trip count.
        extent: i64,
        /// Loop-entry prelude (computes the iteration-0 addresses).
        pre: Vec<Instr>,
        /// Destination/accumulator operand.
        dst: SlotAccess,
        /// First factor operand.
        a: SlotAccess,
        /// Second factor operand.
        b: SlotAccess,
        /// Round through `f32` after multiply and after add.
        round32: bool,
    },
    /// A loop nest compiled to native machine code by a
    /// [`crate::codegen::CodegenBackend`]: the VM calls entry point
    /// `entry` of the owning function's [`crate::codegen::JitProgram`],
    /// passing its register files and storage base pointers. Emitted
    /// code is bit-exact with the items it replaced.
    JitCall {
        /// Entry-point index into [`CompiledFunc::jit`].
        entry: usize,
    },
}

/// A sequence of [`Item`]s.
#[derive(Debug, Clone, Default)]
pub(crate) struct Block {
    pub(crate) items: Vec<Item>,
}

/// Parameter signature entry (drives the same arity/shape/dtype checks the
/// interpreter performs, in the same order).
#[derive(Debug, Clone)]
pub(crate) struct ParamSpec {
    pub(crate) name: String,
    pub(crate) shape: Vec<usize>,
    pub(crate) dtype: DType,
}

/// A compiled function: flat register program plus the metadata the VM
/// needs to validate arguments and allocate storage. Plain data —
/// `Send + Sync` — so evaluators can cache and share it across measurement
/// threads.
#[derive(Debug, Clone)]
pub struct CompiledFunc {
    pub(crate) name: String,
    pub(crate) params: Vec<ParamSpec>,
    /// Internal allocations (shape, dtype), slots after the params.
    pub(crate) allocs: Vec<(Vec<usize>, DType)>,
    /// Per storage slot: buffer name (error messages).
    pub(crate) slot_names: Vec<String>,
    /// Per storage slot: shape (checked stores).
    pub(crate) slot_shapes: Vec<Vec<usize>>,
    /// Per storage slot: row-major strides (checked stores).
    pub(crate) slot_strides: Vec<Vec<usize>>,
    pub(crate) n_iregs: usize,
    pub(crate) n_fregs: usize,
    pub(crate) body: Block,
    /// Native code for the function's [`Item::JitCall`]s, when a
    /// codegen backend compiled any loop nests (`None` on the plain
    /// interpreter/VM paths).
    pub(crate) jit: Option<std::sync::Arc<crate::codegen::JitProgram>>,
    /// Parallel-execution counters shared with the owning device
    /// ([`crate::pool::ParCounters`]); the VM records dispatches and
    /// sequential fallbacks here at execution time. `None` on paths
    /// that never parallelize (plain `compile`, the scalar rung).
    pub(crate) par: Option<std::sync::Arc<crate::pool::ParCounters>>,
}

impl CompiledFunc {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total instruction count (static, not dynamic).
    pub fn instr_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.items
                .iter()
                .map(|it| match it {
                    Item::Code(c) => c.len(),
                    Item::Loop { body, .. } => count(body),
                    Item::If { then, else_, .. } => count(then) + else_.as_ref().map_or(0, count),
                    Item::StridedLoop { pre, body, .. } => pre.len() + body.len(),
                    Item::MulAddLoop { pre, .. } => pre.len() + 1,
                    Item::JitCall { .. } => 1,
                })
                .sum()
        }
        count(&self.body)
    }

    /// Number of runtime bounds checks left after static elision (a proxy
    /// for how much of the index arithmetic was proven safe).
    pub fn bounds_check_count(&self) -> usize {
        fn in_code(c: &[Instr]) -> usize {
            c.iter()
                .filter(|i| matches!(i, Instr::Bound { .. } | Instr::StoreChecked { .. }))
                .count()
        }
        fn count(b: &Block) -> usize {
            b.items
                .iter()
                .map(|it| match it {
                    Item::Code(c) => in_code(c),
                    Item::Loop { body, .. } => count(body),
                    Item::If { then, else_, .. } => count(then) + else_.as_ref().map_or(0, count),
                    Item::StridedLoop { pre, body, .. } => in_code(pre) + in_code(body),
                    Item::MulAddLoop { pre, .. } => in_code(pre),
                    // Jitted nests contain no checks by construction.
                    Item::JitCall { .. } => 0,
                })
                .sum()
        }
        count(&self.body)
    }

    /// Number of innermost loops the block optimizer turned into
    /// strided-pointer-bump form (includes microkernel loops).
    pub fn strided_loop_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.items
                .iter()
                .map(|it| match it {
                    Item::Code(_) | Item::JitCall { .. } => 0,
                    Item::Loop { body, .. } => count(body),
                    Item::If { then, else_, .. } => count(then) + else_.as_ref().map_or(0, count),
                    Item::StridedLoop { .. } | Item::MulAddLoop { .. } => 1,
                })
                .sum()
        }
        count(&self.body)
    }

    /// Number of inner loops dispatched to the multiply-accumulate slice
    /// microkernel.
    pub fn microkernel_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.items
                .iter()
                .map(|it| match it {
                    Item::Code(_) | Item::StridedLoop { .. } | Item::JitCall { .. } => 0,
                    Item::Loop { body, .. } => count(body),
                    Item::If { then, else_, .. } => count(then) + else_.as_ref().map_or(0, count),
                    Item::MulAddLoop { .. } => 1,
                })
                .sum()
        }
        count(&self.body)
    }

    /// Number of schedule-vectorized inner loops running in
    /// strided-pointer-bump form (vectorized loops promoted further, to
    /// microkernels, are counted by [`CompiledFunc::microkernel_count`]).
    pub fn vectorized_fast_loop_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.items
                .iter()
                .map(|it| match it {
                    Item::Code(_) | Item::MulAddLoop { .. } | Item::JitCall { .. } => 0,
                    Item::Loop { body, .. } => count(body),
                    Item::If { then, else_, .. } => count(then) + else_.as_ref().map_or(0, count),
                    Item::StridedLoop { kind, .. } => {
                        matches!(kind, LoopKind::Vectorized { .. }) as usize
                    }
                })
                .sum()
        }
        count(&self.body)
    }

    /// Register file sizes `(int, float)`.
    pub fn reg_counts(&self) -> (usize, usize) {
        (self.n_iregs, self.n_fregs)
    }

    /// Number of loop nests compiled to native machine code (0 unless a
    /// [`crate::codegen::CodegenBackend`] processed this function).
    pub fn jit_nest_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.items
                .iter()
                .map(|it| match it {
                    Item::Code(_) | Item::StridedLoop { .. } | Item::MulAddLoop { .. } => 0,
                    Item::Loop { body, .. } => count(body),
                    Item::If { then, else_, .. } => count(then) + else_.as_ref().map_or(0, count),
                    Item::JitCall { .. } => 1,
                })
                .sum()
        }
        count(&self.body)
    }

    /// Machine-code bytes backing this function's jitted nests.
    pub fn jit_code_bytes(&self) -> usize {
        self.jit.as_ref().map_or(0, |p| p.code_bytes())
    }

    /// Packed-SIMD emission report of this function's jitted nests
    /// (`None` unless a [`crate::codegen::CodegenBackend`] processed
    /// this function). The tests use it to assert non-vacuity — that a
    /// kernel actually took the packed path — without going through a
    /// device's aggregate counters.
    pub fn jit_simd_report(&self) -> Option<&crate::codegen::SimdReport> {
        self.jit.as_ref().map(|p| p.simd_report())
    }

    /// `(proven, unproven)` schedule-parallel loop counts. Proven loops
    /// carry the analyzer's race-freedom certificate and are eligible
    /// for worker-pool dispatch; unproven ones always run sequentially.
    /// Loops the optimizer rewrote to strided/microkernel form are
    /// included (they execute sequentially regardless of proof).
    pub fn parallel_loop_counts(&self) -> (usize, usize) {
        fn count(b: &Block, acc: &mut (usize, usize)) {
            for it in &b.items {
                match it {
                    Item::Code(_) | Item::MulAddLoop { .. } | Item::JitCall { .. } => {}
                    Item::Loop { body, kind, .. } => {
                        tally(kind, acc);
                        count(body, acc);
                    }
                    Item::If { then, else_, .. } => {
                        count(then, acc);
                        if let Some(e) = else_ {
                            count(e, acc);
                        }
                    }
                    Item::StridedLoop { kind, .. } => tally(kind, acc),
                }
            }
        }
        fn tally(kind: &LoopKind, acc: &mut (usize, usize)) {
            match kind {
                LoopKind::Parallel { proven: true } => acc.0 += 1,
                LoopKind::Parallel { proven: false } => acc.1 += 1,
                _ => {}
            }
        }
        let mut acc = (0, 0);
        count(&self.body, &mut acc);
        acc
    }
}

/// Register class, mirroring the interpreter's dynamic `Value` class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cls {
    I,
    F,
}

struct BlockBuilder {
    items: Vec<Item>,
}

impl BlockBuilder {
    fn new() -> BlockBuilder {
        BlockBuilder { items: Vec::new() }
    }

    fn push_instr(&mut self, i: Instr) {
        if let Some(Item::Code(c)) = self.items.last_mut() {
            c.push(i);
        } else {
            self.items.push(Item::Code(vec![i]));
        }
    }
}

struct Compiler {
    /// Open block stack; index 0 is the function prologue. Pure
    /// instructions are emitted into the outermost block where all their
    /// operands are defined (loop-invariant code motion); anything that can
    /// fail or touch memory stays in the innermost block to preserve the
    /// interpreter's error ordering.
    blocks: Vec<BlockBuilder>,
    /// Per int register: def position (block stack index) and known-value
    /// interval for bounds-check elision (`None` = unknown).
    idef: Vec<u32>,
    ival: Vec<Option<(i64, i64)>>,
    /// Per float register: def position.
    fdef: Vec<u32>,
    /// Interned integer/float constants (defined once in the prologue).
    iconsts: HashMap<i64, Reg>,
    fconsts: HashMap<u64, Reg>,
    /// Loop variable id -> register.
    env: HashMap<u64, Reg>,
    /// Loop-variable ids the analyzer proved race-free (parallel loops
    /// only; empty on the plain `compile` path).
    par_proven: std::collections::HashSet<u64>,
    /// Loop-variable ids of vectorized loops the analyzer proved
    /// race-free (empty on the plain `compile` path); gates packed-SIMD
    /// codegen the same way `par_proven` gates pool dispatch.
    vec_proven: std::collections::HashSet<u64>,
    /// Buffer id / TE op id -> storage slot.
    buf_slot: HashMap<u64, u16>,
    op_slot: HashMap<u64, u16>,
    slot_names: Vec<String>,
    slot_shapes: Vec<Vec<usize>>,
    slot_strides: Vec<Vec<usize>>,
}

fn reject<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError(msg.into()))
}

impl Compiler {
    fn top(&self) -> usize {
        self.blocks.len() - 1
    }

    fn ireg_at(&mut self, def: usize, ival: Option<(i64, i64)>) -> Reg {
        let r = self.idef.len() as Reg;
        self.idef.push(def as u32);
        self.ival.push(ival);
        r
    }

    fn freg_at(&mut self, def: usize) -> Reg {
        let r = self.fdef.len() as Reg;
        self.fdef.push(def as u32);
        r
    }

    fn emit_at(&mut self, at: usize, i: Instr) {
        debug_assert!(at < self.blocks.len());
        self.blocks[at].push_instr(i);
    }

    fn emit(&mut self, i: Instr) {
        let top = self.top();
        self.emit_at(top, i);
    }

    /// Interned constant: defined once in the prologue (def position 0).
    fn iconst(&mut self, v: i64) -> Reg {
        if let Some(&r) = self.iconsts.get(&v) {
            return r;
        }
        let r = self.ireg_at(0, Some((v, v)));
        self.emit_at(0, Instr::IConst(r, v));
        self.iconsts.insert(v, r);
        r
    }

    fn fconst(&mut self, v: f64) -> Reg {
        if let Some(&r) = self.fconsts.get(&v.to_bits()) {
            return r;
        }
        let r = self.freg_at(0);
        self.emit_at(0, Instr::FConst(r, v));
        self.fconsts.insert(v.to_bits(), r);
        r
    }

    /// Exact value of an int register, when statically known.
    fn const_of(&self, r: Reg) -> Option<i64> {
        match self.ival[r as usize] {
            Some((lo, hi)) if lo == hi => Some(lo),
            _ => None,
        }
    }

    /// Coerce to the float file (`Value::as_f64`); pure, hoistable.
    fn coerce_f(&mut self, r: Reg, c: Cls) -> Reg {
        match c {
            Cls::F => r,
            Cls::I => {
                if let Some(v) = self.const_of(r) {
                    return self.fconst(v as f64);
                }
                let at = self.idef[r as usize] as usize;
                let dst = self.freg_at(at);
                self.emit_at(at, Instr::IToF(dst, r));
                dst
            }
        }
    }

    /// Coerce to the int file (`Value::as_i64`); pure, hoistable.
    fn coerce_i(&mut self, r: Reg, c: Cls) -> Reg {
        match c {
            Cls::I => r,
            Cls::F => {
                let at = self.fdef[r as usize] as usize;
                let dst = self.ireg_at(at, None);
                self.emit_at(at, Instr::FToI(dst, r));
                dst
            }
        }
    }

    /// Truthiness as a raw int register (`truthy`): int values are used
    /// directly (the VM tests `!= 0`), floats go through [`Instr::FBool`].
    fn truthy(&mut self, r: Reg, c: Cls) -> Reg {
        match c {
            Cls::I => r,
            Cls::F => {
                let at = self.fdef[r as usize] as usize;
                let dst = self.ireg_at(at, Some((0, 1)));
                self.emit_at(at, Instr::FBool(dst, r));
                dst
            }
        }
    }

    /// Can evaluating `e` produce an `ExecError` (or is it outside what we
    /// compile)? Conservative: used to reject short-circuit (`And`/`Or`)
    /// and lazy (`Select`) positions whose skipped evaluation the flat
    /// program cannot reproduce.
    fn failable(&self, e: &PrimExpr) -> bool {
        match e {
            PrimExpr::IntImm(..) | PrimExpr::FloatImm(..) | PrimExpr::BoolImm(_) => false,
            PrimExpr::Var(v) => !self.env.contains_key(&v.id),
            PrimExpr::Binary(op, a, b) => {
                let int_div = !e.dtype().is_float()
                    && matches!(op, BinOp::Div | BinOp::FloorDiv | BinOp::FloorMod)
                    && b.as_int().is_none_or(|y| y == 0);
                int_div || self.failable(a) || self.failable(b)
            }
            PrimExpr::Cmp(_, a, b) | PrimExpr::And(a, b) | PrimExpr::Or(a, b) => {
                self.failable(a) || self.failable(b)
            }
            PrimExpr::Not(a) | PrimExpr::Cast(_, a) => self.failable(a),
            PrimExpr::Select(c, t, f) => self.failable(c) || self.failable(t) || self.failable(f),
            PrimExpr::Call(_, args) => args.iter().any(|a| self.failable(a)),
            PrimExpr::TensorRead(..) | PrimExpr::Reduce { .. } => true,
        }
    }

    /// Integer binary op with constant folding, interval tracking and
    /// hoisting. Division by a non-constant (or zero-constant) divisor is
    /// pinned to the innermost block so the interpreter's error ordering
    /// survives.
    fn ibin(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        let (ca, cb) = (self.const_of(a), self.const_of(b));
        if let (Some(x), Some(y)) = (ca, cb) {
            let folded = match op {
                BinOp::Add => x.checked_add(y),
                BinOp::Sub => x.checked_sub(y),
                BinOp::Mul => x.checked_mul(y),
                BinOp::Div if y != 0 => x.checked_div(y),
                BinOp::FloorDiv if y != 0 => x.checked_div_euclid(y),
                BinOp::FloorMod if y != 0 => x.checked_rem_euclid(y),
                BinOp::Min => Some(x.min(y)),
                BinOp::Max => Some(x.max(y)),
                _ => None,
            };
            if let Some(v) = folded {
                return self.iconst(v);
            }
        }
        let failable = matches!(op, BinOp::Div | BinOp::FloorDiv | BinOp::FloorMod)
            && cb.is_none_or(|y| y == 0);
        let ia = self.ival[a as usize];
        let ib = self.ival[b as usize];
        let interval = interval_of(op, ia, ib, cb);
        let at = if failable {
            self.top()
        } else {
            (self.idef[a as usize].max(self.idef[b as usize])) as usize
        };
        let dst = self.ireg_at(at, interval);
        self.emit_at(at, Instr::IBin(op, dst, a, b));
        dst
    }

    fn compile_expr(&mut self, e: &PrimExpr) -> Result<(Reg, Cls), CompileError> {
        match e {
            PrimExpr::IntImm(v, _) => Ok((self.iconst(*v), Cls::I)),
            PrimExpr::FloatImm(v, _) => Ok((self.fconst(*v), Cls::F)),
            PrimExpr::BoolImm(b) => Ok((self.iconst(*b as i64), Cls::I)),
            PrimExpr::Var(v) => match self.env.get(&v.id) {
                Some(&r) => Ok((r, Cls::I)),
                None => reject(format!("unbound variable `{}`", v.name)),
            },
            PrimExpr::Binary(op, a, b) => {
                let dt = e.dtype();
                let (ra, ca) = self.compile_expr(a)?;
                let (rb, cb) = self.compile_expr(b)?;
                if dt.is_float() {
                    let fa = self.coerce_f(ra, ca);
                    let fb = self.coerce_f(rb, cb);
                    let at = (self.fdef[fa as usize].max(self.fdef[fb as usize])) as usize;
                    let dst = self.freg_at(at);
                    let instr = if dt == DType::F32 {
                        Instr::FBin32(*op, dst, fa, fb)
                    } else {
                        Instr::FBin(*op, dst, fa, fb)
                    };
                    self.emit_at(at, instr);
                    Ok((dst, Cls::F))
                } else {
                    let ia = self.coerce_i(ra, ca);
                    let ib = self.coerce_i(rb, cb);
                    Ok((self.ibin(*op, ia, ib), Cls::I))
                }
            }
            PrimExpr::Cmp(op, a, b) => {
                let float = a.dtype().unify(b.dtype()).is_float();
                let (ra, ca) = self.compile_expr(a)?;
                let (rb, cb) = self.compile_expr(b)?;
                if float {
                    let fa = self.coerce_f(ra, ca);
                    let fb = self.coerce_f(rb, cb);
                    let at = (self.fdef[fa as usize].max(self.fdef[fb as usize])) as usize;
                    let dst = self.ireg_at(at, Some((0, 1)));
                    self.emit_at(at, Instr::FCmp(*op, dst, fa, fb));
                    Ok((dst, Cls::I))
                } else {
                    let ia = self.coerce_i(ra, ca);
                    let ib = self.coerce_i(rb, cb);
                    if let (Some(x), Some(y)) = (self.const_of(ia), self.const_of(ib)) {
                        let r = match op {
                            CmpOp::Eq => x == y,
                            CmpOp::Ne => x != y,
                            CmpOp::Lt => x < y,
                            CmpOp::Le => x <= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ge => x >= y,
                        };
                        return Ok((self.iconst(r as i64), Cls::I));
                    }
                    let at = (self.idef[ia as usize].max(self.idef[ib as usize])) as usize;
                    let dst = self.ireg_at(at, Some((0, 1)));
                    self.emit_at(at, Instr::ICmp(*op, dst, ia, ib));
                    Ok((dst, Cls::I))
                }
            }
            PrimExpr::And(a, b) | PrimExpr::Or(a, b) => {
                // The interpreter short-circuits: `b` is only evaluated when
                // `a` doesn't decide the result. The flat program evaluates
                // both, which is only unobservable when `b` cannot fail.
                if self.failable(b) {
                    return reject("short-circuit operand may fail");
                }
                let (ra, ca) = self.compile_expr(a)?;
                let ta = self.truthy(ra, ca);
                let (rb, cb) = self.compile_expr(b)?;
                let tb = self.truthy(rb, cb);
                let at = (self.idef[ta as usize].max(self.idef[tb as usize])) as usize;
                let dst = self.ireg_at(at, Some((0, 1)));
                let instr = if matches!(e, PrimExpr::And(..)) {
                    Instr::And(dst, ta, tb)
                } else {
                    Instr::Or(dst, ta, tb)
                };
                self.emit_at(at, instr);
                Ok((dst, Cls::I))
            }
            PrimExpr::Not(a) => {
                let (ra, ca) = self.compile_expr(a)?;
                let ta = self.truthy(ra, ca);
                let at = self.idef[ta as usize] as usize;
                let dst = self.ireg_at(at, Some((0, 1)));
                self.emit_at(at, Instr::Not(dst, ta));
                Ok((dst, Cls::I))
            }
            PrimExpr::Select(c, t, f) => {
                // The interpreter evaluates only the taken branch; eager
                // evaluation is only unobservable when both are pure.
                if self.failable(t) || self.failable(f) {
                    return reject("select branch may fail");
                }
                let (rc, cc) = self.compile_expr(c)?;
                let tc = self.truthy(rc, cc);
                let (rt, ct) = self.compile_expr(t)?;
                let (rf, cf) = self.compile_expr(f)?;
                if ct == Cls::F || cf == Cls::F {
                    let ft = self.coerce_f(rt, ct);
                    let ff = self.coerce_f(rf, cf);
                    let at = (self.idef[tc as usize] as usize)
                        .max(self.fdef[ft as usize] as usize)
                        .max(self.fdef[ff as usize] as usize);
                    let dst = self.freg_at(at);
                    self.emit_at(at, Instr::FSel(dst, tc, ft, ff));
                    Ok((dst, Cls::F))
                } else {
                    let at = (self.idef[tc as usize] as usize)
                        .max(self.idef[rt as usize] as usize)
                        .max(self.idef[rf as usize] as usize);
                    let interval = match (self.ival[rt as usize], self.ival[rf as usize]) {
                        (Some((a, b)), Some((x, y))) => Some((a.min(x), b.max(y))),
                        _ => None,
                    };
                    let dst = self.ireg_at(at, interval);
                    self.emit_at(at, Instr::ISel(dst, tc, rt, rf));
                    Ok((dst, Cls::I))
                }
            }
            PrimExpr::Cast(dt, a) => {
                let (r, c) = self.compile_expr(a)?;
                match dt {
                    DType::F32 => match c {
                        Cls::I => {
                            let at = self.idef[r as usize] as usize;
                            let dst = self.freg_at(at);
                            self.emit_at(at, Instr::IToF32(dst, r));
                            Ok((dst, Cls::F))
                        }
                        Cls::F => {
                            let at = self.fdef[r as usize] as usize;
                            let dst = self.freg_at(at);
                            self.emit_at(at, Instr::F32Round(dst, r));
                            Ok((dst, Cls::F))
                        }
                    },
                    DType::F64 => Ok((self.coerce_f(r, c), Cls::F)),
                    // Int/bool casts are `as_i64`: identity on ints (no
                    // width truncation, matching the interpreter's i64-wide
                    // `Value`), truncation on floats.
                    _ => Ok((self.coerce_i(r, c), Cls::I)),
                }
            }
            PrimExpr::Call(intr, args) => {
                if args.len() < intr.arity() {
                    return reject(format!("intrinsic {intr:?} needs {} args", intr.arity()));
                }
                let round = e.dtype() == DType::F32;
                let (rx, cx) = self.compile_expr(&args[0])?;
                let fx = self.coerce_f(rx, cx);
                if *intr == Intrinsic::Pow {
                    let (ry, cy) = self.compile_expr(&args[1])?;
                    let fy = self.coerce_f(ry, cy);
                    let at = (self.fdef[fx as usize].max(self.fdef[fy as usize])) as usize;
                    let dst = self.freg_at(at);
                    self.emit_at(at, Instr::Call2(*intr, dst, fx, fy, round));
                    Ok((dst, Cls::F))
                } else {
                    let at = self.fdef[fx as usize] as usize;
                    let dst = self.freg_at(at);
                    self.emit_at(at, Instr::Call1(*intr, dst, fx, round));
                    Ok((dst, Cls::F))
                }
            }
            PrimExpr::TensorRead(t, idx) => self.compile_read(t, idx),
            PrimExpr::Reduce { .. } => reject("Reduce must be lowered before execution"),
        }
    }

    /// Compile a tensor read: per-dimension index code and bounds checks
    /// interleaved exactly like the interpreter (so a bad index in dim 1
    /// never masks an out-of-bounds in dim 0), address arithmetic hoisted.
    fn compile_read(&mut self, t: &Tensor, idx: &[PrimExpr]) -> Result<(Reg, Cls), CompileError> {
        let Some(&slot) = self.op_slot.get(&t.op.id) else {
            return reject(format!("tensor `{}` has no storage", t.name()));
        };
        let shape = self.slot_shapes[slot as usize].clone();
        if idx.len() != shape.len() {
            return reject(format!(
                "read of `{}` with {} indices, rank {}",
                t.name(),
                idx.len(),
                shape.len()
            ));
        }
        let mut regs: Vec<Reg> = Vec::with_capacity(idx.len());
        for (d, ie) in idx.iter().enumerate() {
            let (r, c) = self.compile_expr(ie)?;
            let ir = self.coerce_i(r, c);
            regs.push(ir);
            let extent = shape[d] as i64;
            let proven = matches!(self.ival[ir as usize], Some((lo, hi)) if lo >= 0 && hi < extent);
            if !proven {
                self.emit(Instr::Bound {
                    buf: slot,
                    extent,
                    idx: regs.clone().into_boxed_slice(),
                });
            }
        }
        let strides = self.slot_strides[slot as usize].clone();
        let addr = self.linear_addr(&regs, &strides);
        let top = self.top();
        let dst = self.freg_at(top);
        // Loads stay in the innermost block even when the address is
        // invariant: the buffer may be written inside the loop.
        self.emit(Instr::Load(dst, slot, addr));
        Ok((dst, Cls::F))
    }

    /// Row-major linear address as hoistable scalar arithmetic. Terms are
    /// summed outermost-defined first so partial sums settle in the
    /// shallowest possible loop (integer adds: reassociation is exact).
    fn linear_addr(&mut self, idx: &[Reg], strides: &[usize]) -> Reg {
        let mut terms: Vec<Reg> = Vec::with_capacity(idx.len());
        for (d, &r) in idx.iter().enumerate() {
            let s = strides[d] as i64;
            if s == 0 {
                continue; // zero-sized trailing dim: contributes nothing
            }
            if s == 1 {
                terms.push(r);
            } else {
                let sc = self.iconst(s);
                terms.push(self.ibin(BinOp::Mul, r, sc));
            }
        }
        if terms.is_empty() {
            return self.iconst(0);
        }
        terms.sort_by_key(|&r| self.idef[r as usize]);
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = self.ibin(BinOp::Add, acc, t);
        }
        acc
    }

    fn compile_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::For {
                var,
                min,
                extent,
                body,
                kind,
            } => {
                self.blocks.push(BlockBuilder::new());
                let at = self.top();
                let hi = if *extent >= 1 {
                    min.checked_add(extent - 1)
                } else {
                    Some(*min)
                };
                let vr = self.ireg_at(at, hi.map(|h| (*min, h)));
                let saved = self.env.insert(var.id, vr);
                let res = self.compile_stmt(body);
                match saved {
                    Some(prev) => {
                        self.env.insert(var.id, prev);
                    }
                    None => {
                        self.env.remove(&var.id);
                    }
                }
                let blk = self.blocks.pop().expect("loop block");
                res?;
                let item = Item::Loop {
                    var: vr,
                    min: *min,
                    extent: *extent,
                    body: Block { items: blk.items },
                    kind: match kind {
                        tvm_tir::ForKind::Parallel => LoopKind::Parallel {
                            proven: self.par_proven.contains(&var.id),
                        },
                        tvm_tir::ForKind::Vectorized => LoopKind::Vectorized {
                            proven: self.vec_proven.contains(&var.id),
                        },
                        _ => LoopKind::Serial,
                    },
                };
                self.blocks
                    .last_mut()
                    .expect("parent block")
                    .items
                    .push(item);
                Ok(())
            }
            Stmt::BufferStore {
                buffer,
                indices,
                value,
            } => {
                // The interpreter evaluates the value before the indices.
                let (rv, cv) = self.compile_expr(value)?;
                let fv = self.coerce_f(rv, cv);
                let Some(&slot) = self.buf_slot.get(&buffer.id) else {
                    return reject(format!("no storage for `{}`", buffer.name));
                };
                let shape = self.slot_shapes[slot as usize].clone();
                if indices.len() != shape.len() {
                    return reject(format!(
                        "store to `{}` with {} indices, rank {}",
                        buffer.name,
                        indices.len(),
                        shape.len()
                    ));
                }
                let mut regs: Vec<Reg> = Vec::with_capacity(indices.len());
                for ie in indices {
                    let (r, c) = self.compile_expr(ie)?;
                    regs.push(self.coerce_i(r, c));
                }
                let all_proven = regs.iter().zip(shape.iter()).all(|(&r, &ext)| {
                    matches!(self.ival[r as usize], Some((lo, hi)) if lo >= 0 && hi < ext as i64)
                });
                if all_proven {
                    let strides = self.slot_strides[slot as usize].clone();
                    let addr = self.linear_addr(&regs, &strides);
                    self.emit(Instr::Store(slot, addr, fv));
                } else {
                    self.emit(Instr::StoreChecked {
                        buf: slot,
                        idx: regs.into_boxed_slice(),
                        val: fv,
                    });
                }
                Ok(())
            }
            Stmt::IfThenElse { cond, then, else_ } => {
                let (rc, cc) = self.compile_expr(cond)?;
                // A condition the compiler already decided needs no branch.
                if let Some(v) = if cc == Cls::I {
                    self.const_of(rc)
                } else {
                    None
                } {
                    return if v != 0 {
                        self.compile_stmt(then)
                    } else if let Some(e) = else_ {
                        self.compile_stmt(e)
                    } else {
                        Ok(())
                    };
                }
                let tc = self.truthy(rc, cc);
                self.blocks.push(BlockBuilder::new());
                let res = self.compile_stmt(then);
                let tb = self.blocks.pop().expect("then block");
                res?;
                let eb = match else_ {
                    Some(e) => {
                        self.blocks.push(BlockBuilder::new());
                        let res = self.compile_stmt(e);
                        let b = self.blocks.pop().expect("else block");
                        res?;
                        Some(Block { items: b.items })
                    }
                    None => None,
                };
                let item = Item::If {
                    cond: tc,
                    then: Block { items: tb.items },
                    else_: eb,
                };
                self.blocks
                    .last_mut()
                    .expect("parent block")
                    .items
                    .push(item);
                Ok(())
            }
            Stmt::Seq(items) => {
                for st in items {
                    self.compile_stmt(st)?;
                }
                Ok(())
            }
            Stmt::Evaluate(e) => {
                // Evaluated for effect only; a pure expression compiles to
                // dead code, a failable one keeps its error behaviour.
                self.compile_expr(e)?;
                Ok(())
            }
            Stmt::Nop => Ok(()),
        }
    }
}

/// Interval arithmetic for int ops (`None` = unknown). Overflow makes the
/// interval unknown rather than wrong.
fn interval_of(
    op: BinOp,
    a: Option<(i64, i64)>,
    b: Option<(i64, i64)>,
    bconst: Option<i64>,
) -> Option<(i64, i64)> {
    match op {
        BinOp::Add => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            Some((al.checked_add(bl)?, ah.checked_add(bh)?))
        }
        BinOp::Sub => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            Some((al.checked_sub(bh)?, ah.checked_sub(bl)?))
        }
        BinOp::Mul => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            let p = [
                al.checked_mul(bl)?,
                al.checked_mul(bh)?,
                ah.checked_mul(bl)?,
                ah.checked_mul(bh)?,
            ];
            Some((*p.iter().min().unwrap(), *p.iter().max().unwrap()))
        }
        BinOp::Min => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            Some((al.min(bl), ah.min(bh)))
        }
        BinOp::Max => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            Some((al.max(bl), ah.max(bh)))
        }
        // Monotone for positive constant divisors; that covers lowering's
        // split-factor arithmetic.
        BinOp::Div => {
            let c = bconst.filter(|&c| c > 0)?;
            let (al, ah) = a?;
            Some((al / c, ah / c))
        }
        BinOp::FloorDiv => {
            let c = bconst.filter(|&c| c > 0)?;
            let (al, ah) = a?;
            Some((al.div_euclid(c), ah.div_euclid(c)))
        }
        BinOp::FloorMod => {
            let c = bconst.filter(|&c| c > 0)?;
            Some((0, c - 1))
        }
    }
}

/// Compile `func` to a register program, or explain why it must run on the
/// interpreter instead.
///
/// Every schedule-parallel loop is marked *unproven* (it executes
/// sequentially): this entry backs the scalar rung, whose `vm/v2`
/// fingerprint promises sequential semantics. The optimized pipeline
/// threads race-freedom proofs through [`compile_with_proofs`].
pub fn compile(func: &PrimFunc) -> Result<CompiledFunc, CompileError> {
    let empty = std::collections::HashSet::new();
    compile_with_proofs(func, &empty, &empty)
}

/// [`compile`], with the analyzer's race-freedom proof sets
/// ([`tvm_tir::analyze::deps::race_free_parallel_vars`] /
/// [`tvm_tir::analyze::deps::race_free_vectorized_vars`]) threaded into
/// the loop metadata: a `ForKind::Parallel` loop whose variable id is in
/// `par_proven` compiles to `LoopKind::Parallel { proven: true }` and
/// becomes eligible for worker-pool dispatch; a `ForKind::Vectorized`
/// loop in `vec_proven` compiles to `LoopKind::Vectorized { proven:
/// true }` and becomes eligible for packed-SIMD codegen.
pub(crate) fn compile_with_proofs(
    func: &PrimFunc,
    par_proven: &std::collections::HashSet<u64>,
    vec_proven: &std::collections::HashSet<u64>,
) -> Result<CompiledFunc, CompileError> {
    let n_slots = func.params.len() + func.allocs.len();
    if n_slots > u16::MAX as usize {
        return reject("too many buffers");
    }
    let mut buf_slot = HashMap::new();
    let mut op_slot = HashMap::new();
    let mut slot_names = Vec::with_capacity(n_slots);
    let mut slot_shapes = Vec::with_capacity(n_slots);
    let mut slot_strides = Vec::with_capacity(n_slots);
    for (i, b) in func.params.iter().chain(func.allocs.iter()).enumerate() {
        buf_slot.insert(b.id, i as u16);
        if b.source_op != 0 {
            op_slot.insert(b.source_op, i as u16);
        }
        slot_names.push(b.name.clone());
        slot_shapes.push(b.shape.clone());
        slot_strides.push(b.strides());
    }
    let mut c = Compiler {
        blocks: vec![BlockBuilder::new()],
        idef: Vec::new(),
        ival: Vec::new(),
        fdef: Vec::new(),
        iconsts: HashMap::new(),
        fconsts: HashMap::new(),
        env: HashMap::new(),
        par_proven: par_proven.clone(),
        vec_proven: vec_proven.clone(),
        buf_slot,
        op_slot,
        slot_names,
        slot_shapes,
        slot_strides,
    };
    c.compile_stmt(&func.body)?;
    debug_assert_eq!(c.blocks.len(), 1);
    let root = c.blocks.pop().expect("root block");
    Ok(CompiledFunc {
        name: func.name.clone(),
        params: func
            .params
            .iter()
            .map(|b| ParamSpec {
                name: b.name.clone(),
                shape: b.shape.clone(),
                dtype: b.dtype,
            })
            .collect(),
        allocs: func
            .allocs
            .iter()
            .map(|b| (b.shape.clone(), b.dtype))
            .collect(),
        slot_names: c.slot_names,
        slot_shapes: c.slot_shapes,
        slot_strides: c.slot_strides,
        n_iregs: c.idef.len(),
        n_fregs: c.fdef.len(),
        body: Block { items: root.items },
        jit: None,
        par: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::{compute, placeholder, reduce_axis, sum, Schedule};
    use tvm_tir::lower::lower;

    fn matmul_func(n: usize, tile: i64) -> PrimFunc {
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let mut s = Schedule::create(&[c.clone()]);
        if tile > 1 {
            let (y, x) = (c.axis(0), c.axis(1));
            let (yo, yi) = s.split(&c, &y, tile);
            let (xo, xi) = s.split(&c, &x, tile);
            s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);
        }
        lower(&s, &[a, b, c], "mm")
    }

    #[test]
    fn compiles_lowered_matmul() {
        let f = matmul_func(8, 1);
        let cf = compile(&f).expect("compile");
        assert_eq!(cf.name(), "mm");
        assert!(cf.instr_count() > 0);
        let (ni, nf) = cf.reg_counts();
        assert!(ni > 0 && nf > 0);
    }

    #[test]
    fn divisible_tiling_elides_all_bounds_checks() {
        // Every index is affine in loop vars with proven ranges, so the
        // compiler should prove all accesses in-bounds.
        let f = matmul_func(16, 4);
        let cf = compile(&f).expect("compile");
        assert_eq!(
            cf.bounds_check_count(),
            0,
            "all accesses of a divisible tiling should be proven safe"
        );
    }

    #[test]
    fn unlowered_reduce_is_rejected() {
        // Built by hand: the builder's verifier would refuse a residual
        // Reduce, but defence in depth matters for hand-assembled TIR.
        let buf = tvm_tir::Buffer::new("A", vec![1usize], DType::F32);
        let f = PrimFunc {
            name: "bad".into(),
            params: vec![buf.clone()],
            allocs: vec![],
            body: Stmt::BufferStore {
                buffer: buf,
                indices: vec![PrimExpr::IntImm(0, DType::I64)],
                value: PrimExpr::Reduce {
                    combiner: tvm_te::Combiner::Sum,
                    source: std::sync::Arc::new(PrimExpr::FloatImm(0.0, DType::F32)),
                    axes: vec![],
                },
            },
        };
        assert!(compile(&f).is_err());
    }

    #[test]
    fn constant_folding_and_interning() {
        use tvm_tir::builder::{ser, store, FuncBuilder};
        let a = placeholder([8], DType::F32, "A");
        let mut fb = FuncBuilder::new("fold");
        let ab = fb.param(&a);
        // A[i] = A[(i*2 + 4 - 4) / 2]: the index simplifies but the divide
        // is by a nonzero literal, so the whole chain stays compilable.
        let body = ser("i", 8, |i| {
            let idx = (i.clone() * 2i64 + 4i64 - 4i64) / 2i64;
            store(&ab, &[idx], a.at(&[i]) + 0i64)
        });
        let f = fb.build(body);
        let cf = compile(&f).expect("compile");
        assert!(cf.instr_count() < 40);
    }
}
