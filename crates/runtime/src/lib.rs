#![warn(missing_docs)]
//! # tvm-runtime — tensors and a CPU interpreter for lowered TIR
//!
//! Executes [`tvm_tir::PrimFunc`]s produced by lowering (or the imperative
//! builder) against [`NDArray`] arguments. This is the *real numerics* path
//! of the reproduction: every candidate configuration the tuners propose
//! can be validated against PolyBench reference kernels at small sizes,
//! and timed on the host CPU.
//!
//! Execution goes through a compiled engine: [`compile`] turns a lowered
//! function into a flat register program once, and the [`vm`] executes it
//! allocation-free — typically well over an order of magnitude faster than
//! the tree-walking [`interp`], which is kept as the differential-testing
//! oracle and as the fallback for anything the compiler rejects.
//!
//! The paper's large-scale measurements (N = 2000/4000 on A100 GPUs) run
//! against the analytical device in the sibling `gpu-sim` crate instead;
//! both implement the same [`device::Device`] trait.
//!
//! ```
//! use tvm_te::{compute, placeholder, DType, Schedule};
//! use tvm_tir::lower::lower;
//! use tvm_runtime::{Module, NDArray};
//!
//! let a = placeholder([4], DType::F32, "A");
//! let b = compute([4], "B", |i| a.at(&[i[0].clone()]) + 1i64);
//! let s = Schedule::create(&[b.clone()]);
//! let m = Module::new(lower(&s, &[a, b], "add1"));
//! let x = NDArray::from_f32(&[4], &[1.0, 2.0, 3.0, 4.0]);
//! let mut args = [x, NDArray::zeros(&[4], DType::F32)];
//! m.run(&mut args).unwrap();
//! assert_eq!(args[1].to_f64_vec(), vec![2.0, 3.0, 4.0, 5.0]);
//! ```

pub mod codegen;
pub mod compile;
pub mod device;
pub mod interp;
pub mod module;
pub mod ndarray;
pub mod optimize;
pub mod pool;
pub mod vm;

pub use codegen::{
    default_backend, jit_fingerprint, scalar_backend, CodegenBackend, JitCounters, JitProgram,
    JitStats, NoopBackend, SimdCounters, SimdReport, SimdStats, JIT_VERSION,
};
pub use compile::{compile, CompileError, CompiledFunc};
pub use device::{CpuDevice, Device, DeviceError};
pub use module::Module;
pub use ndarray::{NDArray, TensorData};
pub use optimize::{compile_optimized, engine_fingerprint};
pub use pool::{ParCounters, ParStats, PAR_VERSION};
