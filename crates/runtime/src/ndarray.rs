//! Dense row-major host tensors.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tvm_te::DType;

/// Typed element storage of an [`NDArray`].
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// `float32` elements.
    F32(Vec<f32>),
    /// `float64` elements.
    F64(Vec<f64>),
    /// `int32` elements.
    I32(Vec<i32>),
    /// `int64` elements.
    I64(Vec<i64>),
}

impl TensorData {
    fn len(&self) -> usize {
        match self {
            TensorData::F32(v) => v.len(),
            TensorData::F64(v) => v.len(),
            TensorData::I32(v) => v.len(),
            TensorData::I64(v) => v.len(),
        }
    }

    fn dtype(&self) -> DType {
        match self {
            TensorData::F32(_) => DType::F32,
            TensorData::F64(_) => DType::F64,
            TensorData::I32(_) => DType::I32,
            TensorData::I64(_) => DType::I64,
        }
    }
}

/// A dense, row-major, host-resident tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct NDArray {
    shape: Vec<usize>,
    data: TensorData,
}

impl NDArray {
    /// Zero-filled array.
    pub fn zeros(shape: &[usize], dtype: DType) -> NDArray {
        let n: usize = shape.iter().product();
        let data = match dtype {
            DType::F32 => TensorData::F32(vec![0.0; n]),
            DType::F64 => TensorData::F64(vec![0.0; n]),
            DType::I32 => TensorData::I32(vec![0; n]),
            DType::I64 => TensorData::I64(vec![0; n]),
            DType::Bool => panic!("bool tensors are not supported"),
        };
        NDArray {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Array from `f32` values (length must match the shape).
    pub fn from_f32(shape: &[usize], values: &[f32]) -> NDArray {
        assert_eq!(shape.iter().product::<usize>(), values.len());
        NDArray {
            shape: shape.to_vec(),
            data: TensorData::F32(values.to_vec()),
        }
    }

    /// Array from `f64` values.
    pub fn from_f64(shape: &[usize], values: &[f64]) -> NDArray {
        assert_eq!(shape.iter().product::<usize>(), values.len());
        NDArray {
            shape: shape.to_vec(),
            data: TensorData::F64(values.to_vec()),
        }
    }

    /// Deterministic uniform-random array in `[lo, hi)`.
    pub fn random(shape: &[usize], dtype: DType, seed: u64, lo: f64, hi: f64) -> NDArray {
        let n: usize = shape.iter().product();
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = match dtype {
            DType::F32 => TensorData::F32((0..n).map(|_| rng.gen_range(lo..hi) as f32).collect()),
            DType::F64 => TensorData::F64((0..n).map(|_| rng.gen_range(lo..hi)).collect()),
            DType::I32 => TensorData::I32(
                (0..n)
                    .map(|_| rng.gen_range(lo as i32..hi.max(lo + 1.0) as i32))
                    .collect(),
            ),
            DType::I64 => TensorData::I64(
                (0..n)
                    .map(|_| rng.gen_range(lo as i64..hi.max(lo + 1.0) as i64))
                    .collect(),
            ),
            DType::Bool => panic!("bool tensors are not supported"),
        };
        NDArray {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Build an array by evaluating `f` at every multi-index (row-major
    /// order) — the PolyBench initialization pattern.
    pub fn from_fn(shape: &[usize], dtype: DType, mut f: impl FnMut(&[usize]) -> f64) -> NDArray {
        let mut a = NDArray::zeros(shape, dtype);
        let n = a.numel();
        let mut idx = vec![0usize; shape.len()];
        for lin in 0..n {
            let mut rem = lin;
            for d in (0..shape.len()).rev() {
                idx[d] = rem % shape[d];
                rem /= shape[d];
            }
            a.set_f64_linear(lin, f(&idx));
        }
        a
    }

    /// Shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read element at a linear offset, widened to `f64`.
    #[inline]
    pub fn get_f64_linear(&self, off: usize) -> f64 {
        match &self.data {
            TensorData::F32(v) => v[off] as f64,
            TensorData::F64(v) => v[off],
            TensorData::I32(v) => v[off] as f64,
            TensorData::I64(v) => v[off] as f64,
        }
    }

    /// Write element at a linear offset, narrowing from `f64`.
    #[inline]
    pub fn set_f64_linear(&mut self, off: usize, val: f64) {
        match &mut self.data {
            TensorData::F32(v) => v[off] = val as f32,
            TensorData::F64(v) => v[off] = val,
            TensorData::I32(v) => v[off] = val as i32,
            TensorData::I64(v) => v[off] = val as i64,
        }
    }

    /// Row-major strides in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.shape.len()];
        for d in (0..self.shape.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.shape[d + 1];
        }
        s
    }

    /// Linear offset of a multi-index.
    pub fn offset(&self, idx: &[usize]) -> usize {
        let strides = self.strides();
        idx.iter().zip(&strides).map(|(i, s)| i * s).sum()
    }

    /// Read by multi-index.
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.get_f64_linear(self.offset(idx))
    }

    /// Write by multi-index.
    pub fn set(&mut self, idx: &[usize], val: f64) {
        let off = self.offset(idx);
        self.set_f64_linear(off, val);
    }

    /// All elements widened to `f64`, row-major.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.numel()).map(|i| self.get_f64_linear(i)).collect()
    }

    /// Borrow `f32` storage (panics for other dtypes).
    pub fn as_f32(&self) -> &[f32] {
        match &self.data {
            TensorData::F32(v) => v,
            other => panic!("expected f32 storage, found {:?}", other.dtype()),
        }
    }

    /// Borrow `f32` storage mutably.
    pub fn as_f32_mut(&mut self) -> &mut [f32] {
        match &mut self.data {
            TensorData::F32(v) => v,
            other => panic!("expected f32 storage, found {:?}", other.dtype()),
        }
    }

    /// Borrow `f64` storage (panics for other dtypes).
    pub fn as_f64(&self) -> &[f64] {
        match &self.data {
            TensorData::F64(v) => v,
            other => panic!("expected f64 storage, found {:?}", other.dtype()),
        }
    }

    /// Borrow `f64` storage mutably.
    pub fn as_f64_mut(&mut self) -> &mut [f64] {
        match &mut self.data {
            TensorData::F64(v) => v,
            other => panic!("expected f64 storage, found {:?}", other.dtype()),
        }
    }

    /// Raw base pointer of the element storage, for the JIT slot table.
    /// Valid until the array is dropped or its storage resized; the VM
    /// never resizes storage while a compiled function executes.
    pub(crate) fn base_ptr_mut(&mut self) -> *mut u8 {
        match &mut self.data {
            TensorData::F32(v) => v.as_mut_ptr().cast(),
            TensorData::F64(v) => v.as_mut_ptr().cast(),
            TensorData::I32(v) => v.as_mut_ptr().cast(),
            TensorData::I64(v) => v.as_mut_ptr().cast(),
        }
    }

    /// Elementwise approximate equality with mixed absolute/relative
    /// tolerance: `|a-b| <= atol + rtol * |b|`.
    pub fn allclose(&self, other: &NDArray, rtol: f64, atol: f64) -> bool {
        if self.shape != other.shape {
            return false;
        }
        (0..self.numel()).all(|i| {
            let a = self.get_f64_linear(i);
            let b = other.get_f64_linear(i);
            if a.is_nan() || b.is_nan() {
                return false;
            }
            (a - b).abs() <= atol + rtol * b.abs()
        })
    }

    /// Maximum absolute elementwise difference (∞ on shape mismatch).
    pub fn max_abs_diff(&self, other: &NDArray) -> f64 {
        if self.shape != other.shape {
            return f64::INFINITY;
        }
        (0..self.numel())
            .map(|i| (self.get_f64_linear(i) - other.get_f64_linear(i)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let a = NDArray::zeros(&[2, 3], DType::F32);
        assert_eq!(a.numel(), 6);
        assert_eq!(a.shape(), &[2, 3]);
        assert!(a.to_f64_vec().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn multi_index_roundtrip() {
        let mut a = NDArray::zeros(&[3, 4], DType::F64);
        a.set(&[2, 1], 42.0);
        assert_eq!(a.get(&[2, 1]), 42.0);
        assert_eq!(a.get_f64_linear(2 * 4 + 1), 42.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = NDArray::random(&[16], DType::F32, 7, -1.0, 1.0);
        let b = NDArray::random(&[16], DType::F32, 7, -1.0, 1.0);
        let c = NDArray::random(&[16], DType::F32, 8, -1.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.to_f64_vec().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn from_fn_row_major() {
        let a = NDArray::from_fn(&[2, 2], DType::F64, |idx| (idx[0] * 10 + idx[1]) as f64);
        assert_eq!(a.to_f64_vec(), vec![0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn allclose_tolerances() {
        let a = NDArray::from_f64(&[2], &[1.0, 100.0]);
        let b = NDArray::from_f64(&[2], &[1.0 + 1e-9, 100.0 + 1e-5]);
        assert!(a.allclose(&b, 1e-6, 1e-8));
        let c = NDArray::from_f64(&[2], &[1.1, 100.0]);
        assert!(!a.allclose(&c, 1e-6, 1e-8));
        assert!((a.max_abs_diff(&c) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn allclose_rejects_nan_and_shape_mismatch() {
        let a = NDArray::from_f64(&[1], &[f64::NAN]);
        assert!(!a.allclose(&a.clone(), 1e-6, 1e-6));
        let b = NDArray::zeros(&[2], DType::F64);
        let c = NDArray::zeros(&[3], DType::F64);
        assert!(!b.allclose(&c, 1e-6, 1e-6));
    }

    #[test]
    fn f32_rounding_on_store() {
        let mut a = NDArray::zeros(&[1], DType::F32);
        a.set_f64_linear(0, 1.0 + 1e-12);
        assert_eq!(a.get_f64_linear(0), 1.0, "f32 storage rounds");
    }
}
