//! The analytical cost model: blocked-cache roofline over lowered TIR.

use crate::spec::GpuSpec;
use tvm_tir::analysis::{analyze, AccessInfo, StmtFeatures};
use tvm_tir::PrimFunc;

/// Cost of one store statement (one "kernel" in GPU terms).
#[derive(Debug, Clone)]
pub struct StmtCost {
    /// Roofline compute time, seconds.
    pub compute_s: f64,
    /// L2-level memory time, seconds.
    pub l2_s: f64,
    /// DRAM-level memory time, seconds.
    pub dram_s: f64,
    /// Launch + sync + block-scheduling overhead, seconds.
    pub overhead_s: f64,
    /// Grid blocks per launch.
    pub blocks: f64,
    /// Threads per block (pre-cap).
    pub threads_per_block: f64,
    /// Number of sequential launches (trips of the sequential prefix).
    pub launches: f64,
}

impl StmtCost {
    /// Total modeled time of the statement.
    pub fn total(&self) -> f64 {
        self.compute_s.max(self.l2_s).max(self.dram_s) + self.overhead_s
    }
}

/// Full cost breakdown of a function.
#[derive(Debug, Clone)]
pub struct CostBreakdown {
    /// Per-statement costs, in program order.
    pub stmts: Vec<StmtCost>,
}

impl CostBreakdown {
    /// Total modeled runtime, seconds.
    pub fn total(&self) -> f64 {
        self.stmts.iter().map(|s| s.total()).sum()
    }
}

/// Footprint (elements) of one access over the loop suffix starting at
/// `from`: the product of extents of suffix loops the access varies with,
/// capped at the buffer size.
fn footprint(acc: &AccessInfo, feats: &StmtFeatures, from: usize) -> f64 {
    let mut fp = 1.0f64;
    for (l, loopinfo) in feats.loops.iter().enumerate().skip(from) {
        if acc.strides[l] != 0 {
            fp *= loopinfo.extent as f64;
        }
    }
    fp.min(acc.buffer_numel as f64)
}

/// Trips an access makes over the loops *outside* the suffix: the product
/// of outer-loop extents, with the trailing run of invariant outer loops
/// dropped (consecutive invariant iterations find the working set still
/// cached — LRU reuse credit).
fn trips(acc: &AccessInfo, feats: &StmtFeatures, suffix_start: usize) -> f64 {
    let mut last_varying = None;
    for l in 0..suffix_start {
        if acc.strides[l] != 0 {
            last_varying = Some(l);
        }
    }
    match last_varying {
        None => 1.0,
        Some(lv) => feats.loops[..=lv].iter().map(|l| l.extent as f64).product(),
    }
}

/// Cache-line waste factor of an access over a loop suffix: how many
/// bytes move per useful byte, given line (or coalescing) granularity of
/// `spec.warp_size` elements.
///
/// * a stride-1 loop in the suffix makes runs of its extent `e`
///   contiguous — waste is `line / min(e, line)` (full lines ⇒ 1);
/// * only strided loops varying ⇒ every element sits on its own line, up
///   to the line size;
/// * nothing varying ⇒ a single element (factor 1).
fn line_factor(acc: &AccessInfo, feats: &StmtFeatures, from: usize, spec: &GpuSpec) -> f64 {
    let line = spec.warp_size as f64;
    let mut min_stride: Option<u64> = None;
    let mut unit_run: i64 = 0;
    for (l, info) in feats.loops.iter().enumerate().skip(from) {
        let s = acc.strides[l].unsigned_abs();
        if s == 0 {
            continue;
        }
        if s == 1 {
            unit_run = unit_run.max(info.extent);
        }
        min_stride = Some(min_stride.map_or(s, |m| m.min(s)));
    }
    match (unit_run, min_stride) {
        (e, _) if e > 0 => (line / (e as f64).min(line)).max(1.0),
        (_, Some(s)) => (s as f64).min(line),
        (_, None) => 1.0,
    }
}

/// Working set (bytes of touched cache lines) of all accesses over the
/// suffix starting at `from`.
fn working_set(feats: &StmtFeatures, accesses: &[&AccessInfo], from: usize, spec: &GpuSpec) -> f64 {
    accesses
        .iter()
        .map(|a| {
            footprint(a, feats, from) * a.elem_bytes as f64 * line_factor(a, feats, from, spec)
        })
        .sum()
}

/// Smallest suffix start (within `[lo, n]`) whose working set fits in
/// `capacity` bytes; `n` (empty suffix) always fits.
fn reuse_level(
    feats: &StmtFeatures,
    accesses: &[&AccessInfo],
    lo: usize,
    capacity: f64,
    spec: &GpuSpec,
) -> usize {
    let n = feats.loops.len();
    for d in lo..=n {
        if working_set(feats, accesses, d, spec) <= capacity {
            return d;
        }
    }
    n
}

/// Traffic (bytes) flowing in from above the given reuse level.
fn traffic_at(feats: &StmtFeatures, accesses: &[&AccessInfo], level: usize, spec: &GpuSpec) -> f64 {
    accesses
        .iter()
        .map(|a| {
            trips(a, feats, level)
                * footprint(a, feats, level)
                * a.elem_bytes as f64
                * line_factor(a, feats, level, spec)
        })
        .sum::<f64>()
        * feats.guard_selectivity
}

fn stmt_cost(feats: &StmtFeatures, spec: &GpuSpec) -> StmtCost {
    let n = feats.loops.len();
    let accesses: Vec<&AccessInfo> = feats
        .reads
        .iter()
        .chain(std::iter::once(&feats.write))
        .collect();

    // Sequential prefix: leading loops the *write* does not vary with
    // (elimination loops like LU's `k`). Each iteration is a separate
    // grid launch with a device-wide sync.
    let mut prefix = 0usize;
    while prefix < n && feats.write.strides[prefix] == 0 {
        prefix += 1;
    }
    let launches: f64 = feats.loops[..prefix]
        .iter()
        .map(|l| l.extent as f64)
        .product();

    // Inner (shared-memory) reuse level: at least past the prefix.
    let d1 = reuse_level(feats, &accesses, prefix, spec.smem_bytes as f64, spec);
    // Outer (L2) reuse level: between prefix and d1.
    let d2 = reuse_level(feats, &accesses, prefix, spec.l2_bytes as f64, spec).min(d1);

    let l2_traffic = traffic_at(feats, &accesses, d1, spec);
    let dram_traffic = traffic_at(feats, &accesses, d2, spec);

    // Grid decomposition: loops between the prefix and the smem suffix
    // become blocks; parallel suffix iterations (those indexing the
    // output) become threads.
    let blocks: f64 = feats.loops[prefix..d1]
        .iter()
        .map(|l| l.extent as f64)
        .product();
    let threads_per_block: f64 = feats.loops[d1..]
        .iter()
        .enumerate()
        .filter(|(off, _)| feats.write.strides[d1 + off] != 0)
        .map(|(_, l)| l.extent as f64)
        .product();

    let util = if spec.max_threads_per_block <= 1 {
        // Single-core model: utilization is the SIMD efficiency of the
        // innermost loop. A unit-stride (or reduction, stride-0) store
        // with enough iterations vectorizes; a strided store is scalar.
        let inner_stride = feats
            .write
            .strides
            .last()
            .copied()
            .unwrap_or(1)
            .unsigned_abs();
        let inner_extent = feats.loops.last().map(|l| l.extent).unwrap_or(1) as f64;
        if inner_stride <= 1 {
            (inner_extent / spec.warp_size as f64)
                .min(1.0)
                .max(1.0 / spec.warp_size as f64)
        } else {
            1.0 / spec.warp_size as f64
        }
    } else {
        let capped_tpb = threads_per_block.min(spec.max_threads_per_block as f64);
        // Sub-warp blocks waste issue slots.
        let warp_eff = (capped_tpb / spec.warp_size as f64)
            .min(1.0)
            .max(1.0 / spec.warp_size as f64);
        ((blocks * capped_tpb) / spec.device_threads() as f64).clamp(1e-6, 1.0) * warp_eff
    };

    let flops = feats.total_flops();
    let peak = spec.peak_flops(feats.write.elem_bytes);
    let compute_s = flops / (peak * util);

    let l2_s = l2_traffic / spec.l2_bw;
    let dram_s = dram_traffic / spec.dram_bw;

    // Loop-management/scheduling cost: on the single-core model, one
    // charge per entry of the innermost loop; on the GPU model, one per
    // scheduled block (amortized over SMs).
    let inner_extent = feats.loops.last().map(|l| l.extent as f64).unwrap_or(1.0);
    let sched_iters = if spec.max_threads_per_block <= 1 {
        feats.raw_iterations / inner_extent
    } else {
        launches * blocks
    };
    let overhead_s = launches * (spec.launch_overhead_s + spec.sync_overhead_s)
        + sched_iters * spec.block_overhead_s / spec.num_sms as f64;

    StmtCost {
        compute_s,
        l2_s,
        dram_s,
        overhead_s,
        blocks,
        threads_per_block,
        launches,
    }
}

/// Predict the runtime of a lowered function on `spec`.
pub fn cost_model(func: &PrimFunc, spec: &GpuSpec) -> CostBreakdown {
    let stmts = analyze(func).iter().map(|f| stmt_cost(f, spec)).collect();
    CostBreakdown { stmts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule, Tensor};
    use tvm_tir::lower::lower;

    fn tiled_matmul(n: usize, ty: i64, tx: i64) -> PrimFunc {
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c: Tensor = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let mut s = Schedule::create(&[c.clone()]);
        let (y, x) = (c.axis(0), c.axis(1));
        let (yo, yi) = s.split(&c, &y, ty);
        let (xo, xi) = s.split(&c, &x, tx);
        s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);
        lower(&s, &[a, b, c], "mm")
    }

    fn mm_time(n: usize, ty: i64, tx: i64) -> f64 {
        cost_model(&tiled_matmul(n, ty, tx), &GpuSpec::a100()).total()
    }

    #[test]
    fn interior_tile_optimum() {
        let n = 1024;
        let tiny = mm_time(n, 1, 1);
        let mid = mm_time(n, 32, 32);
        let huge = mm_time(n, 1024, 1024);
        assert!(
            mid < tiny,
            "mid tiles ({mid:.6}s) should beat 1x1 ({tiny:.6}s)"
        );
        assert!(
            mid < huge,
            "mid tiles ({mid:.6}s) should beat full-matrix tiles ({huge:.6}s)"
        );
    }

    #[test]
    fn model_is_deterministic() {
        assert_eq!(mm_time(512, 16, 16), mm_time(512, 16, 16));
    }

    #[test]
    fn bigger_problem_costs_more() {
        assert!(mm_time(1024, 32, 32) > mm_time(256, 32, 32));
    }

    #[test]
    fn narrow_tx_hurts_coalescing() {
        // tx=2 gives 2-wide contiguous runs; tx=64 is fully coalesced.
        let n = 1024;
        let narrow = mm_time(n, 512, 2);
        let wide = mm_time(n, 16, 64);
        assert!(
            wide < narrow,
            "coalesced ({wide:.6}) should beat stride-y-heavy ({narrow:.6})"
        );
    }

    #[test]
    fn sequential_prefix_charges_syncs() {
        // An in-place kernel whose write is invariant over the outer loop:
        // for k { for i { A[i] = A[i] + B[k] } } -> k is a sync'd prefix.
        use tvm_tir::builder::{ser, store, FuncBuilder};
        let nk = 500i64;
        let a = placeholder([64], DType::F32, "A");
        let b = placeholder([500], DType::F32, "B");
        let mut fb = FuncBuilder::new("seq");
        let ab = fb.param(&a);
        let _bb = fb.param(&b);
        let body = ser("k", nk, |k| {
            ser("i", 64, move |i| {
                store(&ab, &[i.clone()], a.at(&[i]) + b.at(&[k.clone()]))
            })
        });
        let f = fb.build(body);
        let cost = cost_model(&f, &GpuSpec::a100());
        assert_eq!(cost.stmts.len(), 1);
        assert_eq!(cost.stmts[0].launches, nk as f64);
        let spec = GpuSpec::a100();
        assert!(cost.stmts[0].overhead_s >= nk as f64 * spec.sync_overhead_s);
    }

    #[test]
    fn fp64_slower_than_fp32() {
        let n = 512usize;
        let build = |dt: DType| {
            let a = placeholder([n, n], dt, "A");
            let b = placeholder([n, n], dt, "B");
            let k = reduce_axis(0, n as i64, "k");
            let c = compute([n, n], "C", |i| {
                sum(
                    a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                    &[k.clone()],
                )
            });
            let s = Schedule::create(&[c.clone()]);
            lower(&s, &[a, b, c], "mm")
        };
        let t32 = cost_model(&build(DType::F32), &GpuSpec::a100()).total();
        let t64 = cost_model(&build(DType::F64), &GpuSpec::a100()).total();
        assert!(t64 > t32);
    }

    #[test]
    fn v100_slower_than_a100() {
        let f = tiled_matmul(1024, 32, 32);
        let ta = cost_model(&f, &GpuSpec::a100()).total();
        let tv = cost_model(&f, &GpuSpec::v100()).total();
        assert!(tv > ta);
    }

    #[test]
    fn guarded_nest_cheaper_than_full() {
        // Triangular guard halves effective work.
        use tvm_te::ops::cmp;
        use tvm_tir::builder::{ser2, store, when, FuncBuilder};
        let n = 256i64;
        let a = placeholder([n as usize, n as usize], DType::F32, "A");
        let build = |guarded: bool| {
            let mut fb = FuncBuilder::new("tri");
            let ab = fb.param(&a);
            let body = ser2("i", n, "j", n, |i, j| {
                let st = store(
                    &ab,
                    &[i.clone(), j.clone()],
                    a.at(&[i.clone(), j.clone()]) * tvm_te::PrimExpr::FloatImm(2.0, DType::F32),
                );
                if guarded {
                    when(cmp::lt(j, i), st)
                } else {
                    st
                }
            });
            fb.build(body)
        };
        let full = cost_model(&build(false), &GpuSpec::a100()).total();
        let tri = cost_model(&build(true), &GpuSpec::a100()).total();
        assert!(tri < full, "tri={tri}, full={full}");
    }
}
