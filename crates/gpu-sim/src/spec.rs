//! Hardware descriptions for the analytical model.

use serde::{Deserialize, Serialize};

/// Parameters of one simulated GPU.
///
/// Defaults mirror the published A100-40GB (SXM) datasheet numbers for the
/// Swing nodes the paper used; the `v100` preset exists to show the model
/// generalizes (and feeds the cross-device example).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-40GB"`.
    pub name: String,
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident threads per SM.
    pub threads_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Peak FP32 throughput, FLOP/s.
    pub fp32_flops: f64,
    /// Peak FP64 throughput, FLOP/s.
    pub fp64_flops: f64,
    /// HBM bandwidth, bytes/s.
    pub dram_bw: f64,
    /// L2 bandwidth, bytes/s.
    pub l2_bw: f64,
    /// L2 capacity, bytes.
    pub l2_bytes: usize,
    /// Per-SM fast storage available to one block (shared memory + L1),
    /// bytes. This is the inner reuse level of the cost model.
    pub smem_bytes: usize,
    /// Kernel launch latency, seconds.
    pub launch_overhead_s: f64,
    /// Cost of one grid-wide synchronization (sequential outer-loop
    /// iteration), seconds.
    pub sync_overhead_s: f64,
    /// Per-block scheduling cost, seconds.
    pub block_overhead_s: f64,
    /// Warp width for coalescing (32 on NVIDIA hardware).
    pub warp_size: usize,
}

impl GpuSpec {
    /// NVIDIA A100-40GB (the Swing GPUs).
    pub fn a100() -> GpuSpec {
        GpuSpec {
            name: "A100-40GB".into(),
            num_sms: 108,
            threads_per_sm: 2048,
            max_threads_per_block: 1024,
            fp32_flops: 19.5e12,
            fp64_flops: 9.7e12,
            dram_bw: 1.555e12,
            l2_bw: 4.0e12,
            l2_bytes: 40 * 1024 * 1024,
            smem_bytes: 160 * 1024,
            launch_overhead_s: 4e-6,
            sync_overhead_s: 6e-6,
            block_overhead_s: 4e-7,
            warp_size: 32,
        }
    }

    /// One Zen-2 core of the Swing host CPUs (2× AMD EPYC 7742).
    ///
    /// The paper's TE schedules contain no GPU thread bindings and its
    /// measured magnitudes (e.g. LU N=2000 best 1.659 s ≈ 3 GFLOP/s
    /// FP64) match single-core host execution, not an A100. This preset
    /// models that regime: one "SM" with one thread (occupancy is moot),
    /// an L1 (32 KB) inner reuse level, a per-core L2 (512 KB) outer
    /// level, cache-line-granularity access efficiency (8 doubles), and
    /// loop-iteration rather than kernel-launch overheads.
    pub fn swing_cpu_core() -> GpuSpec {
        GpuSpec {
            name: "EPYC7742-core".into(),
            num_sms: 1,
            threads_per_sm: 1,
            max_threads_per_block: 1,
            fp32_flops: 5.0e9,
            fp64_flops: 2.5e9,
            dram_bw: 20e9,
            l2_bw: 100e9,
            l2_bytes: 512 * 1024,
            smem_bytes: 32 * 1024,
            launch_overhead_s: 0.0,
            sync_overhead_s: 5e-9,
            block_overhead_s: 5e-9,
            warp_size: 8,
        }
    }

    /// NVIDIA V100-32GB (for cross-device examples/ablations).
    pub fn v100() -> GpuSpec {
        GpuSpec {
            name: "V100-32GB".into(),
            num_sms: 80,
            threads_per_sm: 2048,
            max_threads_per_block: 1024,
            fp32_flops: 15.7e12,
            fp64_flops: 7.8e12,
            dram_bw: 0.9e12,
            l2_bw: 2.5e12,
            l2_bytes: 6 * 1024 * 1024,
            smem_bytes: 96 * 1024,
            launch_overhead_s: 5e-6,
            sync_overhead_s: 8e-6,
            block_overhead_s: 5e-7,
            warp_size: 32,
        }
    }

    /// Peak FLOP/s for a given element width (4 → FP32, 8 → FP64).
    pub fn peak_flops(&self, elem_bytes: usize) -> f64 {
        if elem_bytes >= 8 {
            self.fp64_flops
        } else {
            self.fp32_flops
        }
    }

    /// Maximum concurrently resident threads on the whole device.
    pub fn device_threads(&self) -> usize {
        self.num_sms * self.threads_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_preset_sane() {
        let s = GpuSpec::a100();
        assert_eq!(s.num_sms, 108);
        assert!(s.fp32_flops > s.fp64_flops);
        assert!(s.l2_bw > s.dram_bw);
        assert_eq!(s.device_threads(), 108 * 2048);
        assert_eq!(s.peak_flops(4), s.fp32_flops);
        assert_eq!(s.peak_flops(8), s.fp64_flops);
    }

    #[test]
    fn v100_is_slower_than_a100() {
        let (a, v) = (GpuSpec::a100(), GpuSpec::v100());
        assert!(v.dram_bw < a.dram_bw);
        assert!(v.fp32_flops < a.fp32_flops);
    }

    #[test]
    fn serde_roundtrip() {
        let s = GpuSpec::a100();
        let j = serde_json::to_string(&s).expect("ser");
        let back: GpuSpec = serde_json::from_str(&j).expect("de");
        assert_eq!(s, back);
    }
}
