//! The simulated device: `Device` implementation over the cost model.

use crate::model::cost_model;
use crate::spec::GpuSpec;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use tvm_runtime::{Device, DeviceError, NDArray};
use tvm_tir::PrimFunc;

/// A deterministic simulated GPU.
///
/// `run` returns the modeled runtime without touching the argument arrays
/// (correctness is validated separately on `CpuDevice` at small sizes —
/// the split the paper also has between on-device timing and host-side
/// verification). A configuration-keyed hash injects bounded multiplicative
/// noise so tuning traces resemble measured data while remaining exactly
/// reproducible.
#[derive(Debug, Clone)]
pub struct SimDevice {
    /// Hardware description.
    pub spec: GpuSpec,
    /// Peak-to-peak relative noise amplitude (e.g. `0.04` = ±2 %).
    pub noise: f64,
    /// Noise seed.
    pub seed: u64,
}

impl SimDevice {
    /// Simulated device with ±2 % noise, seed 0.
    pub fn new(spec: GpuSpec) -> SimDevice {
        SimDevice {
            spec,
            noise: 0.04,
            seed: 0,
        }
    }

    /// Builder: noise amplitude (0 disables).
    pub fn with_noise(mut self, amplitude: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude));
        self.noise = amplitude;
        self
    }

    /// Builder: noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Noise-free model prediction for `func`.
    pub fn predict(&self, func: &PrimFunc) -> f64 {
        cost_model(func, &self.spec).total()
    }

    fn noise_factor(&self, func: &PrimFunc) -> f64 {
        if self.noise == 0.0 {
            return 1.0;
        }
        // Key the noise on the printed function (loop extents capture the
        // configuration) and the seed.
        let mut h = DefaultHasher::new();
        format!("{func}").hash(&mut h);
        self.seed.hash(&mut h);
        let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        1.0 + self.noise * (u - 0.5)
    }
}

impl Device for SimDevice {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn run(&self, func: &PrimFunc, _args: &mut [NDArray]) -> Result<f64, DeviceError> {
        let t = self.predict(func);
        if !t.is_finite() {
            return Err(DeviceError::Rejected(format!(
                "cost model produced non-finite time for `{}`",
                func.name
            )));
        }
        Ok(t * self.noise_factor(func))
    }

    /// Modeled compilation cost: a base `tvm.build` latency plus a term
    /// growing with code size (statements after unrolling).
    fn build_cost(&self, func: &PrimFunc) -> f64 {
        let stores = func.body.store_count() as f64;
        0.8 + 0.002 * stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::{compute, placeholder, DType, Schedule};
    use tvm_tir::lower::lower;

    fn small_func(n: usize) -> PrimFunc {
        let a = placeholder([n, n], DType::F32, "A");
        let b = compute([n, n], "B", |i| a.at(&[i[0].clone(), i[1].clone()]) * 2i64);
        let s = Schedule::create(&[b.clone()]);
        lower(&s, &[a, b], "scale")
    }

    #[test]
    fn run_is_deterministic_and_noisy() {
        let f = small_func(128);
        let dev = SimDevice::new(GpuSpec::a100()).with_seed(1);
        let mut args = [];
        let t1 = dev.run(&f, &mut args).expect("run");
        let t2 = dev.run(&f, &mut args).expect("run");
        assert_eq!(t1, t2, "same config + seed must reproduce exactly");
        let clean = dev.predict(&f);
        assert!((t1 / clean - 1.0).abs() <= 0.021, "noise bounded by ±2%");
    }

    #[test]
    fn different_seeds_different_noise() {
        let f = small_func(128);
        let a = SimDevice::new(GpuSpec::a100()).with_seed(1);
        let b = SimDevice::new(GpuSpec::a100()).with_seed(2);
        let mut args = [];
        assert_ne!(
            a.run(&f, &mut args).unwrap(),
            b.run(&f, &mut args).unwrap()
        );
    }

    #[test]
    fn zero_noise_matches_prediction() {
        let f = small_func(64);
        let dev = SimDevice::new(GpuSpec::a100()).with_noise(0.0);
        let mut args = [];
        assert_eq!(dev.run(&f, &mut args).unwrap(), dev.predict(&f));
    }

    #[test]
    fn build_cost_grows_with_code_size() {
        let f1 = small_func(64);
        let dev = SimDevice::new(GpuSpec::a100());
        let base = dev.build_cost(&f1);
        assert!(base >= 0.8);
    }

    #[test]
    fn args_untouched() {
        let f = small_func(8);
        let dev = SimDevice::new(GpuSpec::a100());
        let a = NDArray::random(&[8, 8], DType::F32, 3, 0.0, 1.0);
        let b = NDArray::zeros(&[8, 8], DType::F32);
        let mut args = [a.clone(), b.clone()];
        let _ = dev.run(&f, &mut args).unwrap();
        assert_eq!(args[0], a);
        assert_eq!(args[1], b, "sim device must not write outputs");
    }
}
