//! The simulated device: `Device` implementation over the cost model.

use crate::model::cost_model;
use crate::spec::GpuSpec;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use tvm_runtime::{Device, DeviceError, NDArray};
use tvm_tir::PrimFunc;

/// A deterministic simulated GPU.
///
/// `run` returns the modeled runtime without touching the argument arrays
/// (correctness is validated separately on `CpuDevice` at small sizes —
/// the split the paper also has between on-device timing and host-side
/// verification). A configuration-keyed hash injects bounded multiplicative
/// noise so tuning traces resemble measured data while remaining exactly
/// reproducible.
#[derive(Debug, Clone)]
pub struct SimDevice {
    /// Hardware description.
    pub spec: GpuSpec,
    /// Peak-to-peak relative noise amplitude (e.g. `0.04` = ±2 %).
    pub noise: f64,
    /// Noise seed.
    pub seed: u64,
    /// Probability an execution fails with a transient device fault
    /// (0 disables; models flaky nodes / driver hiccups for chaos tests).
    pub fault_rate: f64,
    /// Seed for the fault draws (independent of the noise seed).
    pub fault_seed: u64,
    /// Per-function attempt counters feeding the fault draws, so a retry
    /// of the same function re-rolls while draws stay independent of the
    /// order other functions are evaluated in — the same
    /// (function, attempt, seed) keying as the harness's `FaultInjector`,
    /// which keeps injected faults journal-resume-safe (clones share the
    /// counters).
    fault_attempts: Arc<Mutex<HashMap<String, u64>>>,
}

impl SimDevice {
    /// Simulated device with ±2 % noise, seed 0, no injected faults.
    pub fn new(spec: GpuSpec) -> SimDevice {
        SimDevice {
            spec,
            noise: 0.04,
            seed: 0,
            fault_rate: 0.0,
            fault_seed: 0,
            fault_attempts: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Builder: noise amplitude (0 disables).
    pub fn with_noise(mut self, amplitude: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude));
        self.noise = amplitude;
        self
    }

    /// Builder: noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: deterministic transient-fault injection. Each `run` draws
    /// a hash of (function, seed, per-function attempt) against `rate`; a
    /// hit returns `DeviceError::Rejected` with a message classified as
    /// transient by the measurement harness, so retries can succeed.
    pub fn with_faults(mut self, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.fault_rate = rate;
        self.fault_seed = seed;
        self
    }

    /// Noise-free model prediction for `func`.
    pub fn predict(&self, func: &PrimFunc) -> f64 {
        cost_model(func, &self.spec).total()
    }

    fn noise_factor(&self, func: &PrimFunc) -> f64 {
        if self.noise == 0.0 {
            return 1.0;
        }
        // Key the noise on the printed function (loop extents capture the
        // configuration) and the seed.
        let mut h = DefaultHasher::new();
        format!("{func}").hash(&mut h);
        self.seed.hash(&mut h);
        let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        1.0 + self.noise * (u - 0.5)
    }
}

impl Device for SimDevice {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn run(&self, func: &PrimFunc, _args: &mut [NDArray]) -> Result<f64, DeviceError> {
        if self.fault_rate > 0.0 {
            let printed = format!("{func}");
            let n = {
                let mut attempts = self.fault_attempts.lock().expect("fault counter lock");
                let n = attempts.entry(printed.clone()).or_insert(0);
                let current = *n;
                *n += 1;
                current
            };
            let mut h = DefaultHasher::new();
            printed.hash(&mut h);
            self.fault_seed.hash(&mut h);
            n.hash(&mut h);
            let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.fault_rate {
                return Err(DeviceError::Rejected(format!(
                    "transient device fault injected on `{}` (attempt {n})",
                    func.name
                )));
            }
        }
        let t = self.predict(func);
        if !t.is_finite() {
            return Err(DeviceError::Rejected(format!(
                "cost model produced non-finite time for `{}`",
                func.name
            )));
        }
        Ok(t * self.noise_factor(func))
    }

    /// Modeled compilation cost: a base `tvm.build` latency plus a term
    /// growing with code size (statements after unrolling).
    fn build_cost(&self, func: &PrimFunc) -> f64 {
        let stores = func.body.store_count() as f64;
        0.8 + 0.002 * stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::{compute, placeholder, DType, Schedule};
    use tvm_tir::lower::lower;

    fn small_func(n: usize) -> PrimFunc {
        let a = placeholder([n, n], DType::F32, "A");
        let b = compute([n, n], "B", |i| a.at(&[i[0].clone(), i[1].clone()]) * 2i64);
        let s = Schedule::create(&[b.clone()]);
        lower(&s, &[a, b], "scale")
    }

    #[test]
    fn run_is_deterministic_and_noisy() {
        let f = small_func(128);
        let dev = SimDevice::new(GpuSpec::a100()).with_seed(1);
        let mut args = [];
        let t1 = dev.run(&f, &mut args).expect("run");
        let t2 = dev.run(&f, &mut args).expect("run");
        assert_eq!(t1, t2, "same config + seed must reproduce exactly");
        let clean = dev.predict(&f);
        assert!((t1 / clean - 1.0).abs() <= 0.021, "noise bounded by ±2%");
    }

    #[test]
    fn different_seeds_different_noise() {
        let f = small_func(128);
        let a = SimDevice::new(GpuSpec::a100()).with_seed(1);
        let b = SimDevice::new(GpuSpec::a100()).with_seed(2);
        let mut args = [];
        assert_ne!(a.run(&f, &mut args).unwrap(), b.run(&f, &mut args).unwrap());
    }

    #[test]
    fn zero_noise_matches_prediction() {
        let f = small_func(64);
        let dev = SimDevice::new(GpuSpec::a100()).with_noise(0.0);
        let mut args = [];
        assert_eq!(dev.run(&f, &mut args).unwrap(), dev.predict(&f));
    }

    #[test]
    fn build_cost_grows_with_code_size() {
        let f1 = small_func(64);
        let dev = SimDevice::new(GpuSpec::a100());
        let base = dev.build_cost(&f1);
        assert!(base >= 0.8);
    }

    #[test]
    fn fault_injection_is_deterministic_and_retryable() {
        let f = small_func(32);
        let mut args = [];
        // Rate 0 (default): never fails.
        let clean = SimDevice::new(GpuSpec::a100());
        for _ in 0..20 {
            assert!(clean.run(&f, &mut args).is_ok());
        }
        // Rate 1: always fails, with a transient-classified message.
        let broken = SimDevice::new(GpuSpec::a100()).with_faults(1.0, 7);
        let err = broken.run(&f, &mut args).expect_err("must fail");
        let DeviceError::Rejected(msg) = &err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert!(msg.contains("transient device fault"));
        // Moderate rate: the per-attempt counter re-rolls, so across many
        // executions both outcomes occur, identically for the same seed.
        let mut outcomes = |seed: u64| -> Vec<bool> {
            let dev = SimDevice::new(GpuSpec::a100()).with_faults(0.3, seed);
            (0..40).map(|_| dev.run(&f, &mut args).is_ok()).collect()
        };
        let a = outcomes(1);
        assert_eq!(a, outcomes(1), "same seed reproduces exactly");
        assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !*ok));
    }

    #[test]
    fn fault_draws_independent_of_evaluation_order() {
        // Interleaving executions of another function must not perturb a
        // function's own fault sequence (journal-resume safety).
        let f1 = small_func(16);
        let f2 = small_func(24);
        let mut args = [];
        let solo: Vec<bool> = {
            let dev = SimDevice::new(GpuSpec::a100()).with_faults(0.5, 3);
            (0..10).map(|_| dev.run(&f1, &mut args).is_ok()).collect()
        };
        let interleaved: Vec<bool> = {
            let dev = SimDevice::new(GpuSpec::a100()).with_faults(0.5, 3);
            (0..10)
                .map(|_| {
                    let _ = dev.run(&f2, &mut args);
                    dev.run(&f1, &mut args).is_ok()
                })
                .collect()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn args_untouched() {
        let f = small_func(8);
        let dev = SimDevice::new(GpuSpec::a100());
        let a = NDArray::random(&[8, 8], DType::F32, 3, 0.0, 1.0);
        let b = NDArray::zeros(&[8, 8], DType::F32);
        let mut args = [a.clone(), b.clone()];
        let _ = dev.run(&f, &mut args).unwrap();
        assert_eq!(args[0], a);
        assert_eq!(args[1], b, "sim device must not write outputs");
    }
}
