#![warn(missing_docs)]
//! # gpu-sim — an analytical GPU device model (simulated Swing / A100)
//!
//! The paper measures kernels on Argonne's Swing cluster (8× NVIDIA A100
//! per node). This reproduction has no GPU, so this crate implements the
//! substitution documented in DESIGN.md: a deterministic analytical device
//! that predicts kernel runtime *as a function of the lowered loop
//! structure* — which is exactly the quantity the autotuners search over.
//!
//! The model (see [`model`]) is a two-level blocked-cache roofline:
//!
//! 1. loop-nest features come from `tvm_tir::analysis` (extents, access
//!    strides, guard selectivity, flops),
//! 2. for each cache level, the maximal loop suffix whose working set
//!    fits decides the reuse level; traffic above it is charged to the
//!    next level's bandwidth (trailing-invariant outer loops get LRU
//!    reuse credit),
//! 3. compute time is a peak-flops roofline scaled by occupancy (grid ×
//!    block parallelism vs. SM capacity) and coalescing efficiency,
//! 4. sequential outer loops (e.g. the `k` elimination loop of LU /
//!    Cholesky) charge a per-iteration device-synchronization cost.
//!
//! The device is deterministic: a configuration-keyed hash supplies
//! bounded measurement "noise" so tuner traces look like real runs and
//! repeated experiments reproduce exactly.
//!
//! ```
//! use gpu_sim::{GpuSpec, SimDevice};
//! use tvm_runtime::Device;
//! use tvm_te::{compute, placeholder, DType, Schedule};
//! use tvm_tir::lower::lower;
//!
//! let n = 256usize;
//! let a = placeholder([n, n], DType::F32, "A");
//! let b = compute([n, n], "B", |i| a.at(&[i[0].clone(), i[1].clone()]) * 2i64);
//! let s = Schedule::create(&[b.clone()]);
//! let f = lower(&s, &[a, b], "scale");
//! let dev = SimDevice::new(GpuSpec::a100());
//! let t = dev.predict(&f); // analytical: no data needed
//! assert!(t > 0.0 && t.is_finite());
//! assert_eq!((&dev as &dyn Device).name(), "A100-40GB");
//! ```

pub mod device;
pub mod model;
pub mod spec;

pub use device::SimDevice;
pub use model::{cost_model, CostBreakdown};
pub use spec::GpuSpec;
