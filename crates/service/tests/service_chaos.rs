//! Service-level chaos suite.
//!
//! The acceptance scenario from the service design: many concurrent
//! tenant sessions with 0–50% injected fault rates, a journal rotation
//! policy small enough that kills land across rotation boundaries, and
//! repeated abrupt server kills mid-flight. After the final restart every
//! session must complete with trial records *identical* to an
//! uninterrupted sequential run of the same spec (faults included — the
//! injector is deterministic): same config keys, same runtimes, same
//! error kinds — with zero lost or duplicated sessions, and the bounded
//! admission queue must never exceed its configured capacity.
//!
//! Everything here is watchdog-bounded: a deadlock or livelock fails the
//! test instead of hanging CI.

use autotvm::{FaultPlan, HarnessOptions};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::Duration;
use tvm_autotune::MemoCache;
use tvm_service::job::{EngineKind, JobSpec, TunerKind};
use tvm_service::ladder::build_ladder;
use tvm_service::service::{JobState, ServiceConfig, TuningService};
use tvm_service::session::{run_session, SessionCtl, SessionOptions};
use tvm_service::BreakerConfig;
use ytopt_bo::journal::{RotationPolicy, TrialJournal};

const KERNELS: [&str; 7] = ["lu", "cholesky", "3mm", "gemm", "2mm", "syrk", "trmm"];

/// (config key, runtime, error kind) — the identity triple compared
/// across kills. Process time is excluded deliberately: it contains real
/// wall-clock and shared-cache effects, which replay does not promise to
/// reproduce.
type Identity = Vec<(String, Option<String>, Option<String>)>;

fn chaos_spec(i: usize) -> JobSpec {
    let mut spec = JobSpec::new(format!("tenant-{i}"), KERNELS[i % KERNELS.len()], "mini");
    spec.tuner = if i % 2 == 0 {
        TunerKind::Random
    } else {
        TunerKind::GridSearch
    };
    spec.seed = i as u64;
    spec.max_evals = 8;
    spec.batch = 2;
    spec.engine = EngineKind::Simulated;
    // Fault rates sweep 0%..50% across the tenant population.
    let rate = 0.5 * (i % 11) as f64 / 10.0;
    if rate > 0.0 {
        spec.fault = Some(FaultPlan::uniform(rate, 1000 + i as u64));
    }
    spec
}

fn chaos_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        queue_capacity: 128,
        // Rotation small enough that every session rolls segments, so
        // kills land across rotation boundaries.
        rotation: Some(RotationPolicy {
            max_records_per_segment: 3,
            compact_after_segments: 2,
        }),
        // Breakers stay out of the way here (their own behavior is
        // covered by unit tests); a storm of *injected* faults must not
        // throttle the chaos run into the watchdog.
        breaker: BreakerConfig {
            failure_threshold: u32::MAX,
            ..BreakerConfig::default()
        },
        demote_after: 3,
        poll_ms: 2,
        harness: HarnessOptions::default(),
    }
}

/// The ground truth for one spec: a sequential, uninterrupted session in
/// a fresh journal with no breaker and a private cache.
fn reference_identity(spec: &JobSpec, dir: &std::path::Path, i: usize) -> Identity {
    let cache = std::sync::Arc::new(MemoCache::new());
    let mut ladder =
        build_ladder(spec, &cache, HarnessOptions::default(), 3).expect("reference ladder");
    let mut tuner = spec.tuner.build(ladder.space().clone(), spec.seed);
    let path = dir.join(format!("ref-{i}.jsonl"));
    let mut journal = TrialJournal::create(&path).expect("reference journal");
    let report = run_session(
        tuner.as_mut(),
        &mut ladder,
        &mut journal,
        Vec::new(),
        SessionOptions {
            max_evals: spec.max_evals,
            batch: spec.batch,
            deadline_unix_ms: None,
        },
        &SessionCtl::new(),
    )
    .expect("reference session");
    report
        .trials
        .iter()
        .map(|t| {
            (
                t.config.key(),
                t.runtime_s.map(|r| format!("{r:.12e}")),
                t.error.as_ref().map(|e| e.kind().to_string()),
            )
        })
        .collect()
}

fn outcome_identity(outcome: &tvm_service::JobOutcome) -> Identity {
    outcome
        .report
        .as_ref()
        .expect("completed outcome carries a report")
        .trials
        .iter()
        .map(|t| {
            (
                t.config.key(),
                t.runtime_s.map(|r| format!("{r:.12e}")),
                t.error.as_ref().map(|e| e.kind().to_string()),
            )
        })
        .collect()
}

/// Run `body` on a helper thread and fail loudly if it neither finishes
/// nor panics within `limit` — the suite's deadlock/hang detector.
fn with_watchdog(limit: Duration, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel::<()>();
    let handle = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(limit) {
        Ok(()) => handle.join().expect("chaos body panicked"),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            handle.join().expect("chaos body panicked");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: chaos suite exceeded {limit:?} — deadlock or livelock");
        }
    }
}

#[test]
fn chaos_sessions_survive_kills_with_identical_results() {
    with_watchdog(Duration::from_secs(240), || {
        let dir = std::env::temp_dir()
            .join("tvm-service-chaos")
            .join("acceptance");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ref_dir = dir.join("reference");
        std::fs::create_dir_all(&ref_dir).expect("mkdir ref");

        const SESSIONS: usize = 100;
        let specs: Vec<JobSpec> = (0..SESSIONS).map(chaos_spec).collect();
        let expected: Vec<Identity> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| reference_identity(s, &ref_dir, i))
            .collect();

        // Submit in three waves; kill the server abruptly after each wave
        // so in-flight sessions are interrupted mid-journal (including
        // across rotation boundaries).
        let svc_dir = dir.join("svc");
        let waves: [std::ops::Range<usize>; 3] = [0..40, 40..70, 70..SESSIONS];
        let mut ids: HashMap<usize, u64> = HashMap::new();
        let mut total_adopted = 0usize;
        let mut kills = 0usize;
        for (w, wave) in waves.iter().enumerate() {
            let (svc, recovery) = TuningService::open(&svc_dir, chaos_cfg()).expect("open service");
            total_adopted += recovery.adopted;
            let done_before_wave = svc.status().completed;
            for i in wave.clone() {
                let id = svc
                    .submit(specs[i].clone())
                    .unwrap_or_else(|r| panic!("wave {w} admission failed: {r}"));
                ids.insert(i, id);
            }
            assert!(
                svc.status().queue_high_water <= 128,
                "admission queue exceeded its bound"
            );
            // Kill as soon as a couple of sessions have completed: work is
            // provably mid-flight, so most of the wave gets interrupted no
            // matter how fast the machine is. (The watchdog bounds this
            // loop; if the wave finishes entirely first we kill anyway.)
            loop {
                let s = svc.status();
                if s.completed >= done_before_wave + 2 || (s.queued == 0 && s.running == 0) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            svc.kill();
            kills += 1;
            drop(svc);
        }
        assert_eq!(kills, 3);

        // Final restart: adopt everything and drain to completion.
        let (svc, recovery) = TuningService::open(&svc_dir, chaos_cfg()).expect("final open");
        total_adopted += recovery.adopted;
        assert!(
            total_adopted > 0,
            "kills landed after all work finished; nothing was ever adopted"
        );
        assert_eq!(
            recovery.adopted + recovery.already_done,
            SESSIONS,
            "no session lost, none duplicated"
        );

        let mut mismatches = Vec::new();
        for (i, id) in &ids {
            let outcome = svc
                .wait(*id, Duration::from_secs(120))
                .unwrap_or_else(|| panic!("session {i} (job {id}) never reached a terminal state"));
            assert_eq!(
                outcome.state,
                JobState::Completed,
                "session {i} ended {:?}: {:?}",
                outcome.state,
                outcome.message
            );
            let got = outcome_identity(&outcome);
            assert_eq!(got.len(), specs[*i].max_evals, "session {i} trial count");
            if got != expected[*i] {
                mismatches.push(*i);
            }
        }
        assert!(
            mismatches.is_empty(),
            "sessions diverged from their fault-deterministic reference: {mismatches:?}"
        );
        assert!(svc.status().queue_high_water <= 128);
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn jit_rung_demotion_is_replay_identical() {
    with_watchdog(Duration::from_secs(120), || {
        let dir = std::env::temp_dir()
            .join("tvm-service-chaos")
            .join("jit-demote");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        // A real-engine session that starts on the native JIT rung, with
        // injected infra failures so total that every trial reports a
        // failed build: after `demote_after` consecutive engine failures
        // the ladder must step down to the optimized VM, and the journal
        // must record which rung measured what.
        let mut spec = JobSpec::new("tenant-jit", "gemm", "mini");
        spec.tuner = TunerKind::Random;
        spec.seed = 7;
        spec.max_evals = 5;
        spec.batch = 1;
        spec.engine = EngineKind::Real;
        let mut plan = FaultPlan::none(4242);
        plan.build_failed = 1.0;
        spec.fault = Some(plan);

        let opts = SessionOptions {
            max_evals: spec.max_evals,
            batch: spec.batch,
            deadline_unix_ms: None,
        };
        let identity = |trials: &[tvm_service::session::SessionTrial]| -> Identity {
            trials
                .iter()
                .map(|t| {
                    (
                        t.config.key(),
                        t.runtime_s.map(|r| format!("{r:.12e}")),
                        t.error.as_ref().map(|e| e.kind().to_string()),
                    )
                })
                .collect()
        };

        let cache = std::sync::Arc::new(MemoCache::new());
        let mut ladder =
            build_ladder(&spec, &cache, HarnessOptions::default(), 3).expect("ladder");
        assert_eq!(ladder.rung_name(), "jit", "real sessions start on native codegen");
        let mut tuner = spec.tuner.build(ladder.space().clone(), spec.seed);
        let path = dir.join("session.jsonl");
        let mut journal = TrialJournal::create(&path).expect("journal");
        let live = run_session(
            tuner.as_mut(),
            &mut ladder,
            &mut journal,
            Vec::new(),
            opts,
            &SessionCtl::new(),
        )
        .expect("live session");
        drop(journal);

        assert_eq!(live.demotions, 1, "three build failures demote exactly once");
        assert_eq!(live.final_engine, "optimized-vm");
        let engines: Vec<&str> = live.trials.iter().map(|t| t.engine.as_str()).collect();
        assert_eq!(
            engines,
            ["jit", "jit", "jit", "optimized-vm", "optimized-vm"],
            "demotion lands after the third engine failure"
        );

        // The journal stamps each record with the fingerprint of the rung
        // that measured it — the JIT rung's stamp is distinct from the
        // optimized VM's, so replay can prove no engines were mixed up.
        let (journal2, replay) = TrialJournal::open_resume(&path).expect("reopen journal");
        assert_eq!(replay.len(), spec.max_evals);
        assert!(
            replay[..3]
                .iter()
                .all(|r| r.pipeline.as_deref() == Some(tvm_runtime::jit_fingerprint().as_str())),
            "pre-demotion records carry the JIT fingerprint: {:?}",
            replay.iter().map(|r| r.pipeline.clone()).collect::<Vec<_>>()
        );
        assert!(
            replay[3..]
                .iter()
                .all(|r| r.pipeline.as_deref() == Some("vm/v2+tir-opt/v1+par/v1")),
            "post-demotion records carry the optimized-VM fingerprint"
        );

        // Replay through a fresh ladder: `run_session` hard-errors if any
        // stamp drifts from the reconstructed rung, and the replayed
        // trial records must be identical to the live ones.
        let mut journal2 = journal2;
        let cache2 = std::sync::Arc::new(MemoCache::new());
        let mut ladder2 =
            build_ladder(&spec, &cache2, HarnessOptions::default(), 3).expect("replay ladder");
        let mut tuner2 = spec.tuner.build(ladder2.space().clone(), spec.seed);
        let replayed = run_session(
            tuner2.as_mut(),
            &mut ladder2,
            &mut journal2,
            replay,
            opts,
            &SessionCtl::new(),
        )
        .expect("replay session");
        assert_eq!(replayed.replayed, spec.max_evals, "every trial came off the tape");
        assert_eq!(replayed.demotions, 1);
        assert_eq!(replayed.final_engine, "optimized-vm");
        assert_eq!(
            identity(&replayed.trials),
            identity(&live.trials),
            "replay must reproduce the demoting run exactly"
        );
        let replay_engines: Vec<&str> = replayed.trials.iter().map(|t| t.engine.as_str()).collect();
        assert_eq!(replay_engines, engines, "rung attribution survives replay");

        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn parallel_sessions_recover_replay_identical_with_par_fingerprint() {
    with_watchdog(Duration::from_secs(240), || {
        let dir = std::env::temp_dir()
            .join("tvm-service-chaos")
            .join("par-recovery");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Real-engine sessions on kernels whose outer tile loops carry
        // `Parallel` annotations, with the worker pool budget raised so
        // proven configurations actually dispatch inside the service's
        // worker threads (the budget is process-global; results are
        // bit-identical at any thread count, so this cannot perturb the
        // other chaos tests).
        tvm_runtime::pool::set_num_threads(4);

        const JOBS: usize = 8;
        let spec_for = |i: usize| -> JobSpec {
            let kernels = ["gemm", "3mm", "syrk", "2mm"];
            let mut spec =
                JobSpec::new(format!("par-tenant-{i}"), kernels[i % kernels.len()], "mini");
            spec.tuner = TunerKind::Random;
            spec.seed = 100 + i as u64;
            spec.max_evals = 6;
            spec.batch = 1;
            spec.engine = EngineKind::Real;
            spec
        };
        let specs: Vec<JobSpec> = (0..JOBS).map(spec_for).collect();
        let ref_dir = dir.join("reference");
        std::fs::create_dir_all(&ref_dir).expect("mkdir ref");
        let expected: Vec<Identity> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| reference_identity(s, &ref_dir, i))
            .collect();

        // Single-file journals so the post-mortem stamp check below can
        // read each tape directly (rotation-boundary kills are covered
        // by the acceptance test above).
        let cfg = || ServiceConfig {
            workers: 2,
            rotation: None,
            ..chaos_cfg()
        };
        let svc_dir = dir.join("svc");
        let (svc, _) = TuningService::open(&svc_dir, cfg()).expect("open service");
        let mut ids: HashMap<usize, u64> = HashMap::new();
        for (i, spec) in specs.iter().enumerate() {
            ids.insert(i, svc.submit(spec.clone()).expect("admission"));
        }
        // Kill as soon as a couple of sessions finished: with 2 workers
        // and 8 jobs, the rest are provably mid-flight or queued.
        loop {
            let s = svc.status();
            if s.completed >= 2 || (s.queued == 0 && s.running == 0) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        svc.kill();
        drop(svc);

        let (svc, recovery) = TuningService::open(&svc_dir, cfg()).expect("reopen");
        assert!(
            recovery.adopted >= 1,
            "the kill landed after every session finished; nothing was interrupted"
        );
        assert_eq!(
            recovery.adopted + recovery.already_done,
            JOBS,
            "no session lost, none duplicated"
        );

        let (mut par_loops, mut par_entries) = (0u64, 0u64);
        for (i, id) in &ids {
            let outcome = svc
                .wait(*id, Duration::from_secs(120))
                .unwrap_or_else(|| panic!("session {i} (job {id}) never terminated"));
            assert_eq!(
                outcome.state,
                JobState::Completed,
                "session {i} ended {:?}: {:?}",
                outcome.state,
                outcome.message
            );
            assert_eq!(
                outcome_identity(&outcome),
                expected[*i],
                "session {i} diverged from its uninterrupted reference"
            );
            // Accounting invariant: every trial that entered a kernel's
            // parallel loop either dispatched on the pool or counted a
            // sequential fallback — recovery must not lose the counters.
            let par = outcome
                .report
                .as_ref()
                .and_then(|r| r.par.clone())
                .expect("parallel-capable rungs report ParStats");
            par_loops += par.loops_proven + par.loops_unproven;
            par_entries += par.dispatches + par.fallbacks;

            // Every journal record is stamped with a `par/v1` engine
            // fingerprint: replay after the kill re-attributed each trial
            // to a pool-capable rung, never to a pre-pool pipeline.
            let path = svc_dir.join("journals").join(format!("{id}.jsonl"));
            let (_journal, records) = TrialJournal::open_resume(&path).expect("journal reopens");
            assert_eq!(records.len(), specs[*i].max_evals, "session {i} tape length");
            assert!(
                records
                    .iter()
                    .all(|r| r.pipeline.as_deref().is_some_and(|p| p.contains("+par/v1"))),
                "session {i} journal carries a non-par/v1 stamp: {:?}",
                records.iter().map(|r| r.pipeline.clone()).collect::<Vec<_>>()
            );
        }
        assert!(
            par_loops >= 1,
            "no session ever prepared a parallel loop — the sweep is vacuous"
        );
        assert!(
            par_entries >= 1,
            "no session ever entered a parallel loop at execution time"
        );
        // The status endpoint aggregates the recovered sessions' counters.
        let status = svc.status();
        assert!(
            status.par.loops_proven + status.par.loops_unproven >= 1,
            "service status lost the ParStats aggregate: {:?}",
            status.par
        );
        svc.shutdown();
        tvm_runtime::pool::set_num_threads(1);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn queue_bound_holds_under_submission_flood() {
    with_watchdog(Duration::from_secs(120), || {
        let dir = std::env::temp_dir().join("tvm-service-chaos").join("flood");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            poll_ms: 2,
            ..chaos_cfg()
        };
        let (svc, _) = TuningService::open(&dir, cfg).expect("open");
        let accepted = std::sync::atomic::AtomicUsize::new(0);
        let rejected = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let svc = &svc;
                let accepted = &accepted;
                let rejected = &rejected;
                scope.spawn(move || {
                    for i in 0..25usize {
                        match svc.submit(chaos_spec(4 * i + t)) {
                            Ok(_) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(tvm_service::RejectReason::QueueFull { depth, capacity }) => {
                                assert!(depth <= capacity);
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected rejection: {other}"),
                        }
                    }
                });
            }
        });
        let status = svc.status();
        assert!(
            status.queue_high_water <= 8,
            "bound violated: high water {}",
            status.queue_high_water
        );
        assert!(accepted.load(Ordering::Relaxed) > 0);
        // Every accepted job still terminates (nothing leaked or lost).
        svc.shutdown();
        let (svc, recovery) = TuningService::open(&dir, chaos_cfg()).expect("reopen");
        let _ = recovery;
        let deadline = std::time::Instant::now() + Duration::from_secs(90);
        loop {
            let s = svc.status();
            if s.queued == 0 && s.running == 0 {
                assert_eq!(
                    s.completed,
                    accepted.load(Ordering::Relaxed),
                    "every accepted job must complete exactly once"
                );
                break;
            }
            assert!(std::time::Instant::now() < deadline, "drain stalled");
            std::thread::sleep(Duration::from_millis(10));
        }
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}
