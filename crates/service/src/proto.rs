//! JSON-lines wire protocol between `serve` and `tune-client`.
//!
//! One request per line, one response per line. The protocol layer is a
//! pure function over [`TuningService`] so integration tests can drive
//! the full request surface without sockets, and the binaries reduce to
//! framing.

use crate::job::{JobSpec, RejectReason};
use crate::service::{JobOutcome, ServiceStatus, TuningService};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Client → server messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Request {
    /// Submit a job for admission.
    Submit {
        /// The job to admit.
        spec: JobSpec,
    },
    /// Aggregate service health.
    Status,
    /// Fetch a job's terminal outcome if it has one (non-blocking).
    Outcome {
        /// Job id returned by `Submit`.
        id: u64,
    },
    /// Block until a job reaches a terminal state, up to `timeout_s`.
    Wait {
        /// Job id returned by `Submit`.
        id: u64,
        /// Longest time to wait, seconds.
        timeout_s: f64,
    },
    /// Request cancellation of a queued/running job.
    Cancel {
        /// Job id returned by `Submit`.
        id: u64,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Response {
    /// The job was durably admitted.
    Accepted {
        /// Id to poll/wait on.
        id: u64,
    },
    /// The job was refused; see the typed reason.
    Rejected {
        /// Why admission failed.
        reason: RejectReason,
    },
    /// Health snapshot.
    Status {
        /// The snapshot.
        status: ServiceStatus,
    },
    /// Outcome query result (`None` while the job is in flight or
    /// unknown).
    Outcome {
        /// The terminal outcome, if reached.
        outcome: Option<JobOutcome>,
    },
    /// Result of a cancel request.
    Cancelled {
        /// True if the job existed and was still cancellable.
        ok: bool,
    },
    /// Acknowledges `Shutdown`; the connection closes after this.
    ShuttingDown,
    /// The request line could not be parsed or served.
    Error {
        /// Human-readable explanation.
        message: String,
    },
}

/// Serve one request. `Shutdown` is acknowledged but *not* executed here
/// — the caller owns the service lifecycle and calls
/// [`TuningService::shutdown`] after flushing the reply.
pub fn handle_request(service: &TuningService, request: Request) -> Response {
    match request {
        Request::Submit { spec } => match service.submit(spec) {
            Ok(id) => Response::Accepted { id },
            Err(reason) => Response::Rejected { reason },
        },
        Request::Status => Response::Status {
            status: service.status(),
        },
        Request::Outcome { id } => Response::Outcome {
            outcome: service.outcome(id),
        },
        Request::Wait { id, timeout_s } => Response::Outcome {
            outcome: service.wait(id, Duration::from_secs_f64(timeout_s.max(0.0))),
        },
        Request::Cancel { id } => Response::Cancelled {
            ok: service.cancel(id),
        },
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Parse one request line and serve it.
pub fn handle_line(service: &TuningService, line: &str) -> Response {
    match serde_json::from_str::<Request>(line) {
        Ok(req) => handle_request(service, req),
        Err(e) => Response::Error {
            message: format!("bad request: {e}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{JobState, ServiceConfig};

    #[test]
    fn requests_round_trip_through_json() {
        let req = Request::Submit {
            spec: JobSpec::new("t", "lu", "mini"),
        };
        let json = serde_json::to_string(&req).expect("serialize");
        assert!(json.contains("\"type\":\"submit\""));
        let back: Request = serde_json::from_str(&json).expect("deserialize");
        assert!(matches!(back, Request::Submit { .. }));

        let wait = serde_json::to_string(&Request::Wait {
            id: 3,
            timeout_s: 1.5,
        })
        .expect("serialize");
        let back: Request = serde_json::from_str(&wait).expect("deserialize");
        assert!(matches!(back, Request::Wait { id: 3, .. }));
    }

    #[test]
    fn full_request_surface_without_sockets() {
        let dir = std::env::temp_dir()
            .join("tvm-service-proto-tests")
            .join("surface");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServiceConfig {
            workers: 2,
            poll_ms: 2,
            ..ServiceConfig::default()
        };
        let (svc, _) = TuningService::open(&dir, cfg).expect("open");

        let mut spec = JobSpec::new("t", "lu", "mini");
        spec.max_evals = 4;
        spec.batch = 2;
        let id = match handle_request(&svc, Request::Submit { spec }) {
            Response::Accepted { id } => id,
            other => panic!("expected acceptance, got {other:?}"),
        };
        let outcome = match handle_request(
            &svc,
            Request::Wait {
                id,
                timeout_s: 30.0,
            },
        ) {
            Response::Outcome { outcome } => outcome.expect("terminal"),
            other => panic!("expected outcome, got {other:?}"),
        };
        assert_eq!(outcome.state, JobState::Completed);

        match handle_request(&svc, Request::Status) {
            Response::Status { status } => assert_eq!(status.completed, 1),
            other => panic!("expected status, got {other:?}"),
        }
        match handle_line(&svc, "{not json") {
            Response::Error { .. } => {}
            other => panic!("expected error, got {other:?}"),
        }
        assert!(matches!(
            handle_request(&svc, Request::Shutdown),
            Response::ShuttingDown
        ));
        svc.shutdown();
    }
}
