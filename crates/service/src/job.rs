//! Job specifications, admission verdicts, and persisted job state.

use autotvm::harness::FaultPlan;
use autotvm::{GaTuner, GridSearchTuner, RandomTuner, Tuner, XgbTuner};
use configspace::ConfigSpace;
use polybench::{KernelName, ProblemSize};
use serde::{Deserialize, Serialize};
use tvm_autotune::YtoptTuner;

/// Which measurement engine a job runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// Analytical A100 model (`gpu_sim::SimDevice`) — deterministic,
    /// paper-scale, no real execution. Single-rung ladder.
    Simulated,
    /// Real host execution on the CPU device, with the full degradation
    /// ladder: optimized VM → scalar VM → reference interpreter.
    Real,
}

/// Which schedule space a job tunes over.
///
/// Service-side mirror of `polybench::SpaceMode` so the choice rides
/// inside persisted job specs (the mold crate stays serde-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SpaceKind {
    /// The paper's divisor-only tile spaces: every configuration is
    /// legal by construction.
    #[default]
    Paper,
    /// The widened analyzer-pruned spaces: non-divisor tiles, illegal
    /// fusions, over-wide vectors, racy parallel annotations — the
    /// static analyzer holds the line before anything compiles.
    Aggressive,
}

impl SpaceKind {
    /// Parse a client-side space name.
    pub fn parse(s: &str) -> Option<SpaceKind> {
        match s.to_ascii_lowercase().as_str() {
            "paper" | "divisor" => Some(SpaceKind::Paper),
            "aggressive" | "wide" => Some(SpaceKind::Aggressive),
            _ => None,
        }
    }

    /// The mold-side mode this kind selects.
    pub fn mode(&self) -> polybench::SpaceMode {
        match self {
            SpaceKind::Paper => polybench::SpaceMode::Paper,
            SpaceKind::Aggressive => polybench::SpaceMode::Aggressive,
        }
    }
}

/// Which search strategy drives a job's session.
///
/// All five strategies are deterministic functions of `(seed, observed
/// history)`, which is what makes journal replay reproduce a killed
/// session's remaining trajectory exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TunerKind {
    /// Random enumeration of the space.
    Random,
    /// Grid-order enumeration.
    GridSearch,
    /// Genetic algorithm.
    Ga,
    /// XGBoost cost model + simulated annealing.
    Xgb,
    /// The paper's BO framework (RF surrogate + LCB).
    Ytopt,
}

impl TunerKind {
    /// Parse a client-side strategy name.
    pub fn parse(s: &str) -> Option<TunerKind> {
        match s.to_ascii_lowercase().as_str() {
            "random" => Some(TunerKind::Random),
            "grid" | "gridsearch" | "grid-search" => Some(TunerKind::GridSearch),
            "ga" => Some(TunerKind::Ga),
            "xgb" => Some(TunerKind::Xgb),
            "ytopt" | "bo" => Some(TunerKind::Ytopt),
            _ => None,
        }
    }

    /// Construct the tuner over `space` (done on the worker thread that
    /// owns the session). Sessions resumed after a crash rebuild the
    /// tuner with the same `(kind, seed)` and replay the journal through
    /// it.
    pub fn build(&self, space: ConfigSpace, seed: u64) -> Box<dyn Tuner> {
        match self {
            TunerKind::Random => Box::new(RandomTuner::new(space, seed)),
            TunerKind::GridSearch => Box::new(GridSearchTuner::new(space)),
            TunerKind::Ga => Box::new(GaTuner::new(space, seed)),
            TunerKind::Xgb => Box::new(XgbTuner::new(space, seed)),
            TunerKind::Ytopt => Box::new(YtoptTuner::new(space, seed)),
        }
    }
}

/// One tenant's tuning request: what to tune, with which strategy, under
/// which budget and deadline. Persisted (fsync'd) at admission so a
/// crashed server can re-adopt the job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Tenant identifier (free-form; used for reporting only).
    pub tenant: String,
    /// PolyBench kernel name (`"lu"`, `"3mm"`, `"cholesky"`, …).
    pub kernel: String,
    /// Problem size (`"mini"`, `"small"`, `"medium"`, `"large"`,
    /// `"extralarge"`).
    pub size: String,
    /// Search strategy.
    pub tuner: TunerKind,
    /// Tuner seed (replay requires the same seed after a restart).
    pub seed: u64,
    /// Evaluation budget.
    pub max_evals: usize,
    /// Proposals per measure round.
    pub batch: usize,
    /// Measurement engine.
    pub engine: EngineKind,
    /// Wall-clock deadline, seconds from submission (`None` = no
    /// deadline). Measured against the *persisted* submission timestamp,
    /// so time spent down between a crash and a restart counts.
    #[serde(default)]
    pub deadline_s: Option<f64>,
    /// Optional deterministic fault-injection plan (chaos testing).
    #[serde(default)]
    pub fault: Option<FaultPlan>,
    /// Which schedule space to tune over (defaults to the paper's
    /// divisor-only spaces, so specs persisted before this field existed
    /// resume under the space they were tuned in).
    #[serde(default)]
    pub space: SpaceKind,
}

impl JobSpec {
    /// A minimal well-formed spec for `kernel`/`size`, tunable further by
    /// struct update.
    pub fn new(tenant: impl Into<String>, kernel: &str, size: &str) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            kernel: kernel.to_string(),
            size: size.to_string(),
            tuner: TunerKind::Random,
            seed: 0,
            max_evals: 20,
            batch: 4,
            engine: EngineKind::Simulated,
            deadline_s: None,
            fault: None,
            space: SpaceKind::default(),
        }
    }

    /// Parse the kernel/size fields, or explain what is wrong.
    pub fn workload(&self) -> Result<(KernelName, ProblemSize), String> {
        let kernel = KernelName::parse(&self.kernel)
            .ok_or_else(|| format!("unknown kernel {:?}", self.kernel))?;
        let size = ProblemSize::parse(&self.size)
            .ok_or_else(|| format!("unknown problem size {:?}", self.size))?;
        Ok((kernel, size))
    }

    /// Full admission-time validation.
    pub fn validate(&self) -> Result<(), String> {
        self.workload()?;
        if self.max_evals == 0 {
            return Err("max_evals must be at least 1".into());
        }
        if self.batch == 0 {
            return Err("batch must be at least 1".into());
        }
        if let Some(d) = self.deadline_s {
            if !d.is_finite() || d <= 0.0 {
                return Err(format!("deadline_s must be positive and finite, got {d}"));
            }
        }
        if let Some(plan) = &self.fault {
            let total = plan.total_failure_rate();
            if !(0.0..=1.0).contains(&total) {
                return Err(format!(
                    "fault plan rates sum to {total}, not a probability"
                ));
            }
        }
        Ok(())
    }
}

/// Why the service refused to admit a job. Typed so clients can react
/// (back off, pick another kernel, shrink the request) instead of parsing
/// strings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The bounded admission queue is at capacity. Backpressure, not
    /// failure: retry after running sessions drain.
    QueueFull {
        /// Jobs currently queued.
        depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The per-kernel circuit breaker is open after repeated
    /// infrastructure failures on this kernel.
    CircuitOpen {
        /// The kernel whose breaker tripped.
        kernel: String,
        /// Seconds until the breaker half-opens and probes again.
        retry_in_s: f64,
    },
    /// The spec itself is malformed (unknown kernel, zero budget, …).
    InvalidSpec {
        /// What validation found.
        message: String,
    },
    /// The service is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth, capacity } => {
                write!(f, "admission queue full ({depth}/{capacity})")
            }
            RejectReason::CircuitOpen { kernel, retry_in_s } => {
                write!(
                    f,
                    "circuit breaker open for kernel {kernel} (retry in {retry_in_s:.2}s)"
                )
            }
            RejectReason::InvalidSpec { message } => write!(f, "invalid job spec: {message}"),
            RejectReason::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_kind_parses_aliases() {
        assert_eq!(TunerKind::parse("random"), Some(TunerKind::Random));
        assert_eq!(TunerKind::parse("grid"), Some(TunerKind::GridSearch));
        assert_eq!(TunerKind::parse("GridSearch"), Some(TunerKind::GridSearch));
        assert_eq!(TunerKind::parse("bo"), Some(TunerKind::Ytopt));
        assert_eq!(TunerKind::parse("annealer"), None);
    }

    #[test]
    fn spec_validation_catches_bad_fields() {
        assert!(JobSpec::new("t", "lu", "mini").validate().is_ok());
        assert!(JobSpec::new("t", "nope", "mini").validate().is_err());
        assert!(JobSpec::new("t", "lu", "nope").validate().is_err());
        let mut zero = JobSpec::new("t", "lu", "mini");
        zero.max_evals = 0;
        assert!(zero.validate().is_err());
        let mut neg = JobSpec::new("t", "lu", "mini");
        neg.deadline_s = Some(-1.0);
        assert!(neg.validate().is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = JobSpec::new("tenant-7", "3mm", "small");
        spec.fault = Some(FaultPlan::uniform(0.3, 99));
        spec.deadline_s = Some(12.5);
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: JobSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.tenant, "tenant-7");
        assert_eq!(back.tuner, TunerKind::Random);
        assert_eq!(back.deadline_s, Some(12.5));
        let plan = back.fault.expect("plan survives");
        assert!((plan.total_failure_rate() - 0.3).abs() < 1e-9);
        assert_eq!(plan.seed, 99);
    }

    #[test]
    fn space_kind_parses_and_defaults_for_legacy_specs() {
        assert_eq!(SpaceKind::parse("paper"), Some(SpaceKind::Paper));
        assert_eq!(SpaceKind::parse("Aggressive"), Some(SpaceKind::Aggressive));
        assert_eq!(SpaceKind::parse("huge"), None);
        assert_eq!(SpaceKind::Paper.mode(), polybench::SpaceMode::Paper);
        assert_eq!(SpaceKind::Aggressive.mode(), polybench::SpaceMode::Aggressive);

        let mut spec = JobSpec::new("t", "gemm", "mini");
        spec.space = SpaceKind::Aggressive;
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: JobSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.space, SpaceKind::Aggressive);

        // A spec persisted before the field existed resumes under the
        // paper space it was tuned in.
        let mut value: serde_json::Value = serde_json::from_str(&json).expect("value");
        value.as_object_mut().expect("object").remove("space");
        let legacy: JobSpec = serde_json::from_value(value).expect("legacy spec");
        assert_eq!(legacy.space, SpaceKind::Paper);
    }

    #[test]
    fn reject_reasons_render() {
        let r = RejectReason::QueueFull {
            depth: 8,
            capacity: 8,
        };
        assert!(r.to_string().contains("8/8"));
        let r = RejectReason::CircuitOpen {
            kernel: "lu".into(),
            retry_in_s: 0.5,
        };
        assert!(r.to_string().contains("lu"));
    }
}
