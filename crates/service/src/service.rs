//! The multi-tenant tuning service: bounded admission, a supervised
//! worker pool, per-kernel circuit breakers, and crash-recoverable
//! sessions.
//!
//! # Persistence layout
//!
//! ```text
//! <dir>/jobs/<id>.json       accepted job spec + submission timestamp
//! <dir>/journals/<id>.jsonl  the session's trial journal (+ .segN archives)
//! <dir>/done/<id>.json       terminal outcome (absence ⇒ in flight)
//! ```
//!
//! Every file is fsync'd before it becomes load-bearing, and the job file
//! is persisted *before* the job enters the admission queue — so at any
//! kill point the disk state is one of: (a) no job file → the submit was
//! rejected or never acknowledged, (b) job file without done marker → the
//! job is adopted on restart and resumed from its journal, (c) done
//! marker → the outcome is final. There is no window where an
//! acknowledged job can be lost.
//!
//! # Supervision
//!
//! A fixed pool of worker threads pops jobs from the bounded queue; a
//! supervisor thread respawns any worker that dies (panics unwind out of
//! the job runner only for service bugs — tenant-visible failures are
//! caught and journaled as `Failed` outcomes). Circuit breakers and the
//! lowering memo-cache are process-wide and shared across all workers.

use crate::breaker::{BreakerBoard, BreakerConfig, BreakerStatus};
use crate::job::{JobSpec, RejectReason};
use crate::ladder::build_ladder;
use crate::queue::JobQueue;
use crate::session::{
    now_unix_ms, run_session, SessionCtl, SessionEnd, SessionOptions, SessionReport,
};
use autotvm::HarnessOptions;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tvm_autotune::MemoCache;
use ytopt_bo::journal::{RotationPolicy, TrialJournal};
use ytopt_bo::problem::{CacheStats, JitStats, ParStats, PruneStats, SimdStats};

/// Sentinel id that makes a worker panic *outside* the job runner's
/// panic guard — a test hook proving the supervisor respawns workers.
const POISON_JOB_ID: u64 = u64::MAX;

/// Service-wide tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads running sessions.
    pub workers: usize,
    /// Bound on the admission queue (see [`JobQueue`]).
    pub queue_capacity: usize,
    /// Per-kernel circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Consecutive engine failures before a session demotes one rung.
    pub demote_after: u32,
    /// Journal rotation policy (`None` = single-file journals).
    pub rotation: Option<RotationPolicy>,
    /// Harness policy (timeout/retry) applied to real-engine rungs.
    pub harness: HarnessOptions,
    /// Worker queue-poll period, milliseconds.
    pub poll_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            breaker: BreakerConfig::default(),
            demote_after: 3,
            rotation: None,
            harness: HarnessOptions::default(),
            poll_ms: 10,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running (or replaying) the session.
    Running,
    /// Terminal: the session finished its budget.
    Completed,
    /// Terminal: the wall-clock deadline passed.
    DeadlineExceeded,
    /// Terminal: the tenant cancelled.
    Cancelled,
    /// Terminal: the session failed (journal divergence, panic, I/O).
    Failed,
}

impl JobState {
    /// True for states that will never change again.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// Terminal outcome of a job, persisted as `done/<id>.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job id.
    pub id: u64,
    /// Tenant the job belonged to.
    pub tenant: String,
    /// Terminal state (never `Queued`/`Running`).
    pub state: JobState,
    /// Full session report, when a session ran to a graceful end.
    pub report: Option<SessionReport>,
    /// Failure detail for `Failed` outcomes.
    pub message: Option<String>,
}

/// What `TuningService::open` found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// In-flight jobs re-adopted into the queue.
    pub adopted: usize,
    /// Jobs whose done marker already existed.
    pub already_done: usize,
}

/// Aggregate service health, serializable for the status endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceStatus {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Terminal counts by state.
    pub completed: usize,
    /// Deadline-exceeded terminal count.
    pub deadline_exceeded: usize,
    /// Cancelled terminal count.
    pub cancelled: usize,
    /// Failed terminal count.
    pub failed: usize,
    /// Current admission-queue depth.
    pub queue_depth: usize,
    /// Admission bound.
    pub queue_capacity: usize,
    /// Highest queue depth ever reached.
    pub queue_high_water: usize,
    /// Aggregate lowering/compilation memo-cache counters (shared across
    /// every evaluator and session in the process).
    pub cache: CacheStats,
    /// Aggregate native-codegen compile counters over every terminal
    /// session report (JIT rungs only; all-zero when no real-engine job
    /// has finished).
    pub jit: JitStats,
    /// Aggregate multicore-dispatch counters over every terminal session
    /// report (parallel-capable rungs only; all-zero when no real-engine
    /// job has finished).
    pub par: ParStats,
    /// Aggregate packed-SIMD emission counters over every terminal
    /// session report (vectorizing rungs only; all-zero until a JIT job
    /// has finished). Defaulted on deserialize for status files written
    /// before the packed tier.
    #[serde(default)]
    pub simd: SimdStats,
    /// Aggregate static-pruning counters over every terminal session
    /// report (analyzed rungs only; all-zero until an analyzed job has
    /// finished). The per-code denial counts answer "what is the
    /// aggressive space rejecting, and why" at the fleet level.
    #[serde(default)]
    pub prune: PruneStats,
    /// Per-kernel breaker states.
    pub breakers: Vec<BreakerStatus>,
    /// Workers respawned by the supervisor after a crash.
    pub worker_restarts: u64,
    /// Configured worker count.
    pub workers: usize,
}

/// The on-disk form of an accepted job.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PersistedJob {
    spec: JobSpec,
    submitted_unix_ms: u64,
}

struct JobEntry {
    spec: JobSpec,
    submitted_unix_ms: u64,
    state: JobState,
    cancel: Arc<AtomicBool>,
    outcome: Option<JobOutcome>,
}

struct Inner {
    dir: PathBuf,
    cfg: ServiceConfig,
    queue: JobQueue,
    breakers: BreakerBoard,
    cache: Arc<MemoCache>,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    state_changed: Condvar,
    next_id: AtomicU64,
    /// Graceful: stop admitting, stop popping; running sessions finish.
    shutdown: Arc<AtomicBool>,
    /// Abrupt: sessions stop between trials without finalizing anything —
    /// the in-process stand-in for `kill -9` (journals are fsync'd per
    /// trial, so disk state is identical).
    kill: Arc<AtomicBool>,
    worker_restarts: AtomicU64,
}

/// Handle to a running service instance. Dropping it kills the instance
/// abruptly (the crash-recovery path makes that safe by construction).
pub struct TuningService {
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    supervisor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TuningService {
    /// Open (or re-open) a service rooted at `dir`, adopting any job that
    /// was in flight when a previous instance died.
    pub fn open(
        dir: impl AsRef<Path>,
        cfg: ServiceConfig,
    ) -> std::io::Result<(TuningService, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(dir.join("jobs"))?;
        std::fs::create_dir_all(dir.join("journals"))?;
        std::fs::create_dir_all(dir.join("done"))?;

        let mut jobs: HashMap<u64, JobEntry> = HashMap::new();
        let mut recovered: Vec<u64> = Vec::new();
        let mut report = RecoveryReport::default();
        let mut max_id = 0u64;
        for entry in std::fs::read_dir(dir.join("jobs"))? {
            let path = entry?.path();
            let Some(id) = job_id_from_path(&path) else {
                continue;
            };
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue;
            };
            let Ok(persisted) = serde_json::from_str::<PersistedJob>(&raw) else {
                // A torn job file can only exist for a submit that was
                // never acknowledged; it is not a job.
                continue;
            };
            max_id = max_id.max(id);
            let done_path = dir.join("done").join(format!("{id}.json"));
            let (state, outcome) = match std::fs::read_to_string(&done_path)
                .ok()
                .and_then(|raw| serde_json::from_str::<JobOutcome>(&raw).ok())
            {
                Some(outcome) => {
                    report.already_done += 1;
                    (outcome.state, Some(outcome))
                }
                None => {
                    report.adopted += 1;
                    recovered.push(id);
                    (JobState::Queued, None)
                }
            };
            jobs.insert(
                id,
                JobEntry {
                    spec: persisted.spec,
                    submitted_unix_ms: persisted.submitted_unix_ms,
                    state,
                    cancel: Arc::new(AtomicBool::new(false)),
                    outcome,
                },
            );
        }
        recovered.sort_unstable();

        let inner = Arc::new(Inner {
            queue: JobQueue::new(cfg.queue_capacity),
            breakers: BreakerBoard::new(cfg.breaker),
            cache: Arc::new(MemoCache::new()),
            jobs: Mutex::new(jobs),
            state_changed: Condvar::new(),
            next_id: AtomicU64::new(max_id + 1),
            shutdown: Arc::new(AtomicBool::new(false)),
            kill: Arc::new(AtomicBool::new(false)),
            worker_restarts: AtomicU64::new(0),
            dir,
            cfg,
        });
        for id in recovered {
            inner.queue.push_recovered(id);
        }

        let workers = Arc::new(Mutex::new(
            (0..cfg.workers.max(1))
                .map(|_| spawn_worker(Arc::clone(&inner)))
                .collect::<Vec<_>>(),
        ));
        let supervisor = spawn_supervisor(Arc::clone(&inner), Arc::clone(&workers));
        Ok((
            TuningService {
                inner,
                workers,
                supervisor: Mutex::new(Some(supervisor)),
            },
            report,
        ))
    }

    /// Submit a job. `Ok(id)` means the job is durably admitted: it will
    /// reach a terminal state even across server crashes.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, RejectReason> {
        if self.inner.shutdown.load(Ordering::Relaxed) || self.inner.kill.load(Ordering::Relaxed) {
            return Err(RejectReason::ShuttingDown);
        }
        if let Err(message) = spec.validate() {
            return Err(RejectReason::InvalidSpec { message });
        }
        if let Some(retry_in_s) = self.inner.breakers.submission_block(&spec.kernel) {
            return Err(RejectReason::CircuitOpen {
                kernel: spec.kernel.clone(),
                retry_in_s,
            });
        }

        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let submitted_unix_ms = now_unix_ms();
        let path = self.inner.dir.join("jobs").join(format!("{id}.json"));
        let persisted = PersistedJob {
            spec: spec.clone(),
            submitted_unix_ms,
        };
        if let Err(e) = write_json_durable(&path, &persisted) {
            return Err(RejectReason::InvalidSpec {
                message: format!("failed to persist job: {e}"),
            });
        }

        {
            let mut jobs = self.inner.jobs.lock();
            jobs.insert(
                id,
                JobEntry {
                    spec,
                    submitted_unix_ms,
                    state: JobState::Queued,
                    cancel: Arc::new(AtomicBool::new(false)),
                    outcome: None,
                },
            );
        }
        if let Err((depth, capacity)) = self.inner.queue.try_push(id) {
            // Roll the admission back completely before rejecting.
            let _ = std::fs::remove_file(&path);
            self.inner.jobs.lock().remove(&id);
            return Err(RejectReason::QueueFull { depth, capacity });
        }
        Ok(id)
    }

    /// Current lifecycle state of a job.
    pub fn state(&self, id: u64) -> Option<JobState> {
        self.inner.jobs.lock().get(&id).map(|e| e.state)
    }

    /// Terminal outcome, if the job has reached one.
    pub fn outcome(&self, id: u64) -> Option<JobOutcome> {
        self.inner
            .jobs
            .lock()
            .get(&id)
            .and_then(|e| e.outcome.clone())
    }

    /// Block until `id` reaches a terminal state, up to `timeout`.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobOutcome> {
        let deadline = std::time::Instant::now() + timeout;
        let mut jobs = self.inner.jobs.lock();
        loop {
            match jobs.get(&id) {
                None => return None,
                Some(e) if e.outcome.is_some() => return e.outcome.clone(),
                Some(_) => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.inner.state_changed.wait_for(&mut jobs, deadline - now);
        }
    }

    /// Request cancellation. Best-effort and in-memory: a job cancelled
    /// here stops before its next live trial; if the server dies first,
    /// the restarted server runs the job to completion instead (the
    /// cancel was never durable, and re-running is always safe).
    pub fn cancel(&self, id: u64) -> bool {
        let jobs = self.inner.jobs.lock();
        match jobs.get(&id) {
            Some(e) if !e.state.is_terminal() => {
                e.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Aggregate health snapshot.
    pub fn status(&self) -> ServiceStatus {
        let jobs = self.inner.jobs.lock();
        let count = |s: JobState| jobs.values().filter(|e| e.state == s).count();
        let mut jit = JitStats::default();
        let mut par = ParStats::default();
        let mut simd = SimdStats::default();
        let mut prune = PruneStats::default();
        for entry in jobs.values() {
            let report = entry.outcome.as_ref().and_then(|o| o.report.as_ref());
            if let Some(s) = report.and_then(|r| r.jit.as_ref()) {
                jit.merge(s);
            }
            if let Some(s) = report.and_then(|r| r.par.as_ref()) {
                par.merge(s);
            }
            if let Some(s) = report.and_then(|r| r.simd.as_ref()) {
                simd.merge(s);
            }
            if let Some(s) = report.and_then(|r| r.prune.as_ref()) {
                prune.merge(s);
            }
        }
        ServiceStatus {
            queued: count(JobState::Queued),
            running: count(JobState::Running),
            completed: count(JobState::Completed),
            deadline_exceeded: count(JobState::DeadlineExceeded),
            cancelled: count(JobState::Cancelled),
            failed: count(JobState::Failed),
            queue_depth: self.inner.queue.len(),
            queue_capacity: self.inner.queue.capacity(),
            queue_high_water: self.inner.queue.high_water(),
            cache: self.inner.cache.stats(),
            jit,
            par,
            simd,
            prune,
            breakers: self.inner.breakers.snapshot(),
            worker_restarts: self.inner.worker_restarts.load(Ordering::Relaxed),
            workers: self.inner.cfg.workers.max(1),
        }
    }

    /// Kill the instance abruptly: sessions stop between trials, nothing
    /// is finalized, and in-flight jobs are left for the next `open` to
    /// adopt. This is the in-process equivalent of `kill -9` — per-trial
    /// fsync means the journal on disk is identical either way.
    pub fn kill(&self) {
        self.inner.kill.store(true, Ordering::Relaxed);
        self.inner.queue.wake_all();
        self.join_threads();
    }

    /// Stop gracefully: no new admissions, no new sessions; running
    /// sessions finish and persist their outcomes. Queued jobs stay on
    /// disk for the next instance.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.queue.wake_all();
        self.join_threads();
    }

    /// Test hook: make one worker panic outside the job runner's panic
    /// guard, so the supervisor's respawn path can be exercised.
    pub fn debug_crash_worker(&self) {
        self.inner.queue.push_recovered(POISON_JOB_ID);
    }

    fn join_threads(&self) {
        if let Some(sup) = self.supervisor.lock().take() {
            let _ = sup.join();
        }
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for TuningService {
    fn drop(&mut self) {
        self.inner.kill.store(true, Ordering::Relaxed);
        self.inner.queue.wake_all();
        self.join_threads();
    }
}

fn job_id_from_path(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// Write `value` as JSON with crash-safe visibility: temp file, fsync,
/// atomic rename. A crash at any point leaves either no file or the
/// complete file — never a torn one under the final name.
fn write_json_durable<T: Serialize + 'static>(path: &Path, value: &T) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(serde_json::to_string_pretty(value)?.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn spawn_worker(inner: Arc<Inner>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("tvm-service-worker".into())
        .spawn(move || worker_loop(inner))
        .expect("spawn worker thread")
}

fn spawn_supervisor(
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("tvm-service-supervisor".into())
        .spawn(move || supervisor_loop(inner, workers))
        .expect("spawn supervisor thread")
}

/// Respawn any worker whose thread has died. Runs until kill/shutdown.
fn supervisor_loop(inner: Arc<Inner>, workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>) {
    loop {
        if inner.kill.load(Ordering::Relaxed) || inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        {
            let mut pool = workers.lock();
            for slot in pool.iter_mut() {
                if slot.is_finished() {
                    let fresh = spawn_worker(Arc::clone(&inner));
                    let dead = std::mem::replace(slot, fresh);
                    let _ = dead.join();
                    inner.worker_restarts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(inner.cfg.poll_ms.max(1)));
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        if inner.kill.load(Ordering::Relaxed) || inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Some(id) = inner
            .queue
            .pop_timeout(Duration::from_millis(inner.cfg.poll_ms.max(1)))
        else {
            continue;
        };
        if inner.kill.load(Ordering::Relaxed) {
            // Popped with the kill flag up: drop the id on the floor —
            // the job file has no done marker, so the next instance
            // re-adopts it.
            return;
        }
        if id == POISON_JOB_ID {
            panic!("poison job: deliberate worker crash (test hook)");
        }
        set_state(&inner, id, JobState::Running);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(&inner, id)));
        match outcome {
            Ok(Ok(None)) => {
                // Interrupted by kill: leave no trace, the journal and
                // job file carry the session forward.
            }
            Ok(Ok(Some(outcome))) => finalize(&inner, id, outcome),
            Ok(Err(e)) => finalize_failed(&inner, id, format!("session error: {e}")),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("unknown panic");
                finalize_failed(&inner, id, format!("session panicked: {msg}"));
            }
        }
    }
}

/// Run one session to a terminal state (or to a kill interruption).
/// Returns `None` when killed — the caller must not finalize anything.
fn run_job(inner: &Inner, id: u64) -> std::io::Result<Option<JobOutcome>> {
    let (spec, submitted_unix_ms, cancel) = {
        let jobs = inner.jobs.lock();
        let Some(entry) = jobs.get(&id) else {
            return Ok(None);
        };
        (
            entry.spec.clone(),
            entry.submitted_unix_ms,
            Arc::clone(&entry.cancel),
        )
    };

    let mut ladder = build_ladder(
        &spec,
        &inner.cache,
        inner.cfg.harness,
        inner.cfg.demote_after,
    )
    .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))?;
    let mut tuner = spec.tuner.build(ladder.space().clone(), spec.seed);

    let journal_path = inner.dir.join("journals").join(format!("{id}.jsonl"));
    let resuming = journal_path.exists();
    let (mut journal, replay) = match (resuming, inner.cfg.rotation) {
        (true, Some(policy)) => TrialJournal::open_resume_rotating(&journal_path, policy)?,
        (true, None) => TrialJournal::open_resume(&journal_path)?,
        (false, Some(policy)) => (
            TrialJournal::create_rotating(&journal_path, policy)?,
            vec![],
        ),
        (false, None) => (TrialJournal::create(&journal_path)?, vec![]),
    };

    let ctl = SessionCtl {
        cancel,
        kill: Arc::clone(&inner.kill),
        breaker: Some(inner.breakers.breaker(&spec.kernel)),
    };
    let opts = SessionOptions {
        max_evals: spec.max_evals,
        batch: spec.batch,
        deadline_unix_ms: spec
            .deadline_s
            .map(|d| submitted_unix_ms + (d * 1000.0) as u64),
    };
    let report = run_session(
        tuner.as_mut(),
        &mut ladder,
        &mut journal,
        replay,
        opts,
        &ctl,
    )?;

    let state = match report.end {
        SessionEnd::Interrupted => return Ok(None),
        SessionEnd::Completed => JobState::Completed,
        SessionEnd::DeadlineExceeded => JobState::DeadlineExceeded,
        SessionEnd::Cancelled => JobState::Cancelled,
    };
    Ok(Some(JobOutcome {
        id,
        tenant: spec.tenant,
        state,
        report: Some(report),
        message: None,
    }))
}

fn set_state(inner: &Inner, id: u64, state: JobState) {
    let mut jobs = inner.jobs.lock();
    if let Some(e) = jobs.get_mut(&id) {
        e.state = state;
    }
    drop(jobs);
    inner.state_changed.notify_all();
}

fn finalize(inner: &Inner, id: u64, outcome: JobOutcome) {
    let done = inner.dir.join("done").join(format!("{id}.json"));
    if let Err(e) = write_json_durable(&done, &outcome) {
        // Without a durable marker the job would be re-run on restart;
        // surface the problem as a failure rather than pretend success.
        finalize_failed(inner, id, format!("failed to persist outcome: {e}"));
        return;
    }
    let mut jobs = inner.jobs.lock();
    if let Some(e) = jobs.get_mut(&id) {
        e.state = outcome.state;
        e.outcome = Some(outcome);
    }
    drop(jobs);
    inner.state_changed.notify_all();
}

fn finalize_failed(inner: &Inner, id: u64, message: String) {
    let tenant = inner
        .jobs
        .lock()
        .get(&id)
        .map(|e| e.spec.tenant.clone())
        .unwrap_or_default();
    let outcome = JobOutcome {
        id,
        tenant,
        state: JobState::Failed,
        report: None,
        message: Some(message),
    };
    let done = inner.dir.join("done").join(format!("{id}.json"));
    let _ = write_json_durable(&done, &outcome);
    let mut jobs = inner.jobs.lock();
    if let Some(e) = jobs.get_mut(&id) {
        e.state = JobState::Failed;
        e.outcome = Some(outcome);
    }
    drop(jobs);
    inner.state_changed.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EngineKind, TunerKind};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("tvm-service-service-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn quick_spec(tenant: &str, seed: u64) -> JobSpec {
        let mut spec = JobSpec::new(tenant, "lu", "mini");
        spec.seed = seed;
        spec.max_evals = 6;
        spec.batch = 2;
        spec.engine = EngineKind::Simulated;
        spec.tuner = TunerKind::Random;
        spec
    }

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            poll_ms: 2,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn submit_runs_to_completion_and_persists_outcome() {
        let dir = tmpdir("complete");
        let (svc, rec) = TuningService::open(&dir, small_cfg()).expect("open");
        assert_eq!(rec, RecoveryReport::default());
        let id = svc.submit(quick_spec("t0", 1)).expect("admit");
        let outcome = svc.wait(id, Duration::from_secs(30)).expect("finish");
        assert_eq!(outcome.state, JobState::Completed);
        let report = outcome.report.expect("report");
        assert_eq!(report.trials.len(), 6);
        assert!(dir.join("done").join(format!("{id}.json")).exists());
        assert!(dir.join("jobs").join(format!("{id}.json")).exists());
        svc.shutdown();
    }

    #[test]
    fn invalid_specs_and_full_queues_are_rejected_with_reasons() {
        let dir = tmpdir("reject");
        let cfg = ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            poll_ms: 200, // keep the single worker asleep long enough
            ..ServiceConfig::default()
        };
        let (svc, _) = TuningService::open(&dir, cfg).expect("open");
        let bad = svc.submit(JobSpec::new("t", "nope", "mini"));
        assert!(matches!(bad, Err(RejectReason::InvalidSpec { .. })));

        // Saturate: worker polls every 200ms, so pushes 1..N stack up.
        let mut admitted = 0;
        let mut rejected = false;
        for i in 0..8 {
            match svc.submit(quick_spec("t", i)) {
                Ok(_) => admitted += 1,
                Err(RejectReason::QueueFull { capacity, .. }) => {
                    assert_eq!(capacity, 1);
                    rejected = true;
                    break;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        assert!(rejected, "bounded queue must eventually refuse");
        assert!(admitted >= 1);
        assert!(svc.status().queue_high_water <= 1);
        svc.kill();
    }

    #[test]
    fn kill_and_reopen_adopts_and_finishes_jobs_identically() {
        let dir = tmpdir("kill-reopen");
        // Reference outcomes from an undisturbed service.
        let ref_dir = tmpdir("kill-reopen-ref");
        let (svc, _) = TuningService::open(&ref_dir, small_cfg()).expect("open ref");
        let mut expected = Vec::new();
        for seed in 0..4u64 {
            let id = svc
                .submit(quick_spec(&format!("t{seed}"), seed))
                .expect("admit");
            expected.push((seed, id));
        }
        let mut want = HashMap::new();
        for (seed, id) in &expected {
            let out = svc.wait(*id, Duration::from_secs(30)).expect("finish");
            let keys: Vec<String> = out
                .report
                .expect("report")
                .trials
                .iter()
                .map(|t| format!("{}|{:?}", t.config.key(), t.runtime_s))
                .collect();
            want.insert(*seed, keys);
        }
        svc.shutdown();

        // Same jobs on a killable service.
        let (svc, _) = TuningService::open(&dir, small_cfg()).expect("open");
        let mut ids = HashMap::new();
        for seed in 0..4u64 {
            let id = svc
                .submit(quick_spec(&format!("t{seed}"), seed))
                .expect("admit");
            ids.insert(seed, id);
        }
        // Let some work happen, then pull the plug.
        std::thread::sleep(Duration::from_millis(30));
        svc.kill();
        drop(svc);

        let (svc, rec) = TuningService::open(&dir, small_cfg()).expect("reopen");
        assert_eq!(rec.adopted + rec.already_done, 4, "every job accounted for");
        for (seed, id) in &ids {
            let out = svc
                .wait(*id, Duration::from_secs(30))
                .expect("finish after reopen");
            assert_eq!(out.state, JobState::Completed);
            let keys: Vec<String> = out
                .report
                .expect("report")
                .trials
                .iter()
                .map(|t| format!("{}|{:?}", t.config.key(), t.runtime_s))
                .collect();
            assert_eq!(&keys, want.get(seed).expect("reference"), "seed {seed}");
        }
        svc.shutdown();
    }

    #[test]
    fn supervisor_respawns_crashed_workers() {
        let dir = tmpdir("respawn");
        let (svc, _) = TuningService::open(&dir, small_cfg()).expect("open");
        svc.debug_crash_worker();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while svc.status().worker_restarts == 0 {
            assert!(std::time::Instant::now() < deadline, "no respawn observed");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The pool still works after the crash.
        let id = svc.submit(quick_spec("t", 3)).expect("admit");
        let out = svc.wait(id, Duration::from_secs(30)).expect("finish");
        assert_eq!(out.state, JobState::Completed);
        svc.shutdown();
    }

    #[test]
    fn shared_cache_reports_aggregate_hits_across_sessions() {
        let dir = tmpdir("cache");
        let (svc, _) = TuningService::open(&dir, small_cfg()).expect("open");
        // Same kernel+seed twice: the second session's lowerings all hit.
        let a = svc.submit(quick_spec("a", 5)).expect("admit");
        svc.wait(a, Duration::from_secs(30)).expect("finish a");
        let before = svc.status().cache;
        let b = svc.submit(quick_spec("b", 5)).expect("admit");
        svc.wait(b, Duration::from_secs(30)).expect("finish b");
        let after = svc.status().cache;
        assert!(
            after.hits > before.hits,
            "second identical session must hit the shared cache ({before:?} -> {after:?})"
        );
        svc.shutdown();
    }

    #[test]
    fn aggressive_space_job_reports_prune_counters() {
        let dir = tmpdir("prune");
        let (svc, _) = TuningService::open(&dir, small_cfg()).expect("open");
        let mut spec = quick_spec("t", 11);
        spec.kernel = "gemm".into();
        spec.space = crate::job::SpaceKind::Aggressive;
        let id = svc.submit(spec).expect("admit");
        let out = svc.wait(id, Duration::from_secs(30)).expect("finish");
        assert_eq!(out.state, JobState::Completed);
        let prune = out
            .report
            .expect("report")
            .prune
            .expect("analyzed rungs report prune counters");
        assert!(
            prune.total() > 0,
            "every live trial lands in a prune counter: {prune:?}"
        );
        let status = svc.status();
        assert_eq!(
            status.prune.total(),
            prune.total(),
            "status aggregates terminal reports"
        );
        svc.shutdown();
    }

    #[test]
    fn cancel_marks_job_cancelled() {
        let dir = tmpdir("cancel");
        let cfg = ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            poll_ms: 2,
            ..ServiceConfig::default()
        };
        let (svc, _) = TuningService::open(&dir, cfg).expect("open");
        // A budget far too large to finish before the cancel lands.
        let mut spec = quick_spec("t", 7);
        spec.max_evals = 200_000;
        let id = svc.submit(spec).expect("admit");
        assert!(svc.cancel(id));
        let out = svc.wait(id, Duration::from_secs(30)).expect("terminal");
        assert_eq!(out.state, JobState::Cancelled);
        assert!(dir.join("done").join(format!("{id}.json")).exists());
        svc.shutdown();
    }

    #[test]
    fn deadline_is_anchored_at_submission() {
        let dir = tmpdir("deadline");
        let cfg = ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            poll_ms: 2,
            ..ServiceConfig::default()
        };
        let (svc, _) = TuningService::open(&dir, cfg).expect("open");
        let mut spec = quick_spec("t", 9);
        // Budget far beyond what 1 ms of wall clock can measure, so the
        // deadline (anchored at submission) must fire first.
        spec.max_evals = 200_000;
        spec.deadline_s = Some(0.001);
        let id = svc.submit(spec).expect("admit");
        let out = svc.wait(id, Duration::from_secs(30)).expect("terminal");
        assert_eq!(out.state, JobState::DeadlineExceeded);
        svc.shutdown();
    }
}
