//! `serve` — run the supervised multi-tenant tuning service over
//! localhost TCP.
//!
//! ```text
//! serve --dir DIR [--port P] [--workers N] [--queue N] [--rotate N]
//!       [--demote-after N] [--timeout-s S]
//! ```
//!
//! Listens on `127.0.0.1:<port>` (an ephemeral port when `--port 0`),
//! writes the bound address to `DIR/serve.addr`, and speaks one JSON
//! request per line (see `tvm_service::proto`). On startup any job left
//! in flight by a previous instance is re-adopted and finished from its
//! journal. A `shutdown` request stops the listener and drains running
//! sessions gracefully.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tvm_service::proto::{handle_line, Response};
use tvm_service::service::{ServiceConfig, TuningService};
use ytopt_bo::journal::RotationPolicy;

fn usage() -> ! {
    eprintln!(
        "usage: serve --dir DIR [--port P] [--workers N] [--queue N] \
         [--rotate RECORDS_PER_SEGMENT] [--demote-after N] [--timeout-s S]"
    );
    std::process::exit(2);
}

struct Args {
    dir: std::path::PathBuf,
    port: u16,
    cfg: ServiceConfig,
}

fn parse_args() -> Args {
    let mut dir = None;
    let mut port = 0u16;
    let mut cfg = ServiceConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--dir" => dir = Some(std::path::PathBuf::from(val())),
            "--port" => port = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue" => cfg.queue_capacity = val().parse().unwrap_or_else(|_| usage()),
            "--rotate" => {
                cfg.rotation = Some(RotationPolicy {
                    max_records_per_segment: val().parse().unwrap_or_else(|_| usage()),
                    ..RotationPolicy::default()
                })
            }
            "--demote-after" => cfg.demote_after = val().parse().unwrap_or_else(|_| usage()),
            "--timeout-s" => {
                cfg.harness.timeout_s = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        dir: dir.unwrap_or_else(|| usage()),
        port,
        cfg,
    }
}

fn serve_conn(
    stream: TcpStream,
    service: &TuningService,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(service, &line);
        let shutting_down = matches!(response, Response::ShuttingDown);
        serde_json::to_writer(&mut writer, &response)?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutting_down {
            stop.store(true, Ordering::Relaxed);
            return Ok(());
        }
    }
    Ok(())
}

fn main() -> std::io::Result<()> {
    let args = parse_args();
    let (service, recovery) = TuningService::open(&args.dir, args.cfg)?;
    if recovery.adopted > 0 || recovery.already_done > 0 {
        eprintln!(
            "serve: recovered {} in-flight job(s), {} already done",
            recovery.adopted, recovery.already_done
        );
    }

    let listener = TcpListener::bind(("127.0.0.1", args.port))?;
    let addr = listener.local_addr()?;
    std::fs::write(args.dir.join("serve.addr"), format!("{addr}\n"))?;
    eprintln!("serve: listening on {addr} (dir {})", args.dir.display());

    // Short accept timeout so a shutdown request is honoured promptly.
    listener.set_nonblocking(false)?;
    let stop = Arc::new(AtomicBool::new(false));
    for stream in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match stream {
            Ok(conn) => {
                if let Err(e) = serve_conn(conn, &service, &stop) {
                    eprintln!("serve: connection error: {e}");
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(e) => {
                eprintln!("serve: accept error: {e}");
            }
        }
    }

    eprintln!("serve: draining running sessions");
    service.shutdown();
    let _ = std::fs::remove_file(args.dir.join("serve.addr"));
    Ok(())
}
