//! `tune-client` — command-line client for `serve`.
//!
//! ```text
//! tune-client --addr HOST:PORT submit --kernel K --size S [--tuner T]
//!             [--seed N] [--evals N] [--batch N] [--engine sim|real]
//!             [--deadline-s S] [--fault-rate R] [--tenant NAME] [--wait]
//! tune-client --addr HOST:PORT status
//! tune-client --addr HOST:PORT wait ID [--timeout-s S]
//! tune-client --addr HOST:PORT outcome ID
//! tune-client --addr HOST:PORT cancel ID
//! tune-client --addr HOST:PORT shutdown
//! ```
//!
//! `--addr` may also be `@DIR` to read `DIR/serve.addr` as written by
//! `serve`. Responses are printed as pretty JSON on stdout.

use autotvm::FaultPlan;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use tvm_service::job::{EngineKind, JobSpec, TunerKind};
use tvm_service::proto::{Request, Response};

fn usage() -> ! {
    eprintln!(
        "usage: tune-client --addr HOST:PORT|@DIR \
         (submit --kernel K --size S [opts] | status | wait ID | outcome ID | cancel ID | shutdown)"
    );
    std::process::exit(2);
}

fn resolve_addr(addr: &str) -> String {
    match addr.strip_prefix('@') {
        Some(dir) => std::fs::read_to_string(std::path::Path::new(dir).join("serve.addr"))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|e| {
                eprintln!("tune-client: cannot read {dir}/serve.addr: {e}");
                std::process::exit(1);
            }),
        None => addr.to_string(),
    }
}

fn roundtrip(addr: &str, request: &Request) -> Response {
    let run = || -> std::io::Result<Response> {
        let stream = TcpStream::connect(addr)?;
        let mut writer = stream.try_clone()?;
        serde_json::to_writer(&mut writer, request)?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        Ok(serde_json::from_str(&line)?)
    };
    run().unwrap_or_else(|e| {
        eprintln!("tune-client: {addr}: {e}");
        std::process::exit(1);
    })
}

fn print_response(response: &Response) {
    println!(
        "{}",
        serde_json::to_string_pretty(response).expect("serialize response")
    );
}

fn parse_submit(mut it: std::env::Args) -> (JobSpec, bool) {
    let mut kernel = None;
    let mut size = None;
    let mut spec = JobSpec::new(whoami(), "lu", "mini");
    let mut wait = false;
    while let Some(flag) = it.next() {
        if flag == "--wait" {
            wait = true;
            continue;
        }
        let val = it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--kernel" => kernel = Some(val),
            "--size" => size = Some(val),
            "--tuner" => {
                spec.tuner = TunerKind::parse(&val).unwrap_or_else(|| {
                    eprintln!("tune-client: unknown tuner {val:?}");
                    std::process::exit(2);
                })
            }
            "--seed" => spec.seed = val.parse().unwrap_or_else(|_| usage()),
            "--evals" => spec.max_evals = val.parse().unwrap_or_else(|_| usage()),
            "--batch" => spec.batch = val.parse().unwrap_or_else(|_| usage()),
            "--engine" => {
                spec.engine = match val.as_str() {
                    "sim" | "simulated" => EngineKind::Simulated,
                    "real" => EngineKind::Real,
                    _ => usage(),
                }
            }
            "--deadline-s" => spec.deadline_s = Some(val.parse().unwrap_or_else(|_| usage())),
            "--fault-rate" => {
                let rate: f64 = val.parse().unwrap_or_else(|_| usage());
                spec.fault = Some(FaultPlan::uniform(rate, spec.seed));
            }
            "--tenant" => spec.tenant = val,
            _ => usage(),
        }
    }
    spec.kernel = kernel.unwrap_or_else(|| usage());
    spec.size = size.unwrap_or_else(|| usage());
    (spec, wait)
}

fn whoami() -> String {
    std::env::var("USER").unwrap_or_else(|_| "anonymous".to_string())
}

fn main() {
    let mut it = std::env::args();
    let _argv0 = it.next();
    let mut addr = None;
    let command = loop {
        match it.next().as_deref() {
            Some("--addr") => addr = it.next(),
            Some(cmd) => break cmd.to_string(),
            None => usage(),
        }
    };
    let addr = resolve_addr(&addr.unwrap_or_else(|| usage()));

    let next_id = |it: &mut std::env::Args| -> u64 {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    };
    match command.as_str() {
        "submit" => {
            let (spec, wait) = parse_submit(it);
            let response = roundtrip(&addr, &Request::Submit { spec });
            print_response(&response);
            if wait {
                if let Response::Accepted { id } = response {
                    print_response(&roundtrip(
                        &addr,
                        &Request::Wait {
                            id,
                            timeout_s: 3600.0,
                        },
                    ));
                } else {
                    std::process::exit(1);
                }
            }
        }
        "status" => print_response(&roundtrip(&addr, &Request::Status)),
        "outcome" => {
            let id = next_id(&mut it);
            print_response(&roundtrip(&addr, &Request::Outcome { id }));
        }
        "wait" => {
            let id = next_id(&mut it);
            let mut timeout_s = 3600.0;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--timeout-s" => {
                        timeout_s = it
                            .next()
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            print_response(&roundtrip(&addr, &Request::Wait { id, timeout_s }));
        }
        "cancel" => {
            let id = next_id(&mut it);
            print_response(&roundtrip(&addr, &Request::Cancel { id }));
        }
        "shutdown" => print_response(&roundtrip(&addr, &Request::Shutdown)),
        _ => usage(),
    }
}
