//! # tvm-service — supervised multi-tenant tuning service
//!
//! A thread-pool-based tuning server (std threads + channels +
//! `parking_lot`; no async runtime) that accepts `(kernel, size, tuner,
//! budget, deadline)` jobs from many tenants and runs each as a
//! crash-recoverable session:
//!
//! - **Admission control** — a bounded job queue that rejects with a
//!   typed reason ([`RejectReason`]) when saturated; queue depth never
//!   grows without bound ([`queue`]).
//! - **Deadlines & cancel** — per-session wall-clock deadlines anchored
//!   at the persisted submission timestamp (downtime counts), plus
//!   best-effort tenant cancellation ([`session`]).
//! - **Circuit breakers** — per-kernel breakers open after storms of
//!   infrastructure failures, half-open with exponential backoff, and
//!   gate both new admissions and individual measurements ([`breaker`]).
//! - **Graceful degradation** — each real-engine session runs on a
//!   ladder of engines (optimized VM → scalar VM → reference
//!   interpreter) and demotes one rung after repeated engine failures
//!   ([`ladder`]).
//! - **Crash recovery** — job specs and per-trial journal records are
//!   fsync'd before they are load-bearing; a killed-and-restarted server
//!   re-adopts every in-flight session and finishes it with results
//!   identical to an uninterrupted run ([`service`]).
//!
//! The `serve` / `tune-client` binary pair speaks the JSON-lines
//! protocol in [`proto`] over localhost TCP.

#![warn(missing_docs)]

pub mod breaker;
pub mod job;
pub mod ladder;
pub mod proto;
pub mod queue;
pub mod service;
pub mod session;

pub use breaker::{Admission, BreakerBoard, BreakerConfig, BreakerStatus, CircuitBreaker};
pub use job::{EngineKind, JobSpec, RejectReason, SpaceKind, TunerKind};
pub use ladder::{build_ladder, EngineLadder, Rung};
pub use proto::{handle_line, handle_request, Request, Response};
pub use queue::JobQueue;
pub use service::{
    JobOutcome, JobState, RecoveryReport, ServiceConfig, ServiceStatus, TuningService,
};
pub use session::{
    now_unix_ms, run_session, SessionCtl, SessionEnd, SessionOptions, SessionReport, SessionTrial,
};
