//! Bounded admission queue: the service's backpressure point.
//!
//! Submissions go through [`JobQueue::try_push`], which refuses (rather
//! than blocks or grows) once the configured capacity is reached — the
//! caller turns that into a typed [`crate::job::RejectReason::QueueFull`].
//! Crash recovery re-admits previously-accepted jobs through
//! [`JobQueue::push_recovered`] even past the bound: those jobs were
//! already admitted once, and refusing them on restart would turn a crash
//! into silent job loss. The high-water mark is tracked so tests can
//! assert the bound was never exceeded by *new* admissions.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// FIFO of job ids with a hard admission bound.
pub struct JobQueue {
    items: Mutex<VecDeque<u64>>,
    available: Condvar,
    capacity: usize,
    /// Highest depth ever reached by `try_push` admissions.
    high_water: AtomicUsize,
}

impl JobQueue {
    /// Queue admitting at most `capacity` jobs at a time (minimum 1).
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            items: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            high_water: AtomicUsize::new(0),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest queue depth ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Admit a new job, or report `(depth, capacity)` when saturated.
    pub fn try_push(&self, id: u64) -> Result<(), (usize, usize)> {
        let mut items = self.items.lock();
        if items.len() >= self.capacity {
            return Err((items.len(), self.capacity));
        }
        items.push_back(id);
        self.high_water.fetch_max(items.len(), Ordering::Relaxed);
        drop(items);
        self.available.notify_one();
        Ok(())
    }

    /// Re-admit a recovered job unconditionally (see module docs).
    pub fn push_recovered(&self, id: u64) {
        let mut items = self.items.lock();
        items.push_back(id);
        self.high_water.fetch_max(items.len(), Ordering::Relaxed);
        drop(items);
        self.available.notify_one();
    }

    /// Pop the next job, waiting up to `timeout` for one to arrive.
    /// Workers call this in a loop with a short timeout so they can also
    /// observe shutdown/kill flags between waits.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<u64> {
        let mut items = self.items.lock();
        if let Some(id) = items.pop_front() {
            return Some(id);
        }
        self.available.wait_for(&mut items, timeout);
        items.pop_front()
    }

    /// Wake every waiting worker (used on shutdown/kill so poll loops
    /// observe their flags immediately).
    pub fn wake_all(&self) {
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_push_rejects_at_capacity() {
        let q = JobQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err((2, 2)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert!(q.try_push(3).is_ok(), "slot freed by pop");
    }

    #[test]
    fn recovery_push_ignores_the_bound() {
        let q = JobQueue::new(1);
        assert!(q.try_push(1).is_ok());
        q.push_recovered(2);
        assert_eq!(q.len(), 2, "recovered jobs bypass admission control");
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
    }

    #[test]
    fn pop_waits_for_arrival() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(9).expect("push");
        assert_eq!(t.join().expect("join"), Some(9));
    }

    #[test]
    fn pop_times_out_empty() {
        let q = JobQueue::new(4);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
    }
}
