//! One supervised tuning session: the driver loop of `autotvm::tune`,
//! extended with the service's control plane — kill/cancel flags,
//! wall-clock deadlines, per-kernel circuit breakers, engine-ladder
//! demotion, and journal-backed replay so a killed session resumes with
//! results identical to an uninterrupted run.
//!
//! The replay contract is the driver's, plus one obligation: every
//! journal record's `pipeline` stamp is verified against the rung the
//! reconstructed [`EngineLadder`] is on, and every record's outcome is
//! fed back through [`EngineLadder::observe`] — so demotions happen at
//! identical trial indices across kill/restart boundaries.

use crate::breaker::{is_infra_failure, Admission, CircuitBreaker};
use crate::ladder::EngineLadder;
use autotvm::measure::MeasureResult;
use autotvm::Tuner;
use configspace::Configuration;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};
use ytopt_bo::fault::MeasureError;
use ytopt_bo::journal::{divergence_error, TrialJournal, TrialRecord};
use ytopt_bo::problem::{CacheStats, JitStats, ParStats, PruneStats, SimdStats};

/// Milliseconds since the UNIX epoch (deadline arithmetic survives
/// process restarts, unlike `Instant`).
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Budget and deadline of one session.
#[derive(Debug, Clone, Copy)]
pub struct SessionOptions {
    /// Maximum measured configurations.
    pub max_evals: usize,
    /// Proposals per measure round.
    pub batch: usize,
    /// Absolute wall-clock deadline (ms since epoch). Anchored at the
    /// *submission* timestamp, so downtime between crash and restart
    /// counts against the tenant's deadline.
    pub deadline_unix_ms: Option<u64>,
}

/// Shared control flags for a running session.
#[derive(Clone)]
pub struct SessionCtl {
    /// Tenant-requested cancellation (graceful: session stops before its
    /// next live evaluation and reports `Cancelled`).
    pub cancel: Arc<AtomicBool>,
    /// Server kill (abrupt: session stops between trials *without*
    /// updating anything in memory — exactly what a `kill -9` leaves
    /// behind, since journals are fsync'd per trial).
    pub kill: Arc<AtomicBool>,
    /// This kernel's circuit breaker, if the service runs one.
    pub breaker: Option<Arc<CircuitBreaker>>,
}

impl SessionCtl {
    /// Control block with fresh flags and no breaker.
    pub fn new() -> SessionCtl {
        SessionCtl {
            cancel: Arc::new(AtomicBool::new(false)),
            kill: Arc::new(AtomicBool::new(false)),
            breaker: None,
        }
    }
}

impl Default for SessionCtl {
    fn default() -> Self {
        SessionCtl::new()
    }
}

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionEnd {
    /// Budget exhausted (or tuner gave up) — the normal outcome.
    Completed,
    /// The wall-clock deadline passed; the report carries the partial
    /// history measured so far.
    DeadlineExceeded,
    /// The tenant cancelled.
    Cancelled,
    /// The server was killed; the session is resumable from its journal.
    Interrupted,
}

/// One trial as seen by the service (superset of the driver's `Trial`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionTrial {
    /// 0-based evaluation index.
    pub index: usize,
    /// The measured configuration.
    pub config: Configuration,
    /// Kernel runtime, seconds (`None` on failure).
    pub runtime_s: Option<f64>,
    /// Failure class, if the trial failed.
    pub error: Option<MeasureError>,
    /// Charged process time.
    pub eval_process_s: f64,
    /// Cumulative process time when this trial finished.
    pub elapsed_s: f64,
    /// Ladder rung that measured this trial.
    pub engine: String,
    /// Replayed from the journal (true) or measured live (false).
    pub replayed: bool,
    /// Real wall-clock seconds of the live evaluation (0 for replayed
    /// trials) — the p50/p99 latency source for `bench_service`.
    pub wall_s: f64,
}

/// Complete outcome of one session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// Tuner display name.
    pub tuner: String,
    /// Terminal state.
    pub end: SessionEnd,
    /// Trials in measurement order (replayed + live).
    pub trials: Vec<SessionTrial>,
    /// How many trials were replayed from the journal.
    pub replayed: usize,
    /// Total charged process time.
    pub total_process_s: f64,
    /// Ladder demotions over the session's full history.
    pub demotions: u32,
    /// Rung the session ended on.
    pub final_engine: String,
    /// Memo-cache counters at session end (aggregate when shared).
    pub cache: Option<CacheStats>,
    /// Native-codegen compile counters of the JIT rung at session end
    /// (`None` for ladders without one). Survives demotion: the compile
    /// work done before stepping down is still reported.
    pub jit: Option<JitStats>,
    /// Multicore-dispatch counters merged over the ladder's
    /// parallel-capable rungs at session end (`None` when no rung runs
    /// loops on the worker pool).
    pub par: Option<ParStats>,
    /// Packed-SIMD emission counters of the ladder's vectorizing rungs
    /// at session end (`None` when no rung runs a packed-capable
    /// codegen). Defaulted on deserialize so journals written before
    /// the packed tier load cleanly.
    #[serde(default)]
    pub simd: Option<SimdStats>,
    /// Static-pruning counters merged over the ladder's analyzed rungs
    /// at session end (`None` when no rung runs the analyzer pipeline).
    /// Per-code denial counts tell a tenant *why* an aggressive space
    /// kept rejecting candidates.
    #[serde(default)]
    pub prune: Option<PruneStats>,
}

impl SessionReport {
    /// Best successful runtime, if any trial succeeded.
    pub fn best_runtime_s(&self) -> Option<f64> {
        self.trials
            .iter()
            .filter_map(|t| t.runtime_s)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Why the measure loop stopped before the budget.
enum Stop {
    Killed,
    Cancelled,
    Deadline,
}

fn control_check(ctl: &SessionCtl, opts: &SessionOptions, live: bool) -> Option<Stop> {
    if ctl.kill.load(Ordering::Relaxed) {
        return Some(Stop::Killed);
    }
    if !live {
        // Replay is cheap and must run to completion so the in-memory
        // state (tuner, ladder) is fully reconstructed before any
        // graceful exit is journaled.
        return None;
    }
    if ctl.cancel.load(Ordering::Relaxed) {
        return Some(Stop::Cancelled);
    }
    if let Some(deadline) = opts.deadline_unix_ms {
        if now_unix_ms() >= deadline {
            return Some(Stop::Deadline);
        }
    }
    None
}

/// Wait out an open breaker without going deaf to the control plane.
/// Returns the admission verdict, or a stop if one fired while waiting.
fn acquire_breaker(
    breaker: &CircuitBreaker,
    ctl: &SessionCtl,
    opts: &SessionOptions,
) -> Result<bool, Stop> {
    loop {
        match breaker.try_acquire() {
            Admission::Proceed => return Ok(false),
            Admission::Probe => return Ok(true),
            Admission::Wait(d) => {
                if let Some(stop) = control_check(ctl, opts, true) {
                    return Err(stop);
                }
                std::thread::sleep(d.min(Duration::from_millis(5)));
            }
        }
    }
}

/// Run (or resume) one session to a terminal state.
///
/// `replay` is the journal's existing tape (empty for fresh sessions);
/// `journal` receives every *live* trial. On `SessionEnd::Interrupted`
/// the returned report reflects the work done so far and the journal on
/// disk is exactly what a restarted server needs to finish the session.
pub fn run_session(
    tuner: &mut dyn Tuner,
    ladder: &mut EngineLadder,
    journal: &mut TrialJournal,
    replay: Vec<TrialRecord>,
    opts: SessionOptions,
    ctl: &SessionCtl,
) -> std::io::Result<SessionReport> {
    let mut trials: Vec<SessionTrial> = Vec::with_capacity(opts.max_evals);
    let mut elapsed = 0.0f64;
    let mut replay = replay.into_iter();
    let mut replayed = 0usize;
    let mut end = SessionEnd::Completed;

    'rounds: while trials.len() < opts.max_evals && tuner.has_next() {
        let want = opts.batch.min(opts.max_evals - trials.len());
        let batch = tuner.next_batch(want);
        if batch.is_empty() {
            break;
        }
        let mut results: Vec<(Configuration, MeasureResult)> = Vec::with_capacity(batch.len());
        for config in batch {
            let (res, live) = match replay.next() {
                Some(rec) => {
                    if rec.config.key() != config.key() {
                        return Err(divergence_error(
                            trials.len(),
                            &rec.config.key(),
                            &config.key(),
                        ));
                    }
                    ladder
                        .verify_replay(&rec.pipeline)
                        .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidData, msg))?;
                    if let Some(stop) = control_check(ctl, &opts, false) {
                        end = stop_to_end(stop);
                        break 'rounds;
                    }
                    replayed += 1;
                    elapsed = rec.elapsed_s;
                    (
                        MeasureResult {
                            runtime_s: rec.runtime_s,
                            process_s: rec.eval_process_s,
                            error: rec.error,
                        },
                        false,
                    )
                }
                None => {
                    if let Some(stop) = control_check(ctl, &opts, true) {
                        end = stop_to_end(stop);
                        break 'rounds;
                    }
                    let probe = match ctl.breaker.as_deref() {
                        Some(b) => match acquire_breaker(b, ctl, &opts) {
                            Ok(probe) => probe,
                            Err(stop) => {
                                end = stop_to_end(stop);
                                break 'rounds;
                            }
                        },
                        None => false,
                    };
                    let t0 = Instant::now();
                    let res = ladder.evaluate(&config);
                    let wall = t0.elapsed().as_secs_f64();
                    if let Some(b) = ctl.breaker.as_deref() {
                        let infra = res
                            .error
                            .as_ref()
                            .map(|e| is_infra_failure(e.kind()))
                            .unwrap_or(false);
                        b.record(infra, probe);
                    }
                    elapsed += res.process_s;
                    // Persist before reacting: the journal line carries
                    // the rung that measured it, then the ladder may
                    // demote for the *next* trial.
                    journal.append(&TrialRecord {
                        index: trials.len(),
                        config: config.clone(),
                        runtime_s: res.runtime_s,
                        error: res.error.clone(),
                        eval_process_s: res.process_s,
                        elapsed_s: elapsed,
                        pipeline: ladder.fingerprint(),
                    })?;
                    trials.push(SessionTrial {
                        index: trials.len(),
                        config: config.clone(),
                        runtime_s: res.runtime_s,
                        error: res.error.clone(),
                        eval_process_s: res.process_s,
                        elapsed_s: elapsed,
                        engine: ladder.rung_name().to_string(),
                        replayed: false,
                        wall_s: wall,
                    });
                    ladder.observe(res.error.as_ref().map(|e| e.kind()));
                    results.push((config, res));
                    continue;
                }
            };
            debug_assert!(!live);
            trials.push(SessionTrial {
                index: trials.len(),
                config: config.clone(),
                runtime_s: res.runtime_s,
                error: res.error.clone(),
                eval_process_s: res.process_s,
                elapsed_s: elapsed,
                engine: ladder.rung_name().to_string(),
                replayed: true,
                wall_s: 0.0,
            });
            ladder.observe(res.error.as_ref().map(|e| e.kind()));
            results.push((config, res));
        }
        tuner.update(&results);
    }

    Ok(SessionReport {
        tuner: tuner.name().to_string(),
        end,
        replayed,
        total_process_s: elapsed,
        demotions: ladder.demotions(),
        final_engine: ladder.rung_name().to_string(),
        cache: ladder.cache_stats(),
        jit: ladder.jit_stats(),
        par: ladder.par_stats(),
        simd: ladder.simd_stats(),
        prune: ladder.prune_stats(),
        trials,
    })
}

fn stop_to_end(stop: Stop) -> SessionEnd {
    match stop {
        Stop::Killed => SessionEnd::Interrupted,
        Stop::Cancelled => SessionEnd::Cancelled,
        Stop::Deadline => SessionEnd::DeadlineExceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use crate::ladder::Rung;
    use autotvm::measure::{Evaluator, FnEvaluator};
    use autotvm::RandomTuner;
    use configspace::{ConfigSpace, Hyperparameter};
    use std::path::PathBuf;

    fn space() -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=30).collect::<Vec<i64>>(),
        ));
        cs
    }

    fn ok_ladder() -> EngineLadder {
        EngineLadder::new(
            vec![Rung {
                name: "toy".into(),
                evaluator: Box::new(FnEvaluator::new(space(), |c| {
                    MeasureResult::ok(c.int("P0") as f64, 0.5)
                })),
            }],
            3,
        )
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tvm-service-session-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn opts(max_evals: usize) -> SessionOptions {
        SessionOptions {
            max_evals,
            batch: 4,
            deadline_unix_ms: None,
        }
    }

    #[test]
    fn completes_and_matches_the_driver_trajectory() {
        let path = tmp("complete.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut tuner = RandomTuner::new(space(), 9);
        let mut ladder = ok_ladder();
        let mut journal = TrialJournal::create(&path).expect("journal");
        let ctl = SessionCtl::new();
        let report = run_session(
            &mut tuner,
            &mut ladder,
            &mut journal,
            Vec::new(),
            opts(12),
            &ctl,
        )
        .expect("session");
        assert_eq!(report.end, SessionEnd::Completed);
        assert_eq!(report.trials.len(), 12);
        assert_eq!(report.replayed, 0);

        // The driver over the same seed/evaluator proposes identically.
        let ev = FnEvaluator::new(space(), |c| MeasureResult::ok(c.int("P0") as f64, 0.5));
        let mut reference = RandomTuner::new(space(), 9);
        let expected = autotvm::tune(
            &mut reference,
            &ev,
            autotvm::TuneOptions {
                max_evals: 12,
                batch: 4,
                max_process_s: None,
            },
        );
        let keys: Vec<String> = report.trials.iter().map(|t| t.config.key()).collect();
        let want: Vec<String> = expected.trials.iter().map(|t| t.config.key()).collect();
        assert_eq!(keys, want);
        assert_eq!(TrialJournal::load(&path).expect("load").len(), 12);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_interrupts_and_resume_reproduces_uninterrupted_run() {
        let path = tmp("kill-resume.jsonl");
        let _ = std::fs::remove_file(&path);

        // Reference: uninterrupted 20-trial session.
        let mut t_ref = RandomTuner::new(space(), 4);
        let mut l_ref = ok_ladder();
        let ref_path = tmp("kill-resume-ref.jsonl");
        let _ = std::fs::remove_file(&ref_path);
        let mut j_ref = TrialJournal::create(&ref_path).expect("journal");
        let full = run_session(
            &mut t_ref,
            &mut l_ref,
            &mut j_ref,
            Vec::new(),
            opts(20),
            &SessionCtl::new(),
        )
        .expect("reference");

        // Interrupted: the kill flag flips after the 7th live evaluation.
        let ctl = SessionCtl::new();
        let kill = Arc::clone(&ctl.kill);
        let count = std::sync::atomic::AtomicUsize::new(0);
        let ladder_killed = EngineLadder::new(
            vec![Rung {
                name: "toy".into(),
                evaluator: Box::new(FnEvaluator::new(space(), move |c| {
                    if count.fetch_add(1, Ordering::SeqCst) + 1 >= 7 {
                        kill.store(true, Ordering::Relaxed);
                    }
                    MeasureResult::ok(c.int("P0") as f64, 0.5)
                })),
            }],
            3,
        );
        let mut ladder_killed = ladder_killed;
        let mut t_killed = RandomTuner::new(space(), 4);
        let mut journal = TrialJournal::create(&path).expect("journal");
        let partial = run_session(
            &mut t_killed,
            &mut ladder_killed,
            &mut journal,
            Vec::new(),
            opts(20),
            &ctl,
        )
        .expect("interrupted session");
        assert_eq!(partial.end, SessionEnd::Interrupted);
        assert!(partial.trials.len() >= 7 && partial.trials.len() < 20);
        drop(journal);

        // Restarted process: fresh tuner/ladder, replay + finish.
        let (mut journal, tape) = TrialJournal::open_resume(&path).expect("resume");
        let mut t_res = RandomTuner::new(space(), 4);
        let mut l_res = ok_ladder();
        let resumed = run_session(
            &mut t_res,
            &mut l_res,
            &mut journal,
            tape,
            opts(20),
            &SessionCtl::new(),
        )
        .expect("resumed session");
        assert_eq!(resumed.end, SessionEnd::Completed);
        assert_eq!(resumed.trials.len(), 20);
        assert_eq!(resumed.replayed, partial.trials.len());

        let keys = |r: &SessionReport| -> Vec<(String, Option<f64>)> {
            r.trials
                .iter()
                .map(|t| (t.config.key(), t.runtime_s))
                .collect()
        };
        assert_eq!(keys(&full), keys(&resumed), "identical results after kill");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ref_path);
    }

    #[test]
    fn expired_deadline_ends_gracefully_with_partial_history() {
        let path = tmp("deadline.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut tuner = RandomTuner::new(space(), 2);
        let mut ladder = ok_ladder();
        let mut journal = TrialJournal::create(&path).expect("journal");
        let o = SessionOptions {
            max_evals: 50,
            batch: 4,
            deadline_unix_ms: Some(now_unix_ms().saturating_sub(1)),
        };
        let report = run_session(
            &mut tuner,
            &mut ladder,
            &mut journal,
            Vec::new(),
            o,
            &SessionCtl::new(),
        )
        .expect("session");
        assert_eq!(report.end, SessionEnd::DeadlineExceeded);
        assert!(report.trials.is_empty(), "deadline was already gone");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cancel_stops_before_next_live_trial() {
        let path = tmp("cancel.jsonl");
        let _ = std::fs::remove_file(&path);
        let ctl = SessionCtl::new();
        ctl.cancel.store(true, Ordering::Relaxed);
        let mut tuner = RandomTuner::new(space(), 2);
        let mut ladder = ok_ladder();
        let mut journal = TrialJournal::create(&path).expect("journal");
        let report = run_session(
            &mut tuner,
            &mut ladder,
            &mut journal,
            Vec::new(),
            opts(10),
            &ctl,
        )
        .expect("session");
        assert_eq!(report.end, SessionEnd::Cancelled);
        assert!(report.trials.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn breaker_storm_opens_and_session_still_finishes() {
        let path = tmp("breaker.jsonl");
        let _ = std::fs::remove_file(&path);
        let ladder = EngineLadder::new(
            vec![Rung {
                name: "crashy".into(),
                evaluator: Box::new(FnEvaluator::new(space(), |_| {
                    MeasureResult::fail(MeasureError::RuntimeCrash("dead node".into()), 0.01)
                })),
            }],
            // Demotion can't happen (single rung); the breaker is the
            // mechanism under test.
            100,
        );
        let mut ladder = ladder;
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_s: 0.01,
            cooldown_mult: 2.0,
            max_cooldown_s: 0.05,
            half_open_probes: 1,
        }));
        let ctl = SessionCtl {
            breaker: Some(Arc::clone(&breaker)),
            ..SessionCtl::new()
        };
        let mut tuner = RandomTuner::new(space(), 3);
        let mut journal = TrialJournal::create(&path).expect("journal");
        let report = run_session(
            &mut tuner,
            &mut ladder,
            &mut journal,
            Vec::new(),
            opts(10),
            &ctl,
        )
        .expect("session");
        assert_eq!(report.end, SessionEnd::Completed);
        assert_eq!(report.trials.len(), 10, "breaker throttles, never starves");
        assert!(breaker.trips() >= 2, "storm must keep re-opening");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn demotion_survives_kill_and_resume() {
        // Rung "fast" crashes every trial; rung "slow" succeeds. With
        // demote_after=2 the session demotes at trial 2 and the journal
        // carries mixed pipeline stamps across the kill boundary.
        let make_ladder = || {
            EngineLadder::new(
                vec![
                    Rung {
                        name: "fast".into(),
                        evaluator: Box::new({
                            struct Crashy(ConfigSpace);
                            impl Evaluator for Crashy {
                                fn space(&self) -> &ConfigSpace {
                                    &self.0
                                }
                                fn evaluate(&self, _c: &Configuration) -> MeasureResult {
                                    MeasureResult::fail(
                                        MeasureError::RuntimeCrash("fast engine broken".into()),
                                        0.01,
                                    )
                                }
                                fn pipeline_fingerprint(&self) -> Option<String> {
                                    Some("fast/v1".into())
                                }
                            }
                            Crashy(space())
                        }),
                    },
                    Rung {
                        name: "slow".into(),
                        evaluator: Box::new({
                            struct Slow(ConfigSpace);
                            impl Evaluator for Slow {
                                fn space(&self) -> &ConfigSpace {
                                    &self.0
                                }
                                fn evaluate(&self, c: &Configuration) -> MeasureResult {
                                    MeasureResult::ok(c.int("P0") as f64, 0.2)
                                }
                                fn pipeline_fingerprint(&self) -> Option<String> {
                                    Some("slow/v1".into())
                                }
                            }
                            Slow(space())
                        }),
                    },
                ],
                2,
            )
        };

        let path = tmp("demote-resume.jsonl");
        let _ = std::fs::remove_file(&path);

        // Reference run, uninterrupted.
        let ref_path = tmp("demote-resume-ref.jsonl");
        let _ = std::fs::remove_file(&ref_path);
        let mut j = TrialJournal::create(&ref_path).expect("journal");
        let mut t = RandomTuner::new(space(), 77);
        let mut l = make_ladder();
        let full = run_session(
            &mut t,
            &mut l,
            &mut j,
            Vec::new(),
            opts(10),
            &SessionCtl::new(),
        )
        .expect("reference");
        assert_eq!(full.demotions, 1);
        assert_eq!(full.final_engine, "slow");

        // Stop after 5 trials (i.e. after the demotion already happened)
        // — the journal left behind is what a kill at that point leaves.
        let mut t = RandomTuner::new(space(), 77);
        let mut l = make_ladder();
        let mut j = TrialJournal::create(&path).expect("journal");
        let o = SessionOptions {
            max_evals: 5,
            batch: 4,
            deadline_unix_ms: None,
        };
        let partial = run_session(&mut t, &mut l, &mut j, Vec::new(), o, &SessionCtl::new())
            .expect("partial");
        assert_eq!(partial.trials.len(), 5);
        assert_eq!(partial.demotions, 1, "demotion happened before the kill");
        drop(j);

        // Resume with fresh state; replay must reconstruct the demotion.
        let (mut j, tape) = TrialJournal::open_resume(&path).expect("resume");
        assert_eq!(tape.len(), partial.trials.len());
        let mut t = RandomTuner::new(space(), 77);
        let mut l = make_ladder();
        let resumed = run_session(&mut t, &mut l, &mut j, tape, opts(10), &SessionCtl::new())
            .expect("resumed");
        assert_eq!(resumed.end, SessionEnd::Completed);
        assert_eq!(resumed.demotions, 1, "replay reconstructed the demotion");
        assert_eq!(resumed.final_engine, "slow");
        let pairs = |r: &SessionReport| -> Vec<(String, Option<f64>, String)> {
            r.trials
                .iter()
                .map(|t| (t.config.key(), t.runtime_s, t.engine.clone()))
                .collect()
        };
        assert_eq!(pairs(&full), pairs(&resumed), "identical incl. engines");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ref_path);
    }
}
