//! Per-kernel circuit breakers.
//!
//! Failed *measurements* are a normal part of autotuning (bad schedules
//! fail to build, racy configs are rejected statically) — a breaker that
//! tripped on those would starve legitimate exploration. What a breaker
//! protects against is an *infrastructure* storm: consecutive timeouts,
//! runtime crashes and transient faults on one kernel, the signature of a
//! broken measurement backend rather than a bad configuration.
//!
//! State machine:
//!
//! ```text
//! Closed --(threshold consecutive infra failures)--> Open
//! Open   --(cooldown elapsed)--> HalfOpen
//! HalfOpen --(probe succeeds)--> Closed
//! HalfOpen --(probe fails)--> Open (cooldown doubled, capped)
//! ```
//!
//! Breakers are in-memory only: a restarted server starts every breaker
//! closed, and the first post-restart storm re-opens it within one
//! threshold. (Persisting open breakers would risk locking a kernel out
//! forever on a machine where the original cause is gone.)

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive infrastructure failures that open the breaker.
    pub failure_threshold: u32,
    /// Initial open-state cooldown, seconds.
    pub cooldown_s: f64,
    /// Cooldown multiplier applied on each re-open from half-open.
    pub cooldown_mult: f64,
    /// Cooldown ceiling, seconds.
    pub max_cooldown_s: f64,
    /// Concurrent trial evaluations allowed through a half-open breaker.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 8,
            cooldown_s: 0.25,
            cooldown_mult: 2.0,
            max_cooldown_s: 30.0,
            half_open_probes: 1,
        }
    }
}

/// Error kinds that count as infrastructure failures (everything else —
/// build errors, static rejections, numeric mismatches — is a property
/// of the *configuration* and must not trip the breaker).
pub fn is_infra_failure(kind: &str) -> bool {
    matches!(kind, "timeout" | "runtime_crash" | "transient")
}

enum State {
    Closed { consecutive: u32 },
    Open { until: Instant, cooldown_s: f64 },
    HalfOpen { in_flight: u32, cooldown_s: f64 },
}

/// What a caller holding a configuration to measure should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: measure normally.
    Proceed,
    /// Breaker half-open: measure, and report the outcome as a probe.
    Probe,
    /// Breaker open: wait this long (or do something else) and retry.
    Wait(Duration),
}

/// One kernel's breaker.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
    /// Times this breaker has opened (monotone; surfaced in status).
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// New, closed breaker.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: Mutex::new(State::Closed { consecutive: 0 }),
            trips: AtomicU64::new(0),
        }
    }

    /// Ask to run one evaluation now.
    pub fn try_acquire(&self) -> Admission {
        let mut state = self.state.lock();
        match &mut *state {
            State::Closed { .. } => Admission::Proceed,
            State::Open { until, cooldown_s } => {
                let now = Instant::now();
                if now >= *until {
                    let cooldown_s = *cooldown_s;
                    *state = State::HalfOpen {
                        in_flight: 1,
                        cooldown_s,
                    };
                    Admission::Probe
                } else {
                    Admission::Wait(*until - now)
                }
            }
            State::HalfOpen {
                in_flight,
                cooldown_s,
            } => {
                if *in_flight < self.cfg.half_open_probes {
                    *in_flight += 1;
                    Admission::Probe
                } else {
                    // Probe slots are taken; wait roughly one cooldown.
                    Admission::Wait(Duration::from_secs_f64(cooldown_s.max(0.001)))
                }
            }
        }
    }

    /// Report one evaluation's outcome. `infra_failure` must be the
    /// [`is_infra_failure`] verdict on the error (false for success *and*
    /// for configuration-level failures); `probe` echoes whether
    /// [`CircuitBreaker::try_acquire`] returned [`Admission::Probe`].
    pub fn record(&self, infra_failure: bool, probe: bool) {
        let mut state = self.state.lock();
        if probe {
            match &mut *state {
                State::HalfOpen { cooldown_s, .. } => {
                    if infra_failure {
                        // Probe failed: reopen with doubled cooldown.
                        let next = (*cooldown_s * self.cfg.cooldown_mult)
                            .clamp(self.cfg.cooldown_s, self.cfg.max_cooldown_s);
                        self.trips.fetch_add(1, Ordering::Relaxed);
                        *state = State::Open {
                            until: Instant::now() + Duration::from_secs_f64(next),
                            cooldown_s: next,
                        };
                    } else {
                        *state = State::Closed { consecutive: 0 };
                    }
                }
                // The breaker moved on (e.g. another probe already closed
                // it); fold the outcome in as a normal observation.
                _ => self.record_closed(&mut state, infra_failure),
            }
        } else {
            self.record_closed(&mut state, infra_failure);
        }
    }

    fn record_closed(&self, state: &mut State, infra_failure: bool) {
        if let State::Closed { consecutive } = state {
            if infra_failure {
                *consecutive += 1;
                if *consecutive >= self.cfg.failure_threshold {
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    *state = State::Open {
                        until: Instant::now() + Duration::from_secs_f64(self.cfg.cooldown_s),
                        cooldown_s: self.cfg.cooldown_s,
                    };
                }
            } else {
                *consecutive = 0;
            }
        }
        // Open/HalfOpen: non-probe results (e.g. a replayed trial) do not
        // move the state machine.
    }

    /// Seconds until an open breaker half-opens (`None` when not open).
    pub fn retry_in_s(&self) -> Option<f64> {
        match &*self.state.lock() {
            State::Open { until, .. } => Some(
                (*until)
                    .saturating_duration_since(Instant::now())
                    .as_secs_f64(),
            ),
            _ => None,
        }
    }

    /// Current state name for status reporting.
    pub fn state_name(&self) -> &'static str {
        match &*self.state.lock() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen { .. } => "half-open",
        }
    }

    /// Times this breaker has opened.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }
}

/// Status snapshot of one kernel's breaker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakerStatus {
    /// Kernel name.
    pub kernel: String,
    /// `"closed"`, `"open"` or `"half-open"`.
    pub state: String,
    /// Times the breaker has opened since the server started.
    pub trips: u64,
}

/// All kernels' breakers, created on demand.
pub struct BreakerBoard {
    cfg: BreakerConfig,
    map: Mutex<HashMap<String, Arc<CircuitBreaker>>>,
}

impl BreakerBoard {
    /// Empty board; breakers materialize on first use.
    pub fn new(cfg: BreakerConfig) -> BreakerBoard {
        BreakerBoard {
            cfg,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The breaker for `kernel` (created closed if absent).
    pub fn breaker(&self, kernel: &str) -> Arc<CircuitBreaker> {
        let mut map = self.map.lock();
        Arc::clone(
            map.entry(kernel.to_string())
                .or_insert_with(|| Arc::new(CircuitBreaker::new(self.cfg))),
        )
    }

    /// Admission-time gate: `Some(retry_in_s)` when `kernel`'s breaker is
    /// fully open (half-open kernels accept submissions — the probe
    /// machinery runs at evaluation time).
    pub fn submission_block(&self, kernel: &str) -> Option<f64> {
        let map = self.map.lock();
        map.get(kernel).and_then(|b| b.retry_in_s())
    }

    /// Snapshot for the status endpoint, sorted by kernel name.
    pub fn snapshot(&self) -> Vec<BreakerStatus> {
        let map = self.map.lock();
        let mut out: Vec<BreakerStatus> = map
            .iter()
            .map(|(kernel, b)| BreakerStatus {
                kernel: kernel.clone(),
                state: b.state_name().to_string(),
                trips: b.trips(),
            })
            .collect();
        out.sort_by(|a, b| a.kernel.cmp(&b.kernel));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_s: 0.02,
            cooldown_mult: 2.0,
            max_cooldown_s: 1.0,
            half_open_probes: 1,
        }
    }

    #[test]
    fn infra_failure_classification() {
        assert!(is_infra_failure("timeout"));
        assert!(is_infra_failure("runtime_crash"));
        assert!(is_infra_failure("transient"));
        assert!(!is_infra_failure("build_failed"));
        assert!(!is_infra_failure("static_reject"));
        assert!(!is_infra_failure("numeric_mismatch"));
        assert!(!is_infra_failure("invalid_schedule"));
    }

    #[test]
    fn opens_after_threshold_and_half_opens_after_cooldown() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            assert_eq!(b.try_acquire(), Admission::Proceed);
            b.record(true, false);
        }
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 1);
        assert!(matches!(b.try_acquire(), Admission::Wait(_)));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.try_acquire(), Admission::Probe);
        assert_eq!(b.state_name(), "half-open");
        // Successful probe closes.
        b.record(false, true);
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.try_acquire(), Admission::Proceed);
    }

    #[test]
    fn failed_probe_reopens_with_backoff() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            b.try_acquire();
            b.record(true, false);
        }
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.try_acquire(), Admission::Probe);
        b.record(true, true);
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 2);
        // Doubled cooldown: 0.04 s now.
        let wait = b.retry_in_s().expect("open");
        assert!(wait > 0.02, "cooldown must have doubled, got {wait}");
    }

    #[test]
    fn config_failures_do_not_trip() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..20 {
            assert_eq!(b.try_acquire(), Admission::Proceed);
            // build_failed etc. → is_infra_failure == false.
            b.record(false, false);
        }
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn success_resets_the_streak() {
        let b = CircuitBreaker::new(fast_cfg());
        b.record(true, false);
        b.record(true, false);
        b.record(false, false); // reset
        b.record(true, false);
        b.record(true, false);
        assert_eq!(b.state_name(), "closed", "streak was broken");
    }

    #[test]
    fn half_open_limits_probe_concurrency() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            b.try_acquire();
            b.record(true, false);
        }
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.try_acquire(), Admission::Probe);
        assert!(matches!(b.try_acquire(), Admission::Wait(_)));
    }

    #[test]
    fn board_gates_submissions_only_while_open() {
        let board = BreakerBoard::new(fast_cfg());
        assert!(board.submission_block("lu").is_none(), "unknown = closed");
        let b = board.breaker("lu");
        for _ in 0..3 {
            b.try_acquire();
            b.record(true, false);
        }
        assert!(board.submission_block("lu").is_some());
        assert!(board.submission_block("3mm").is_none(), "per-kernel");
        let snap = board.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].state, "open");
    }
}
