//! Graceful degradation: the engine ladder.
//!
//! A session that keeps failing on its measurement engine should not
//! fail the tenant — it should fall back to a slower but safer engine.
//! The ladder holds one evaluator per *rung*, ordered fastest/most
//! optimized first; after [`EngineLadder::demote_after`] consecutive
//! engine-level failures (failed builds, numeric divergence against the
//! oracle, runtime crashes) at the current rung the session demotes one
//! rung and keeps tuning. For real CPU execution the ladder is:
//! native JIT → optimized VM → scalar VM → reference interpreter (the
//! oracle, which has no compile pipeline left to fail). The JIT rung
//! already falls back *per function* to the optimized VM when the
//! backend declines a kernel; ladder demotion is the coarser response
//! to an engine that keeps failing outright.
//!
//! Demotion interacts with crash recovery through the journal's
//! `pipeline` stamps: each record carries the fingerprint of the rung
//! that measured it. Replay feeds every record's outcome back through
//! [`EngineLadder::observe`], so the ladder demotes at exactly the same
//! trial indices as the original run — and
//! [`EngineLadder::verify_replay`] cross-checks every record's stamp
//! against the reconstructed rung, turning any drift into a hard
//! `InvalidData` error instead of silently mixing engines.

use crate::job::{EngineKind, JobSpec};
use autotvm::harness::{FaultInjector, HarnessOptions, HarnessedEvaluator};
use autotvm::measure::{Evaluator, MeasureResult};
use configspace::{ConfigSpace, Configuration};
use gpu_sim::{GpuSpec, SimDevice};
use polybench::molds::mold_for_mode;
use std::sync::Arc;
use tvm_autotune::{MemoCache, MoldEvaluator};
use tvm_runtime::CpuDevice;
use ytopt_bo::problem::{CacheStats, JitStats, ParStats, PruneStats, SimdStats, StaticCheckStats};

/// One engine level: a display name plus the (harnessed) evaluator.
pub struct Rung {
    /// Display name (`"jit"`, `"optimized-vm"`, `"scalar-vm"`,
    /// `"interpreter"`, `"sim-a100"`).
    pub name: String,
    /// The evaluator measuring on this engine.
    pub evaluator: Box<dyn Evaluator + Send + Sync>,
}

/// Error kinds that demote a session down the ladder: the engine (not
/// the configuration) is the suspect after a streak of these.
fn is_engine_failure(kind: &str) -> bool {
    matches!(kind, "build_failed" | "numeric_mismatch" | "runtime_crash")
}

/// Fastest-first stack of engines with automatic demotion.
pub struct EngineLadder {
    rungs: Vec<Rung>,
    level: usize,
    streak: u32,
    demote_after: u32,
    demotions: u32,
}

impl EngineLadder {
    /// Ladder over `rungs` (fastest first; must be non-empty), demoting
    /// after `demote_after` consecutive engine failures.
    pub fn new(rungs: Vec<Rung>, demote_after: u32) -> EngineLadder {
        assert!(!rungs.is_empty(), "ladder needs at least one rung");
        EngineLadder {
            rungs,
            level: 0,
            streak: 0,
            demote_after: demote_after.max(1),
            demotions: 0,
        }
    }

    /// Current rung index (0 = fastest).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current rung's display name.
    pub fn rung_name(&self) -> &str {
        &self.rungs[self.level].name
    }

    /// Times this ladder has demoted.
    pub fn demotions(&self) -> u32 {
        self.demotions
    }

    /// The tuning space (identical across rungs — same mold).
    pub fn space(&self) -> &ConfigSpace {
        self.rungs[0].evaluator.space()
    }

    /// The current rung's pipeline fingerprint (stamped into journal
    /// records).
    pub fn fingerprint(&self) -> Option<String> {
        self.rungs[self.level].evaluator.pipeline_fingerprint()
    }

    /// Measure `config` on the current rung.
    pub fn evaluate(&self, config: &Configuration) -> MeasureResult {
        self.rungs[self.level].evaluator.evaluate(config)
    }

    /// Current rung's memo-cache counters.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.rungs[self.level].evaluator.cache_stats()
    }

    /// Current rung's static-analyzer counters.
    pub fn static_check_stats(&self) -> Option<StaticCheckStats> {
        self.rungs[self.level].evaluator.static_check_stats()
    }

    /// The JIT rung's native-codegen counters, regardless of the rung the
    /// ladder is currently on (`None` when no rung runs a JIT device) —
    /// after a demotion the compile work done *before* stepping down is
    /// still part of the session's story.
    pub fn jit_stats(&self) -> Option<JitStats> {
        self.rungs.iter().find_map(|r| r.evaluator.jit_stats())
    }

    /// Multicore-dispatch counters merged over every rung that runs
    /// parallel loops on the worker pool (`None` when no rung does).
    /// Unlike [`Self::jit_stats`] this merges instead of taking the
    /// first hit: both the JIT rung and the optimized-VM rung dispatch
    /// to the pool, and after a demotion both have a story to tell.
    pub fn par_stats(&self) -> Option<ParStats> {
        let mut merged: Option<ParStats> = None;
        for r in &self.rungs {
            if let Some(s) = r.evaluator.par_stats() {
                merged.get_or_insert_with(ParStats::default).merge(&s);
            }
        }
        merged
    }

    /// Packed-SIMD emission counters merged over every rung whose
    /// evaluator runs a vectorizing codegen rung (in practice only the
    /// JIT rung reports; merging keeps the accounting correct if a
    /// future rung grows its own vectorizer). Merged like
    /// [`Self::par_stats`]: after a demotion, vector sites compiled on
    /// the old rung are still part of the session's story.
    pub fn simd_stats(&self) -> Option<SimdStats> {
        let mut merged: Option<SimdStats> = None;
        for r in &self.rungs {
            if let Some(s) = r.evaluator.simd_stats() {
                merged.get_or_insert_with(SimdStats::default).merge(&s);
            }
        }
        merged
    }

    /// Static-pruning counters merged over every rung whose evaluator
    /// runs the analyzer pipeline (`None` when none does). Merged like
    /// [`Self::par_stats`]: after a demotion, candidates denied on the
    /// old rung are still part of the session's story.
    pub fn prune_stats(&self) -> Option<PruneStats> {
        let mut merged: Option<PruneStats> = None;
        for r in &self.rungs {
            if let Some(s) = r.evaluator.prune_stats() {
                merged.get_or_insert_with(PruneStats::default).merge(&s);
            }
        }
        merged
    }

    /// Feed one trial's outcome (live or replayed) into the demotion
    /// state machine. Returns `true` when this observation demoted the
    /// ladder. Success resets the streak; engine-failure kinds extend
    /// it; configuration-level failures leave it unchanged.
    pub fn observe(&mut self, error_kind: Option<&str>) -> bool {
        match error_kind {
            None => {
                self.streak = 0;
                false
            }
            Some(kind) if is_engine_failure(kind) => {
                self.streak += 1;
                if self.streak >= self.demote_after && self.level + 1 < self.rungs.len() {
                    self.level += 1;
                    self.streak = 0;
                    self.demotions += 1;
                    true
                } else {
                    false
                }
            }
            Some(_) => false,
        }
    }

    /// Check that a replayed record's pipeline stamp matches the rung the
    /// reconstructed ladder is on. Call *before* [`EngineLadder::observe`]
    /// for that record (mirroring the live order: measure, then react).
    pub fn verify_replay(&self, recorded: &Option<String>) -> Result<(), String> {
        let current = self.fingerprint();
        if *recorded == current {
            Ok(())
        } else {
            Err(format!(
                "journal record measured under pipeline {:?} but the reconstructed ladder is on \
                 rung {:?} ({:?})",
                recorded,
                self.rung_name(),
                current
            ))
        }
    }
}

/// Build the ladder for one job: rungs per the spec's engine, every rung
/// sharing the process-wide memo cache, each wrapped in the fault
/// harness (and, when the spec carries a chaos plan, the deterministic
/// fault injector *inside* the harness, so injected transients are
/// retried exactly like real ones).
pub fn build_ladder(
    spec: &JobSpec,
    cache: &Arc<MemoCache>,
    harness: HarnessOptions,
    demote_after: u32,
) -> Result<EngineLadder, String> {
    let (kernel, size) = spec.workload()?;
    let mode = spec.space.mode();
    let mold = || mold_for_mode(kernel, size, mode);
    let wrap = |ev: MoldEvaluator| -> Box<dyn Evaluator + Send + Sync> {
        match spec.fault {
            Some(plan) => Box::new(
                HarnessedEvaluator::new(FaultInjector::new(ev, plan)).with_options(harness),
            ),
            None => Box::new(HarnessedEvaluator::new(ev).with_options(harness)),
        }
    };
    let rungs = match spec.engine {
        EngineKind::Simulated => vec![Rung {
            name: "sim-a100".into(),
            evaluator: wrap(
                MoldEvaluator::simulated(mold(), SimDevice::new(GpuSpec::a100()))
                    .with_cache(Arc::clone(cache)),
            ),
        }],
        EngineKind::Real => vec![
            Rung {
                name: "jit".into(),
                evaluator: wrap(
                    MoldEvaluator::real(mold(), CpuDevice::jit()).with_cache(Arc::clone(cache)),
                ),
            },
            Rung {
                name: "optimized-vm".into(),
                evaluator: wrap(
                    MoldEvaluator::real(mold(), CpuDevice::new()).with_cache(Arc::clone(cache)),
                ),
            },
            Rung {
                name: "scalar-vm".into(),
                evaluator: wrap(
                    MoldEvaluator::real(mold(), CpuDevice::scalar_vm())
                        .with_cache(Arc::clone(cache)),
                ),
            },
            Rung {
                name: "interpreter".into(),
                evaluator: wrap(
                    MoldEvaluator::real(mold(), CpuDevice::interpreter())
                        .with_cache(Arc::clone(cache)),
                ),
            },
        ],
    };
    Ok(EngineLadder::new(rungs, demote_after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotvm::measure::FnEvaluator;
    use configspace::Hyperparameter;

    fn space() -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 3, 4]));
        cs
    }

    fn rung(name: &str, fp: &str) -> Rung {
        let fp = fp.to_string();
        struct Stamped<F: Fn(&Configuration) -> MeasureResult> {
            inner: FnEvaluator<F>,
            fp: String,
        }
        impl<F: Fn(&Configuration) -> MeasureResult> Evaluator for Stamped<F> {
            fn space(&self) -> &ConfigSpace {
                self.inner.space()
            }
            fn evaluate(&self, c: &Configuration) -> MeasureResult {
                self.inner.evaluate(c)
            }
            fn pipeline_fingerprint(&self) -> Option<String> {
                Some(self.fp.clone())
            }
        }
        Rung {
            name: name.into(),
            evaluator: Box::new(Stamped {
                inner: FnEvaluator::new(space(), |c| MeasureResult::ok(c.int("P0") as f64, 0.1)),
                fp,
            }),
        }
    }

    fn two_rung_ladder() -> EngineLadder {
        EngineLadder::new(vec![rung("fast", "fast/v1"), rung("slow", "slow/v1")], 2)
    }

    #[test]
    fn engine_failures_demote_after_streak() {
        let mut l = two_rung_ladder();
        assert_eq!(l.rung_name(), "fast");
        assert!(!l.observe(Some("build_failed")));
        assert!(l.observe(Some("build_failed")), "second in a row demotes");
        assert_eq!(l.rung_name(), "slow");
        assert_eq!(l.level(), 1);
        assert_eq!(l.demotions(), 1);
        assert_eq!(l.fingerprint(), Some("slow/v1".into()));
    }

    #[test]
    fn success_resets_and_config_failures_do_not_count() {
        let mut l = two_rung_ladder();
        l.observe(Some("runtime_crash"));
        l.observe(None); // success resets
        l.observe(Some("numeric_mismatch"));
        l.observe(Some("static_reject")); // config-level: no effect
        l.observe(Some("invalid_schedule"));
        assert_eq!(l.level(), 0, "streak never reached 2 in a row");
        l.observe(Some("numeric_mismatch"));
        assert_eq!(l.level(), 1);
    }

    #[test]
    fn bottom_rung_absorbs_failures() {
        let mut l = two_rung_ladder();
        for _ in 0..10 {
            l.observe(Some("build_failed"));
        }
        assert_eq!(l.level(), 1, "cannot demote past the last rung");
        assert_eq!(l.demotions(), 1);
    }

    #[test]
    fn replay_verification_tracks_demotions() {
        // Simulated original run: ok, crash, crash(→demote), ok.
        let stamps = [
            Some("fast/v1".to_string()),
            Some("fast/v1".to_string()),
            Some("fast/v1".to_string()),
            Some("slow/v1".to_string()),
        ];
        let kinds: [Option<&str>; 4] = [None, Some("runtime_crash"), Some("runtime_crash"), None];
        let mut l = two_rung_ladder();
        for (stamp, kind) in stamps.iter().zip(kinds) {
            l.verify_replay(stamp).expect("stamps line up");
            l.observe(kind);
        }
        assert_eq!(l.level(), 1);
        // A drifted stamp is caught.
        let mut l = two_rung_ladder();
        assert!(l.verify_replay(&Some("slow/v1".into())).is_err());
    }

    #[test]
    fn real_ladder_has_four_distinct_rungs() {
        let cache = Arc::new(MemoCache::new());
        let mut spec = JobSpec::new("t", "lu", "mini");
        spec.engine = EngineKind::Real;
        let l = build_ladder(&spec, &cache, HarnessOptions::default(), 3).expect("ladder");
        assert_eq!(l.level(), 0);
        assert_eq!(l.rung_name(), "jit", "native codegen tops the ladder");
        let mut fps = Vec::new();
        let mut l = l;
        loop {
            fps.push(l.fingerprint());
            if l.level() + 1 >= 4 {
                break;
            }
            // Force a demotion.
            for _ in 0..3 {
                l.observe(Some("build_failed"));
            }
        }
        assert_eq!(fps.len(), 4);
        assert!(
            fps.iter().collect::<std::collections::HashSet<_>>().len() == 4,
            "each rung has a distinct fingerprint: {fps:?}"
        );
        assert_eq!(fps[3], Some("interp/v1".into()), "oracle at the bottom");
    }

    #[test]
    fn simulated_ladder_is_single_rung() {
        let cache = Arc::new(MemoCache::new());
        let spec = JobSpec::new("t", "lu", "mini");
        let l = build_ladder(&spec, &cache, HarnessOptions::default(), 3).expect("ladder");
        assert_eq!(l.rung_name(), "sim-a100");
        assert_eq!(l.fingerprint(), None, "analytical device: no pipeline");
    }
}
