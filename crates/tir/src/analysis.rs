//! Loop-nest analysis: features consumed by the analytical GPU cost model
//! (`gpu-sim`) and by tuner feature encodings (`autotvm`).

use crate::stmt::{ForKind, PrimFunc, Stmt};
use std::collections::HashMap;
use tvm_te::{BinOp, CmpOp, DType, Intrinsic, PrimExpr};

/// One loop surrounding a statement.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop variable id.
    pub var_id: u64,
    /// Loop variable name.
    pub name: String,
    /// Lower bound.
    pub min: i64,
    /// Trip count.
    pub extent: i64,
    /// Execution strategy.
    pub kind: ForKind,
}

/// One memory access (read or the store target) of a statement.
#[derive(Debug, Clone)]
pub struct AccessInfo {
    /// Buffer/tensor name.
    pub buffer: String,
    /// Total elements of the underlying storage.
    pub buffer_numel: usize,
    /// Element size in bytes.
    pub elem_bytes: usize,
    /// Stride (in elements) of the access with respect to each enclosing
    /// loop variable, outermost first. `0` = loop-invariant, `1` =
    /// contiguous.
    pub strides: Vec<i64>,
}

/// Features of one `BufferStore` statement together with its loop nest.
#[derive(Debug, Clone)]
pub struct StmtFeatures {
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopInfo>,
    /// Product of loop extents (upper bound on executed iterations).
    pub raw_iterations: f64,
    /// Estimated fraction of iterations that pass enclosing guards
    /// (`1.0` when unguarded); estimated by deterministic sampling.
    pub guard_selectivity: f64,
    /// Floating-point arithmetic operations per executed iteration.
    pub flops_per_iter: f64,
    /// Read accesses (one per distinct `TensorRead` site).
    pub reads: Vec<AccessInfo>,
    /// The store target access.
    pub write: AccessInfo,
}

impl StmtFeatures {
    /// Effective executed iterations (`raw * selectivity`).
    pub fn iterations(&self) -> f64 {
        self.raw_iterations * self.guard_selectivity
    }

    /// Total floating-point operations of this statement.
    pub fn total_flops(&self) -> f64 {
        self.iterations() * self.flops_per_iter
    }
}

/// Evaluate an index/predicate expression over integer variable values.
///
/// Returns `None` on unbound variables or non-integer constructs — callers
/// treat that as "cannot analyze".
pub fn eval_int(e: &PrimExpr, env: &HashMap<u64, i64>) -> Option<i64> {
    match e {
        PrimExpr::IntImm(v, _) => Some(*v),
        PrimExpr::BoolImm(b) => Some(*b as i64),
        PrimExpr::Var(v) => env.get(&v.id).copied(),
        PrimExpr::Binary(op, a, b) => {
            let (a, b) = (eval_int(a, env)?, eval_int(b, env)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a / b
                }
                BinOp::FloorDiv => {
                    if b == 0 {
                        return None;
                    }
                    a.div_euclid(b)
                }
                BinOp::FloorMod => {
                    if b == 0 {
                        return None;
                    }
                    a.rem_euclid(b)
                }
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
            })
        }
        PrimExpr::Cmp(op, a, b) => {
            let (a, b) = (eval_int(a, env)?, eval_int(b, env)?);
            Some(match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            } as i64)
        }
        PrimExpr::And(a, b) => Some((eval_int(a, env)? != 0 && eval_int(b, env)? != 0) as i64),
        PrimExpr::Or(a, b) => Some((eval_int(a, env)? != 0 || eval_int(b, env)? != 0) as i64),
        PrimExpr::Not(a) => Some((eval_int(a, env)? == 0) as i64),
        PrimExpr::Select(c, t, f) => {
            if eval_int(c, env)? != 0 {
                eval_int(t, env)
            } else {
                eval_int(f, env)
            }
        }
        PrimExpr::Cast(t, a) if t.is_int() => eval_int(a, env),
        _ => None,
    }
}

/// Count floating-point operations in an expression (one per float-typed
/// arithmetic node; intrinsic calls count as four, matching common
/// roofline practice for transcendental/special functions).
pub fn count_flops(e: &PrimExpr) -> f64 {
    let mut flops = 0.0;
    tvm_te::visitor::walk(e, &mut |node| match node {
        PrimExpr::Binary(op, a, b) => {
            let t = a.dtype().unify(b.dtype());
            if t.is_float()
                && matches!(
                    op,
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max
                )
            {
                flops += 1.0;
            }
        }
        PrimExpr::Call(i, _) => {
            flops += match i {
                Intrinsic::Abs => 1.0,
                _ => 4.0,
            };
        }
        _ => {}
    });
    flops
}

fn stride_of(
    indices: &[PrimExpr],
    strides_elems: &[usize],
    loop_var: u64,
    base: &HashMap<u64, i64>,
) -> Option<i64> {
    // Linear offset difference when the loop var moves 0 -> 1.
    let mut env0 = base.clone();
    env0.insert(loop_var, 0);
    let mut env1 = base.clone();
    env1.insert(loop_var, 1);
    let mut off0 = 0i64;
    let mut off1 = 0i64;
    for (d, idx) in indices.iter().enumerate() {
        off0 += eval_int(idx, &env0)? * strides_elems[d] as i64;
        off1 += eval_int(idx, &env1)? * strides_elems[d] as i64;
    }
    Some(off1 - off0)
}

/// Deterministic xorshift for guard-selectivity sampling.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: i64) -> i64 {
        if n <= 1 {
            0
        } else {
            (self.next() % n as u64) as i64
        }
    }
}

const SELECTIVITY_SAMPLES: usize = 512;

fn guard_selectivity(guards: &[PrimExpr], loops: &[LoopInfo]) -> f64 {
    if guards.is_empty() {
        return 1.0;
    }
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    let mut pass = 0usize;
    for _ in 0..SELECTIVITY_SAMPLES {
        let mut env = HashMap::with_capacity(loops.len());
        for l in loops {
            env.insert(l.var_id, l.min + rng.below(l.extent));
        }
        let ok = guards
            .iter()
            .all(|g| eval_int(g, &env).map(|v| v != 0).unwrap_or(true));
        pass += ok as usize;
    }
    (pass as f64 / SELECTIVITY_SAMPLES as f64).max(1.0 / SELECTIVITY_SAMPLES as f64)
}

fn access_info(
    name: &str,
    numel: usize,
    dtype: DType,
    indices: &[PrimExpr],
    shape: &[usize],
    loops: &[LoopInfo],
) -> AccessInfo {
    // Row-major element strides of the storage.
    let mut elem_strides = vec![1usize; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        elem_strides[d] = elem_strides[d + 1] * shape[d + 1];
    }
    // Base env: all loop vars at their minimum.
    let base: HashMap<u64, i64> = loops.iter().map(|l| (l.var_id, l.min)).collect();
    let strides = loops
        .iter()
        .map(|l| stride_of(indices, &elem_strides, l.var_id, &base).unwrap_or(0))
        .collect();
    AccessInfo {
        buffer: name.to_string(),
        buffer_numel: numel,
        elem_bytes: dtype.size_bytes(),
        strides,
    }
}

fn collect(
    stmt: &Stmt,
    loops: &mut Vec<LoopInfo>,
    guards: &mut Vec<PrimExpr>,
    out: &mut Vec<StmtFeatures>,
) {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            loops.push(LoopInfo {
                var_id: var.id,
                name: var.name.clone(),
                min: *min,
                extent: *extent,
                kind: *kind,
            });
            collect(body, loops, guards, out);
            loops.pop();
        }
        Stmt::IfThenElse { cond, then, else_ } => {
            guards.push(cond.clone());
            collect(then, loops, guards, out);
            guards.pop();
            if let Some(e) = else_ {
                guards.push(PrimExpr::Not(std::sync::Arc::new(cond.clone())));
                collect(e, loops, guards, out);
                guards.pop();
            }
        }
        Stmt::Seq(items) => {
            for s in items {
                collect(s, loops, guards, out);
            }
        }
        Stmt::BufferStore {
            buffer,
            indices,
            value,
        } => {
            let mut reads = Vec::new();
            tvm_te::visitor::walk(value, &mut |e| {
                if let PrimExpr::TensorRead(t, idx) = e {
                    reads.push(access_info(
                        t.name(),
                        t.numel(),
                        t.dtype(),
                        idx,
                        t.shape(),
                        loops,
                    ));
                }
            });
            let write = access_info(
                &buffer.name,
                buffer.numel(),
                buffer.dtype,
                indices,
                &buffer.shape,
                loops,
            );
            let raw_iterations: f64 = loops.iter().map(|l| l.extent as f64).product();
            out.push(StmtFeatures {
                loops: loops.clone(),
                raw_iterations,
                guard_selectivity: guard_selectivity(guards, loops),
                flops_per_iter: count_flops(value),
                reads,
                write,
            });
        }
        Stmt::Evaluate(_) | Stmt::Nop => {}
    }
}

/// Extract per-store loop-nest features from a lowered function.
pub fn analyze(func: &PrimFunc) -> Vec<StmtFeatures> {
    let mut out = Vec::new();
    collect(&func.body, &mut Vec::new(), &mut Vec::new(), &mut out);
    out
}

/// Total floating-point work of the whole function.
pub fn total_flops(func: &PrimFunc) -> f64 {
    analyze(func).iter().map(|f| f.total_flops()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule};

    fn matmul(n: usize) -> PrimFunc {
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let s = Schedule::create(&[c.clone()]);
        lower(&s, &[a, b, c], "mm")
    }

    #[test]
    fn matmul_flops() {
        let f = matmul(16);
        // update: n^3 iterations * 2 flops (mul + add)
        let feats = analyze(&f);
        assert_eq!(feats.len(), 2); // init store + update store
        let update = &feats[1];
        assert_eq!(update.loops.len(), 3);
        assert!((update.flops_per_iter - 2.0).abs() < 1e-9);
        assert!((update.total_flops() - 2.0 * 16f64.powi(3)).abs() < 1e-6);
    }

    #[test]
    fn stride_analysis_identifies_contiguity() {
        let f = matmul(16);
        let feats = analyze(&f);
        let update = &feats[1];
        // Loops are (i, j, k). Reads: A[i,k] (strides 16,0,1), B[k,j] (0,1,16),
        // C[i,j] (16,1,0). Write C[i,j] likewise.
        let a = update
            .reads
            .iter()
            .find(|r| r.buffer == "A")
            .expect("A read");
        assert_eq!(a.strides, vec![16, 0, 1]);
        let b = update
            .reads
            .iter()
            .find(|r| r.buffer == "B")
            .expect("B read");
        assert_eq!(b.strides, vec![0, 1, 16]);
        assert_eq!(update.write.strides, vec![16, 1, 0]);
    }

    #[test]
    fn eval_int_handles_div_mod() {
        use tvm_te::ops::{floordiv, floormod, int};
        let env = HashMap::new();
        assert_eq!(eval_int(&floordiv(int(-7), int(2)), &env), Some(-4));
        assert_eq!(eval_int(&floormod(int(-7), int(2)), &env), Some(1));
        assert_eq!(eval_int(&(int(3) * 4 + 1), &env), Some(13));
    }

    #[test]
    fn selectivity_of_triangular_guard() {
        // for i in 0..64, j in 0..64: if j < i { store }
        use crate::buffer::Buffer;
        use crate::stmt::ForKind;
        use tvm_te::ops::cmp;
        use tvm_te::Var;
        let (i, j) = (Var::index("i"), Var::index("j"));
        let b = Buffer::new("b", [64usize, 64], DType::F32);
        let body = Stmt::IfThenElse {
            cond: cmp::lt(j.expr(), i.expr()),
            then: Box::new(Stmt::BufferStore {
                buffer: b.clone(),
                indices: vec![i.expr(), j.expr()],
                value: tvm_te::ops::float(1.0),
            }),
            else_: None,
        };
        let nest = Stmt::For {
            var: i.clone(),
            min: 0,
            extent: 64,
            kind: ForKind::Serial,
            body: Box::new(Stmt::For {
                var: j.clone(),
                min: 0,
                extent: 64,
                kind: ForKind::Serial,
                body: Box::new(body),
            }),
        };
        let f = PrimFunc {
            name: "tri".into(),
            params: vec![b],
            allocs: vec![],
            body: nest,
        };
        let feats = analyze(&f);
        assert_eq!(feats.len(), 1);
        let sel = feats[0].guard_selectivity;
        assert!(
            (sel - 0.5).abs() < 0.08,
            "triangular guard selectivity should be ~0.5, got {sel}"
        );
    }
}
