//! TIR statements and functions.

use crate::buffer::Buffer;
use std::sync::Arc;
use tvm_te::schedule::ThreadTag;
use tvm_te::{PrimExpr, Var};

/// Execution strategy of a `for` loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForKind {
    /// Ordinary sequential loop.
    Serial,
    /// Iterations may run on separate CPU threads.
    Parallel,
    /// Innermost loop executed as SIMD lanes.
    Vectorized,
    /// Fully unrolled at compile time (by the unroll pass).
    Unrolled,
    /// Bound to a GPU thread axis.
    ThreadBinding(ThreadTag),
}

impl ForKind {
    /// Printed keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            ForKind::Serial => "for",
            ForKind::Parallel => "parallel",
            ForKind::Vectorized => "vectorized",
            ForKind::Unrolled => "unrolled",
            ForKind::ThreadBinding(_) => "thread_binding",
        }
    }
}

/// A TIR statement.
///
/// Extents are compile-time constants: PolyBench kernels have static
/// control flow, and TVM's lowered TIR for these kernels is likewise
/// static after bind/split substitution.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `for var in [min, min+extent) { body }`
    For {
        /// Loop variable (type `I64`).
        var: Var,
        /// Lower bound.
        min: i64,
        /// Trip count.
        extent: i64,
        /// Execution strategy.
        kind: ForKind,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `buffer[indices...] = value`
    BufferStore {
        /// Destination buffer.
        buffer: Arc<Buffer>,
        /// One index expression per buffer dimension.
        indices: Vec<PrimExpr>,
        /// Stored value.
        value: PrimExpr,
    },
    /// `if cond { then } else { else_ }`
    IfThenElse {
        /// Predicate.
        cond: PrimExpr,
        /// Taken branch.
        then: Box<Stmt>,
        /// Fallthrough branch.
        else_: Option<Box<Stmt>>,
    },
    /// Statement sequence.
    Seq(Vec<Stmt>),
    /// Expression evaluated for effect (kept for IR completeness).
    Evaluate(PrimExpr),
    /// No-op.
    Nop,
}

impl Stmt {
    /// Sequence two statements, flattening nested `Seq`s and dropping
    /// `Nop`s.
    pub fn then(self, next: Stmt) -> Stmt {
        match (self, next) {
            (Stmt::Nop, s) | (s, Stmt::Nop) => s,
            (Stmt::Seq(mut a), Stmt::Seq(b)) => {
                a.extend(b);
                Stmt::Seq(a)
            }
            (Stmt::Seq(mut a), s) => {
                a.push(s);
                Stmt::Seq(a)
            }
            (s, Stmt::Seq(mut b)) => {
                b.insert(0, s);
                Stmt::Seq(b)
            }
            (a, b) => Stmt::Seq(vec![a, b]),
        }
    }

    /// Pre-order walk over all nested statements.
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::For { body, .. } => body.walk(f),
            Stmt::IfThenElse { then, else_, .. } => {
                then.walk(f);
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
            Stmt::Seq(items) => {
                for s in items {
                    s.walk(f);
                }
            }
            Stmt::BufferStore { .. } | Stmt::Evaluate(_) | Stmt::Nop => {}
        }
    }

    /// Number of `BufferStore` statements in the tree.
    pub fn store_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |s| {
            if matches!(s, Stmt::BufferStore { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Maximum `For` nesting depth.
    pub fn loop_depth(&self) -> usize {
        match self {
            Stmt::For { body, .. } => 1 + body.loop_depth(),
            Stmt::IfThenElse { then, else_, .. } => then
                .loop_depth()
                .max(else_.as_ref().map(|e| e.loop_depth()).unwrap_or(0)),
            Stmt::Seq(items) => items.iter().map(|s| s.loop_depth()).max().unwrap_or(0),
            _ => 0,
        }
    }
}

/// A lowered function: named loop-nest body over parameter buffers.
#[derive(Debug, Clone)]
pub struct PrimFunc {
    /// Function name.
    pub name: String,
    /// Parameter buffers: inputs first, then outputs (calling convention of
    /// `tvm_runtime::Module::run`).
    pub params: Vec<Arc<Buffer>>,
    /// Buffers allocated internally (intermediate stages).
    pub allocs: Vec<Arc<Buffer>>,
    /// Function body.
    pub body: Stmt,
}

impl PrimFunc {
    /// All buffers the function touches: params then allocs.
    pub fn all_buffers(&self) -> Vec<Arc<Buffer>> {
        let mut v = self.params.clone();
        v.extend(self.allocs.iter().cloned());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::ops::int;
    use tvm_te::DType;

    fn store(name: &str) -> Stmt {
        let b = Buffer::new(name, [1usize], DType::F32);
        Stmt::BufferStore {
            buffer: b,
            indices: vec![int(0)],
            value: int(1),
        }
    }

    #[test]
    fn then_flattens() {
        let s = store("a").then(store("b")).then(Stmt::Nop).then(store("c"));
        match &s {
            Stmt::Seq(items) => assert_eq!(items.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
        assert_eq!(s.store_count(), 3);
    }

    #[test]
    fn loop_depth_counts_nesting() {
        let inner = Stmt::For {
            var: Var::index("j"),
            min: 0,
            extent: 4,
            kind: ForKind::Serial,
            body: Box::new(store("x")),
        };
        let outer = Stmt::For {
            var: Var::index("i"),
            min: 0,
            extent: 4,
            kind: ForKind::Parallel,
            body: Box::new(inner),
        };
        assert_eq!(outer.loop_depth(), 2);
        assert_eq!(outer.store_count(), 1);
    }

    #[test]
    fn forkind_keywords() {
        assert_eq!(ForKind::Serial.keyword(), "for");
        assert_eq!(ForKind::Parallel.keyword(), "parallel");
        assert_eq!(ForKind::Vectorized.keyword(), "vectorized");
    }
}
